// Figure 9: effects of number of locks and granule placement on throughput
// with large transactions (maxtransize = 500), for npros in {1, 30}.
//
// Paper shapes: under random or worst placement, throughput *falls* as the
// lock count grows from 1 toward the mean number of entities accessed
// (~250) — every transaction still effectively locks the whole database,
// so extra locks add overhead without adding concurrency — and then rises
// again toward ltot = dbsize. Best placement behaves like Figure 2. The
// random and worst curves nearly coincide.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.maxtransize = 500;
  bench::PrintBanner("Figure 9",
                     "Throughput vs number of locks and granule placement, "
                     "large transactions (maxtransize=500), npros in {1,30}",
                     base, args);

  std::vector<bench::Series> series;
  for (int64_t npros : {1, 30}) {
    for (model::Placement placement :
         {model::Placement::kBest, model::Placement::kRandom,
          model::Placement::kWorst}) {
      model::SystemConfig cfg = base;
      cfg.npros = npros;
      workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
      spec.placement = placement;
      series.push_back({StrFormat("%s/npros=%lld",
                                  model::PlacementToString(placement),
                                  (long long)npros),
                        cfg, spec,
                        {}});
    }
  }
  const bench::FigureData data = bench::RunFigure("fig09", series, args);
  bench::PrintMetricTable(data, bench::Metric::kThroughput, args);
  bench::PrintOptimaSummary(data);
  bench::MaybeWriteJsonReport("fig09", data, args);
  return 0;
}
