// Figure 7: effects of number of locks and lock I/O time on throughput
// (npros = 10). liotime is swept over {0.2, 0.1, 0}; liotime = 0 models a
// concurrency-control mechanism that keeps the lock table in main memory.
//
// Paper shapes: cheaper lock I/O tolerates more locks before overhead
// dominates; with liotime = 0 the throughput curve has a very flat
// extremum from ~100 locks up — so even a memory-resident lock table does
// not make fine granularity *beneficial*, it only stops it from hurting.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.npros = 10;
  bench::PrintBanner("Figure 7",
                     "Throughput vs number of locks, for lock I/O time in "
                     "{0.2, 0.1, 0} (npros=10)",
                     base, args);

  std::vector<bench::Series> series;
  for (double liotime : {0.2, 0.1, 0.0}) {
    model::SystemConfig cfg = base;
    cfg.liotime = liotime;
    series.push_back({StrFormat("liotime=%g", liotime), cfg,
                      workload::WorkloadSpec::Base(cfg),
                      {}});
  }
  const bench::FigureData data = bench::RunFigure("fig07", series, args);
  bench::PrintMetricTable(data, bench::Metric::kThroughput, args);
  bench::PrintOptimaSummary(data);
  bench::MaybeWriteJsonReport("fig07", data, args);
  return 0;
}
