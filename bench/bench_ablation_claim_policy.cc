// Ablation: conservative (pre-claim) locking vs incremental
// (claim-as-needed) two-phase locking.
//
// The paper models conservative locking only, citing Ries & Stonebraker's
// finding that switching to claim-as-needed "did not affect the
// conclusions of the study" (§2, footnote 1). This bench re-verifies that
// claim: the incremental engine acquires locks one at a time interleaved
// with processing, holds earlier locks while waiting, detects waits-for
// cycles and aborts/restarts the requester.
//
// What to look for: the incremental curve keeps the same shape — convex
// with the optimum well below ~200 locks — so the paper's conclusions are
// robust to the protocol choice. Deadlock aborts appear at moderate
// granularity (few locks, heavy contention, shuffled acquisition order)
// and vanish at both extremes.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "db/incremental_simulator.h"

int main(int argc, char** argv) {
  using namespace granulock;
  bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.npros = 10;
  bench::PrintBanner("Ablation: claim policy",
                     "Conservative pre-claiming (paper) vs incremental "
                     "claim-as-needed 2PL with deadlock detection "
                     "(npros=10, best placement)",
                     base, args);

  // Checkpoint/containment wrapper: series 0/1 = conservative/incremental
  // with best placement, 2/3 = the same with worst placement below.
  // Non-default contention flags change the incremental results, so they
  // extend the fingerprint; default runs keep their historical journals.
  model::SystemConfig fp_cfg = base;
  args.Apply(&fp_cfg);
  std::string canonical =
      fp_cfg.ToString() + ";base_workload;incremental_2pl";
  if (!args.ContentionIsDefault()) canonical += ";" + args.DescribeContention();
  bench::CellRunner cells("ablation_claim_policy", args, canonical);
  db::IncrementalSimulator::Options iopt;
  iopt.contention = args.Contention();
  const std::vector<int64_t> sweep = core::StandardLockSweep(base.dbsize);
  const uint64_t seed = static_cast<uint64_t>(args.seed);

  TablePrinter table({"locks", "conservative tp", "incremental tp",
                      "deadlock aborts", "wait rate"});
  for (size_t p = 0; p < sweep.size(); ++p) {
    const int64_t ltot = sweep[p];
    model::SystemConfig cfg = base;
    cfg.ltot = ltot;
    args.Apply(&cfg);
    const workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
    auto conservative = cells.Run(
        0, static_cast<int>(p), ltot, seed,
        [&](const fault::CellWatchdog* wd) {
          core::GranularitySimulator::Options opt;
          opt.watchdog = wd;
          return core::GranularitySimulator::RunOnce(cfg, spec, seed, opt);
        });
    auto incremental = cells.Run(
        1, static_cast<int>(p), ltot, seed,
        [&](const fault::CellWatchdog*) {
          return db::IncrementalSimulator::RunOnce(cfg, spec, seed, iopt);
        });
    const bool ok = conservative.ok() && incremental.ok();
    table.AddRow(
        {StrFormat("%lld", (long long)ltot),
         conservative.ok() ? StrFormat("%.5g", conservative->throughput)
                           : std::string("-"),
         incremental.ok() ? StrFormat("%.5g", incremental->throughput)
                          : std::string("-"),
         ok ? StrFormat("%lld", (long long)incremental->deadlock_aborts)
            : std::string("-"),
         ok ? StrFormat("%.3f", incremental->denial_rate)
            : std::string("-")});
  }
  if (args.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf(
      "\nreading the table: both protocols should peak in the same "
      "coarse-to-moderate region, confirming the paper's footnote that the "
      "conservative assumption does not drive its conclusions. Sequential "
      "access (best placement) acquires locks in scan order, so deadlocks "
      "are rare.\n\n");

  // Second series: random access order (worst placement), where
  // hold-and-wait cycles actually form and the deadlock detector earns
  // its keep.
  std::printf("--- random access order (worst placement) ---\n");
  TablePrinter table2({"locks", "conservative tp", "incremental tp",
                       "deadlock aborts", "wait rate"});
  for (size_t p = 0; p < sweep.size(); ++p) {
    const int64_t ltot = sweep[p];
    model::SystemConfig cfg = base;
    cfg.ltot = ltot;
    args.Apply(&cfg);
    workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
    spec.placement = model::Placement::kWorst;
    auto conservative = cells.Run(
        2, static_cast<int>(p), ltot, seed,
        [&](const fault::CellWatchdog* wd) {
          core::GranularitySimulator::Options opt;
          opt.watchdog = wd;
          return core::GranularitySimulator::RunOnce(cfg, spec, seed, opt);
        });
    auto incremental = cells.Run(
        3, static_cast<int>(p), ltot, seed,
        [&](const fault::CellWatchdog*) {
          return db::IncrementalSimulator::RunOnce(cfg, spec, seed, iopt);
        });
    const bool ok = conservative.ok() && incremental.ok();
    table2.AddRow(
        {StrFormat("%lld", (long long)ltot),
         conservative.ok() ? StrFormat("%.5g", conservative->throughput)
                           : std::string("-"),
         incremental.ok() ? StrFormat("%.5g", incremental->throughput)
                          : std::string("-"),
         ok ? StrFormat("%lld", (long long)incremental->deadlock_aborts)
            : std::string("-"),
         ok ? StrFormat("%.3f", incremental->denial_rate)
            : std::string("-")});
  }
  if (args.csv) {
    table2.PrintCsv(std::cout);
  } else {
    table2.Print(std::cout);
  }
  std::printf(
      "\nunder random access both protocols agree that ltot = 1 is "
      "optimal; away from it, claim-as-needed collapses into an abort "
      "storm (large transactions holding random granule sets deadlock "
      "almost surely), which strengthens — not weakens — the paper's "
      "coarse-granularity conclusion for large random-access "
      "transactions.\n");
  cells.Finish();
  bench::MaybeWriteTableJsonReport(
      "ablation_claim_policy",
      {{"best_placement", &table}, {"worst_placement", &table2}}, args);
  return 0;
}
