// Ablation: multiple-granularity locking on the paper's mixed workload.
//
// The paper's conclusions suggest Gamma-style two-level granularity
// ("providing granularity at the block level and at the file level ... may
// be adequate"): large transactions should take one coarse lock instead of
// hundreds of granule locks, small transactions keep fine locks. This
// bench quantifies that on the §3.6 workload (80% small / 20% large,
// npros = 10) using the explicit-lock-table engine:
//
//  * flat      — every transaction locks its granules individually;
//  * MGL       — transactions with >= 250 entities take one database-level
//                X lock (plus nothing else); smaller ones take IX + granule
//                X locks.
//
// What to look for: at moderate-to-fine granularity the flat strategy
// drowns in the large transactions' lock overhead, while MGL caps that
// cost at one lock, so the MGL curve dominates on the right side of the
// sweep.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "db/explicit_simulator.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.npros = 10;
  base.maxtransize = 500;
  bench::PrintBanner("Ablation: multiple-granularity locking",
                     "Flat granule locks vs hierarchical (coarse lock for "
                     "transactions >= 250 entities), 80/20 mixed workload, "
                     "npros=10, explicit lock table",
                     base, args);

  workload::WorkloadSpec spec;
  spec.sizes = workload::MakeSmallLargeMix(0.8, 50, 500);
  spec.placement = model::Placement::kBest;
  spec.partitioning = workload::PartitioningMethod::kHorizontal;

  db::ExplicitSimulator::Options flat;
  db::ExplicitSimulator::Options mgl;
  mgl.strategy = db::ExplicitSimulator::LockingStrategy::kHierarchical;
  mgl.coarse_threshold = 250;
  // Gamma-style: granules grouped into 50 files, with per-file lock
  // escalation so large scans collapse to file locks even below the
  // whole-database threshold.
  db::ExplicitSimulator::Options gamma = mgl;
  gamma.escalation_threshold = 20;

  // Checkpoint/containment wrapper: each (strategy, ltot) simulation is
  // one cell. The base config is part of the fingerprint; the per-point
  // ltot/num_files tweaks are functions of the grid.
  {
    model::SystemConfig fp_cfg = base;
    args.Apply(&fp_cfg);
    bench::CellRunner cells(
        "ablation_mgl", args,
        fp_cfg.ToString() + ";" + spec.Describe() +
            ";mgl_threshold=250;escalation=20;files=50");

    TablePrinter table({"locks", "flat tp", "MGL tp", "MGL+files tp",
                        "flat lock ovh", "MGL lock ovh", "MGL+files ovh"});
    const std::vector<int64_t> sweep = core::StandardLockSweep(base.dbsize);
    for (size_t p = 0; p < sweep.size(); ++p) {
      const int64_t ltot = sweep[p];
      model::SystemConfig cfg = base;
      cfg.ltot = ltot;
      args.Apply(&cfg);
      db::ExplicitSimulator::Options gamma_point = gamma;
      gamma_point.num_files = std::min<int64_t>(50, ltot);
      const uint64_t seed = static_cast<uint64_t>(args.seed);
      auto run = [&](int series, const db::ExplicitSimulator::Options& opt) {
        return cells.Run(series, static_cast<int>(p), ltot, seed,
                         [&](const fault::CellWatchdog*) {
                           return db::ExplicitSimulator::RunOnce(cfg, spec,
                                                                 seed, opt);
                         });
      };
      auto rf = run(0, flat);
      auto rm = run(1, mgl);
      auto rg = run(2, gamma_point);
      auto tp = [](const Result<core::SimulationMetrics>& r) {
        return r.ok() ? StrFormat("%.5g", r->throughput) : std::string("-");
      };
      auto ovh = [](const Result<core::SimulationMetrics>& r) {
        return r.ok() ? StrFormat("%.5g", r->lockios + r->lockcpus)
                      : std::string("-");
      };
      table.AddRow({StrFormat("%lld", (long long)ltot), tp(rf), tp(rm),
                    tp(rg), ovh(rf), ovh(rm), ovh(rg)});
    }
    cells.Finish();
    if (args.csv) {
      table.PrintCsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    bench::MaybeWriteTableJsonReport("ablation_mgl", {{"throughput", &table}},
                                     args);
  }
  return 0;
}
