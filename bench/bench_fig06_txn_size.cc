// Figure 6: effects of number of locks and transaction size on throughput
// and response time, with npros = 10. maxtransize is swept over
// {50, 100, 500, 2500, 5000}, i.e. mean transaction sizes of roughly
// 0.5%, 1%, 5%, 25% and 50% of the database.
//
// Paper shapes: smaller transactions yield much higher throughput and
// steeper curves (the optimum shifts right with decreasing size, but stays
// below ~200 locks); response curves are flatter for small transactions.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.npros = 10;
  bench::PrintBanner("Figure 6",
                     "Throughput and response time vs number of locks, for "
                     "maxtransize in {50,100,500,2500,5000} (npros=10)",
                     base, args);

  std::vector<bench::Series> series;
  for (int64_t maxtransize : {50, 100, 500, 2500, 5000}) {
    model::SystemConfig cfg = base;
    cfg.maxtransize = maxtransize;
    series.push_back({StrFormat("maxtransize=%lld", (long long)maxtransize),
                      cfg, workload::WorkloadSpec::Base(cfg),
                      {}});
  }
  const bench::FigureData data = bench::RunFigure("fig06", series, args);
  bench::PrintMetricTable(data, bench::Metric::kThroughput, args);
  bench::PrintMetricTable(data, bench::Metric::kResponseTime, args);
  bench::PrintOptimaSummary(data);
  bench::MaybeWriteJsonReport("fig06", data, args);
  return 0;
}
