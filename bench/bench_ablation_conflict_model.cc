// Ablation: the paper's probabilistic (Ries–Stonebraker) conflict model vs
// an explicit lock table over concrete granules.
//
// The paper never validates its conflict approximation against a real lock
// table; this bench does. Both engines simulate the identical closed
// system (Table 1 parameters, npros = 10, best placement, horizontal
// partitioning); they differ only in how lock conflicts are decided:
//
//  * probabilistic — requester blocked by active txn j with prob Lj/ltot;
//  * explicit      — requester blocked iff its concrete granule set
//                    intersects an active transaction's set.
//
// What to look for: the two throughput curves should have the same shape
// and nearby optima. Best placement makes the probabilistic model slightly
// pessimistic (contiguous granule runs overlap *less* than independent
// uniform marks at low lock counts), so the explicit curve sits a little
// above the probabilistic one around the optimum.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "db/explicit_simulator.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.npros = 10;
  bench::PrintBanner("Ablation: conflict model",
                     "Probabilistic conflict approximation (paper) vs "
                     "explicit lock table (npros=10, best placement)",
                     base, args);

  const std::vector<int64_t> lock_counts =
      core::StandardLockSweep(base.dbsize);
  // Checkpoint/containment wrapper: series 0 = probabilistic, 1 = explicit.
  model::SystemConfig fp_cfg = base;
  args.Apply(&fp_cfg);
  bench::CellRunner cells("ablation_conflict_model", args,
                          fp_cfg.ToString() + ";base_workload;explicit_table");
  const uint64_t seed = static_cast<uint64_t>(args.seed);
  TablePrinter table({"locks", "probabilistic", "explicit", "prob denial",
                      "expl denial"});
  int64_t best_prob = 1, best_expl = 1;
  double best_prob_tp = -1.0, best_expl_tp = -1.0;
  for (size_t p = 0; p < lock_counts.size(); ++p) {
    const int64_t ltot = lock_counts[p];
    model::SystemConfig cfg = base;
    cfg.ltot = ltot;
    args.Apply(&cfg);
    const workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);

    auto prob = cells.Run(0, static_cast<int>(p), ltot, seed,
                          [&](const fault::CellWatchdog* wd) {
                            core::GranularitySimulator::Options opt;
                            opt.watchdog = wd;
                            return core::GranularitySimulator::RunOnce(
                                cfg, spec, seed, opt);
                          });
    auto expl = cells.Run(1, static_cast<int>(p), ltot, seed,
                          [&](const fault::CellWatchdog*) {
                            return db::ExplicitSimulator::RunOnce(cfg, spec,
                                                                  seed);
                          });
    if (prob.ok() && prob->throughput > best_prob_tp) {
      best_prob_tp = prob->throughput;
      best_prob = ltot;
    }
    if (expl.ok() && expl->throughput > best_expl_tp) {
      best_expl_tp = expl->throughput;
      best_expl = ltot;
    }
    table.AddRow({StrFormat("%lld", (long long)ltot),
                  prob.ok() ? StrFormat("%.5g", prob->throughput)
                            : std::string("-"),
                  expl.ok() ? StrFormat("%.5g", expl->throughput)
                            : std::string("-"),
                  prob.ok() ? StrFormat("%.3f", prob->denial_rate)
                            : std::string("-"),
                  expl.ok() ? StrFormat("%.3f", expl->denial_rate)
                            : std::string("-")});
  }
  cells.Finish();
  if (args.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf(
      "\noptimal ltot: probabilistic=%lld (tp %.5g), explicit=%lld (tp "
      "%.5g)\n",
      (long long)best_prob, best_prob_tp, (long long)best_expl, best_expl_tp);
  bench::MaybeWriteTableJsonReport("ablation_conflict_model",
                                   {{"throughput", &table}}, args);
  return 0;
}
