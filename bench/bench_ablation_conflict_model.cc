// Ablation: the paper's probabilistic (Ries–Stonebraker) conflict model vs
// an explicit lock table over concrete granules.
//
// The paper never validates its conflict approximation against a real lock
// table; this bench does. Both engines simulate the identical closed
// system (Table 1 parameters, npros = 10, best placement, horizontal
// partitioning); they differ only in how lock conflicts are decided:
//
//  * probabilistic — requester blocked by active txn j with prob Lj/ltot;
//  * explicit      — requester blocked iff its concrete granule set
//                    intersects an active transaction's set.
//
// What to look for: the two throughput curves should have the same shape
// and nearby optima. Best placement makes the probabilistic model slightly
// pessimistic (contiguous granule runs overlap *less* than independent
// uniform marks at low lock counts), so the explicit curve sits a little
// above the probabilistic one around the optimum.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "db/explicit_simulator.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.npros = 10;
  bench::PrintBanner("Ablation: conflict model",
                     "Probabilistic conflict approximation (paper) vs "
                     "explicit lock table (npros=10, best placement)",
                     base, args);

  const std::vector<int64_t> lock_counts =
      core::StandardLockSweep(base.dbsize);
  TablePrinter table({"locks", "probabilistic", "explicit", "prob denial",
                      "expl denial"});
  int64_t best_prob = 1, best_expl = 1;
  double best_prob_tp = -1.0, best_expl_tp = -1.0;
  for (int64_t ltot : lock_counts) {
    model::SystemConfig cfg = base;
    cfg.ltot = ltot;
    args.Apply(&cfg);
    const workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);

    auto prob = core::GranularitySimulator::RunOnce(
        cfg, spec, static_cast<uint64_t>(args.seed));
    auto expl = db::ExplicitSimulator::RunOnce(
        cfg, spec, static_cast<uint64_t>(args.seed));
    if (!prob.ok() || !expl.ok()) {
      std::fprintf(stderr, "simulation failed: %s / %s\n",
                   prob.status().ToString().c_str(),
                   expl.status().ToString().c_str());
      return 1;
    }
    if (prob->throughput > best_prob_tp) {
      best_prob_tp = prob->throughput;
      best_prob = ltot;
    }
    if (expl->throughput > best_expl_tp) {
      best_expl_tp = expl->throughput;
      best_expl = ltot;
    }
    table.AddRow({StrFormat("%lld", (long long)ltot),
                  StrFormat("%.5g", prob->throughput),
                  StrFormat("%.5g", expl->throughput),
                  StrFormat("%.3f", prob->denial_rate),
                  StrFormat("%.3f", expl->denial_rate)});
  }
  if (args.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf(
      "\noptimal ltot: probabilistic=%lld (tp %.5g), explicit=%lld (tp "
      "%.5g)\n",
      (long long)best_prob, best_prob_tp, (long long)best_expl, best_expl_tp);
  bench::MaybeWriteTableJsonReport("ablation_conflict_model",
                                   {{"throughput", &table}}, args);
  return 0;
}
