// Figure 12: effects of number of locks and granule placement on
// throughput with a large number of transactions (ntrans = 200,
// npros = 20, maxtransize = 500).
//
// Paper shapes (the §3.7 key observation): under heavy load, maintaining
// fine granularity (locks = entities) yields LOWER throughput than coarse
// granularity — lock-processing overhead grows with both the number of
// transactions and the number of locks, and most of the extra requests are
// denied, so concurrency does not improve.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.ntrans = 200;
  base.npros = 20;
  base.maxtransize = 500;
  bench::PrintBanner("Figure 12",
                     "Throughput vs number of locks and placement under "
                     "heavy load (ntrans=200, npros=20, maxtransize=500)",
                     base, args);

  std::vector<bench::Series> series;
  for (model::Placement placement :
       {model::Placement::kBest, model::Placement::kRandom,
        model::Placement::kWorst}) {
    workload::WorkloadSpec spec = workload::WorkloadSpec::Base(base);
    spec.placement = placement;
    series.push_back(
        {model::PlacementToString(placement), base, spec, {}});
  }
  const bench::FigureData data = bench::RunFigure("fig12", series, args);
  bench::PrintMetricTable(data, bench::Metric::kThroughput, args);
  bench::PrintMetricTable(data, bench::Metric::kDenialRate, args);
  bench::PrintOptimaSummary(data);
  bench::MaybeWriteJsonReport("fig12", data, args);
  return 0;
}
