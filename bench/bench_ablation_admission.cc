// Ablation: transaction-level admission control under heavy load.
//
// §3.7 of the paper shows that with ntrans = 200 fine granularity
// collapses — "the lock processing overhead increases in direct proportion
// to the number of transactions and the number of locks ... most of these
// increased lock requests are denied" — and points at transaction-level
// scheduling (the authors' companion work) as the remedy. This bench
// implements the simplest such policy: cap the number of transactions
// holding locks (multiprogramming level), sweeping the cap on the Figure
// 12 workload.
//
// What to look for: with no cap (the paper's model) fine granularity
// loses badly; a moderate cap restores most of the lost throughput by
// suppressing the denied-request overhead, while an over-tight cap
// re-serializes the system.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.ntrans = 200;
  base.npros = 20;
  base.maxtransize = 500;
  bench::PrintBanner("Ablation: admission control",
                     "Multiprogramming-level caps on the Figure 12 "
                     "heavy-load workload (ntrans=200, npros=20)",
                     base, args);

  std::vector<bench::Series> series;
  for (int64_t max_active : {0, 2, 5, 10, 20, 50}) {
    core::GranularitySimulator::Options options;
    options.max_active = max_active;
    series.push_back({max_active == 0
                          ? std::string("uncapped")
                          : StrFormat("cap=%lld", (long long)max_active),
                      base, workload::WorkloadSpec::Base(base), options});
  }
  {
    // Adaptive controller (the paper's reference [4] direction): finds
    // its own cap from the observed denial rate.
    core::GranularitySimulator::Options options;
    options.adaptive_admission = true;
    series.push_back(
        {"adaptive", base, workload::WorkloadSpec::Base(base), options});
  }
  const bench::FigureData data =
      bench::RunFigure("ablation_admission", series, args);
  bench::PrintMetricTable(data, bench::Metric::kThroughput, args);
  bench::PrintMetricTable(data, bench::Metric::kDenialRate, args);
  bench::PrintOptimaSummary(data);
  bench::MaybeWriteJsonReport("ablation_admission", data, args);
  return 0;
}
