#ifndef GRANULOCK_BENCH_BENCH_COMMON_H_
#define GRANULOCK_BENCH_BENCH_COMMON_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "core/experiment.h"
#include "db/contention_policy.h"
#include "model/config.h"
#include "obs/contention.h"
#include "obs/registry.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table.h"
#include "workload/workload.h"

namespace granulock::bench {

/// Command-line arguments shared by every figure/table bench binary, so a
/// sweep can be re-run with different parameters without recompiling.
struct BenchArgs {
  int64_t seed = 42;
  int64_t reps = 1;        ///< replications per sweep point
  double tmax = 10000.0;   ///< simulated time units per run
  double warmup = 0.0;     ///< paper convention: measure from t = 0
  int64_t threads = 1;     ///< worker threads (0 = hardware concurrency)
  bool csv = false;        ///< emit CSV instead of aligned tables
  bool quick = false;      ///< shrink tmax 10x for smoke runs
  bool json_out = false;   ///< also write BENCH_<id>.json (machine-readable)
  /// Re-run each surviving sweep cell once (serially, rep-0 seed) with a
  /// `obs::ContentionProfiler` attached: adds a `contention` section to the
  /// JSON report, writes BENCH_<id>.waitsfor.dot (the densest waits-for
  /// snapshot) and BENCH_<id>.contention.csv (the hottest cell's
  /// blocked-fraction/occupancy series). Never changes the sweep results.
  bool profile_contention = false;
  bool audit = false;      ///< run deep invariant audits at quiescent points
  std::string log_level = "info";  ///< debug|info|warning|error

  // Crash-safety / fault-containment knobs (see docs/ROBUSTNESS.md).
  bool checkpoint = false;  ///< journal completed cells as the run goes
  bool resume = false;      ///< reuse journaled cells (implies --checkpoint)
  std::string checkpoint_path;  ///< journal path; "" = BENCH_<id>.ckpt.jsonl
  int64_t max_cell_retries = 0; ///< same-seed re-runs of a failed cell
  bool allow_partial = false;   ///< keep going past failed cells
  double cell_timeout_s = 0.0;  ///< per-cell wall deadline; 0 = none
  std::string fault_inject;     ///< injection spec, e.g. cell_throw@3

  // Contention-resolution knobs for the incremental (claim-as-needed)
  // engine; ignored by benches that only run the conservative engines.
  // The defaults reproduce the engine's historical behavior bit for bit.
  std::string policy = "detect";   ///< victim policy (see --help for names)
  double backoff_factor = 1.0;     ///< restart backoff growth per restart
  double backoff_cap = 0.0;        ///< cap on the backoff mean; 0 = none
  int64_t max_restarts = -1;       ///< restart budget; -1 = unlimited
  bool admission = false;          ///< enable the MPL admission controller

  /// `threads` resolved through `core::ResolveThreadCount` by
  /// `ParseArgsOrDie` (so 0 becomes the detected hardware concurrency).
  int resolved_threads = 1;

  /// Registers the flags on `parser`.
  void Register(FlagParser& parser);

  /// Applies tmax/warmup (and the quick-mode shrink) onto `cfg`.
  void Apply(model::SystemConfig* cfg) const;

  /// True when a checkpoint journal should be open for this run.
  bool checkpoint_enabled() const { return checkpoint || resume; }

  /// The contention options assembled from the flags (already validated
  /// by `ParseArgsOrDie`).
  db::ContentionOptions Contention() const;

  /// True when any contention flag differs from its bit-identical
  /// default — callers append `DescribeContention()` to their journal
  /// fingerprints only then, so default runs keep historical journals.
  bool ContentionIsDefault() const;

  /// Canonical one-line description of the contention flags, for journal
  /// fingerprints.
  std::string DescribeContention() const;

  /// The journal path for `experiment_id` (honoring --checkpoint_path).
  std::string JournalPath(const std::string& experiment_id) const;
};

/// Parses argv with the standard bench flags; exits the process on --help
/// or a flag error. Applies `--log_level` to the global log threshold,
/// arms the fault injector from `--fault_inject`, and installs
/// SIGINT/SIGTERM handlers that request a cooperative stop (see
/// `InterruptFlag`). Returns the parsed arguments.
BenchArgs ParseArgsOrDie(int argc, char** argv);

/// The process-wide interrupt flag set by the SIGINT/SIGTERM handlers
/// installed in `ParseArgsOrDie`. Wire it into `core::CellPolicy` so cells
/// stop at their next watchdog poll / cell boundary.
const std::atomic<bool>* InterruptFlag();

/// True once SIGINT/SIGTERM was received.
bool Interrupted();

/// Conventional exit code for the received signal (128 + signo).
int InterruptExitCode();

/// Prints the standard experiment banner (figure id, what the paper shows,
/// and the base configuration).
void PrintBanner(const std::string& experiment_id,
                 const std::string& description,
                 const model::SystemConfig& cfg, const BenchArgs& args);

/// One labelled curve of a figure: a configuration + workload to sweep
/// over the lock-count grid.
struct Series {
  std::string label;
  model::SystemConfig cfg;
  workload::WorkloadSpec spec;
  core::GranularitySimulator::Options options;
};

/// Which metric a table reports.
enum class Metric {
  kThroughput,
  kResponseTime,
  kUsefulIo,
  kUsefulCpu,
  kLockOverheadIo,
  kLockOverheadCpu,
  kLockOverheadTotal,
  kDenialRate,
};

const char* MetricName(Metric metric);
double MetricValue(Metric metric, const core::SimulationMetrics& m);

/// One profiled sweep cell: the rendered `ContentionProfiler` JSON plus
/// the totals the driver needs to pick the hottest cell.
struct ContentionPoint {
  int64_t ltot = 0;
  int64_t waits = 0;
  /// `ContentionProfiler::WriteJson` output, spliced verbatim into the
  /// report via `JsonWriter::Raw`.
  std::string profile_json;
};

/// Per-series contention profile: one point per surviving sweep cell plus
/// the thrashing boundary detected from the series' throughput curve.
struct SeriesContention {
  std::vector<ContentionPoint> points;
  obs::ThrashingBoundary boundary;
};

/// The result grid of a figure: per (series, ltot) replicated metrics.
struct FigureData {
  std::vector<int64_t> lock_counts;
  std::vector<Series> series;
  /// values[s][l] = replicated metrics for series s at lock_counts[l].
  /// A cell with `replications == 0` is *missing* (it failed under
  /// --allow_partial, or the run was interrupted before reaching it);
  /// tables print "-" for it and the JSON report omits it.
  std::vector<std::vector<core::ReplicatedMetrics>> values;
  /// Wall-clock seconds `RunFigure` spent executing the whole grid
  /// (engine self-profiling; feeds the JSON report's events/sec).
  double wall_seconds = 0.0;
  /// Cell-level robustness accounting (failures, retries, checkpoint
  /// reuse, interruption).
  core::RunReport report;
  /// Registry carrying the `cells/...` counters for this run (see
  /// `core::PublishCellStats`). Never null after `RunFigure`.
  std::shared_ptr<obs::MetricsRegistry> registry;
  /// Per-series contention profiles; empty unless --profile_contention.
  std::vector<SeriesContention> contention;
};

/// Canonical fingerprint of a figure run: experiment id, seed/reps/tmax/
/// warmup/quick, the lock grid, and each series' label + post-Apply
/// configuration + workload. Guards checkpoint journals against resuming
/// mismatched inputs.
uint64_t FigureFingerprint(const std::string& experiment_id,
                           const BenchArgs& args,
                           const std::vector<int64_t>& lock_counts,
                           const std::vector<Series>& series);

/// Opens the checkpoint journal for this run per `--checkpoint/--resume`,
/// or returns null when checkpointing is off. Exits with an actionable
/// message on open failure (corrupt journal, fingerprint mismatch).
std::unique_ptr<core::CheckpointJournal> OpenJournalOrDie(
    const std::string& experiment_id, const BenchArgs& args,
    uint64_t fingerprint);

/// Builds the cell policy for one series of a run from the standard flags,
/// wiring in the process interrupt flag.
core::CellPolicy MakeCellPolicy(const BenchArgs& args,
                                core::CheckpointJournal* journal, int series,
                                core::RunReport* report);

/// Runs every series over the standard lock sweep (or `lock_counts` when
/// non-empty) under the robustness flags: cells are journaled/replayed
/// with --checkpoint/--resume, retried per --max_cell_retries, timed out
/// per --cell_timeout_s, and contained per --allow_partial. Without a
/// journal, a cell failure aborts the process (a configuration bug in the
/// bench itself); with one, it exits gracefully with a --resume hint. On
/// SIGINT/SIGTERM the partial grid is flushed to BENCH_<id>.partial.json
/// and the process exits 128+signo.
FigureData RunFigure(const std::string& experiment_id,
                     const std::vector<Series>& series, const BenchArgs& args,
                     std::vector<int64_t> lock_counts = {});

/// Prints one table (rows = lock counts, columns = series) for `metric`,
/// then a one-line summary naming each series' best lock count by
/// throughput.
void PrintMetricTable(const FigureData& data, Metric metric,
                      const BenchArgs& args);

/// Prints the per-series throughput-optimal lock count summary.
void PrintOptimaSummary(const FigureData& data);

/// Prints the structured cell-failure roll-up (one line per failed cell,
/// plus retry/timeout totals). No-op when nothing failed.
void PrintFailureSummary(const FigureData& data);

/// Checkpoint/retry/containment wrapper for benches with hand-rolled
/// sweep loops (the db-layer ablations), mirroring what `RunFigure` does
/// for grid benches. Each simulator call becomes one cell keyed
/// (series, point, rep=0).
///
/// Usage:
///   bench::CellRunner cells("ablation_mgl", args, canonical_inputs);
///   for (point loop) {
///     auto r = cells.Run(series, point, ltot, seed, body);
///     // r failed => render a gap (only reachable under --allow_partial)
///   }
///   cells.Finish();
class CellRunner {
 public:
  /// `canonical_inputs` must describe everything beyond the standard args
  /// that determines the results (configs, workloads, engine options); it
  /// extends the journal fingerprint.
  CellRunner(std::string experiment_id, const BenchArgs& args,
             const std::string& canonical_inputs);

  /// Runs one cell under the standard robustness flags. On interrupt, or
  /// on a failure without --allow_partial, exits the process (with a
  /// --resume hint when journaling); under --allow_partial a failure is
  /// recorded and returned so the bench can render a gap.
  Result<core::SimulationMetrics> Run(int series, int point, int64_t ltot,
                                      uint64_t seed,
                                      const core::CellBody& body);

  /// Call once after the sweep loop: exits if an interrupt arrived after
  /// the last cell, then prints the failure/retry summary.
  void Finish();

  const core::RunReport& report() const { return report_; }
  core::CheckpointJournal* journal() { return journal_.get(); }

 private:
  const std::string experiment_id_;
  const BenchArgs& args_;
  std::unique_ptr<core::CheckpointJournal> journal_;
  core::RunReport report_;
};

/// Renders the JSON report (see `WriteJsonReport`) to a string. With
/// `data.wall_seconds` pinned, the bytes are a pure function of the
/// simulated results — the determinism regression test compares them
/// across same-seed runs.
std::string RenderJsonReport(const std::string& experiment_id,
                             const FigureData& data, const BenchArgs& args);

/// Writes `BENCH_<experiment_id>.json` in the working directory: run
/// parameters, the full (series x ltot) metric grid with confidence
/// half-widths and phase decomposition, plus wall time and simulation
/// events/sec. The format is stable enough to diff across runs.
Status WriteJsonReport(const std::string& experiment_id,
                       const FigureData& data, const BenchArgs& args);

/// Calls `WriteJsonReport` when `--json_out` was passed; logs (but does
/// not propagate) failures, so benches can call it unconditionally.
void MaybeWriteJsonReport(const std::string& experiment_id,
                          const FigureData& data, const BenchArgs& args);

/// `--json_out` support for the table-shaped benches (table1, ablations):
/// serializes `tables` (name -> rendered TablePrinter) with the run
/// parameters into `BENCH_<experiment_id>.json`.
void MaybeWriteTableJsonReport(
    const std::string& experiment_id,
    const std::vector<std::pair<std::string, const TablePrinter*>>& tables,
    const BenchArgs& args);

}  // namespace granulock::bench

#endif  // GRANULOCK_BENCH_BENCH_COMMON_H_
