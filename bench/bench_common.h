#ifndef GRANULOCK_BENCH_BENCH_COMMON_H_
#define GRANULOCK_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "model/config.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table.h"
#include "workload/workload.h"

namespace granulock::bench {

/// Command-line arguments shared by every figure/table bench binary, so a
/// sweep can be re-run with different parameters without recompiling.
struct BenchArgs {
  int64_t seed = 42;
  int64_t reps = 1;        ///< replications per sweep point
  double tmax = 10000.0;   ///< simulated time units per run
  double warmup = 0.0;     ///< paper convention: measure from t = 0
  int64_t threads = 1;     ///< worker threads (0 = hardware concurrency)
  bool csv = false;        ///< emit CSV instead of aligned tables
  bool quick = false;      ///< shrink tmax 10x for smoke runs
  bool json_out = false;   ///< also write BENCH_<id>.json (machine-readable)
  bool audit = false;      ///< run deep invariant audits at quiescent points
  std::string log_level = "info";  ///< debug|info|warning|error

  /// `threads` resolved through `core::ResolveThreadCount` by
  /// `ParseArgsOrDie` (so 0 becomes the detected hardware concurrency).
  int resolved_threads = 1;

  /// Registers the flags on `parser`.
  void Register(FlagParser& parser);

  /// Applies tmax/warmup (and the quick-mode shrink) onto `cfg`.
  void Apply(model::SystemConfig* cfg) const;
};

/// Parses argv with the standard bench flags; exits the process on --help
/// or a flag error. Applies `--log_level` to the global log threshold.
/// Returns the parsed arguments.
BenchArgs ParseArgsOrDie(int argc, char** argv);

/// Prints the standard experiment banner (figure id, what the paper shows,
/// and the base configuration).
void PrintBanner(const std::string& experiment_id,
                 const std::string& description,
                 const model::SystemConfig& cfg, const BenchArgs& args);

/// One labelled curve of a figure: a configuration + workload to sweep
/// over the lock-count grid.
struct Series {
  std::string label;
  model::SystemConfig cfg;
  workload::WorkloadSpec spec;
  core::GranularitySimulator::Options options;
};

/// Which metric a table reports.
enum class Metric {
  kThroughput,
  kResponseTime,
  kUsefulIo,
  kUsefulCpu,
  kLockOverheadIo,
  kLockOverheadCpu,
  kLockOverheadTotal,
  kDenialRate,
};

const char* MetricName(Metric metric);
double MetricValue(Metric metric, const core::SimulationMetrics& m);

/// The result grid of a figure: per (series, ltot) replicated metrics.
struct FigureData {
  std::vector<int64_t> lock_counts;
  std::vector<Series> series;
  /// values[s][l] = replicated metrics for series s at lock_counts[l].
  std::vector<std::vector<core::ReplicatedMetrics>> values;
  /// Wall-clock seconds `RunFigure` spent executing the whole grid
  /// (engine self-profiling; feeds the JSON report's events/sec).
  double wall_seconds = 0.0;
};

/// Runs every series over the standard lock sweep (or `lock_counts` when
/// non-empty). Aborts the process on simulation errors (these are
/// configuration bugs in the bench itself).
FigureData RunFigure(const std::vector<Series>& series, const BenchArgs& args,
                     std::vector<int64_t> lock_counts = {});

/// Prints one table (rows = lock counts, columns = series) for `metric`,
/// then a one-line summary naming each series' best lock count by
/// throughput.
void PrintMetricTable(const FigureData& data, Metric metric,
                      const BenchArgs& args);

/// Prints the per-series throughput-optimal lock count summary.
void PrintOptimaSummary(const FigureData& data);

/// Renders the JSON report (see `WriteJsonReport`) to a string. With
/// `data.wall_seconds` pinned, the bytes are a pure function of the
/// simulated results — the determinism regression test compares them
/// across same-seed runs.
std::string RenderJsonReport(const std::string& experiment_id,
                             const FigureData& data, const BenchArgs& args);

/// Writes `BENCH_<experiment_id>.json` in the working directory: run
/// parameters, the full (series x ltot) metric grid with confidence
/// half-widths and phase decomposition, plus wall time and simulation
/// events/sec. The format is stable enough to diff across runs.
Status WriteJsonReport(const std::string& experiment_id,
                       const FigureData& data, const BenchArgs& args);

/// Calls `WriteJsonReport` when `--json_out` was passed; logs (but does
/// not propagate) failures, so benches can call it unconditionally.
void MaybeWriteJsonReport(const std::string& experiment_id,
                          const FigureData& data, const BenchArgs& args);

/// `--json_out` support for the table-shaped benches (table1, ablations):
/// serializes `tables` (name -> rendered TablePrinter) with the run
/// parameters into `BENCH_<experiment_id>.json`.
void MaybeWriteTableJsonReport(
    const std::string& experiment_id,
    const std::vector<std::pair<std::string, const TablePrinter*>>& tables,
    const BenchArgs& args);

}  // namespace granulock::bench

#endif  // GRANULOCK_BENCH_BENCH_COMMON_H_
