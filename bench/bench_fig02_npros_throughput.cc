// Figure 2: effects of number of locks and number of processors on system
// throughput and response time (horizontal partitioning, best placement,
// Table 1 parameters).
//
// Paper shapes to look for:
//  * throughput is convex in the number of locks with the optimum below
//    ~200 locks for every npros;
//  * for a fixed lock count, throughput rises and response time falls with
//    more processors;
//  * the penalty for missing the optimum grows with npros;
//  * response-time curves flatten as npros grows.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  bench::PrintBanner("Figure 2",
                     "Throughput and response time vs number of locks, for "
                     "npros in {1,2,5,10,20,30}",
                     base, args);

  std::vector<bench::Series> series;
  for (int64_t npros : {1, 2, 5, 10, 20, 30}) {
    model::SystemConfig cfg = base;
    cfg.npros = npros;
    series.push_back({StrFormat("npros=%lld", (long long)npros), cfg,
                      workload::WorkloadSpec::Base(cfg),
                      {}});
  }
  const bench::FigureData data = bench::RunFigure("fig02", series, args);
  bench::PrintMetricTable(data, bench::Metric::kThroughput, args);
  bench::PrintMetricTable(data, bench::Metric::kResponseTime, args);
  bench::PrintOptimaSummary(data);
  bench::MaybeWriteJsonReport("fig02", data, args);
  return 0;
}
