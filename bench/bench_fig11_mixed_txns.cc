// Figure 11: effects of number of locks and granule placement on
// throughput with a mixed workload — 80% small transactions (maxtransize
// 50) and 20% large transactions (maxtransize 500) — at npros = 30.
//
// Paper shapes: the mixed curves fall between the all-small (Figure 10)
// and all-large (Figure 9) extremes, but even 20% large transactions drag
// throughput down substantially: at ltot = dbsize the mix achieves only a
// small fraction of the all-small workload's throughput.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.npros = 30;
  base.maxtransize = 500;  // upper bound across the mixture
  bench::PrintBanner("Figure 11",
                     "Throughput vs number of locks and placement, mixed "
                     "workload (80% maxtransize=50 + 20% maxtransize=500), "
                     "npros=30",
                     base, args);

  std::vector<bench::Series> series;
  for (model::Placement placement :
       {model::Placement::kBest, model::Placement::kRandom,
        model::Placement::kWorst}) {
    workload::WorkloadSpec spec;
    spec.sizes = workload::MakeSmallLargeMix(0.8, 50, 500);
    spec.placement = placement;
    spec.partitioning = workload::PartitioningMethod::kHorizontal;
    series.push_back(
        {model::PlacementToString(placement), base, spec, {}});
  }
  const bench::FigureData data = bench::RunFigure("fig11", series, args);
  bench::PrintMetricTable(data, bench::Metric::kThroughput, args);
  bench::PrintOptimaSummary(data);

  // The paper's §3.6 comparison point: throughput at ltot = dbsize for the
  // mix vs the all-small and all-large workloads (best placement).
  {
    model::SystemConfig cfg = base;
    cfg.ltot = cfg.dbsize;
    args.Apply(&cfg);
    auto run = [&](std::shared_ptr<const workload::SizeDistribution> sizes) {
      workload::WorkloadSpec spec;
      spec.sizes = std::move(sizes);
      auto result = core::RunReplicated(cfg, spec,
                                        static_cast<uint64_t>(args.seed),
                                        static_cast<int>(args.reps));
      return result.ok() ? result->mean.throughput : -1.0;
    };
    std::printf("at ltot = dbsize (best placement):\n");
    std::printf("  all small (maxtransize=50):   %.5g\n",
                run(std::make_shared<workload::UniformSizeDistribution>(50)));
    std::printf("  all large (maxtransize=500):  %.5g\n",
                run(std::make_shared<workload::UniformSizeDistribution>(500)));
    std::printf("  80/20 mix:                    %.5g\n",
                run(workload::MakeSmallLargeMix(0.8, 50, 500)));
  }
  bench::MaybeWriteJsonReport("fig11", data, args);
  return 0;
}
