// Policy shootout: contention-resolution policies under rising load.
//
// The paper assumes conservative locking ("deadlock is impossible", §2)
// and never has to choose a deadlock-handling policy. The incremental
// claim-as-needed engine does, and Thomasian's survey (arXiv 2404.02276)
// shows that the choice — together with restart throttling and admission
// control — is what decides whether a locking system degrades gracefully
// or collapses past its thrashing boundary. This bench sweeps every
// contention policy across the multiprogramming level (MPL = ntrans) on a
// random-access workload where the default detect-and-abort-the-requester
// policy demonstrably thrashes.
//
// What to look for: the `detect` baseline peaks and then collapses as MPL
// grows (restart storms); the timestamp policies (wound_wait, wait_die)
// and wait_depth push the thrashing boundary later or avoid it entirely;
// and `detect+admission` holds throughput flat past the baseline's
// collapse point by contracting the effective MPL when the blocked
// fraction crosses its gate. tools/check_policy_shootout.py gates these
// claims in CI against BENCH_policy_shootout.json.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/bench_common.h"
#include "db/incremental_simulator.h"
#include "obs/json_writer.h"
#include "sim/stats.h"
#include "util/fileio.h"
#include "util/random.h"

namespace {

using namespace granulock;

constexpr const char* kExperimentId = "policy_shootout";

/// One labelled curve: a full contention configuration swept over MPL.
struct PolicySeries {
  std::string label;
  db::ContentionOptions contention;
};

/// Per-(series, MPL) aggregate, merged post-join in grid order exactly
/// like core::SweepLockCounts merges replications.
struct PointResult {
  core::ReplicatedMetrics metrics;  // replications == 0 => missing cell
};

std::string DescribeSeries(const PolicySeries& s) {
  return StrFormat(
      "%s;policy=%s;bf=%.17g;bc=%.17g;mr=%lld;adm=%d", s.label.c_str(),
      db::ContentionPolicyName(s.contention.policy),
      s.contention.governor.backoff_factor, s.contention.governor.max_backoff,
      (long long)s.contention.governor.max_restarts,
      s.contention.admission.enabled ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace granulock;
  bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);

  // A random-access workload tuned so the baseline policy thrashes inside
  // the MPL grid: moderate granule count and mid-size transactions make
  // hold-and-wait cycles (and therefore restart storms) common once the
  // MPL passes the knee.
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.ltot = 100;
  base.maxtransize = 20;
  // Closed system WITH user think time: a lone transaction fork-joins its
  // stages across every node, so without think time MPL 1-2 already
  // saturates the hardware and no MPL sweep can show a rising limb. Think
  // time gives each MPL slot idle periods to fill — throughput climbs
  // with MPL until lock conflicts (and restart storms) bend it over,
  // which is exactly the knee the policies differ on.
  base.think_time = 5.0;
  const std::vector<int64_t> mpl_grid = {2, 4, 8, 12, 16, 24, 32, 48, 64};

  bench::PrintBanner(
      "Policy shootout",
      "Contention-resolution policies x multiprogramming level on a "
      "random-access (worst placement) workload under incremental 2PL",
      base, args);

  // Series: every victim policy with the flag-configured governor, plus
  // the detect baseline guarded by the admission controller. The governor
  // defaults are the bit-identical historical ones, so `detect` IS the
  // pre-policy engine.
  std::vector<PolicySeries> series;
  for (int k = 0; k < db::kNumContentionPolicies; ++k) {
    PolicySeries s;
    s.contention = args.Contention();
    s.contention.policy = static_cast<db::ContentionPolicyKind>(k);
    s.contention.admission.enabled = false;
    s.label = db::ContentionPolicyName(s.contention.policy);
    series.push_back(std::move(s));
  }
  {
    PolicySeries s;
    s.contention = args.Contention();
    s.contention.policy = db::ContentionPolicyKind::kDetectRequester;
    s.contention.admission.enabled = true;
    s.label = "detect+admission";
    series.push_back(std::move(s));
  }

  // Journal fingerprint: everything that determines the grid's results.
  std::string canonical = std::string(kExperimentId) +
                          StrFormat("|seed=%lld|reps=%lld|tmax=%.17g|"
                                    "warmup=%.17g|q=%d",
                                    (long long)args.seed, (long long)args.reps,
                                    args.tmax, args.warmup,
                                    args.quick ? 1 : 0);
  canonical += "|mpl=";
  for (int64_t mpl : mpl_grid) canonical += StrFormat("%lld,", (long long)mpl);
  {
    model::SystemConfig fp_cfg = base;
    args.Apply(&fp_cfg);
    canonical += "|cfg=" + fp_cfg.ToString() + ";worst_placement";
  }
  for (const PolicySeries& s : series) {
    canonical += "|series=" + DescribeSeries(s);
  }
  std::unique_ptr<core::CheckpointJournal> journal = bench::OpenJournalOrDie(
      kExperimentId, args, core::FingerprintString(canonical));

  // Replication seeds, derived exactly as core::DeriveReplicationSeeds
  // does — computed up front so cells can run on any worker in any order
  // while staying bit-identical to a serial run.
  const int reps = static_cast<int>(args.reps);
  std::vector<uint64_t> seeds;
  {
    Rng seeder(static_cast<uint64_t>(args.seed));
    for (int r = 0; r < reps; ++r) {
      seeds.push_back(seeder.Fork(static_cast<uint64_t>(r)).NextUint64());
    }
  }

  // Fan the whole (series x MPL x replication) grid out as one batch.
  const size_t num_series = series.size();
  const size_t num_points = mpl_grid.size();
  const size_t num_reps = static_cast<size_t>(reps);
  core::RunReport report;
  std::vector<core::CellPolicy> policies;
  policies.reserve(num_series);
  for (size_t s = 0; s < num_series; ++s) {
    policies.push_back(bench::MakeCellPolicy(args, journal.get(),
                                             static_cast<int>(s), &report));
  }
  std::vector<core::CellOutcome> outcomes(num_series * num_points * num_reps);
  auto cell_index = [&](size_t s, size_t p, size_t r) {
    return (s * num_points + p) * num_reps + r;
  };
  auto run_cell = [&](size_t i) {
    const size_t s = i / (num_points * num_reps);
    const size_t p = (i / num_reps) % num_points;
    const size_t r = i % num_reps;
    model::SystemConfig cfg = base;
    cfg.ntrans = mpl_grid[p];
    args.Apply(&cfg);
    workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
    spec.placement = model::Placement::kWorst;
    const core::CellKey key{static_cast<int>(s), static_cast<int>(p),
                            static_cast<int>(r)};
    outcomes[i] = core::RunCell(
        policies[s], key, seeds[r], [&](const fault::CellWatchdog*) {
          db::IncrementalSimulator::Options opt;
          opt.contention = series[s].contention;
          return db::IncrementalSimulator::RunOnce(cfg, spec, seeds[r], opt);
        });
  };
  core::ParallelRunner runner(args.resolved_threads);
  if (runner.threads() > 1) {
    runner.ParallelFor(outcomes.size(), run_cell);
  } else {
    for (size_t i = 0; i < outcomes.size(); ++i) {
      run_cell(i);
      const core::CellOutcome& o = outcomes[i];
      if (o.result.ok()) continue;
      if (o.result.status().code() == StatusCode::kCancelled ||
          !args.allow_partial) {
        break;
      }
    }
  }

  // Post-join scan in grid index order: accounting, per-point merge, and
  // deterministic failure selection (same contract as SweepLockCounts).
  std::vector<std::vector<PointResult>> grid(
      num_series, std::vector<PointResult>(num_points));
  Status first_failure;
  bool interrupted = bench::Interrupted();
  for (size_t s = 0; s < num_series; ++s) {
    for (size_t p = 0; p < num_points; ++p) {
      core::ReplicatedMetrics merged;
      sim::RunningStat tp_stat;
      sim::RunningStat rt_stat;
      for (size_t r = 0; r < num_reps; ++r) {
        const core::CellOutcome& o = outcomes[cell_index(s, p, r)];
        if (o.from_checkpoint) {
          ++report.cells_from_checkpoint;
          ++report.cells_completed;
        } else if (o.ran) {
          if (o.attempts > 1) report.cell_retries += o.attempts - 1;
          if (o.result.ok()) {
            ++report.cells_completed;
          } else if (o.result.status().code() == StatusCode::kCancelled) {
            interrupted = true;
            continue;
          } else {
            if (o.timed_out) ++report.cells_timed_out;
            report.failures.push_back(core::CellFailure{
                static_cast<int>(s), static_cast<int>(p), mpl_grid[p],
                static_cast<int>(r), o.attempts, o.timed_out,
                o.result.status()});
            if (first_failure.ok()) first_failure = o.result.status();
            continue;
          }
        } else {
          continue;  // fail-fast stopped before reaching this cell
        }
        merged.mean.Accumulate(*o.result);
        tp_stat.Add(o.result->throughput);
        rt_stat.Add(o.result->response_time);
        ++merged.replications;
      }
      if (merged.replications > 0) {
        merged.mean.FinalizeMeans(merged.replications);
        merged.throughput_hw95 = sim::ConfidenceHalfWidth(
            tp_stat.count(), tp_stat.StdDev(), 0.95);
        merged.response_hw95 = sim::ConfidenceHalfWidth(
            rt_stat.count(), rt_stat.StdDev(), 0.95);
      }
      grid[s][p].metrics = merged;
    }
  }
  if (interrupted) {
    if (!first_failure.ok()) {
      std::fprintf(stderr,
                   "note: a cell had already failed before the interrupt: "
                   "%s\n",
                   first_failure.ToString().c_str());
    }
    if (journal != nullptr) {
      std::fprintf(stderr,
                   "interrupted: completed cells are journaled in %s; rerun "
                   "with --resume to finish\n",
                   journal->path().c_str());
    } else {
      std::fprintf(stderr,
                   "interrupted (hint: --checkpoint makes this resumable)\n");
    }
    return bench::InterruptExitCode();
  }
  if (!first_failure.ok() && !args.allow_partial) {
    std::fprintf(stderr, "cell failed: %s\n",
                 first_failure.ToString().c_str());
    if (journal != nullptr) {
      std::fprintf(stderr,
                   "completed cells are journaled in %s; rerun with --resume "
                   "to retry only the failed cells\n",
                   journal->path().c_str());
    }
    return 1;
  }

  // Per-series thrashing boundary over the MPL axis.
  std::vector<obs::ThrashingBoundary> boundaries(num_series);
  for (size_t s = 0; s < num_series; ++s) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (size_t p = 0; p < num_points; ++p) {
      if (grid[s][p].metrics.replications == 0) continue;
      xs.push_back(static_cast<double>(mpl_grid[p]));
      ys.push_back(grid[s][p].metrics.mean.throughput);
    }
    boundaries[s] = obs::DetectThrashingBoundary(xs, ys);
  }

  // ---- tables ----------------------------------------------------------
  const auto print_table = [&](const char* title, auto value) {
    std::printf("--- %s ---\n", title);
    std::vector<std::string> header{"mpl"};
    for (const PolicySeries& s : series) header.push_back(s.label);
    TablePrinter table(std::move(header));
    for (size_t p = 0; p < num_points; ++p) {
      std::vector<std::string> row;
      row.push_back(StrFormat("%lld", (long long)mpl_grid[p]));
      for (size_t s = 0; s < num_series; ++s) {
        if (grid[s][p].metrics.replications == 0) {
          row.push_back("-");
        } else {
          row.push_back(value(grid[s][p].metrics.mean));
        }
      }
      table.AddRow(std::move(row));
    }
    if (args.csv) {
      table.PrintCsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    std::printf("\n");
  };
  print_table("throughput (txn/unit)", [](const core::SimulationMetrics& m) {
    return StrFormat("%.5g", m.throughput);
  });
  print_table("response p95/p99", [](const core::SimulationMetrics& m) {
    return StrFormat("%.4g/%.4g", m.response_p95, m.response_p99);
  });
  print_table("aborts (restarted+sacrificed)",
              [](const core::SimulationMetrics& m) {
                return StrFormat("%lld (%lld+%lld)",
                                 (long long)m.deadlock_aborts,
                                 (long long)m.txn_restarts,
                                 (long long)m.txn_sacrificed);
              });
  std::printf("thrashing boundary per policy (MPL axis):\n");
  for (size_t s = 0; s < num_series; ++s) {
    const obs::ThrashingBoundary& b = boundaries[s];
    if (b.found) {
      std::printf("  %-22s boundary at MPL %g (peak %.5g at MPL %g, "
                  "collapse %.1f%%)\n",
                  series[s].label.c_str(), b.boundary_x, b.peak_y, b.peak_x,
                  100.0 * b.collapse_fraction);
    } else {
      std::printf("  %-22s no boundary found (peak %.5g at MPL %g)\n",
                  series[s].label.c_str(), b.peak_y, b.peak_x);
    }
  }
  std::printf("\n");
  if (!report.failures.empty() || report.cell_retries > 0) {
    std::printf("cell failure summary: %lld failed, %lld retries, %lld timed "
                "out, %lld completed\n",
                (long long)report.failures.size(),
                (long long)report.cell_retries,
                (long long)report.cells_timed_out,
                (long long)report.cells_completed);
    for (const core::CellFailure& f : report.failures) {
      std::printf("  series '%s' mpl=%lld rep=%d: %s (%d attempt%s%s)\n",
                  series[static_cast<size_t>(f.series)].label.c_str(),
                  (long long)f.ltot, f.rep, f.status.ToString().c_str(),
                  f.attempts, f.attempts == 1 ? "" : "s",
                  f.timed_out ? ", timed out" : "");
    }
    std::printf("\n");
  }

  // ---- JSON report -----------------------------------------------------
  // No wall-clock anywhere: the bytes are a pure function of the simulated
  // results, so the CI threads-1-vs-8 and baseline comparisons can demand
  // tolerance 0.
  if (args.json_out) {
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.BeginObject();
    w.Key("experiment").Value(std::string(kExperimentId));
    w.Key("params").BeginObject();
    w.Key("seed").Value(args.seed);
    w.Key("reps").Value(args.reps);
    w.Key("tmax").Value(args.tmax);
    w.Key("warmup").Value(args.warmup);
    w.Key("quick").Value(args.quick);
    w.EndObject();
    w.Key("mpl_grid").BeginArray();
    for (int64_t mpl : mpl_grid) w.Value(mpl);
    w.EndArray();
    w.Key("series").BeginArray();
    for (size_t s = 0; s < num_series; ++s) {
      w.BeginObject();
      w.Key("label").Value(series[s].label);
      w.Key("policy").Value(
          std::string(db::ContentionPolicyName(series[s].contention.policy)));
      w.Key("admission").Value(series[s].contention.admission.enabled);
      w.Key("points").BeginArray();
      for (size_t p = 0; p < num_points; ++p) {
        const core::ReplicatedMetrics& rep = grid[s][p].metrics;
        if (rep.replications == 0) continue;  // missing cell
        const core::SimulationMetrics& m = rep.mean;
        w.BeginObject();
        // "ltot" carries the MPL so tools/compare_bench.py (which keys
        // points by (label, ltot)) works unchanged; "mpl" is the honest
        // name for readers.
        w.Key("ltot").Value(mpl_grid[p]);
        w.Key("mpl").Value(mpl_grid[p]);
        w.Key("throughput").Value(m.throughput);
        w.Key("throughput_hw95").Value(rep.throughput_hw95);
        w.Key("response_time").Value(m.response_time);
        w.Key("response_hw95").Value(rep.response_hw95);
        w.Key("response_p95").Value(m.response_p95);
        w.Key("response_p99").Value(m.response_p99);
        w.Key("denial_rate").Value(m.denial_rate);
        w.Key("deadlock_aborts").Value(m.deadlock_aborts);
        w.Key("txn_restarts").Value(m.txn_restarts);
        w.Key("txn_sacrificed").Value(m.txn_sacrificed);
        w.Key("avg_admission_held").Value(m.avg_admission_held);
        w.Key("events_executed").Value(m.events_executed);
        w.Key("phase_pending_wait").Value(m.phase_pending_wait);
        w.Key("phase_lock_wait").Value(m.phase_lock_wait);
        w.Key("phase_io_service").Value(m.phase_io_service);
        w.Key("phase_cpu_service").Value(m.phase_cpu_service);
        w.Key("phase_sync_wait").Value(m.phase_sync_wait);
        w.EndObject();
      }
      w.EndArray();
      w.Key("thrashing_boundary").BeginObject();
      w.Key("found").Value(boundaries[s].found);
      w.Key("boundary_mpl").Value(boundaries[s].boundary_x);
      w.Key("peak_mpl").Value(boundaries[s].peak_x);
      w.Key("peak_throughput").Value(boundaries[s].peak_y);
      w.Key("collapse_fraction").Value(boundaries[s].collapse_fraction);
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    w.Key("failures").BeginArray();
    for (const core::CellFailure& f : report.failures) {
      w.BeginObject();
      w.Key("series").Value(series[static_cast<size_t>(f.series)].label);
      w.Key("mpl").Value(f.ltot);
      w.Key("rep").Value(static_cast<int64_t>(f.rep));
      w.Key("attempts").Value(static_cast<int64_t>(f.attempts));
      w.Key("timed_out").Value(f.timed_out);
      w.Key("status").Value(StatusCodeToString(f.status.code()));
      w.Key("message").Value(f.status.message());
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    const std::string path = StrFormat("BENCH_%s.json", kExperimentId);
    const Status written = WriteFileAtomic(path, os.str() + "\n");
    if (written.ok()) {
      std::printf("wrote %s\n", path.c_str());
    } else {
      GRANULOCK_LOG(Error) << "JSON report: " << written;
    }
  }
  return 0;
}
