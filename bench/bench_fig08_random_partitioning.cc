// Figure 8: effects of number of locks and number of processors on
// throughput under RANDOM partitioning (a transaction splits into
// PU ~ U{1..npros} sub-transactions on a random processor subset instead
// of all npros).
//
// Paper shapes: the impact of the number of processors does not depend on
// the partitioning method, but every random-partitioning curve sits below
// its horizontal-partitioning counterpart in Figure 2 — horizontal
// partitioning maximizes the fan-out, so sub-transactions are smaller and
// queueing/synchronization times shrink.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  bench::PrintBanner("Figure 8",
                     "Throughput vs number of locks under random "
                     "partitioning, for npros in {1,2,5,10,20,30}",
                     base, args);

  std::vector<bench::Series> series;
  for (int64_t npros : {1, 2, 5, 10, 20, 30}) {
    model::SystemConfig cfg = base;
    cfg.npros = npros;
    workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
    spec.partitioning = workload::PartitioningMethod::kRandom;
    series.push_back(
        {StrFormat("npros=%lld", (long long)npros), cfg, spec, {}});
  }
  const bench::FigureData data = bench::RunFigure("fig08", series, args);
  bench::PrintMetricTable(data, bench::Metric::kThroughput, args);
  bench::PrintOptimaSummary(data);
  bench::MaybeWriteJsonReport("fig08", data, args);
  return 0;
}
