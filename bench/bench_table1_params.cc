// Table 1 of the paper: the input parameter set used by the base
// experiments (§3.1). This bench prints the parameters along with the
// interpretation the paper attaches to each, and validates them.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  const model::SystemConfig cfg = model::SystemConfig::Table1Defaults();
  bench::PrintBanner(
      "Table 1", "Input parameters used in the simulation experiments", cfg,
      args);

  TablePrinter table({"parameter", "value", "interpretation"});
  table.AddRow({"dbsize", "5000",
                "accessible entities (e.g. 5 MB at 1 KiB/entity)"});
  table.AddRow({"ltot", "1 .. dbsize", "number of locks (swept)"});
  table.AddRow({"ntrans", "10", "transactions in the closed system"});
  table.AddRow({"maxtransize", "500",
                "max transaction size; sizes ~ U{1..maxtransize}"});
  table.AddRow({"cputime", "0.05", "CPU time per entity (~25 ms)"});
  table.AddRow({"iotime", "0.2", "I/O time per entity (~100 ms, rd+wr)"});
  table.AddRow({"lcputime", "0.01", "CPU time per lock (~5 ms)"});
  table.AddRow({"liotime", "0.2", "I/O time per lock (~100 ms)"});
  table.AddRow({"npros", "1,2,5,10,20,30", "number of processors (swept)"});
  table.AddRow({"tmax", "10000", "simulated time units per run"});
  if (args.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }

  const Status status = cfg.Validate();
  std::printf("\nvalidation: %s\n", status.ToString().c_str());
  bench::MaybeWriteTableJsonReport("table1", {{"params", &table}}, args);
  return status.ok() ? 0 : 1;
}
