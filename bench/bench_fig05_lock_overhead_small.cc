// Figure 5: lock overhead vs number of locks and number of processors with
// small transactions (maxtransize = 50).
//
// Paper shapes: as Figure 4, but the concave left end is more pronounced,
// and in the 1..100 locks region small transactions show *more* overhead
// than large ones because their higher completion rate drives a higher
// lock-request rate.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.maxtransize = 50;
  bench::PrintBanner("Figure 5",
                     "Lock overhead vs number of locks and processors, "
                     "small transactions (maxtransize=50)",
                     base, args);

  std::vector<bench::Series> series;
  for (int64_t npros : {1, 2, 5, 10, 20, 30}) {
    model::SystemConfig cfg = base;
    cfg.npros = npros;
    series.push_back({StrFormat("npros=%lld", (long long)npros), cfg,
                      workload::WorkloadSpec::Base(cfg),
                      {}});
  }
  const bench::FigureData data = bench::RunFigure("fig05", series, args);
  bench::PrintMetricTable(data, bench::Metric::kLockOverheadTotal, args);
  bench::PrintMetricTable(data, bench::Metric::kDenialRate, args);
  bench::MaybeWriteJsonReport("fig05", data, args);
  return 0;
}
