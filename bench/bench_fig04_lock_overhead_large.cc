// Figure 4: lock overhead (time spent requesting/setting/releasing locks)
// vs number of locks and number of processors, with large transactions
// (maxtransize = 500).
//
// Paper shapes: overhead rises substantially past ~200 locks; the curves
// are concave at the left end (a single lock forces a high request-failure
// rate, so even coarse granularity pays repeated request costs); the
// overhead differences across npros shrink because lock work is shared.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.maxtransize = 500;
  bench::PrintBanner("Figure 4",
                     "Lock overhead vs number of locks and processors, "
                     "large transactions (maxtransize=500)",
                     base, args);

  std::vector<bench::Series> series;
  for (int64_t npros : {1, 2, 5, 10, 20, 30}) {
    model::SystemConfig cfg = base;
    cfg.npros = npros;
    series.push_back({StrFormat("npros=%lld", (long long)npros), cfg,
                      workload::WorkloadSpec::Base(cfg),
                      {}});
  }
  const bench::FigureData data = bench::RunFigure("fig04", series, args);
  bench::PrintMetricTable(data, bench::Metric::kLockOverheadTotal, args);
  bench::PrintMetricTable(data, bench::Metric::kDenialRate, args);
  bench::MaybeWriteJsonReport("fig04", data, args);
  return 0;
}
