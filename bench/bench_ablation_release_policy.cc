// Ablation: modelling decisions the paper leaves implicit (DESIGN.md §4).
//
//  * lock-manager serialization — does processing one lock request at a
//    time (our default reading of "the transaction at the head of the
//    pending queue is removed") change the conclusions vs a pipelined lock
//    manager?
//  * blocked-transaction requeue policy — released transactions appended
//    to the pending queue (FIFO, default) vs prepended (retry first).
//
// What to look for: the paper's §3.7 cites a companion study showing that
// sub-transaction scheduling policy has only a marginal effect on locking
// granularity; the same should hold for these two policies — all four
// curves should be close, with the same optimum region.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.npros = 10;
  bench::PrintBanner("Ablation: scheduling policies",
                     "Lock-manager serialization x blocked-requeue policy "
                     "(npros=10, best placement)",
                     base, args);

  std::vector<bench::Series> series;
  for (bool serialize : {true, false}) {
    for (bool tail : {true, false}) {
      core::GranularitySimulator::Options options;
      options.serialize_lock_manager = serialize;
      options.requeue_blocked_at_tail = tail;
      series.push_back({StrFormat("%s/%s", serialize ? "serial" : "pipelined",
                                  tail ? "tail" : "head"),
                        base, workload::WorkloadSpec::Base(base), options});
    }
  }
  const bench::FigureData data =
      bench::RunFigure("ablation_release_policy", series, args);
  bench::PrintMetricTable(data, bench::Metric::kThroughput, args);
  bench::PrintOptimaSummary(data);
  bench::MaybeWriteJsonReport("ablation_release_policy", data, args);
  return 0;
}
