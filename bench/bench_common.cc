#include "bench/bench_common.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "core/fault.h"
#include "obs/json_writer.h"
#include "sim/invariants.h"
#include "util/fileio.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/strings.h"
#include "util/wall_clock.h"

namespace granulock::bench {

void BenchArgs::Register(FlagParser& parser) {
  parser.AddInt64("seed", &seed, 42, "base PRNG seed");
  parser.AddInt64("reps", &reps, 1, "replications per sweep point");
  parser.AddDouble("tmax", &tmax, 10000.0, "simulated time units per run");
  parser.AddDouble("warmup", &warmup, 0.0,
                   "time units discarded before measuring");
  parser.AddInt64("threads", &threads, 1,
                  "worker threads for (sweep point x replication) fan-out; "
                  "0 = hardware concurrency. Results are bit-identical for "
                  "any thread count");
  parser.AddBool("csv", &csv, false, "emit CSV instead of aligned tables");
  parser.AddBool("quick", &quick, false, "shrink tmax 10x for a smoke run");
  parser.AddBool("json_out", &json_out, false,
                 "also write BENCH_<id>.json with the full result grid");
  parser.AddBool("profile_contention", &profile_contention, false,
                 "re-run each surviving sweep cell with the contention "
                 "profiler attached: per-granule wait attribution, "
                 "mode-conflict matrix, blocking-chain depths, waits-for "
                 "snapshots (BENCH_<id>.waitsfor.dot), the contention time "
                 "series (BENCH_<id>.contention.csv), and the thrashing "
                 "boundary; adds a 'contention' section to --json_out");
  parser.AddBool("audit", &audit, false,
                 "run deep invariant audits at every quiescent point "
                 "(slower; aborts on the first violated invariant)");
  parser.AddString("log_level", &log_level, "info",
                   "minimum log severity: debug|info|warning|error");
  parser.AddBool("checkpoint", &checkpoint, false,
                 "journal each completed (point x replication) cell to "
                 "BENCH_<id>.ckpt.jsonl as the run goes");
  parser.AddBool("resume", &resume, false,
                 "reuse cells journaled by an earlier interrupted run "
                 "(implies --checkpoint); results are byte-identical to an "
                 "uninterrupted run");
  parser.AddString("checkpoint_path", &checkpoint_path, "",
                   "override the checkpoint journal path");
  parser.AddInt64("max_cell_retries", &max_cell_retries, 0,
                  "re-run a failed cell up to this many extra times with "
                  "the same derived seed");
  parser.AddBool("allow_partial", &allow_partial, false,
                 "keep running past failed cells; the report carries a "
                 "structured failure summary instead of aborting");
  parser.AddDouble("cell_timeout_s", &cell_timeout_s, 0.0,
                   "wall-clock budget per cell attempt, enforced at "
                   "deterministic simulated-time boundaries; 0 = none");
  parser.AddString("fault_inject", &fault_inject, "",
                   "arm a deterministic fault: <point>@<hit>[xN][:key=<u64>] "
                   "with points cell_throw, cell_timeout, cell_audit_fail, "
                   "write_short_write, signal_mid_sweep, policy_victim_flip");
  parser.AddString("policy", &policy, "detect",
                   "contention-resolution policy for the incremental "
                   "engine: detect (requester aborts on a cycle; the "
                   "bit-identical default), detect_fewest_locks, "
                   "detect_youngest, wound_wait, wait_die, wait_depth");
  parser.AddDouble("backoff_factor", &backoff_factor, 1.0,
                   "multiply the restart-backoff mean by this per restart "
                   "of the same transaction (>= 1; 1 = fixed mean, the "
                   "historical behavior)");
  parser.AddDouble("backoff_cap", &backoff_cap, 0.0,
                   "upper bound on the grown backoff mean; 0 = uncapped");
  parser.AddInt64("max_restarts", &max_restarts, -1,
                  "per-transaction restart budget; a victim past it is "
                  "sacrificed (terminal abort, replaced by a fresh "
                  "transaction); -1 = unlimited");
  parser.AddBool("admission", &admission, false,
                 "enable the MPL admission controller (blocked-fraction "
                 "feedback with hysteretic recovery) in the incremental "
                 "engine");
}

db::ContentionOptions BenchArgs::Contention() const {
  db::ContentionOptions out;
  const Result<db::ContentionPolicyKind> kind =
      db::ParseContentionPolicy(policy);
  GRANULOCK_CHECK(kind.ok()) << kind.status();  // ParseArgsOrDie validated
  out.policy = *kind;
  out.governor.backoff_factor = backoff_factor;
  out.governor.max_backoff = backoff_cap;
  out.governor.max_restarts = max_restarts;
  out.admission.enabled = admission;
  return out;
}

bool BenchArgs::ContentionIsDefault() const {
  return policy == "detect" && backoff_factor == 1.0 && backoff_cap == 0.0 &&
         max_restarts == -1 && !admission;
}

std::string BenchArgs::DescribeContention() const {
  return StrFormat("policy=%s;bf=%.17g;bc=%.17g;mr=%lld;adm=%d",
                   policy.c_str(), backoff_factor, backoff_cap,
                   (long long)max_restarts, admission ? 1 : 0);
}

void BenchArgs::Apply(model::SystemConfig* cfg) const {
  cfg->tmax = quick ? tmax / 10.0 : tmax;
  cfg->warmup = quick ? warmup / 10.0 : warmup;
}

std::string BenchArgs::JournalPath(const std::string& experiment_id) const {
  if (!checkpoint_path.empty()) return checkpoint_path;
  return StrFormat("BENCH_%s.ckpt.jsonl", experiment_id.c_str());
}

namespace {

// Set from the signal handlers; read by cells at watchdog polls and by the
// figure driver between cells. Async-signal-safe: the handler only stores
// to lock-free atomics.
std::atomic<bool> g_interrupt{false};
std::atomic<int> g_signal{0};

void OnTerminationSignal(int sig) {
  g_interrupt.store(true, std::memory_order_relaxed);
  g_signal.store(sig, std::memory_order_relaxed);
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  if (name == "debug") {
    *out = LogLevel::kDebug;
  } else if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "warning") {
    *out = LogLevel::kWarning;
  } else if (name == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

}  // namespace

BenchArgs ParseArgsOrDie(int argc, char** argv) {
  BenchArgs args;
  FlagParser parser;
  args.Register(parser);
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kFailedPrecondition) {
    std::exit(0);  // --help already printed usage
  }
  if (!status.ok()) {
    std::cerr << status << "\n" << parser.UsageString(argv[0]);
    std::exit(1);
  }
  LogLevel level = LogLevel::kInfo;
  if (!ParseLogLevel(args.log_level, &level)) {
    std::cerr << "unknown --log_level '" << args.log_level
              << "' (expected debug|info|warning|error)\n";
    std::exit(1);
  }
  SetLogThreshold(level);
  const Result<int> resolved = core::ResolveThreadCount(args.threads);
  if (!resolved.ok()) {
    std::cerr << resolved.status() << "\n" << parser.UsageString(argv[0]);
    std::exit(1);
  }
  args.resolved_threads = *resolved;
  const Result<db::ContentionPolicyKind> kind =
      db::ParseContentionPolicy(args.policy);
  if (!kind.ok()) {
    std::cerr << kind.status() << "\n" << parser.UsageString(argv[0]);
    std::exit(1);
  }
  {
    const db::ContentionOptions contention = args.Contention();
    const Status valid = db::ValidateContentionOptions(contention.governor,
                                                       contention.admission);
    if (!valid.ok()) {
      std::cerr << valid << "\n" << parser.UsageString(argv[0]);
      std::exit(1);
    }
  }
  sim::invariants::SetDeepAudit(args.audit);
  if (args.audit) {
    GRANULOCK_LOG(Info) << "--audit: deep invariant audits enabled";
  }
  if (args.resume) args.checkpoint = true;
  if (!args.fault_inject.empty()) {
    const Status armed =
        fault::Injector::Global().ArmFromFlag(args.fault_inject);
    if (!armed.ok()) {
      std::cerr << armed << "\n" << parser.UsageString(argv[0]);
      std::exit(1);
    }
    GRANULOCK_LOG(Warning) << "--fault_inject=" << args.fault_inject
                           << ": deterministic fault armed";
  }
  std::signal(SIGINT, OnTerminationSignal);
  std::signal(SIGTERM, OnTerminationSignal);
  return args;
}

const std::atomic<bool>* InterruptFlag() { return &g_interrupt; }

bool Interrupted() {
  return g_interrupt.load(std::memory_order_relaxed);
}

int InterruptExitCode() {
  return 128 + g_signal.load(std::memory_order_relaxed);
}

void PrintBanner(const std::string& experiment_id,
                 const std::string& description,
                 const model::SystemConfig& cfg, const BenchArgs& args) {
  std::printf("=== %s ===\n", experiment_id.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("base config: %s\n", cfg.ToString().c_str());
  std::printf("seed=%lld reps=%lld threads=%d\n\n", (long long)args.seed,
              (long long)args.reps, args.resolved_threads);
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kThroughput:
      return "throughput (txn/unit)";
    case Metric::kResponseTime:
      return "response time (units)";
    case Metric::kUsefulIo:
      return "useful I/O time per processor";
    case Metric::kUsefulCpu:
      return "useful CPU time per processor";
    case Metric::kLockOverheadIo:
      return "lock I/O overhead (lockios)";
    case Metric::kLockOverheadCpu:
      return "lock CPU overhead (lockcpus)";
    case Metric::kLockOverheadTotal:
      return "total lock overhead (lockios + lockcpus)";
    case Metric::kDenialRate:
      return "lock denial rate";
  }
  return "?";
}

double MetricValue(Metric metric, const core::SimulationMetrics& m) {
  switch (metric) {
    case Metric::kThroughput:
      return m.throughput;
    case Metric::kResponseTime:
      return m.response_time;
    case Metric::kUsefulIo:
      return m.usefulios;
    case Metric::kUsefulCpu:
      return m.usefulcpus;
    case Metric::kLockOverheadIo:
      return m.lockios;
    case Metric::kLockOverheadCpu:
      return m.lockcpus;
    case Metric::kLockOverheadTotal:
      return m.lockios + m.lockcpus;
    case Metric::kDenialRate:
      return m.denial_rate;
  }
  return 0.0;
}

uint64_t FigureFingerprint(const std::string& experiment_id,
                           const BenchArgs& args,
                           const std::vector<int64_t>& lock_counts,
                           const std::vector<Series>& series) {
  std::string canonical = experiment_id;
  canonical += StrFormat("|seed=%lld|reps=%lld|tmax=%.17g|warmup=%.17g|q=%d",
                         (long long)args.seed, (long long)args.reps, args.tmax,
                         args.warmup, args.quick ? 1 : 0);
  canonical += "|grid=";
  for (int64_t ltot : lock_counts) {
    canonical += StrFormat("%lld,", (long long)ltot);
  }
  for (const Series& s : series) {
    model::SystemConfig cfg = s.cfg;
    args.Apply(&cfg);
    canonical += "|series=" + s.label + ";" + cfg.ToString() + ";" +
                 s.spec.Describe();
  }
  return core::FingerprintString(canonical);
}

std::unique_ptr<core::CheckpointJournal> OpenJournalOrDie(
    const std::string& experiment_id, const BenchArgs& args,
    uint64_t fingerprint) {
  if (!args.checkpoint_enabled()) return nullptr;
  auto journal = core::CheckpointJournal::Open(
      args.JournalPath(experiment_id), fingerprint, args.resume);
  if (!journal.ok()) {
    std::cerr << "cannot open checkpoint journal: " << journal.status()
              << "\n";
    std::exit(1);
  }
  if ((*journal)->loaded_cells() > 0) {
    GRANULOCK_LOG(Info) << "--resume: replaying " << (*journal)->loaded_cells()
                        << " journaled cells from " << (*journal)->path();
  }
  return std::move(journal).value();
}

core::CellPolicy MakeCellPolicy(const BenchArgs& args,
                                core::CheckpointJournal* journal, int series,
                                core::RunReport* report) {
  core::CellPolicy policy;
  policy.journal = journal;
  policy.series = series;
  policy.max_cell_retries = static_cast<int>(args.max_cell_retries);
  policy.allow_partial = args.allow_partial;
  policy.cell_timeout_s = args.cell_timeout_s;
  policy.interrupt = InterruptFlag();
  policy.report = report;
  return policy;
}

namespace {

/// Flushes the partial grid of an interrupted run to
/// BENCH_<id>.partial.json (atomically — a signal landing mid-write must
/// not leave a torn report) and exits with the conventional signal code.
[[noreturn]] void ExitInterrupted(const std::string& experiment_id,
                                  const FigureData& data,
                                  const BenchArgs& args,
                                  const core::CheckpointJournal* journal) {
  const std::string path =
      StrFormat("BENCH_%s.partial.json", experiment_id.c_str());
  const Status written =
      WriteFileAtomic(path, RenderJsonReport(experiment_id, data, args) + "\n");
  if (written.ok()) {
    std::fprintf(stderr, "interrupted: partial results in %s\n", path.c_str());
  } else {
    GRANULOCK_LOG(Error) << "partial report: " << written;
  }
  if (journal != nullptr) {
    std::fprintf(stderr,
                 "completed cells are journaled in %s; rerun with --resume "
                 "to finish\n",
                 journal->path().c_str());
  } else {
    std::fprintf(stderr,
                 "hint: run with --checkpoint to make interrupted runs "
                 "resumable\n");
  }
  std::exit(InterruptExitCode());
}

/// The post-sweep contention pass (--profile_contention): re-runs every
/// surviving (series, ltot) cell once, serially, with a fresh
/// `ContentionProfiler` attached and the same rep-0 seed the sweep used —
/// the profiled run IS replication 0, bit for bit. Fills
/// `data->contention`, writes BENCH_<id>.waitsfor.dot with the densest
/// waits-for snapshot across the grid and BENCH_<id>.contention.csv with
/// the hottest cell's time series.
void ProfileContention(const std::string& experiment_id, FigureData* data,
                       const BenchArgs& args) {
  // Replicates core::DeriveReplicationSeeds for replication 0.
  const uint64_t seed =
      Rng(static_cast<uint64_t>(args.seed)).Fork(0).NextUint64();
  data->contention.assign(data->series.size(), SeriesContention{});
  std::string best_dot;
  std::string best_csv;
  int64_t best_waits = -1;
  for (size_t s = 0; s < data->series.size(); ++s) {
    SeriesContention& out = data->contention[s];
    std::vector<double> xs;
    std::vector<double> ys;
    for (size_t l = 0; l < data->lock_counts.size(); ++l) {
      if (data->values[s][l].replications == 0) continue;
      xs.push_back(static_cast<double>(data->lock_counts[l]));
      ys.push_back(data->values[s][l].mean.throughput);
    }
    out.boundary = obs::DetectThrashingBoundary(xs, ys);
    model::SystemConfig cfg = data->series[s].cfg;
    args.Apply(&cfg);
    for (size_t l = 0; l < data->lock_counts.size(); ++l) {
      if (data->values[s][l].replications == 0) continue;
      model::SystemConfig cell_cfg = cfg;
      cell_cfg.ltot = data->lock_counts[l];
      obs::ContentionProfiler profiler;
      core::GranularitySimulator::Options options = data->series[s].options;
      options.obs.contention = &profiler;
      const auto metrics = core::GranularitySimulator::RunOnce(
          cell_cfg, data->series[s].spec, seed, options);
      if (!metrics.ok()) {
        GRANULOCK_LOG(Warning)
            << "contention profile for series '" << data->series[s].label
            << "' ltot=" << cell_cfg.ltot << ": " << metrics.status();
        continue;
      }
      ContentionPoint point;
      point.ltot = data->lock_counts[l];
      point.waits = profiler.total_waits();
      std::ostringstream json;
      profiler.WriteJson(json);
      point.profile_json = json.str();
      if (point.waits > best_waits) {
        best_waits = point.waits;
        std::ostringstream dot;
        profiler.WriteDot(dot);
        best_dot = dot.str();
        std::ostringstream csv;
        profiler.series().WriteCsv(csv);
        best_csv = csv.str();
      }
      out.points.push_back(std::move(point));
    }
  }
  if (best_waits < 0) best_dot = "digraph waits_for {\n}\n";
  const std::string dot_path =
      StrFormat("BENCH_%s.waitsfor.dot", experiment_id.c_str());
  const Status dot_written = WriteFileAtomic(dot_path, best_dot);
  if (dot_written.ok()) {
    std::printf("wrote %s\n", dot_path.c_str());
  } else {
    GRANULOCK_LOG(Error) << "waits-for snapshot: " << dot_written;
  }
  if (!best_csv.empty()) {
    const std::string csv_path =
        StrFormat("BENCH_%s.contention.csv", experiment_id.c_str());
    const Status csv_written = WriteFileAtomic(csv_path, best_csv);
    if (csv_written.ok()) {
      std::printf("wrote %s\n", csv_path.c_str());
    } else {
      GRANULOCK_LOG(Error) << "contention series: " << csv_written;
    }
  }
}

}  // namespace

FigureData RunFigure(const std::string& experiment_id,
                     const std::vector<Series>& series, const BenchArgs& args,
                     std::vector<int64_t> lock_counts) {
  GRANULOCK_CHECK(!series.empty());
  const WallTimer wall_timer;
  core::ParallelRunner runner(args.resolved_threads);
  FigureData data;
  data.series = series;
  data.lock_counts = lock_counts.empty()
                         ? core::StandardLockSweep(series[0].cfg.dbsize)
                         : std::move(lock_counts);
  data.values.assign(series.size(),
                     std::vector<core::ReplicatedMetrics>(
                         data.lock_counts.size(), core::ReplicatedMetrics{}));
  const uint64_t fingerprint =
      FigureFingerprint(experiment_id, args, data.lock_counts, series);
  std::unique_ptr<core::CheckpointJournal> journal =
      OpenJournalOrDie(experiment_id, args, fingerprint);
  for (size_t s = 0; s < series.size(); ++s) {
    if (Interrupted()) break;  // remaining series stay missing
    model::SystemConfig cfg = series[s].cfg;
    args.Apply(&cfg);
    const core::CellPolicy policy = MakeCellPolicy(
        args, journal.get(), static_cast<int>(s), &data.report);
    auto sweep = core::SweepLockCounts(
        cfg, series[s].spec, data.lock_counts,
        static_cast<uint64_t>(args.seed), static_cast<int>(args.reps),
        series[s].options, &runner, policy);
    if (!sweep.ok()) {
      if (journal != nullptr) {
        // The completed prefix is durable; no need to take the whole
        // process down with an abort.
        std::fprintf(stderr, "series '%s': %s\n", series[s].label.c_str(),
                     sweep.status().ToString().c_str());
        std::fprintf(stderr,
                     "completed cells are journaled in %s; rerun with "
                     "--resume to retry only the failed cells\n",
                     journal->path().c_str());
        std::exit(1);
      }
      GRANULOCK_CHECK(sweep.ok())
          << "series '" << series[s].label << "': " << sweep.status();
    }
    // Map the (possibly partial) sweep back onto the rectangular grid;
    // omitted points keep replications == 0.
    size_t j = 0;
    for (size_t l = 0; l < data.lock_counts.size(); ++l) {
      if (j < sweep->size() && (*sweep)[j].ltot == data.lock_counts[l]) {
        data.values[s][l] = std::move((*sweep)[j].metrics);
        ++j;
      }
    }
  }
  data.wall_seconds = wall_timer.Seconds();
  data.registry = std::make_shared<obs::MetricsRegistry>();
  core::PublishCellStats(data.report, data.registry.get());
  if (data.report.interrupted || Interrupted()) {
    ExitInterrupted(experiment_id, data, args, journal.get());
  }
  if (args.profile_contention) {
    ProfileContention(experiment_id, &data, args);
  }
  PrintFailureSummary(data);
  return data;
}

void PrintMetricTable(const FigureData& data, Metric metric,
                      const BenchArgs& args) {
  std::printf("--- %s ---\n", MetricName(metric));
  std::vector<std::string> header{"locks"};
  for (const Series& s : data.series) header.push_back(s.label);
  TablePrinter table(std::move(header));
  for (size_t l = 0; l < data.lock_counts.size(); ++l) {
    std::vector<std::string> row;
    row.push_back(StrFormat("%lld", (long long)data.lock_counts[l]));
    for (size_t s = 0; s < data.series.size(); ++s) {
      if (data.values[s][l].replications == 0) {
        row.push_back("-");  // cell missing (failed or not reached)
      } else {
        row.push_back(
            StrFormat("%.5g", MetricValue(metric, data.values[s][l].mean)));
      }
    }
    table.AddRow(std::move(row));
  }
  if (args.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");

  // The response-time table gets a tail-latency companion: the mean hides
  // exactly the convoy effects the paper's thrashing region produces.
  if (metric != Metric::kResponseTime) return;
  std::printf("--- response percentiles (p50/p95/p99) ---\n");
  std::vector<std::string> pct_header{"locks"};
  for (const Series& s : data.series) pct_header.push_back(s.label);
  TablePrinter pct_table(std::move(pct_header));
  for (size_t l = 0; l < data.lock_counts.size(); ++l) {
    std::vector<std::string> row;
    row.push_back(StrFormat("%lld", (long long)data.lock_counts[l]));
    for (size_t s = 0; s < data.series.size(); ++s) {
      const core::ReplicatedMetrics& rep = data.values[s][l];
      if (rep.replications == 0) {
        row.push_back("-");
      } else {
        row.push_back(StrFormat("%.4g/%.4g/%.4g", rep.mean.response_p50,
                                rep.mean.response_p95, rep.mean.response_p99));
      }
    }
    pct_table.AddRow(std::move(row));
  }
  if (args.csv) {
    pct_table.PrintCsv(std::cout);
  } else {
    pct_table.Print(std::cout);
  }
  std::printf("\n");
}

namespace {

void WriteArgsJson(obs::JsonWriter& w, const BenchArgs& args) {
  w.Key("params").BeginObject();
  w.Key("seed").Value(args.seed);
  w.Key("reps").Value(args.reps);
  w.Key("tmax").Value(args.tmax);
  w.Key("warmup").Value(args.warmup);
  w.Key("quick").Value(args.quick);
  w.EndObject();
}

}  // namespace

std::string RenderJsonReport(const std::string& experiment_id,
                             const FigureData& data, const BenchArgs& args) {
  // Total simulation events across the grid; RunReplicated reports the
  // per-point total over replications, so summing the grid gives the
  // whole bench's event count.
  double total_events = 0.0;
  for (const auto& series_values : data.values) {
    for (const auto& rep : series_values) {
      total_events += static_cast<double>(rep.mean.events_executed);
    }
  }
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("experiment").Value(experiment_id);
  WriteArgsJson(w, args);
  w.Key("wall_seconds").Value(data.wall_seconds);
  w.Key("events_executed").Value(total_events);
  w.Key("events_per_sec")
      .Value(data.wall_seconds > 0.0 ? total_events / data.wall_seconds
                                     : 0.0);
  w.Key("lock_counts").BeginArray();
  for (int64_t ltot : data.lock_counts) w.Value(ltot);
  w.EndArray();
  w.Key("series").BeginArray();
  for (size_t s = 0; s < data.series.size(); ++s) {
    w.BeginObject();
    w.Key("label").Value(data.series[s].label);
    w.Key("points").BeginArray();
    for (size_t l = 0; l < data.lock_counts.size(); ++l) {
      const core::ReplicatedMetrics& rep = data.values[s][l];
      if (rep.replications == 0) continue;  // missing cell
      const core::SimulationMetrics& m = rep.mean;
      w.BeginObject();
      w.Key("ltot").Value(data.lock_counts[l]);
      w.Key("throughput").Value(m.throughput);
      w.Key("throughput_hw95").Value(rep.throughput_hw95);
      w.Key("response_time").Value(m.response_time);
      w.Key("response_hw95").Value(rep.response_hw95);
      w.Key("usefulcpus").Value(m.usefulcpus);
      w.Key("usefulios").Value(m.usefulios);
      w.Key("lockcpus").Value(m.lockcpus);
      w.Key("lockios").Value(m.lockios);
      w.Key("denial_rate").Value(m.denial_rate);
      w.Key("deadlock_aborts").Value(m.deadlock_aborts);
      w.Key("txn_restarts").Value(m.txn_restarts);
      w.Key("txn_sacrificed").Value(m.txn_sacrificed);
      w.Key("response_p95").Value(m.response_p95);
      w.Key("response_p99").Value(m.response_p99);
      w.Key("events_executed").Value(m.events_executed);
      w.Key("phase_pending_wait").Value(m.phase_pending_wait);
      w.Key("phase_lock_wait").Value(m.phase_lock_wait);
      w.Key("phase_io_service").Value(m.phase_io_service);
      w.Key("phase_cpu_service").Value(m.phase_cpu_service);
      w.Key("phase_sync_wait").Value(m.phase_sync_wait);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  // Only present under --profile_contention, so reports without it keep
  // their historical bytes.
  if (!data.contention.empty()) {
    w.Key("contention").BeginArray();
    for (size_t s = 0; s < data.contention.size(); ++s) {
      const SeriesContention& sc = data.contention[s];
      w.BeginObject();
      w.Key("label").Value(data.series[s].label);
      w.Key("points").BeginArray();
      for (const ContentionPoint& point : sc.points) {
        w.BeginObject();
        w.Key("ltot").Value(point.ltot);
        w.Key("profile").Raw(point.profile_json);
        w.EndObject();
      }
      w.EndArray();
      w.Key("thrashing_boundary").BeginObject();
      w.Key("found").Value(sc.boundary.found);
      w.Key("boundary_ltot").Value(sc.boundary.boundary_x);
      w.Key("peak_ltot").Value(sc.boundary.peak_x);
      w.Key("peak_throughput").Value(sc.boundary.peak_y);
      w.Key("collapse_fraction").Value(sc.boundary.collapse_fraction);
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
  }
  // Always present (and empty on a clean run) so a resumed run renders the
  // same bytes as an uninterrupted one.
  w.Key("failures").BeginArray();
  for (const core::CellFailure& f : data.report.failures) {
    w.BeginObject();
    w.Key("series").Value(
        data.series[static_cast<size_t>(f.series)].label);
    w.Key("ltot").Value(f.ltot);
    w.Key("rep").Value(static_cast<int64_t>(f.rep));
    w.Key("attempts").Value(static_cast<int64_t>(f.attempts));
    w.Key("timed_out").Value(f.timed_out);
    w.Key("status").Value(StatusCodeToString(f.status.code()));
    w.Key("message").Value(f.status.message());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return os.str();
}

Status WriteJsonReport(const std::string& experiment_id,
                       const FigureData& data, const BenchArgs& args) {
  const std::string body = RenderJsonReport(experiment_id, data, args);
  const std::string path = StrFormat("BENCH_%s.json", experiment_id.c_str());
  GRANULOCK_RETURN_NOT_OK(WriteFileAtomic(path, body + "\n"));
  std::printf("wrote %s\n", path.c_str());
  return Status::OK();
}

void MaybeWriteJsonReport(const std::string& experiment_id,
                          const FigureData& data, const BenchArgs& args) {
  if (!args.json_out) return;
  const Status status = WriteJsonReport(experiment_id, data, args);
  if (!status.ok()) {
    GRANULOCK_LOG(Error) << "JSON report: " << status;
  }
}

void MaybeWriteTableJsonReport(
    const std::string& experiment_id,
    const std::vector<std::pair<std::string, const TablePrinter*>>& tables,
    const BenchArgs& args) {
  if (!args.json_out) return;
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("experiment").Value(experiment_id);
  WriteArgsJson(w, args);
  w.Key("tables").BeginObject();
  for (const auto& [name, table] : tables) {
    w.Key(name).BeginObject();
    w.Key("columns").BeginArray();
    for (const std::string& col : table->header()) w.Value(col);
    w.EndArray();
    w.Key("rows").BeginArray();
    for (const auto& row : table->rows()) {
      w.BeginArray();
      for (const std::string& cell : row) w.Value(cell);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();

  const std::string path = StrFormat("BENCH_%s.json", experiment_id.c_str());
  const Status written = WriteFileAtomic(path, os.str() + "\n");
  if (!written.ok()) {
    GRANULOCK_LOG(Error) << "JSON report: " << written;
    return;
  }
  std::printf("wrote %s\n", path.c_str());
}

void PrintOptimaSummary(const FigureData& data) {
  std::printf("throughput-optimal lock count per series:\n");
  for (size_t s = 0; s < data.series.size(); ++s) {
    size_t best = data.lock_counts.size();  // sentinel: no surviving point
    for (size_t l = 0; l < data.lock_counts.size(); ++l) {
      if (data.values[s][l].replications == 0) continue;
      if (best == data.lock_counts.size() ||
          data.values[s][l].mean.throughput >
              data.values[s][best].mean.throughput) {
        best = l;
      }
    }
    if (best == data.lock_counts.size()) {
      std::printf("  %-28s (no surviving points)\n",
                  data.series[s].label.c_str());
      continue;
    }
    std::printf("  %-28s ltot* = %-6lld (throughput %.5g)\n",
                data.series[s].label.c_str(),
                (long long)data.lock_counts[best],
                data.values[s][best].mean.throughput);
  }
  std::printf("\n");
}

CellRunner::CellRunner(std::string experiment_id, const BenchArgs& args,
                       const std::string& canonical_inputs)
    : experiment_id_(std::move(experiment_id)), args_(args) {
  const std::string canonical =
      experiment_id_ +
      StrFormat("|seed=%lld|reps=%lld|tmax=%.17g|warmup=%.17g|q=%d|",
                (long long)args.seed, (long long)args.reps, args.tmax,
                args.warmup, args.quick ? 1 : 0) +
      canonical_inputs;
  journal_ = OpenJournalOrDie(experiment_id_, args,
                              core::FingerprintString(canonical));
}

Result<core::SimulationMetrics> CellRunner::Run(int series, int point,
                                                int64_t ltot, uint64_t seed,
                                                const core::CellBody& body) {
  core::CellPolicy policy =
      MakeCellPolicy(args_, journal_.get(), series, /*report=*/nullptr);
  const core::CellOutcome outcome =
      core::RunCell(policy, core::CellKey{series, point, 0}, seed, body);
  // Serial loop: account inline (RunCell leaves accounting to the caller).
  if (outcome.from_checkpoint) {
    ++report_.cells_from_checkpoint;
    ++report_.cells_completed;
    return *outcome.result;
  }
  if (outcome.attempts > 1) report_.cell_retries += outcome.attempts - 1;
  if (outcome.result.ok()) {
    ++report_.cells_completed;
    return *outcome.result;
  }
  if (outcome.result.status().code() == StatusCode::kCancelled) {
    report_.interrupted = true;
    if (journal_ != nullptr) {
      std::fprintf(stderr,
                   "interrupted: completed cells are journaled in %s; rerun "
                   "with --resume to finish\n",
                   journal_->path().c_str());
    } else {
      std::fprintf(stderr,
                   "interrupted (hint: --checkpoint makes this resumable)\n");
    }
    std::exit(InterruptExitCode());
  }
  if (outcome.timed_out) ++report_.cells_timed_out;
  report_.failures.push_back(core::CellFailure{series, point, ltot, 0,
                                               outcome.attempts,
                                               outcome.timed_out,
                                               outcome.result.status()});
  if (!args_.allow_partial) {
    std::fprintf(stderr, "cell (series=%d, ltot=%lld) failed: %s\n", series,
                 (long long)ltot, outcome.result.status().ToString().c_str());
    if (journal_ != nullptr) {
      std::fprintf(stderr,
                   "completed cells are journaled in %s; rerun with --resume "
                   "to retry only the failed cell\n",
                   journal_->path().c_str());
    }
    std::exit(1);
  }
  return outcome.result.status();
}

void CellRunner::Finish() {
  if (Interrupted()) {
    if (journal_ != nullptr) {
      std::fprintf(stderr,
                   "interrupted: completed cells are journaled in %s; rerun "
                   "with --resume to finish\n",
                   journal_->path().c_str());
    }
    std::exit(InterruptExitCode());
  }
  if (report_.failures.empty() && report_.cell_retries == 0) return;
  std::printf("cell failure summary: %lld failed, %lld retries, %lld timed "
              "out, %lld completed\n",
              (long long)report_.failures.size(),
              (long long)report_.cell_retries,
              (long long)report_.cells_timed_out,
              (long long)report_.cells_completed);
  for (const core::CellFailure& f : report_.failures) {
    std::printf("  series=%d ltot=%lld: %s (%d attempt%s%s)\n", f.series,
                (long long)f.ltot, f.status.ToString().c_str(), f.attempts,
                f.attempts == 1 ? "" : "s",
                f.timed_out ? ", timed out" : "");
  }
  std::printf("\n");
}

void PrintFailureSummary(const FigureData& data) {
  const core::RunReport& report = data.report;
  if (report.failures.empty() && report.cell_retries == 0) return;
  std::printf("cell failure summary: %lld failed, %lld retries, %lld timed "
              "out, %lld completed\n",
              (long long)report.failures.size(),
              (long long)report.cell_retries,
              (long long)report.cells_timed_out,
              (long long)report.cells_completed);
  for (const core::CellFailure& f : report.failures) {
    std::printf("  series '%s' ltot=%lld rep=%d: %s (%d attempt%s%s)\n",
                data.series[static_cast<size_t>(f.series)].label.c_str(),
                (long long)f.ltot, f.rep, f.status.ToString().c_str(),
                f.attempts, f.attempts == 1 ? "" : "s",
                f.timed_out ? ", timed out" : "");
  }
  std::printf("\n");
}

}  // namespace granulock::bench
