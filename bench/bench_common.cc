#include "bench/bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/json_writer.h"
#include "sim/invariants.h"
#include "util/logging.h"
#include "util/strings.h"

namespace granulock::bench {

void BenchArgs::Register(FlagParser& parser) {
  parser.AddInt64("seed", &seed, 42, "base PRNG seed");
  parser.AddInt64("reps", &reps, 1, "replications per sweep point");
  parser.AddDouble("tmax", &tmax, 10000.0, "simulated time units per run");
  parser.AddDouble("warmup", &warmup, 0.0,
                   "time units discarded before measuring");
  parser.AddInt64("threads", &threads, 1,
                  "worker threads for (sweep point x replication) fan-out; "
                  "0 = hardware concurrency. Results are bit-identical for "
                  "any thread count");
  parser.AddBool("csv", &csv, false, "emit CSV instead of aligned tables");
  parser.AddBool("quick", &quick, false, "shrink tmax 10x for a smoke run");
  parser.AddBool("json_out", &json_out, false,
                 "also write BENCH_<id>.json with the full result grid");
  parser.AddBool("audit", &audit, false,
                 "run deep invariant audits at every quiescent point "
                 "(slower; aborts on the first violated invariant)");
  parser.AddString("log_level", &log_level, "info",
                   "minimum log severity: debug|info|warning|error");
}

void BenchArgs::Apply(model::SystemConfig* cfg) const {
  cfg->tmax = quick ? tmax / 10.0 : tmax;
  cfg->warmup = quick ? warmup / 10.0 : warmup;
}

namespace {

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  if (name == "debug") {
    *out = LogLevel::kDebug;
  } else if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "warning") {
    *out = LogLevel::kWarning;
  } else if (name == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

}  // namespace

BenchArgs ParseArgsOrDie(int argc, char** argv) {
  BenchArgs args;
  FlagParser parser;
  args.Register(parser);
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kFailedPrecondition) {
    std::exit(0);  // --help already printed usage
  }
  if (!status.ok()) {
    std::cerr << status << "\n" << parser.UsageString(argv[0]);
    std::exit(1);
  }
  LogLevel level = LogLevel::kInfo;
  if (!ParseLogLevel(args.log_level, &level)) {
    std::cerr << "unknown --log_level '" << args.log_level
              << "' (expected debug|info|warning|error)\n";
    std::exit(1);
  }
  SetLogThreshold(level);
  const Result<int> resolved = core::ResolveThreadCount(args.threads);
  if (!resolved.ok()) {
    std::cerr << resolved.status() << "\n" << parser.UsageString(argv[0]);
    std::exit(1);
  }
  args.resolved_threads = *resolved;
  sim::invariants::SetDeepAudit(args.audit);
  if (args.audit) {
    GRANULOCK_LOG(Info) << "--audit: deep invariant audits enabled";
  }
  return args;
}

void PrintBanner(const std::string& experiment_id,
                 const std::string& description,
                 const model::SystemConfig& cfg, const BenchArgs& args) {
  std::printf("=== %s ===\n", experiment_id.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("base config: %s\n", cfg.ToString().c_str());
  std::printf("seed=%lld reps=%lld threads=%d\n\n", (long long)args.seed,
              (long long)args.reps, args.resolved_threads);
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kThroughput:
      return "throughput (txn/unit)";
    case Metric::kResponseTime:
      return "response time (units)";
    case Metric::kUsefulIo:
      return "useful I/O time per processor";
    case Metric::kUsefulCpu:
      return "useful CPU time per processor";
    case Metric::kLockOverheadIo:
      return "lock I/O overhead (lockios)";
    case Metric::kLockOverheadCpu:
      return "lock CPU overhead (lockcpus)";
    case Metric::kLockOverheadTotal:
      return "total lock overhead (lockios + lockcpus)";
    case Metric::kDenialRate:
      return "lock denial rate";
  }
  return "?";
}

double MetricValue(Metric metric, const core::SimulationMetrics& m) {
  switch (metric) {
    case Metric::kThroughput:
      return m.throughput;
    case Metric::kResponseTime:
      return m.response_time;
    case Metric::kUsefulIo:
      return m.usefulios;
    case Metric::kUsefulCpu:
      return m.usefulcpus;
    case Metric::kLockOverheadIo:
      return m.lockios;
    case Metric::kLockOverheadCpu:
      return m.lockcpus;
    case Metric::kLockOverheadTotal:
      return m.lockios + m.lockcpus;
    case Metric::kDenialRate:
      return m.denial_rate;
  }
  return 0.0;
}

FigureData RunFigure(const std::vector<Series>& series, const BenchArgs& args,
                     std::vector<int64_t> lock_counts) {
  GRANULOCK_CHECK(!series.empty());
  const auto wall_start = std::chrono::steady_clock::now();
  core::ParallelRunner runner(args.resolved_threads);
  FigureData data;
  data.series = series;
  data.lock_counts = lock_counts.empty()
                         ? core::StandardLockSweep(series[0].cfg.dbsize)
                         : std::move(lock_counts);
  data.values.resize(series.size());
  for (size_t s = 0; s < series.size(); ++s) {
    model::SystemConfig cfg = series[s].cfg;
    args.Apply(&cfg);
    auto sweep = core::SweepLockCounts(
        cfg, series[s].spec, data.lock_counts,
        static_cast<uint64_t>(args.seed), static_cast<int>(args.reps),
        series[s].options, &runner);
    GRANULOCK_CHECK(sweep.ok())
        << "series '" << series[s].label << "': " << sweep.status();
    for (auto& point : *sweep) {
      data.values[s].push_back(std::move(point.metrics));
    }
  }
  data.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return data;
}

void PrintMetricTable(const FigureData& data, Metric metric,
                      const BenchArgs& args) {
  std::printf("--- %s ---\n", MetricName(metric));
  std::vector<std::string> header{"locks"};
  for (const Series& s : data.series) header.push_back(s.label);
  TablePrinter table(std::move(header));
  for (size_t l = 0; l < data.lock_counts.size(); ++l) {
    std::vector<std::string> row;
    row.push_back(StrFormat("%lld", (long long)data.lock_counts[l]));
    for (size_t s = 0; s < data.series.size(); ++s) {
      row.push_back(
          StrFormat("%.5g", MetricValue(metric, data.values[s][l].mean)));
    }
    table.AddRow(std::move(row));
  }
  if (args.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
}

namespace {

void WriteArgsJson(obs::JsonWriter& w, const BenchArgs& args) {
  w.Key("params").BeginObject();
  w.Key("seed").Value(args.seed);
  w.Key("reps").Value(args.reps);
  w.Key("tmax").Value(args.tmax);
  w.Key("warmup").Value(args.warmup);
  w.Key("quick").Value(args.quick);
  w.EndObject();
}

}  // namespace

std::string RenderJsonReport(const std::string& experiment_id,
                             const FigureData& data, const BenchArgs& args) {
  // Total simulation events across the grid; RunReplicated reports the
  // per-point total over replications, so summing the grid gives the
  // whole bench's event count.
  double total_events = 0.0;
  for (const auto& series_values : data.values) {
    for (const auto& rep : series_values) {
      total_events += static_cast<double>(rep.mean.events_executed);
    }
  }
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("experiment").Value(experiment_id);
  WriteArgsJson(w, args);
  w.Key("wall_seconds").Value(data.wall_seconds);
  w.Key("events_executed").Value(total_events);
  w.Key("events_per_sec")
      .Value(data.wall_seconds > 0.0 ? total_events / data.wall_seconds
                                     : 0.0);
  w.Key("lock_counts").BeginArray();
  for (int64_t ltot : data.lock_counts) w.Value(ltot);
  w.EndArray();
  w.Key("series").BeginArray();
  for (size_t s = 0; s < data.series.size(); ++s) {
    w.BeginObject();
    w.Key("label").Value(data.series[s].label);
    w.Key("points").BeginArray();
    for (size_t l = 0; l < data.lock_counts.size(); ++l) {
      const core::ReplicatedMetrics& rep = data.values[s][l];
      const core::SimulationMetrics& m = rep.mean;
      w.BeginObject();
      w.Key("ltot").Value(data.lock_counts[l]);
      w.Key("throughput").Value(m.throughput);
      w.Key("throughput_hw95").Value(rep.throughput_hw95);
      w.Key("response_time").Value(m.response_time);
      w.Key("response_hw95").Value(rep.response_hw95);
      w.Key("usefulcpus").Value(m.usefulcpus);
      w.Key("usefulios").Value(m.usefulios);
      w.Key("lockcpus").Value(m.lockcpus);
      w.Key("lockios").Value(m.lockios);
      w.Key("denial_rate").Value(m.denial_rate);
      w.Key("deadlock_aborts").Value(m.deadlock_aborts);
      w.Key("events_executed").Value(m.events_executed);
      w.Key("phase_pending_wait").Value(m.phase_pending_wait);
      w.Key("phase_lock_wait").Value(m.phase_lock_wait);
      w.Key("phase_io_service").Value(m.phase_io_service);
      w.Key("phase_cpu_service").Value(m.phase_cpu_service);
      w.Key("phase_sync_wait").Value(m.phase_sync_wait);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return os.str();
}

Status WriteJsonReport(const std::string& experiment_id,
                       const FigureData& data, const BenchArgs& args) {
  const std::string body = RenderJsonReport(experiment_id, data, args);
  const std::string path = StrFormat("BENCH_%s.json", experiment_id.c_str());
  std::ofstream file(path);
  if (!file) {
    return Status::Internal(StrFormat("cannot open %s", path.c_str()));
  }
  file << body << "\n";
  if (!file.good()) {
    return Status::Internal(StrFormat("write to %s failed", path.c_str()));
  }
  std::printf("wrote %s\n", path.c_str());
  return Status::OK();
}

void MaybeWriteJsonReport(const std::string& experiment_id,
                          const FigureData& data, const BenchArgs& args) {
  if (!args.json_out) return;
  const Status status = WriteJsonReport(experiment_id, data, args);
  if (!status.ok()) {
    GRANULOCK_LOG(Error) << "JSON report: " << status;
  }
}

void MaybeWriteTableJsonReport(
    const std::string& experiment_id,
    const std::vector<std::pair<std::string, const TablePrinter*>>& tables,
    const BenchArgs& args) {
  if (!args.json_out) return;
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("experiment").Value(experiment_id);
  WriteArgsJson(w, args);
  w.Key("tables").BeginObject();
  for (const auto& [name, table] : tables) {
    w.Key(name).BeginObject();
    w.Key("columns").BeginArray();
    for (const std::string& col : table->header()) w.Value(col);
    w.EndArray();
    w.Key("rows").BeginArray();
    for (const auto& row : table->rows()) {
      w.BeginArray();
      for (const std::string& cell : row) w.Value(cell);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();

  const std::string path = StrFormat("BENCH_%s.json", experiment_id.c_str());
  std::ofstream file(path);
  if (!file) {
    GRANULOCK_LOG(Error) << "JSON report: cannot open " << path;
    return;
  }
  file << os.str() << "\n";
  std::printf("wrote %s\n", path.c_str());
}

void PrintOptimaSummary(const FigureData& data) {
  std::printf("throughput-optimal lock count per series:\n");
  for (size_t s = 0; s < data.series.size(); ++s) {
    size_t best = 0;
    for (size_t l = 1; l < data.lock_counts.size(); ++l) {
      if (data.values[s][l].mean.throughput >
          data.values[s][best].mean.throughput) {
        best = l;
      }
    }
    std::printf("  %-28s ltot* = %-6lld (throughput %.5g)\n",
                data.series[s].label.c_str(),
                (long long)data.lock_counts[best],
                data.values[s][best].mean.throughput);
  }
  std::printf("\n");
}

}  // namespace granulock::bench
