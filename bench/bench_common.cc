#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "util/logging.h"
#include "util/strings.h"

namespace granulock::bench {

void BenchArgs::Register(FlagParser& parser) {
  parser.AddInt64("seed", &seed, 42, "base PRNG seed");
  parser.AddInt64("reps", &reps, 1, "replications per sweep point");
  parser.AddDouble("tmax", &tmax, 10000.0, "simulated time units per run");
  parser.AddDouble("warmup", &warmup, 0.0,
                   "time units discarded before measuring");
  parser.AddBool("csv", &csv, false, "emit CSV instead of aligned tables");
  parser.AddBool("quick", &quick, false, "shrink tmax 10x for a smoke run");
}

void BenchArgs::Apply(model::SystemConfig* cfg) const {
  cfg->tmax = quick ? tmax / 10.0 : tmax;
  cfg->warmup = quick ? warmup / 10.0 : warmup;
}

BenchArgs ParseArgsOrDie(int argc, char** argv) {
  BenchArgs args;
  FlagParser parser;
  args.Register(parser);
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kFailedPrecondition) {
    std::exit(0);  // --help already printed usage
  }
  if (!status.ok()) {
    std::cerr << status << "\n" << parser.UsageString(argv[0]);
    std::exit(1);
  }
  return args;
}

void PrintBanner(const std::string& experiment_id,
                 const std::string& description,
                 const model::SystemConfig& cfg, const BenchArgs& args) {
  std::printf("=== %s ===\n", experiment_id.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("base config: %s\n", cfg.ToString().c_str());
  std::printf("seed=%lld reps=%lld\n\n", (long long)args.seed,
              (long long)args.reps);
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kThroughput:
      return "throughput (txn/unit)";
    case Metric::kResponseTime:
      return "response time (units)";
    case Metric::kUsefulIo:
      return "useful I/O time per processor";
    case Metric::kUsefulCpu:
      return "useful CPU time per processor";
    case Metric::kLockOverheadIo:
      return "lock I/O overhead (lockios)";
    case Metric::kLockOverheadCpu:
      return "lock CPU overhead (lockcpus)";
    case Metric::kLockOverheadTotal:
      return "total lock overhead (lockios + lockcpus)";
    case Metric::kDenialRate:
      return "lock denial rate";
  }
  return "?";
}

double MetricValue(Metric metric, const core::SimulationMetrics& m) {
  switch (metric) {
    case Metric::kThroughput:
      return m.throughput;
    case Metric::kResponseTime:
      return m.response_time;
    case Metric::kUsefulIo:
      return m.usefulios;
    case Metric::kUsefulCpu:
      return m.usefulcpus;
    case Metric::kLockOverheadIo:
      return m.lockios;
    case Metric::kLockOverheadCpu:
      return m.lockcpus;
    case Metric::kLockOverheadTotal:
      return m.lockios + m.lockcpus;
    case Metric::kDenialRate:
      return m.denial_rate;
  }
  return 0.0;
}

FigureData RunFigure(const std::vector<Series>& series, const BenchArgs& args,
                     std::vector<int64_t> lock_counts) {
  GRANULOCK_CHECK(!series.empty());
  FigureData data;
  data.series = series;
  data.lock_counts = lock_counts.empty()
                         ? core::StandardLockSweep(series[0].cfg.dbsize)
                         : std::move(lock_counts);
  data.values.resize(series.size());
  for (size_t s = 0; s < series.size(); ++s) {
    model::SystemConfig cfg = series[s].cfg;
    args.Apply(&cfg);
    auto sweep = core::SweepLockCounts(
        cfg, series[s].spec, data.lock_counts,
        static_cast<uint64_t>(args.seed), static_cast<int>(args.reps),
        series[s].options);
    GRANULOCK_CHECK(sweep.ok())
        << "series '" << series[s].label << "': " << sweep.status();
    for (auto& point : *sweep) {
      data.values[s].push_back(std::move(point.metrics));
    }
  }
  return data;
}

void PrintMetricTable(const FigureData& data, Metric metric,
                      const BenchArgs& args) {
  std::printf("--- %s ---\n", MetricName(metric));
  std::vector<std::string> header{"locks"};
  for (const Series& s : data.series) header.push_back(s.label);
  TablePrinter table(std::move(header));
  for (size_t l = 0; l < data.lock_counts.size(); ++l) {
    std::vector<std::string> row;
    row.push_back(StrFormat("%lld", (long long)data.lock_counts[l]));
    for (size_t s = 0; s < data.series.size(); ++s) {
      row.push_back(
          StrFormat("%.5g", MetricValue(metric, data.values[s][l].mean)));
    }
    table.AddRow(std::move(row));
  }
  if (args.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
}

void PrintOptimaSummary(const FigureData& data) {
  std::printf("throughput-optimal lock count per series:\n");
  for (size_t s = 0; s < data.series.size(); ++s) {
    size_t best = 0;
    for (size_t l = 1; l < data.lock_counts.size(); ++l) {
      if (data.values[s][l].mean.throughput >
          data.values[s][best].mean.throughput) {
        best = l;
      }
    }
    std::printf("  %-28s ltot* = %-6lld (throughput %.5g)\n",
                data.series[s].label.c_str(),
                (long long)data.lock_counts[best],
                data.values[s][best].mean.throughput);
  }
  std::printf("\n");
}

}  // namespace granulock::bench
