// google-benchmark microbenchmarks for the simulation substrate: the
// event engine, the preemptive-priority server, the lock managers, and the
// analytic model pieces. These quantify the cost of the building blocks
// that the figure benches exercise millions of times.

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "core/granularity_simulator.h"
#include "core/parallel_runner.h"
#include "db/granule_selector.h"
#include "lockmgr/hierarchical.h"
#include "lockmgr/lock_table.h"
#include "lockmgr/waits_for.h"
#include "model/conflict.h"
#include "model/placement.h"
#include "sim/priority_server.h"
#include "sim/stats.h"
#include "sim/simulator.h"
#include "util/arena.h"
#include "util/random.h"

namespace granulock {
namespace {

void BM_EventScheduleAndRun(benchmark::State& state) {
  const int64_t batch = state.range(0);
  for (auto _ : state) {
    sim::Simulator sim;
    for (int64_t i = 0; i < batch; ++i) {
      sim.ScheduleAt(static_cast<double>(i % 97), [] {});
    }
    sim.RunUntilEmpty();
    benchmark::DoNotOptimize(sim.ExecutedEvents());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventScheduleAndRun)->Arg(1000)->Arg(10000);

void BM_EventCancelChurn(benchmark::State& state) {
  // Schedule/cancel churn with a small live set: the generation-stamped
  // slab makes Cancel O(1) and compaction keeps the heap near the live
  // count. This is the PriorityServer preemption pattern at full tilt.
  const int64_t batch = state.range(0);
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventId> pending;
    double t = 1.0;
    for (int64_t i = 0; i < batch; ++i) {
      pending.push_back(sim.ScheduleAt(t, [] {}));
      t += 0.001;
      if (pending.size() > 8) {
        sim.Cancel(pending.front());
        pending.erase(pending.begin());
      }
    }
    sim.RunUntilEmpty();
    benchmark::DoNotOptimize(sim.HeapSize());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventCancelChurn)->Arg(10000);

void BM_CalendarQueueChurn(benchmark::State& state) {
  // The calendar queue's steady-state regime: a large live population
  // (range(0) events in flight) with random-offset reschedule churn, the
  // access pattern of a many-transaction run. Each iteration pops the next
  // event and schedules a replacement at now + U[0, 10), so the queue
  // holds `live` events forever while the clock advances — bucket rotation,
  // bottom-rung refills, and width recalibration all on the hot path.
  const int64_t live = state.range(0);
  sim::Simulator sim;
  Rng rng(1);
  for (int64_t i = 0; i < live; ++i) {
    sim.ScheduleAt(rng.UniformDouble(0.0, 10.0), [] {});
  }
  for (auto _ : state) {
    sim.Step();
    sim.ScheduleAt(sim.Now() + rng.UniformDouble(0.0, 10.0), [] {});
  }
  benchmark::DoNotOptimize(sim.ExecutedEvents());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalendarQueueChurn)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ArenaAllocVsPool(benchmark::State& state) {
  // Replication-scratch allocation: fill-and-discard vectors, the pattern
  // of per-txn `blocked` / `sub_cpu_done` buffers. Arg 0 uses the default
  // heap allocator (every round pays malloc/free); arg 1 uses an Arena
  // reset between rounds (steady state: one coalesced block, bump-pointer
  // only). The ratio is what the engines gain per replication.
  const bool use_arena = state.range(0) != 0;
  util::Arena arena;
  constexpr int kVectors = 64;
  constexpr int kElems = 32;
  for (auto _ : state) {
    if (use_arena) {
      arena.Reset();
      for (int v = 0; v < kVectors; ++v) {
        std::vector<int64_t, util::ArenaAllocator<int64_t>> vec{
            util::ArenaAllocator<int64_t>(&arena)};
        for (int i = 0; i < kElems; ++i) vec.push_back(i);
        benchmark::DoNotOptimize(vec.data());
      }
    } else {
      for (int v = 0; v < kVectors; ++v) {
        std::vector<int64_t> vec;
        for (int i = 0; i < kElems; ++i) vec.push_back(i);
        benchmark::DoNotOptimize(vec.data());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kVectors);
  state.SetLabel(use_arena ? "arena" : "heap");
}
BENCHMARK(BM_ArenaAllocVsPool)->Arg(0)->Arg(1);

void BM_PriorityServerThroughput(benchmark::State& state) {
  const int64_t jobs = state.range(0);
  for (auto _ : state) {
    sim::Simulator sim;
    sim::PriorityServer server(&sim, "bench");
    for (int64_t i = 0; i < jobs; ++i) {
      server.Submit(i % 3 == 0 ? sim::ServiceClass::kLock
                               : sim::ServiceClass::kTransaction,
                    0.5, [] {});
    }
    sim.RunUntilEmpty();
    benchmark::DoNotOptimize(server.TotalBusyTime());
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_PriorityServerThroughput)->Arg(1000);

void BM_LockTableAcquireRelease(benchmark::State& state) {
  const int64_t locks_per_txn = state.range(0);
  lockmgr::LockTable table(5000);
  Rng rng(1);
  lockmgr::TxnId txn = 1;
  for (auto _ : state) {
    std::vector<lockmgr::LockRequest> reqs;
    reqs.reserve(static_cast<size_t>(locks_per_txn));
    const int64_t start = rng.UniformInt(0, 5000 - locks_per_txn);
    for (int64_t i = 0; i < locks_per_txn; ++i) {
      reqs.push_back({start + i, lockmgr::LockMode::kX});
    }
    auto blocker = table.TryAcquireAll(txn, reqs);
    benchmark::DoNotOptimize(blocker);
    table.ReleaseAll(txn);
    ++txn;
  }
  state.SetItemsProcessed(state.iterations() * locks_per_txn);
}
BENCHMARK(BM_LockTableAcquireRelease)->Arg(10)->Arg(100);

void BM_HierarchicalAcquireRelease(benchmark::State& state) {
  lockmgr::HierarchicalLockManager::Options opts;
  opts.num_granules = 5000;
  opts.num_files = 50;
  lockmgr::HierarchicalLockManager mgr(opts);
  Rng rng(1);
  lockmgr::TxnId txn = 1;
  for (auto _ : state) {
    std::vector<lockmgr::HierRequest> reqs;
    const int64_t start = rng.UniformInt(0, 4900);
    for (int64_t i = 0; i < 20; ++i) {
      reqs.push_back(
          {lockmgr::ObjectId::Granule(start + i), lockmgr::LockMode::kX});
    }
    auto blocker = mgr.TryAcquireAll(txn, reqs);
    benchmark::DoNotOptimize(blocker);
    mgr.ReleaseAll(txn);
    ++txn;
  }
}
BENCHMARK(BM_HierarchicalAcquireRelease);

void BM_YaoExpectedGranules(benchmark::State& state) {
  const int64_t nu = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::YaoExpectedGranules(5000, 100, nu));
  }
}
BENCHMARK(BM_YaoExpectedGranules)->Arg(25)->Arg(250)->Arg(2500);

void BM_VectorizedYao(benchmark::State& state) {
  // Whole-sweep Yao evaluation (one incremental product across nu =
  // 1..max_nu) vs. the per-nu scalar restarts BM_YaoExpectedGranules
  // measures. items/sec counts nu values, so the two benchmarks are
  // directly comparable; the sweep amortizes the product to O(1) per nu.
  const int64_t max_nu = state.range(0);
  std::vector<double> out(static_cast<size_t>(max_nu));
  for (auto _ : state) {
    model::YaoExpectedGranulesSweep(5000, 100, max_nu, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * max_nu);
}
BENCHMARK(BM_VectorizedYao)->Arg(25)->Arg(250)->Arg(2500);

void BM_ConflictDraw(benchmark::State& state) {
  model::ConflictModel conflict(5000);
  Rng rng(1);
  std::vector<int64_t> active(static_cast<size_t>(state.range(0)), 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conflict.DrawBlocker(active, rng));
  }
}
BENCHMARK(BM_ConflictDraw)->Arg(10)->Arg(200);

void BM_SelectGranulesRandom(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::SelectGranules(model::Placement::kRandom,
                                                5000, 100, state.range(0),
                                                rng));
  }
}
BENCHMARK(BM_SelectGranulesRandom)->Arg(25)->Arg(250);

void BM_FullSimulationShort(benchmark::State& state) {
  model::SystemConfig cfg = model::SystemConfig::Table1Defaults();
  cfg.tmax = 500.0;
  cfg.ltot = state.range(0);
  const workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
  uint64_t seed = 1;
  for (auto _ : state) {
    auto result = core::GranularitySimulator::RunOnce(cfg, spec, seed++);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullSimulationShort)->Arg(1)->Arg(100)->Arg(5000);

void BM_RunReplicatedParallel(benchmark::State& state) {
  // End-to-end replication fan-out through ParallelRunner. Thread count is
  // the benchmark argument; 1 uses the serial inline path. On a
  // single-core host all counts measure the same work plus pool overhead;
  // with N cores the speedup approaches min(N, replications).
  const int threads = static_cast<int>(state.range(0));
  model::SystemConfig cfg = model::SystemConfig::Table1Defaults();
  cfg.tmax = 500.0;
  const workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
  core::ParallelRunner runner(threads);
  uint64_t seed = 1;
  for (auto _ : state) {
    auto result = core::RunReplicated(cfg, spec, seed++, /*replications=*/8,
                                      {}, &runner);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_RunReplicatedParallel)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ZipfSample(benchmark::State& state) {
  ZipfGenerator zipf(5000, 0.99);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_QuantileEstimatorAdd(benchmark::State& state) {
  sim::QuantileEstimator quantiles(4096);
  Rng rng(1);
  for (auto _ : state) {
    quantiles.Add(rng.NextDouble());
  }
  benchmark::DoNotOptimize(quantiles.Quantile(0.99));
}
BENCHMARK(BM_QuantileEstimatorAdd);

void BM_WaitsForCycleCheck(benchmark::State& state) {
  // A 50-node chain with a closing back-edge: worst-case full traversal.
  lockmgr::WaitsForGraph graph;
  for (lockmgr::TxnId i = 0; i < 50; ++i) graph.AddWait(i, i + 1);
  graph.AddWait(50, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.FindCycleFrom(0));
  }
}
BENCHMARK(BM_WaitsForCycleCheck);

}  // namespace
}  // namespace granulock

BENCHMARK_MAIN();
