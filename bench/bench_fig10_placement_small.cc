// Figure 10: effects of number of locks and granule placement on
// throughput with small transactions (maxtransize = 50, mean ~25
// entities), for npros in {1, 30}.
//
// Paper shapes: same qualitative behaviour as Figure 9 with the dip moved
// left — under random/worst placement throughput falls until the lock
// count passes the mean entities accessed (~25), then rises as added
// granularity finally buys concurrency, peaking at ltot = dbsize (fine
// granularity pays off for small random transactions).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  base.maxtransize = 50;
  bench::PrintBanner("Figure 10",
                     "Throughput vs number of locks and granule placement, "
                     "small transactions (maxtransize=50), npros in {1,30}",
                     base, args);

  std::vector<bench::Series> series;
  for (int64_t npros : {1, 30}) {
    for (model::Placement placement :
         {model::Placement::kBest, model::Placement::kRandom,
          model::Placement::kWorst}) {
      model::SystemConfig cfg = base;
      cfg.npros = npros;
      workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
      spec.placement = placement;
      series.push_back({StrFormat("%s/npros=%lld",
                                  model::PlacementToString(placement),
                                  (long long)npros),
                        cfg, spec,
                        {}});
    }
  }
  const bench::FigureData data = bench::RunFigure("fig10", series, args);
  bench::PrintMetricTable(data, bench::Metric::kThroughput, args);
  bench::PrintOptimaSummary(data);
  bench::MaybeWriteJsonReport("fig10", data, args);
  return 0;
}
