// Figure 3: effects of number of locks and number of processors on the
// useful I/O time and useful CPU time (the per-processor busy time spent
// on transaction work rather than lock processing).
//
// Paper shapes: convex in the number of locks; both useful times fall as
// processors are added (each sub-transaction needs less service); beyond
// the optimum (10-100 locks) the spread across npros narrows because small
// systems burn proportionally more time on lock operations.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace granulock;
  const bench::BenchArgs args = bench::ParseArgsOrDie(argc, argv);
  model::SystemConfig base = model::SystemConfig::Table1Defaults();
  bench::PrintBanner("Figure 3",
                     "Useful I/O time and useful CPU time vs number of "
                     "locks, for npros in {1,2,5,10,20,30}",
                     base, args);

  std::vector<bench::Series> series;
  for (int64_t npros : {1, 2, 5, 10, 20, 30}) {
    model::SystemConfig cfg = base;
    cfg.npros = npros;
    series.push_back({StrFormat("npros=%lld", (long long)npros), cfg,
                      workload::WorkloadSpec::Base(cfg),
                      {}});
  }
  const bench::FigureData data = bench::RunFigure("fig03", series, args);
  bench::PrintMetricTable(data, bench::Metric::kUsefulIo, args);
  bench::PrintMetricTable(data, bench::Metric::kUsefulCpu, args);
  bench::MaybeWriteJsonReport("fig03", data, args);
  return 0;
}
