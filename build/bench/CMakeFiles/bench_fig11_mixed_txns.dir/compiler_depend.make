# Empty compiler generated dependencies file for bench_fig11_mixed_txns.
# This may be replaced when dependencies are built.
