file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mixed_txns.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig11_mixed_txns.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig11_mixed_txns.dir/bench_fig11_mixed_txns.cc.o"
  "CMakeFiles/bench_fig11_mixed_txns.dir/bench_fig11_mixed_txns.cc.o.d"
  "bench_fig11_mixed_txns"
  "bench_fig11_mixed_txns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mixed_txns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
