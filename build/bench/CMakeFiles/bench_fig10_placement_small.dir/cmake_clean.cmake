file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_placement_small.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig10_placement_small.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig10_placement_small.dir/bench_fig10_placement_small.cc.o"
  "CMakeFiles/bench_fig10_placement_small.dir/bench_fig10_placement_small.cc.o.d"
  "bench_fig10_placement_small"
  "bench_fig10_placement_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_placement_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
