# Empty compiler generated dependencies file for bench_fig10_placement_small.
# This may be replaced when dependencies are built.
