# Empty compiler generated dependencies file for bench_fig02_npros_throughput.
# This may be replaced when dependencies are built.
