file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_random_partitioning.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig08_random_partitioning.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig08_random_partitioning.dir/bench_fig08_random_partitioning.cc.o"
  "CMakeFiles/bench_fig08_random_partitioning.dir/bench_fig08_random_partitioning.cc.o.d"
  "bench_fig08_random_partitioning"
  "bench_fig08_random_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_random_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
