# Empty compiler generated dependencies file for bench_fig08_random_partitioning.
# This may be replaced when dependencies are built.
