# Empty dependencies file for bench_fig07_lock_io_time.
# This may be replaced when dependencies are built.
