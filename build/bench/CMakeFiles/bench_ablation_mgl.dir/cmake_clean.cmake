file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mgl.dir/bench_ablation_mgl.cc.o"
  "CMakeFiles/bench_ablation_mgl.dir/bench_ablation_mgl.cc.o.d"
  "CMakeFiles/bench_ablation_mgl.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_mgl.dir/bench_common.cc.o.d"
  "bench_ablation_mgl"
  "bench_ablation_mgl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mgl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
