# Empty dependencies file for bench_ablation_mgl.
# This may be replaced when dependencies are built.
