# Empty compiler generated dependencies file for bench_fig04_lock_overhead_large.
# This may be replaced when dependencies are built.
