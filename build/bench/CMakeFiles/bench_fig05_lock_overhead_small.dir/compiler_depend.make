# Empty compiler generated dependencies file for bench_fig05_lock_overhead_small.
# This may be replaced when dependencies are built.
