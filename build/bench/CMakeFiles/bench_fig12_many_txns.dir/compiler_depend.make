# Empty compiler generated dependencies file for bench_fig12_many_txns.
# This may be replaced when dependencies are built.
