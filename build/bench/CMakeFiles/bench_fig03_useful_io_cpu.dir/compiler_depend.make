# Empty compiler generated dependencies file for bench_fig03_useful_io_cpu.
# This may be replaced when dependencies are built.
