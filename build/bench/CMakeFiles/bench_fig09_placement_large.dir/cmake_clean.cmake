file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_placement_large.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig09_placement_large.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig09_placement_large.dir/bench_fig09_placement_large.cc.o"
  "CMakeFiles/bench_fig09_placement_large.dir/bench_fig09_placement_large.cc.o.d"
  "bench_fig09_placement_large"
  "bench_fig09_placement_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_placement_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
