
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_common.cc" "bench/CMakeFiles/bench_fig09_placement_large.dir/bench_common.cc.o" "gcc" "bench/CMakeFiles/bench_fig09_placement_large.dir/bench_common.cc.o.d"
  "/root/repo/bench/bench_fig09_placement_large.cc" "bench/CMakeFiles/bench_fig09_placement_large.dir/bench_fig09_placement_large.cc.o" "gcc" "bench/CMakeFiles/bench_fig09_placement_large.dir/bench_fig09_placement_large.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/granulock_db.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/granulock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lockmgr/CMakeFiles/granulock_lockmgr.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/granulock_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/granulock_model.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/granulock_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/granulock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/granulock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
