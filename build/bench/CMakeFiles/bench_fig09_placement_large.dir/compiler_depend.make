# Empty compiler generated dependencies file for bench_fig09_placement_large.
# This may be replaced when dependencies are built.
