file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_conflict_model.dir/bench_ablation_conflict_model.cc.o"
  "CMakeFiles/bench_ablation_conflict_model.dir/bench_ablation_conflict_model.cc.o.d"
  "CMakeFiles/bench_ablation_conflict_model.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_conflict_model.dir/bench_common.cc.o.d"
  "bench_ablation_conflict_model"
  "bench_ablation_conflict_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_conflict_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
