# Empty dependencies file for granule_selector_test.
# This may be replaced when dependencies are built.
