file(REMOVE_RECURSE
  "CMakeFiles/granule_selector_test.dir/granule_selector_test.cc.o"
  "CMakeFiles/granule_selector_test.dir/granule_selector_test.cc.o.d"
  "granule_selector_test"
  "granule_selector_test.pdb"
  "granule_selector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granule_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
