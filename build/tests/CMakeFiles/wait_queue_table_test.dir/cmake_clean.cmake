file(REMOVE_RECURSE
  "CMakeFiles/wait_queue_table_test.dir/wait_queue_table_test.cc.o"
  "CMakeFiles/wait_queue_table_test.dir/wait_queue_table_test.cc.o.d"
  "wait_queue_table_test"
  "wait_queue_table_test.pdb"
  "wait_queue_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wait_queue_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
