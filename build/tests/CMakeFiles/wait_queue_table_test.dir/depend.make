# Empty dependencies file for wait_queue_table_test.
# This may be replaced when dependencies are built.
