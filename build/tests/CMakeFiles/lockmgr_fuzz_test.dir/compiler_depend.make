# Empty compiler generated dependencies file for lockmgr_fuzz_test.
# This may be replaced when dependencies are built.
