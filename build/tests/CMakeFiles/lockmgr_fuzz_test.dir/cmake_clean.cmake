file(REMOVE_RECURSE
  "CMakeFiles/lockmgr_fuzz_test.dir/lockmgr_fuzz_test.cc.o"
  "CMakeFiles/lockmgr_fuzz_test.dir/lockmgr_fuzz_test.cc.o.d"
  "lockmgr_fuzz_test"
  "lockmgr_fuzz_test.pdb"
  "lockmgr_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockmgr_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
