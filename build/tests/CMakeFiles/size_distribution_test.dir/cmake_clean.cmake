file(REMOVE_RECURSE
  "CMakeFiles/size_distribution_test.dir/size_distribution_test.cc.o"
  "CMakeFiles/size_distribution_test.dir/size_distribution_test.cc.o.d"
  "size_distribution_test"
  "size_distribution_test.pdb"
  "size_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/size_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
