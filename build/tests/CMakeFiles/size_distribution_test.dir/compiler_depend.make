# Empty compiler generated dependencies file for size_distribution_test.
# This may be replaced when dependencies are built.
