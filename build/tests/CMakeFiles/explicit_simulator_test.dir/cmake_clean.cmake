file(REMOVE_RECURSE
  "CMakeFiles/explicit_simulator_test.dir/explicit_simulator_test.cc.o"
  "CMakeFiles/explicit_simulator_test.dir/explicit_simulator_test.cc.o.d"
  "explicit_simulator_test"
  "explicit_simulator_test.pdb"
  "explicit_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explicit_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
