# Empty compiler generated dependencies file for explicit_simulator_test.
# This may be replaced when dependencies are built.
