file(REMOVE_RECURSE
  "CMakeFiles/busy_union_test.dir/busy_union_test.cc.o"
  "CMakeFiles/busy_union_test.dir/busy_union_test.cc.o.d"
  "busy_union_test"
  "busy_union_test.pdb"
  "busy_union_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/busy_union_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
