# Empty compiler generated dependencies file for busy_union_test.
# This may be replaced when dependencies are built.
