file(REMOVE_RECURSE
  "CMakeFiles/priority_server_test.dir/priority_server_test.cc.o"
  "CMakeFiles/priority_server_test.dir/priority_server_test.cc.o.d"
  "priority_server_test"
  "priority_server_test.pdb"
  "priority_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
