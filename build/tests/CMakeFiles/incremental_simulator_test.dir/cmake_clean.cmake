file(REMOVE_RECURSE
  "CMakeFiles/incremental_simulator_test.dir/incremental_simulator_test.cc.o"
  "CMakeFiles/incremental_simulator_test.dir/incremental_simulator_test.cc.o.d"
  "incremental_simulator_test"
  "incremental_simulator_test.pdb"
  "incremental_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
