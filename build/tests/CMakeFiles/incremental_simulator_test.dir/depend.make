# Empty dependencies file for incremental_simulator_test.
# This may be replaced when dependencies are built.
