file(REMOVE_RECURSE
  "CMakeFiles/transfer_simulator_test.dir/transfer_simulator_test.cc.o"
  "CMakeFiles/transfer_simulator_test.dir/transfer_simulator_test.cc.o.d"
  "transfer_simulator_test"
  "transfer_simulator_test.pdb"
  "transfer_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
