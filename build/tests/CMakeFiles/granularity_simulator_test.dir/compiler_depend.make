# Empty compiler generated dependencies file for granularity_simulator_test.
# This may be replaced when dependencies are built.
