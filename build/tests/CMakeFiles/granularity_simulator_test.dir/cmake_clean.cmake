file(REMOVE_RECURSE
  "CMakeFiles/granularity_simulator_test.dir/granularity_simulator_test.cc.o"
  "CMakeFiles/granularity_simulator_test.dir/granularity_simulator_test.cc.o.d"
  "granularity_simulator_test"
  "granularity_simulator_test.pdb"
  "granularity_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granularity_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
