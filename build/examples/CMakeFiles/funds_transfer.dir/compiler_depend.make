# Empty compiler generated dependencies file for funds_transfer.
# This may be replaced when dependencies are built.
