file(REMOVE_RECURSE
  "CMakeFiles/funds_transfer.dir/funds_transfer.cpp.o"
  "CMakeFiles/funds_transfer.dir/funds_transfer.cpp.o.d"
  "funds_transfer"
  "funds_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/funds_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
