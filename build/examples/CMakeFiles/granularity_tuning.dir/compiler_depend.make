# Empty compiler generated dependencies file for granularity_tuning.
# This may be replaced when dependencies are built.
