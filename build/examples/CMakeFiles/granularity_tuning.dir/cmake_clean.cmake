file(REMOVE_RECURSE
  "CMakeFiles/granularity_tuning.dir/granularity_tuning.cpp.o"
  "CMakeFiles/granularity_tuning.dir/granularity_tuning.cpp.o.d"
  "granularity_tuning"
  "granularity_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granularity_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
