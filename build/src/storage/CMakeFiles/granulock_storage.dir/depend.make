# Empty dependencies file for granulock_storage.
# This may be replaced when dependencies are built.
