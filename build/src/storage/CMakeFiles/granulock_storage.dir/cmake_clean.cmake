file(REMOVE_RECURSE
  "CMakeFiles/granulock_storage.dir/record_store.cc.o"
  "CMakeFiles/granulock_storage.dir/record_store.cc.o.d"
  "libgranulock_storage.a"
  "libgranulock_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granulock_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
