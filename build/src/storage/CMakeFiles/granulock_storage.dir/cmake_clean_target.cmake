file(REMOVE_RECURSE
  "libgranulock_storage.a"
)
