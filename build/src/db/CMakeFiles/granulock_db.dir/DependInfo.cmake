
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/explicit_simulator.cc" "src/db/CMakeFiles/granulock_db.dir/explicit_simulator.cc.o" "gcc" "src/db/CMakeFiles/granulock_db.dir/explicit_simulator.cc.o.d"
  "/root/repo/src/db/granule_selector.cc" "src/db/CMakeFiles/granulock_db.dir/granule_selector.cc.o" "gcc" "src/db/CMakeFiles/granulock_db.dir/granule_selector.cc.o.d"
  "/root/repo/src/db/incremental_simulator.cc" "src/db/CMakeFiles/granulock_db.dir/incremental_simulator.cc.o" "gcc" "src/db/CMakeFiles/granulock_db.dir/incremental_simulator.cc.o.d"
  "/root/repo/src/db/transfer_simulator.cc" "src/db/CMakeFiles/granulock_db.dir/transfer_simulator.cc.o" "gcc" "src/db/CMakeFiles/granulock_db.dir/transfer_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/granulock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lockmgr/CMakeFiles/granulock_lockmgr.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/granulock_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/granulock_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/granulock_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/granulock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/granulock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
