file(REMOVE_RECURSE
  "CMakeFiles/granulock_db.dir/explicit_simulator.cc.o"
  "CMakeFiles/granulock_db.dir/explicit_simulator.cc.o.d"
  "CMakeFiles/granulock_db.dir/granule_selector.cc.o"
  "CMakeFiles/granulock_db.dir/granule_selector.cc.o.d"
  "CMakeFiles/granulock_db.dir/incremental_simulator.cc.o"
  "CMakeFiles/granulock_db.dir/incremental_simulator.cc.o.d"
  "CMakeFiles/granulock_db.dir/transfer_simulator.cc.o"
  "CMakeFiles/granulock_db.dir/transfer_simulator.cc.o.d"
  "libgranulock_db.a"
  "libgranulock_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granulock_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
