file(REMOVE_RECURSE
  "libgranulock_db.a"
)
