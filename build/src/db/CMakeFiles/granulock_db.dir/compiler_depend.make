# Empty compiler generated dependencies file for granulock_db.
# This may be replaced when dependencies are built.
