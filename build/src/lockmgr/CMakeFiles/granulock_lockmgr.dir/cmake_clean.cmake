file(REMOVE_RECURSE
  "CMakeFiles/granulock_lockmgr.dir/hierarchical.cc.o"
  "CMakeFiles/granulock_lockmgr.dir/hierarchical.cc.o.d"
  "CMakeFiles/granulock_lockmgr.dir/lock_mode.cc.o"
  "CMakeFiles/granulock_lockmgr.dir/lock_mode.cc.o.d"
  "CMakeFiles/granulock_lockmgr.dir/lock_table.cc.o"
  "CMakeFiles/granulock_lockmgr.dir/lock_table.cc.o.d"
  "CMakeFiles/granulock_lockmgr.dir/wait_queue_table.cc.o"
  "CMakeFiles/granulock_lockmgr.dir/wait_queue_table.cc.o.d"
  "CMakeFiles/granulock_lockmgr.dir/waits_for.cc.o"
  "CMakeFiles/granulock_lockmgr.dir/waits_for.cc.o.d"
  "libgranulock_lockmgr.a"
  "libgranulock_lockmgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granulock_lockmgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
