
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lockmgr/hierarchical.cc" "src/lockmgr/CMakeFiles/granulock_lockmgr.dir/hierarchical.cc.o" "gcc" "src/lockmgr/CMakeFiles/granulock_lockmgr.dir/hierarchical.cc.o.d"
  "/root/repo/src/lockmgr/lock_mode.cc" "src/lockmgr/CMakeFiles/granulock_lockmgr.dir/lock_mode.cc.o" "gcc" "src/lockmgr/CMakeFiles/granulock_lockmgr.dir/lock_mode.cc.o.d"
  "/root/repo/src/lockmgr/lock_table.cc" "src/lockmgr/CMakeFiles/granulock_lockmgr.dir/lock_table.cc.o" "gcc" "src/lockmgr/CMakeFiles/granulock_lockmgr.dir/lock_table.cc.o.d"
  "/root/repo/src/lockmgr/wait_queue_table.cc" "src/lockmgr/CMakeFiles/granulock_lockmgr.dir/wait_queue_table.cc.o" "gcc" "src/lockmgr/CMakeFiles/granulock_lockmgr.dir/wait_queue_table.cc.o.d"
  "/root/repo/src/lockmgr/waits_for.cc" "src/lockmgr/CMakeFiles/granulock_lockmgr.dir/waits_for.cc.o" "gcc" "src/lockmgr/CMakeFiles/granulock_lockmgr.dir/waits_for.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/granulock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
