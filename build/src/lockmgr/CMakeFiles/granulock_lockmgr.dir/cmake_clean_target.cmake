file(REMOVE_RECURSE
  "libgranulock_lockmgr.a"
)
