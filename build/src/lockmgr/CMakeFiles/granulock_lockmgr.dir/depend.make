# Empty dependencies file for granulock_lockmgr.
# This may be replaced when dependencies are built.
