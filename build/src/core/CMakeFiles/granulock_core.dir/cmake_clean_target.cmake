file(REMOVE_RECURSE
  "libgranulock_core.a"
)
