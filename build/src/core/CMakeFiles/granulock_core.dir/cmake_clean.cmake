file(REMOVE_RECURSE
  "CMakeFiles/granulock_core.dir/experiment.cc.o"
  "CMakeFiles/granulock_core.dir/experiment.cc.o.d"
  "CMakeFiles/granulock_core.dir/granularity_simulator.cc.o"
  "CMakeFiles/granulock_core.dir/granularity_simulator.cc.o.d"
  "CMakeFiles/granulock_core.dir/metrics.cc.o"
  "CMakeFiles/granulock_core.dir/metrics.cc.o.d"
  "libgranulock_core.a"
  "libgranulock_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granulock_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
