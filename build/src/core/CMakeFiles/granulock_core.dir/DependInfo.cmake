
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/granulock_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/granulock_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/granularity_simulator.cc" "src/core/CMakeFiles/granulock_core.dir/granularity_simulator.cc.o" "gcc" "src/core/CMakeFiles/granulock_core.dir/granularity_simulator.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/granulock_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/granulock_core.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/granulock_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/granulock_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/granulock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/granulock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
