# Empty compiler generated dependencies file for granulock_core.
# This may be replaced when dependencies are built.
