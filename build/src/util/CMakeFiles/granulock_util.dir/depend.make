# Empty dependencies file for granulock_util.
# This may be replaced when dependencies are built.
