file(REMOVE_RECURSE
  "libgranulock_util.a"
)
