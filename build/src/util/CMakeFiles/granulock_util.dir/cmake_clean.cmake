file(REMOVE_RECURSE
  "CMakeFiles/granulock_util.dir/flags.cc.o"
  "CMakeFiles/granulock_util.dir/flags.cc.o.d"
  "CMakeFiles/granulock_util.dir/logging.cc.o"
  "CMakeFiles/granulock_util.dir/logging.cc.o.d"
  "CMakeFiles/granulock_util.dir/random.cc.o"
  "CMakeFiles/granulock_util.dir/random.cc.o.d"
  "CMakeFiles/granulock_util.dir/status.cc.o"
  "CMakeFiles/granulock_util.dir/status.cc.o.d"
  "CMakeFiles/granulock_util.dir/strings.cc.o"
  "CMakeFiles/granulock_util.dir/strings.cc.o.d"
  "CMakeFiles/granulock_util.dir/table.cc.o"
  "CMakeFiles/granulock_util.dir/table.cc.o.d"
  "libgranulock_util.a"
  "libgranulock_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granulock_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
