# Empty dependencies file for granulock_sim.
# This may be replaced when dependencies are built.
