file(REMOVE_RECURSE
  "libgranulock_sim.a"
)
