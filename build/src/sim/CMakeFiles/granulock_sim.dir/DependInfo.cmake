
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/busy_union.cc" "src/sim/CMakeFiles/granulock_sim.dir/busy_union.cc.o" "gcc" "src/sim/CMakeFiles/granulock_sim.dir/busy_union.cc.o.d"
  "/root/repo/src/sim/priority_server.cc" "src/sim/CMakeFiles/granulock_sim.dir/priority_server.cc.o" "gcc" "src/sim/CMakeFiles/granulock_sim.dir/priority_server.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/granulock_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/granulock_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/granulock_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/granulock_sim.dir/stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/granulock_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/granulock_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/granulock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
