file(REMOVE_RECURSE
  "CMakeFiles/granulock_sim.dir/busy_union.cc.o"
  "CMakeFiles/granulock_sim.dir/busy_union.cc.o.d"
  "CMakeFiles/granulock_sim.dir/priority_server.cc.o"
  "CMakeFiles/granulock_sim.dir/priority_server.cc.o.d"
  "CMakeFiles/granulock_sim.dir/simulator.cc.o"
  "CMakeFiles/granulock_sim.dir/simulator.cc.o.d"
  "CMakeFiles/granulock_sim.dir/stats.cc.o"
  "CMakeFiles/granulock_sim.dir/stats.cc.o.d"
  "CMakeFiles/granulock_sim.dir/trace.cc.o"
  "CMakeFiles/granulock_sim.dir/trace.cc.o.d"
  "libgranulock_sim.a"
  "libgranulock_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granulock_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
