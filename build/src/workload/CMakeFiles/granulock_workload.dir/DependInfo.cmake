
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/size_distribution.cc" "src/workload/CMakeFiles/granulock_workload.dir/size_distribution.cc.o" "gcc" "src/workload/CMakeFiles/granulock_workload.dir/size_distribution.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/workload/CMakeFiles/granulock_workload.dir/workload.cc.o" "gcc" "src/workload/CMakeFiles/granulock_workload.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/granulock_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/granulock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
