file(REMOVE_RECURSE
  "CMakeFiles/granulock_workload.dir/size_distribution.cc.o"
  "CMakeFiles/granulock_workload.dir/size_distribution.cc.o.d"
  "CMakeFiles/granulock_workload.dir/workload.cc.o"
  "CMakeFiles/granulock_workload.dir/workload.cc.o.d"
  "libgranulock_workload.a"
  "libgranulock_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granulock_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
