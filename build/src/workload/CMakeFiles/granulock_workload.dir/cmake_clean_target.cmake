file(REMOVE_RECURSE
  "libgranulock_workload.a"
)
