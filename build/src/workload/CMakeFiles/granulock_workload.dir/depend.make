# Empty dependencies file for granulock_workload.
# This may be replaced when dependencies are built.
