file(REMOVE_RECURSE
  "CMakeFiles/granulock_model.dir/analytic.cc.o"
  "CMakeFiles/granulock_model.dir/analytic.cc.o.d"
  "CMakeFiles/granulock_model.dir/config.cc.o"
  "CMakeFiles/granulock_model.dir/config.cc.o.d"
  "CMakeFiles/granulock_model.dir/conflict.cc.o"
  "CMakeFiles/granulock_model.dir/conflict.cc.o.d"
  "CMakeFiles/granulock_model.dir/placement.cc.o"
  "CMakeFiles/granulock_model.dir/placement.cc.o.d"
  "libgranulock_model.a"
  "libgranulock_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granulock_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
