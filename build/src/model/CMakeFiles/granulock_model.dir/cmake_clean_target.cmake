file(REMOVE_RECURSE
  "libgranulock_model.a"
)
