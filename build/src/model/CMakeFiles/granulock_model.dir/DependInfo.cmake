
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/analytic.cc" "src/model/CMakeFiles/granulock_model.dir/analytic.cc.o" "gcc" "src/model/CMakeFiles/granulock_model.dir/analytic.cc.o.d"
  "/root/repo/src/model/config.cc" "src/model/CMakeFiles/granulock_model.dir/config.cc.o" "gcc" "src/model/CMakeFiles/granulock_model.dir/config.cc.o.d"
  "/root/repo/src/model/conflict.cc" "src/model/CMakeFiles/granulock_model.dir/conflict.cc.o" "gcc" "src/model/CMakeFiles/granulock_model.dir/conflict.cc.o.d"
  "/root/repo/src/model/placement.cc" "src/model/CMakeFiles/granulock_model.dir/placement.cc.o" "gcc" "src/model/CMakeFiles/granulock_model.dir/placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/granulock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
