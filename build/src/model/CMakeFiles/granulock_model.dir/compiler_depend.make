# Empty compiler generated dependencies file for granulock_model.
# This may be replaced when dependencies are built.
