// Trace inspection: run one Figure-2 configuration with the full
// observability stack attached and dump everything it collects:
//
//   * a Chrome trace_event JSON (open in Perfetto or chrome://tracing) of
//     every transaction's phase spans — pending-queue wait, lock wait,
//     per-sub-transaction I/O and CPU service, fork-join sync — with one
//     track per processor plus a lifecycle track;
//   * a time-series CSV of active/blocked/pending counts, per-node CPU and
//     disk utilization, and interval throughput, sampled every
//     `--sample_interval` time units;
//   * the metrics-registry snapshot (engine self-profiling counters, the
//     response-time histogram, event-queue high-water mark) as JSON;
//   * the aggregated response-time decomposition that
//     `SimulationMetrics::ToString()` prints.
//
//   $ ./trace_inspection [--ltot=N] [--npros=N] [--tmax=T] [--seed=S]
//                        [--out_prefix=trace_inspection]
//
// Attaching the sinks never changes simulated results: the same seed
// yields bit-identical metrics with or without them (see
// tests/observability_test.cc).

#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/granularity_simulator.h"
#include "obs/registry.h"
#include "obs/span_trace.h"
#include "obs/time_series.h"
#include "util/fileio.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace granulock;

  // Figure 2's base point: Table 1 parameters, moderate granularity.
  model::SystemConfig cfg = model::SystemConfig::Table1Defaults();
  cfg.ltot = 100;
  cfg.npros = 10;
  cfg.tmax = 2000.0;
  int64_t seed = 42;
  double sample_interval = 50.0;
  std::string out_prefix = "trace_inspection";
  std::string log_level = "info";
  FlagParser parser;
  parser.AddInt64("ltot", &cfg.ltot, cfg.ltot, "number of locks (granules)");
  parser.AddInt64("npros", &cfg.npros, cfg.npros, "number of processors");
  parser.AddDouble("tmax", &cfg.tmax, cfg.tmax, "simulated time units");
  parser.AddInt64("seed", &seed, 42, "PRNG seed");
  parser.AddDouble("sample_interval", &sample_interval, 50.0,
                   "time-series sampling cadence (simulated time units)");
  parser.AddString("out_prefix", &out_prefix, "trace_inspection",
                   "output file prefix");
  parser.AddString("log_level", &log_level, "info",
                   "minimum log severity: debug|info|warning|error");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.code() == StatusCode::kFailedPrecondition) return 0;
  if (!flag_status.ok()) {
    std::cerr << flag_status << "\n" << parser.UsageString(argv[0]);
    return 1;
  }
  if (log_level == "debug") {
    SetLogThreshold(LogLevel::kDebug);
  } else if (log_level == "warning") {
    SetLogThreshold(LogLevel::kWarning);
  } else if (log_level == "error") {
    SetLogThreshold(LogLevel::kError);
  }
  if (sample_interval <= 0.0) {
    std::cerr << "--sample_interval must be > 0 (got " << sample_interval
              << ")\n";
    return 1;
  }

  const workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
  std::printf("simulating: %s\n", cfg.ToString().c_str());
  std::printf("workload:   %s\n\n", spec.Describe().c_str());

  // Attach all three sinks. They are plain stack objects; the engine only
  // borrows them for the duration of the run.
  obs::MetricsRegistry registry;
  obs::SpanRecorder spans;
  obs::TimeSeriesSampler sampler(sample_interval);
  core::GranularitySimulator::Options options;
  options.obs = {&registry, &spans, &sampler};

  const Result<core::SimulationMetrics> result =
      core::GranularitySimulator::RunOnce(cfg, spec,
                                          static_cast<uint64_t>(seed),
                                          options);
  if (!result.ok()) {
    std::cerr << "simulation failed: " << result.status() << "\n";
    return 1;
  }

  // The aggregated view: every paper metric plus the response-time
  // decomposition table the phase spans roll up into.
  std::printf("%s\n", result->ToString().c_str());

  // Sanity-check that the recorded spans tile each transaction's response
  // time exactly — the invariant that makes the trace trustworthy.
  const Status reconciled = spans.CheckReconciliation();
  std::printf("span reconciliation: %s\n", reconciled.ToString().c_str());
  std::printf("spans recorded: %zu (%llu dropped), txns completed: %zu\n\n",
              spans.spans().size(), (unsigned long long)spans.dropped(),
              spans.completed_txns());

  struct Output {
    const char* what;
    std::string path;
  };
  const Output outputs[] = {
      {"Chrome trace (chrome://tracing, Perfetto)",
       out_prefix + "_trace.json"},
      {"time series (one row per sample tick)", out_prefix + "_series.csv"},
      {"metrics registry snapshot", out_prefix + "_metrics.json"},
  };
  const auto write_atomic = [](const std::string& path,
                               const auto& render) -> bool {
    std::ostringstream os;
    render(os);
    const Status ws = WriteFileAtomic(path, os.str());
    if (!ws.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                   ws.ToString().c_str());
      return false;
    }
    return true;
  };
  bool all_written =
      write_atomic(outputs[0].path,
                   [&](std::ostream& os) { spans.WriteChromeTrace(os); });
  all_written &= write_atomic(outputs[1].path,
                              [&](std::ostream& os) { sampler.WriteCsv(os); });
  all_written &= write_atomic(
      outputs[2].path, [&](std::ostream& os) { registry.WriteJson(os); });
  if (!all_written) return 1;
  for (const Output& out : outputs) {
    std::printf("wrote %-45s %s\n", out.what, out.path.c_str());
  }
  return 0;
}
