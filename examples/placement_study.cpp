// Placement study on the explicit lock table: how access pattern
// (sequential vs random vs adversarial) and read share change the picture
// when conflicts are decided by a REAL lock table over concrete granules
// rather than the paper's probabilistic approximation.
//
//   $ ./placement_study --ltot=100 --read_fraction=0.5
//
// Also demonstrates the hierarchical (multiple-granularity) extension:
// transactions above a size threshold take one database-level lock.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "db/explicit_simulator.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace granulock;

  model::SystemConfig cfg = model::SystemConfig::Table1Defaults();
  int64_t seed = 42;
  double read_fraction = 0.0;
  int64_t coarse_threshold = 250;
  FlagParser parser;
  parser.AddInt64("ltot", &cfg.ltot, 100, "number of locks (granules)");
  parser.AddInt64("npros", &cfg.npros, 10, "number of processors");
  parser.AddInt64("maxtransize", &cfg.maxtransize, 500,
                  "maximum transaction size");
  parser.AddDouble("tmax", &cfg.tmax, 10000.0, "simulated time units");
  parser.AddInt64("seed", &seed, 42, "PRNG seed");
  parser.AddDouble("read_fraction", &read_fraction,
                   0.0, "probability a transaction is read-only (S locks)");
  parser.AddInt64("coarse_threshold", &coarse_threshold, 250,
                  "MGL: entity count at which a txn locks the whole DB");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.code() == StatusCode::kFailedPrecondition) return 0;
  if (!flag_status.ok()) {
    std::cerr << flag_status << "\n" << parser.UsageString(argv[0]);
    return 1;
  }

  std::printf("explicit-lock-table study: %s\n", cfg.ToString().c_str());
  std::printf("read fraction %.2f, MGL coarse threshold %lld entities\n\n",
              read_fraction, (long long)coarse_threshold);

  TablePrinter table({"placement", "strategy", "throughput", "response",
                      "denial rate", "avg active"});
  for (model::Placement placement :
       {model::Placement::kBest, model::Placement::kRandom,
        model::Placement::kWorst}) {
    workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
    spec.placement = placement;

    for (bool hierarchical : {false, true}) {
      db::ExplicitSimulator::Options options;
      options.read_fraction = read_fraction;
      if (hierarchical) {
        options.strategy =
            db::ExplicitSimulator::LockingStrategy::kHierarchical;
        options.coarse_threshold = coarse_threshold;
      }
      auto result = db::ExplicitSimulator::RunOnce(
          cfg, spec, static_cast<uint64_t>(seed), options);
      if (!result.ok()) {
        std::cerr << "simulation failed: " << result.status() << "\n";
        return 1;
      }
      table.AddRow({model::PlacementToString(placement),
                    hierarchical ? "MGL" : "flat",
                    StrFormat("%.5g", result->throughput),
                    StrFormat("%.5g", result->response_time),
                    StrFormat("%.3f", result->denial_rate),
                    StrFormat("%.2f", result->avg_active)});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nreading the table: sequential access (best placement) tolerates\n"
      "coarse granularity; random/worst access at this lock count conflicts\n"
      "heavily unless transactions are readers; MGL rescues mixed workloads\n"
      "by capping the large transactions' lock cost at one lock.\n");
  return 0;
}
