// Paper tour: a guided, fast walkthrough of every experimental finding in
// Dandamudi & Au (ICDE 1991), each reproduced with a miniature run and
// narrated. Good first stop after `quickstart`; the full-size sweeps live
// in the bench/ binaries.
//
//   $ ./paper_tour [--tmax=2500] [--seed=42]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/experiment.h"
#include "db/explicit_simulator.h"
#include "db/incremental_simulator.h"
#include "model/analytic.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/strings.h"

namespace {

using namespace granulock;

double g_tmax = 2500.0;
int64_t g_seed = 42;

double Run(model::SystemConfig cfg, const workload::WorkloadSpec& spec) {
  cfg.tmax = g_tmax;
  auto result = core::GranularitySimulator::RunOnce(
      cfg, spec, static_cast<uint64_t>(g_seed));
  if (!result.ok()) {
    std::cerr << "simulation failed: " << result.status() << "\n";
    std::exit(1);
  }
  return result->throughput;
}

void Section(const char* title) { std::printf("\n== %s ==\n", title); }

}  // namespace

int main(int argc, char** argv) {
  std::string log_level = "info";
  FlagParser parser;
  parser.AddDouble("tmax", &g_tmax, 2500.0, "time units per mini-run");
  parser.AddInt64("seed", &g_seed, 42, "PRNG seed");
  parser.AddString("log_level", &log_level, "info",
                   "minimum log severity: debug|info|warning|error");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.code() == StatusCode::kFailedPrecondition) return 0;
  if (!flag_status.ok()) {
    std::cerr << flag_status << "\n" << parser.UsageString(argv[0]);
    return 1;
  }
  if (log_level == "debug") {
    SetLogThreshold(LogLevel::kDebug);
  } else if (log_level == "warning") {
    SetLogThreshold(LogLevel::kWarning);
  } else if (log_level == "error") {
    SetLogThreshold(LogLevel::kError);
  }

  std::printf(
      "A tour of 'Locking Granularity in Multiprocessor Database Systems'\n"
      "(Dandamudi & Au, ICDE 1991), one mini-experiment per finding.\n");

  model::SystemConfig base = model::SystemConfig::Table1Defaults();

  Section("1. Granularity is a trade-off (Figure 2)");
  {
    model::SystemConfig cfg = base;
    cfg.npros = 10;
    const auto spec = workload::WorkloadSpec::Base(cfg);
    cfg.ltot = 1;
    const double coarse = Run(cfg, spec);
    cfg.ltot = 50;
    const double mid = Run(cfg, spec);
    cfg.ltot = 5000;
    const double fine = Run(cfg, spec);
    std::printf(
        "  throughput at 1 / 50 / 5000 locks: %.4f / %.4f / %.4f\n"
        "  -> moderate granularity wins; one lock serializes, one lock per\n"
        "     entity drowns in lock overhead.\n",
        coarse, mid, fine);
  }

  Section("2. More processors, same story, higher stakes (Figure 2)");
  {
    for (int64_t npros : {1, 30}) {
      model::SystemConfig cfg = base;
      cfg.npros = npros;
      const auto spec = workload::WorkloadSpec::Base(cfg);
      cfg.ltot = 10;
      const double best = Run(cfg, spec);
      cfg.ltot = 5000;
      const double fine = Run(cfg, spec);
      std::printf(
          "  npros=%-2lld: optimum-ish %.4f vs finest %.4f (lost: %.4f)\n",
          (long long)npros, best, fine, best - fine);
    }
    std::printf(
        "  -> the absolute penalty for over-fine granularity grows with\n"
        "     system size.\n");
  }

  Section("3. Lock overhead is the villain (Figures 4-5)");
  {
    model::SystemConfig cfg = base;
    cfg.npros = 10;
    cfg.tmax = g_tmax;
    const auto spec = workload::WorkloadSpec::Base(cfg);
    for (int64_t ltot : {1, 10, 5000}) {
      cfg.ltot = ltot;
      auto r = core::GranularitySimulator::RunOnce(
          cfg, spec, static_cast<uint64_t>(g_seed));
      std::printf("  ltot=%-5lld lock overhead %.1f units, denial rate %.2f\n",
                  (long long)ltot, r->lockios + r->lockcpus, r->denial_rate);
    }
    std::printf(
        "  -> concave at the far left (denied requests are re-billed),\n"
        "     exploding on the right (every transaction sets many locks).\n");
  }

  Section("4. Small transactions want finer granularity (Figure 6)");
  {
    model::SystemConfig cfg = base;
    cfg.npros = 10;
    for (int64_t maxtransize : {50, 500}) {
      cfg.maxtransize = maxtransize;
      auto sweep = core::SweepLockCounts(
          [&] { model::SystemConfig c = cfg; c.tmax = g_tmax; return c; }(),
          workload::WorkloadSpec::Base(cfg),
          {1, 10, 50, 200, 1000, 5000}, static_cast<uint64_t>(g_seed), 1);
      const auto& best = core::BestThroughputPoint(*sweep);
      std::printf("  maxtransize=%-4lld optimal locks=%-5lld (tp %.4f)\n",
                  (long long)maxtransize, (long long)best.ltot,
                  best.metrics.mean.throughput);
    }
  }

  Section("5. A memory-resident lock table only stops the bleeding (Fig 7)");
  {
    model::SystemConfig cfg = base;
    cfg.npros = 10;
    for (double liotime : {0.2, 0.0}) {
      cfg.liotime = liotime;
      const auto spec = workload::WorkloadSpec::Base(cfg);
      cfg.ltot = 100;
      const double mid = Run(cfg, spec);
      cfg.ltot = 5000;
      const double fine = Run(cfg, spec);
      std::printf("  liotime=%.1f: tp at 100 locks %.4f, at 5000 locks %.4f\n",
                  liotime, mid, fine);
    }
    std::printf(
        "  -> with free lock I/O fine granularity stops hurting, but it\n"
        "     never beats ~100 locks.\n");
  }

  Section("6. Horizontal beats random partitioning (Figure 8)");
  {
    model::SystemConfig cfg = base;
    cfg.npros = 10;
    cfg.ltot = 100;
    workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
    const double horizontal = Run(cfg, spec);
    spec.partitioning = workload::PartitioningMethod::kRandom;
    const double random = Run(cfg, spec);
    std::printf("  horizontal %.4f vs random %.4f\n", horizontal, random);
  }

  Section("7. Random access turns the curve upside down (Figures 9-10)");
  {
    model::SystemConfig cfg = base;
    cfg.npros = 10;
    workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
    spec.placement = model::Placement::kWorst;
    cfg.ltot = 1;
    const double coarse = Run(cfg, spec);
    cfg.ltot = 250;
    const double valley = Run(cfg, spec);
    cfg.ltot = 5000;
    const double fine = Run(cfg, spec);
    std::printf(
        "  worst placement tp at 1 / 250 / 5000 locks: %.4f / %.4f / %.4f\n"
        "  -> medium granularity is the worst of both worlds when access\n"
        "     is random.\n",
        coarse, valley, fine);
  }

  Section("8. A 20% large-transaction tail drags everyone down (Fig 11)");
  {
    model::SystemConfig cfg = base;
    cfg.npros = 10;
    cfg.ltot = 5000;
    workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
    spec.sizes = std::make_shared<workload::UniformSizeDistribution>(50);
    const double small = Run(cfg, spec);
    spec.sizes = workload::MakeSmallLargeMix(0.8, 50, 500);
    const double mix = Run(cfg, spec);
    spec.sizes = std::make_shared<workload::UniformSizeDistribution>(500);
    const double large = Run(cfg, spec);
    std::printf("  all-small %.4f | 80/20 mix %.4f | all-large %.4f\n",
                small, mix, large);
  }

  Section("9. Heavy load prefers coarse locks (Figure 12) ... ");
  {
    model::SystemConfig cfg = base;
    cfg.ntrans = 200;
    cfg.npros = 20;
    const auto spec = workload::WorkloadSpec::Base(cfg);
    cfg.ltot = 10;
    const double coarse = Run(cfg, spec);
    cfg.ltot = 5000;
    const double fine = Run(cfg, spec);
    std::printf("  ntrans=200: tp at 10 locks %.4f vs 5000 locks %.4f\n",
                coarse, fine);

    std::printf("  ... unless you add admission control (§3.7's remedy):\n");
    core::GranularitySimulator::Options capped;
    capped.max_active = 5;
    cfg.tmax = g_tmax;
    auto r = core::GranularitySimulator::RunOnce(
        cfg, spec, static_cast<uint64_t>(g_seed), capped);
    std::printf("  5000 locks with MPL cap 5: tp %.4f\n", r->throughput);
  }

  Section("10. Beyond the paper: the approximations hold up");
  {
    model::SystemConfig cfg = base;
    cfg.npros = 10;
    cfg.ltot = 100;
    cfg.tmax = g_tmax;
    const auto spec = workload::WorkloadSpec::Base(cfg);
    auto prob = core::GranularitySimulator::RunOnce(
        cfg, spec, static_cast<uint64_t>(g_seed));
    auto expl = db::ExplicitSimulator::RunOnce(
        cfg, spec, static_cast<uint64_t>(g_seed));
    auto incr = db::IncrementalSimulator::RunOnce(
        cfg, spec, static_cast<uint64_t>(g_seed));
    const model::ThroughputBounds bounds =
        model::ComputeThroughputBounds(cfg, model::Placement::kBest);
    std::printf(
        "  probabilistic conflicts (paper) tp %.4f\n"
        "  explicit lock table            tp %.4f\n"
        "  claim-as-needed 2PL            tp %.4f (deadlock aborts %lld)\n"
        "  analytic I/O-capacity ceiling     %.4f\n",
        prob->throughput, expl->throughput, incr->throughput,
        (long long)incr->deadlock_aborts, bounds.io_capacity);
  }

  std::printf("\nTour complete. See bench/ for the full-size figures.\n");
  return 0;
}
