// Capacity planning: how many shared-nothing nodes does a workload need to
// hit a throughput target, and which partitioning should be used?
//
//   $ ./capacity_planning --target=0.3 --maxtransize=500
//
// For each candidate npros the example tunes the lock count (the paper
// shows the optimum moves with npros), compares horizontal vs random
// partitioning at that optimum, and reports the smallest system that meets
// the target.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/experiment.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace granulock;

/// Tunes ltot for (cfg, partitioning) and returns the best point.
core::SweepPoint TuneLocks(model::SystemConfig cfg,
                           workload::PartitioningMethod partitioning,
                           uint64_t seed, int reps) {
  workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
  spec.partitioning = partitioning;
  auto sweep = core::SweepLockCounts(
      cfg, spec, core::StandardLockSweep(cfg.dbsize), seed, reps);
  if (!sweep.ok()) {
    std::cerr << "sweep failed: " << sweep.status() << "\n";
    std::exit(1);
  }
  return core::BestThroughputPoint(*sweep);
}

}  // namespace

int main(int argc, char** argv) {
  model::SystemConfig cfg = model::SystemConfig::Table1Defaults();
  double target = 0.3;
  int64_t seed = 42;
  int64_t reps = 2;
  FlagParser parser;
  parser.AddDouble("target", &target, 0.3,
                   "required throughput (transactions per time unit)");
  parser.AddInt64("maxtransize", &cfg.maxtransize, 500,
                  "maximum transaction size");
  parser.AddInt64("ntrans", &cfg.ntrans, 10, "closed-system transactions");
  parser.AddDouble("tmax", &cfg.tmax, 5000.0, "simulated time units");
  parser.AddInt64("seed", &seed, 42, "base PRNG seed");
  parser.AddInt64("reps", &reps, 2, "replications per point");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.code() == StatusCode::kFailedPrecondition) return 0;
  if (!flag_status.ok()) {
    std::cerr << flag_status << "\n" << parser.UsageString(argv[0]);
    return 1;
  }

  std::printf("planning for throughput target %.3g txn/unit\n", target);
  std::printf("base config: %s\n\n", cfg.ToString().c_str());

  TablePrinter table({"npros", "horizontal tp", "(ltot*)", "random tp",
                      "(ltot*)", "meets target"});
  int64_t chosen = -1;
  for (int64_t npros : {1, 2, 5, 10, 20, 30}) {
    model::SystemConfig point = cfg;
    point.npros = npros;
    const core::SweepPoint horizontal =
        TuneLocks(point, workload::PartitioningMethod::kHorizontal,
                  static_cast<uint64_t>(seed), static_cast<int>(reps));
    const core::SweepPoint random =
        TuneLocks(point, workload::PartitioningMethod::kRandom,
                  static_cast<uint64_t>(seed), static_cast<int>(reps));
    const double best_tp = horizontal.metrics.mean.throughput;
    const bool meets = best_tp >= target;
    if (meets && chosen < 0) chosen = npros;
    table.AddRow({StrFormat("%lld", (long long)npros),
                  StrFormat("%.5g", horizontal.metrics.mean.throughput),
                  StrFormat("%lld", (long long)horizontal.ltot),
                  StrFormat("%.5g", random.metrics.mean.throughput),
                  StrFormat("%lld", (long long)random.ltot),
                  meets ? "yes" : "no"});
  }
  table.Print(std::cout);

  if (chosen > 0) {
    std::printf(
        "\nsmallest system meeting the target: npros = %lld with "
        "horizontal partitioning\n",
        (long long)chosen);
  } else {
    std::printf(
        "\nno candidate met the target; horizontal partitioning at npros=30 "
        "is the closest\n");
  }
  std::printf(
      "(horizontal partitioning dominates random at every size, matching "
      "the paper's §3.4)\n");
  return 0;
}
