// Quickstart: simulate the paper's base system once and print every output
// metric.
//
//   $ ./quickstart [--ltot=N] [--npros=N] [--tmax=T] [--seed=S]
//                  [--trace=FILE]    # dump the transaction lifecycle CSV
//
// The three-step pattern below — build a SystemConfig, describe the
// workload with a WorkloadSpec, call GranularitySimulator::RunOnce — is
// the whole public API needed for basic use.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "core/granularity_simulator.h"
#include "sim/trace.h"
#include "util/fileio.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace granulock;

  // 1. System parameters (Table 1 of the paper), overridable from flags.
  model::SystemConfig cfg = model::SystemConfig::Table1Defaults();
  int64_t seed = 42;
  std::string trace_path;
  FlagParser parser;
  parser.AddInt64("ltot", &cfg.ltot, 100, "number of locks (granules)");
  parser.AddInt64("npros", &cfg.npros, 10, "number of processors");
  parser.AddInt64("ntrans", &cfg.ntrans, 10, "closed-system transactions");
  parser.AddInt64("maxtransize", &cfg.maxtransize, 500,
                  "maximum transaction size");
  parser.AddDouble("tmax", &cfg.tmax, 10000.0, "simulated time units");
  parser.AddInt64("seed", &seed, 42, "PRNG seed");
  parser.AddString("trace", &trace_path, "",
                   "write the transaction lifecycle trace to this CSV file");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.code() == StatusCode::kFailedPrecondition) return 0;
  if (!flag_status.ok()) {
    std::cerr << flag_status << "\n" << parser.UsageString(argv[0]);
    return 1;
  }

  // 2. Workload: uniform sizes, best placement, horizontal partitioning —
  //    the paper's base workload.
  const workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);

  std::printf("simulating: %s\n", cfg.ToString().c_str());
  std::printf("workload:   %s\n\n", spec.Describe().c_str());

  // 3. Run and report (optionally with the lifecycle tracer attached).
  sim::TraceRecorder trace;
  core::GranularitySimulator::Options options;
  if (!trace_path.empty()) options.trace = &trace;
  const Result<core::SimulationMetrics> result =
      core::GranularitySimulator::RunOnce(cfg, spec,
                                          static_cast<uint64_t>(seed),
                                          options);
  if (!result.ok()) {
    std::cerr << "simulation failed: " << result.status() << "\n";
    return 1;
  }
  std::printf("%s", result->ToString().c_str());
  if (!trace_path.empty()) {
    std::ostringstream out;
    trace.WriteCsv(out);
    const Status ws = WriteFileAtomic(trace_path, out.str());
    if (!ws.ok()) {
      std::cerr << "cannot write " << trace_path << ": " << ws << "\n";
      return 1;
    }
    std::printf("trace             %zu events -> %s\n",
                trace.events().size(), trace_path.c_str());
  }
  return 0;
}
