// Granularity tuning: find the throughput-optimal number of locks for a
// workload, and quantify the cost of getting it wrong — the operational
// question the paper answers ("how many granules should my DBA configure?").
//
//   $ ./granularity_tuning --npros=20 --maxtransize=100 --placement=random
//
// Sweeps the lock-count grid with replications, prints the curve with 95%
// confidence intervals, and reports the optimum plus the penalty for
// running at the two extremes (1 lock, one lock per entity).

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/experiment.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace granulock;

  model::SystemConfig cfg = model::SystemConfig::Table1Defaults();
  int64_t seed = 42;
  int64_t reps = 3;
  std::string placement_name;
  FlagParser parser;
  parser.AddInt64("npros", &cfg.npros, 10, "number of processors");
  parser.AddInt64("maxtransize", &cfg.maxtransize, 500,
                  "maximum transaction size");
  parser.AddInt64("ntrans", &cfg.ntrans, 10, "closed-system transactions");
  parser.AddDouble("tmax", &cfg.tmax, 10000.0, "simulated time units");
  parser.AddInt64("seed", &seed, 42, "base PRNG seed");
  parser.AddInt64("reps", &reps, 3, "replications per point");
  parser.AddString("placement", &placement_name, "best",
                   "granule placement: best|random|worst");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.code() == StatusCode::kFailedPrecondition) return 0;
  if (!flag_status.ok()) {
    std::cerr << flag_status << "\n" << parser.UsageString(argv[0]);
    return 1;
  }

  workload::WorkloadSpec spec = workload::WorkloadSpec::Base(cfg);
  if (!model::PlacementFromString(placement_name, &spec.placement)) {
    std::cerr << "unknown placement '" << placement_name << "'\n";
    return 1;
  }

  std::printf("tuning granularity for: %s\n", cfg.ToString().c_str());
  std::printf("workload: %s\n\n", spec.Describe().c_str());

  const auto sweep_result = core::SweepLockCounts(
      cfg, spec, core::StandardLockSweep(cfg.dbsize),
      static_cast<uint64_t>(seed), static_cast<int>(reps));
  if (!sweep_result.ok()) {
    std::cerr << "sweep failed: " << sweep_result.status() << "\n";
    return 1;
  }
  const auto& sweep = *sweep_result;

  TablePrinter table(
      {"locks", "throughput", "+/-95%", "response", "denial rate"});
  for (const core::SweepPoint& point : sweep) {
    table.AddRow({StrFormat("%lld", (long long)point.ltot),
                  StrFormat("%.5g", point.metrics.mean.throughput),
                  StrFormat("%.2g", point.metrics.throughput_hw95),
                  StrFormat("%.5g", point.metrics.mean.response_time),
                  StrFormat("%.3f", point.metrics.mean.denial_rate)});
  }
  table.Print(std::cout);

  const core::SweepPoint& best = core::BestThroughputPoint(sweep);
  const double tp_coarse = sweep.front().metrics.mean.throughput;
  const double tp_fine = sweep.back().metrics.mean.throughput;
  const double tp_best = best.metrics.mean.throughput;
  std::printf("\nrecommendation: ltot = %lld (throughput %.5g)\n",
              (long long)best.ltot, tp_best);
  std::printf("  vs 1 lock (whole database):  %.1f%% slower\n",
              100.0 * (1.0 - tp_coarse / tp_best));
  std::printf("  vs %lld locks (per entity):  %.1f%% slower\n",
              (long long)sweep.back().ltot,
              100.0 * (1.0 - tp_fine / tp_best));
  return 0;
}
