// Funds transfer: the paper's opening example, run for real.
//
// "If these concurrent accesses are not controlled properly, the database
// will become inconsistent ... it might lead to the lost update problem in
// a funds transfer transaction." (§1)
//
// This example executes concurrent transfers against real account records
// inside the simulated shared-nothing machine, and shows:
//   1. without locking, money literally disappears (lost updates);
//   2. conservative locking restores integrity at ANY granularity;
//   3. the granularity then only decides how FAST the correct answer is —
//      the trade-off the rest of the paper quantifies.
//
//   $ ./funds_transfer [--accounts=200] [--ntrans=20] [--tmax=2000]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "db/transfer_simulator.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace granulock;

  model::SystemConfig cfg = model::SystemConfig::Table1Defaults();
  int64_t seed = 42;
  FlagParser parser;
  parser.AddInt64("accounts", &cfg.dbsize, 200, "number of accounts");
  parser.AddInt64("ntrans", &cfg.ntrans, 20, "concurrent transfer sessions");
  parser.AddInt64("npros", &cfg.npros, 4, "number of nodes");
  parser.AddDouble("tmax", &cfg.tmax, 2000.0, "simulated time units");
  parser.AddInt64("seed", &seed, 42, "PRNG seed");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.code() == StatusCode::kFailedPrecondition) return 0;
  if (!flag_status.ok()) {
    std::cerr << flag_status << "\n" << parser.UsageString(argv[0]);
    return 1;
  }
  cfg.maxtransize = 2;  // transfers always touch two records

  auto run = [&](int64_t ltot, db::TransferSimulator::ConcurrencyControl cc) {
    model::SystemConfig point = cfg;
    point.ltot = ltot;
    db::TransferSimulator::Options options;
    options.concurrency_control = cc;
    auto report = db::TransferSimulator::RunOnce(point, static_cast<uint64_t>(seed),
                                             options);
    if (!report.ok()) {
      std::cerr << "simulation failed: " << report.status() << "\n";
      std::exit(1);
    }
    return *report;
  };

  std::printf("bank: %lld accounts x 1000 units on %lld nodes, %lld tellers\n\n",
              (long long)cfg.dbsize, (long long)cfg.npros,
              (long long)cfg.ntrans);

  // Act 1: no concurrency control.
  {
    const auto report =
        run(1, db::TransferSimulator::ConcurrencyControl::kNoLocking);
    std::printf("without locking:\n");
    std::printf("  transfers completed:  %lld\n",
                (long long)report.metrics.totcom);
    std::printf("  money before/after:   %lld -> %lld  (%+lld!)\n",
                (long long)report.initial_total,
                (long long)report.final_total,
                (long long)(report.final_total - report.initial_total -
                            report.in_flight_imbalance));
    std::printf("  integrity:            %s\n\n",
                report.conserved ? "conserved" : "VIOLATED - lost updates");
  }

  // Act 2: conservative locking at several granularities.
  std::printf("with conservative locking (the paper's protocol):\n");
  TablePrinter table({"locks", "granule size", "throughput", "response",
                      "denial rate", "integrity"});
  for (int64_t ltot : std::vector<int64_t>{1, 5, 20, 100, cfg.dbsize}) {
    if (ltot > cfg.dbsize) continue;
    const auto report =
        run(ltot, db::TransferSimulator::ConcurrencyControl::kConservativeLocking);
    table.AddRow(
        {StrFormat("%lld", (long long)ltot),
         StrFormat("%.0f accounts",
                   static_cast<double>(cfg.dbsize) / static_cast<double>(ltot)),
         StrFormat("%.4f", report.metrics.throughput),
         StrFormat("%.2f", report.metrics.response_time),
         StrFormat("%.3f", report.metrics.denial_rate),
         report.conserved ? "conserved" : "VIOLATED"});
  }
  table.Print(std::cout);
  std::printf(
      "\nlocking makes every granularity CORRECT; granularity picks the\n"
      "throughput. Transfers are tiny random-access transactions, so finer\n"
      "granularity wins here — exactly the paper's conclusion for small\n"
      "transactions under random access.\n");
  return 0;
}
