#include "model/placement.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace granulock::model {

const char* PlacementToString(Placement p) {
  switch (p) {
    case Placement::kBest:
      return "best";
    case Placement::kRandom:
      return "random";
    case Placement::kWorst:
      return "worst";
  }
  return "?";
}

bool PlacementFromString(const std::string& s, Placement* out) {
  if (s == "best") {
    *out = Placement::kBest;
  } else if (s == "random") {
    *out = Placement::kRandom;
  } else if (s == "worst") {
    *out = Placement::kWorst;
  } else {
    return false;
  }
  return true;
}

double YaoExpectedGranules(int64_t dbsize, int64_t ltot, int64_t nu) {
  GRANULOCK_CHECK_GE(nu, 1);
  GRANULOCK_CHECK_LE(nu, dbsize);
  GRANULOCK_CHECK_GE(ltot, 1);
  GRANULOCK_CHECK_LE(ltot, dbsize);
  const double n = static_cast<double>(dbsize);
  const double granule = n / static_cast<double>(ltot);
  // P(a fixed granule is untouched) = C(dbsize - granule, nu) / C(dbsize, nu)
  //   = prod_{j=0}^{nu-1} (dbsize - granule - j) / (dbsize - j).
  // Each factor is in [0, 1), so the running product is numerically stable
  // and can only underflow harmlessly to 0.
  double miss_prob = 1.0;
  for (int64_t j = 0; j < nu; ++j) {
    const double numer = n - granule - static_cast<double>(j);
    if (numer <= 0.0) {
      miss_prob = 0.0;
      break;
    }
    miss_prob *= numer / (n - static_cast<double>(j));
    if (miss_prob == 0.0) break;
  }
  return static_cast<double>(ltot) * (1.0 - miss_prob);
}

int64_t BestPlacementLocks(int64_t dbsize, int64_t ltot, int64_t nu) {
  GRANULOCK_CHECK_GE(nu, 1);
  // ceil(nu * ltot / dbsize), at least one lock.
  const int64_t locks = (nu * ltot + dbsize - 1) / dbsize;
  return std::max<int64_t>(1, locks);
}

int64_t WorstPlacementLocks(int64_t ltot, int64_t nu) {
  GRANULOCK_CHECK_GE(nu, 1);
  return std::min(nu, ltot);
}

void YaoExpectedGranulesSweep(int64_t dbsize, int64_t ltot, int64_t max_nu,
                              double* out) {
  GRANULOCK_CHECK_GE(max_nu, 1);
  GRANULOCK_CHECK_LE(max_nu, dbsize);
  GRANULOCK_CHECK_GE(ltot, 1);
  GRANULOCK_CHECK_LE(ltot, dbsize);
  const double n = static_cast<double>(dbsize);
  const double granule = n / static_cast<double>(ltot);
  const double scale = static_cast<double>(ltot);
  // Extend one running miss-probability product across the nu range. The
  // scalar routine's cutoffs are absorbing (numer decreases with j, and a
  // zero product stays zero), so once either fires every later nu also
  // yields miss = 0 — exactly what the scalar loop would compute.
  double miss_prob = 1.0;
  for (int64_t j = 0; j < max_nu; ++j) {
    if (miss_prob != 0.0) {
      const double numer = n - granule - static_cast<double>(j);
      if (numer <= 0.0) {
        miss_prob = 0.0;
      } else {
        miss_prob *= numer / (n - static_cast<double>(j));
      }
    }
    out[j] = scale * (1.0 - miss_prob);
  }
}

LockDemandTable::LockDemandTable(Placement placement, int64_t dbsize,
                                 int64_t ltot, int64_t max_nu) {
  GRANULOCK_CHECK_GE(max_nu, 1);
  table_.resize(static_cast<size_t>(max_nu));
  if (placement == Placement::kRandom) {
    // One sweep for all expectations, then the same round-and-clamp as the
    // scalar LocksRequired.
    std::vector<double> expected(static_cast<size_t>(max_nu));
    YaoExpectedGranulesSweep(dbsize, ltot, max_nu, expected.data());
    for (int64_t nu = 1; nu <= max_nu; ++nu) {
      const int64_t best = BestPlacementLocks(dbsize, ltot, nu);
      const int64_t worst = WorstPlacementLocks(ltot, nu);
      const double e = expected[static_cast<size_t>(nu - 1)];
      int64_t locks = std::llround(e);
      locks = std::clamp(locks, best, worst);
      table_[static_cast<size_t>(nu - 1)] = LockDemand{locks, e};
    }
    return;
  }
  for (int64_t nu = 1; nu <= max_nu; ++nu) {
    table_[static_cast<size_t>(nu - 1)] =
        LocksRequired(placement, dbsize, ltot, nu);
  }
}

LockDemand LocksRequired(Placement placement, int64_t dbsize, int64_t ltot,
                         int64_t nu) {
  const int64_t best = BestPlacementLocks(dbsize, ltot, nu);
  const int64_t worst = WorstPlacementLocks(ltot, nu);
  switch (placement) {
    case Placement::kBest:
      return LockDemand{best, static_cast<double>(best)};
    case Placement::kWorst:
      return LockDemand{worst, static_cast<double>(worst)};
    case Placement::kRandom: {
      const double expected = YaoExpectedGranules(dbsize, ltot, nu);
      // Round the expectation for the conflict model's integer lock count,
      // clamped into the feasible [best, worst] envelope.
      int64_t locks = std::llround(expected);
      locks = std::clamp(locks, best, worst);
      return LockDemand{locks, expected};
    }
  }
  GRANULOCK_LOG(Fatal) << "unknown placement";
  return LockDemand{1, 1.0};
}

}  // namespace granulock::model
