#include "model/analytic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/strings.h"

namespace granulock::model {

double ThroughputBounds::Upper() const {
  return std::min({io_capacity, cpu_capacity, population_bound});
}

std::string ThroughputBounds::ToString() const {
  return StrFormat(
      "io_capacity=%.5g cpu_capacity=%.5g population=%.5g serial=%.5g "
      "(E[NU]=%.4g E[LU]=%.4g)",
      io_capacity, cpu_capacity, population_bound, serial_estimate,
      mean_entities, mean_locks);
}

ThroughputBounds ComputeThroughputBoundsForMeanSize(const SystemConfig& cfg,
                                                    Placement placement,
                                                    double mean_entities) {
  GRANULOCK_CHECK(cfg.Validate().ok()) << cfg.ToString();
  GRANULOCK_CHECK_GT(mean_entities, 0.0);
  ThroughputBounds bounds;
  bounds.mean_entities = mean_entities;

  // Mean lock demand evaluated at the mean transaction size. For best
  // placement LU is linear in NU (so this is exact up to the ceil); for
  // worst placement min(NU, ltot) is concave (the value at the mean is an
  // upper bound on the mean — still valid for *upper* throughput bounds
  // because more locks means more demand); for random placement Yao's
  // formula is concave in NU, same argument.
  const int64_t nu = std::clamp<int64_t>(
      static_cast<int64_t>(std::llround(mean_entities)), 1, cfg.dbsize);
  const LockDemand demand = LocksRequired(placement, cfg.dbsize, cfg.ltot, nu);
  bounds.mean_locks = demand.expected_locks;

  const double npros = static_cast<double>(cfg.npros);

  // Pool capacity bounds. Each completion consumes at least
  // E[NU]*iotime + E[LU]*liotime of disk-pool time (one successful lock
  // request; retries only add demand, so ignoring them keeps this an
  // upper bound on throughput).
  const double io_demand =
      mean_entities * cfg.iotime + bounds.mean_locks * cfg.liotime;
  const double cpu_demand =
      mean_entities * cfg.cputime + bounds.mean_locks * cfg.lcputime;
  bounds.io_capacity =
      io_demand > 0.0 ? npros / io_demand
                      : std::numeric_limits<double>::infinity();
  bounds.cpu_capacity =
      cpu_demand > 0.0 ? npros / cpu_demand
                       : std::numeric_limits<double>::infinity();

  // Minimal response time on an idle system: the lock phase runs in
  // parallel on all nodes (elapsed E[LU]*(liotime+lcputime)/npros), then
  // each sub-transaction performs its I/O and CPU shares back to back.
  const double lock_phase =
      bounds.mean_locks * (cfg.liotime + cfg.lcputime) / npros;
  const double work_phase =
      mean_entities * (cfg.iotime + cfg.cputime) / npros;
  const double r_min = lock_phase + work_phase;
  bounds.population_bound =
      r_min > 0.0 ? static_cast<double>(cfg.ntrans) / r_min
                  : std::numeric_limits<double>::infinity();

  // Serial system (ltot = 1): one lock per request, one transaction at a
  // time; throughput is the reciprocal of one transaction's cycle.
  const double serial_lock_phase = (cfg.liotime + cfg.lcputime) / npros;
  const double serial_cycle = serial_lock_phase + work_phase;
  bounds.serial_estimate = serial_cycle > 0.0 ? 1.0 / serial_cycle : 0.0;
  return bounds;
}

ThroughputBounds ComputeThroughputBounds(const SystemConfig& cfg,
                                         Placement placement) {
  const double mean_entities =
      (static_cast<double>(cfg.maxtransize) + 1.0) / 2.0;
  return ComputeThroughputBoundsForMeanSize(cfg, placement, mean_entities);
}

}  // namespace granulock::model
