#ifndef GRANULOCK_MODEL_CONFLICT_H_
#define GRANULOCK_MODEL_CONFLICT_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace granulock::model {

/// The Ries–Stonebraker probabilistic lock-conflict model used by the paper
/// (§2, "The computation of lock conflicts").
///
/// Let `T1..Tk` be the transactions currently holding locks, with `Lj`
/// locks each, out of `ltot` total locks. The unit interval (0, 1] is
/// partitioned into
///
///   P1 = (0, L1/ltot],  P2 = (L1/ltot, (L1+L2)/ltot], ...,
///   Pk = (sum_{j<k} Lj / ltot, sum_{j<=k} Lj / ltot],  P_{k+1} = rest.
///
/// A requester draws `p ~ U(0, 1]`; if p lands in Pj (j <= k) it is blocked
/// by Tj, otherwise it may proceed. Thus each active transaction blocks the
/// requester with probability `Lj/ltot`, and the total blocking probability
/// is `min(1, sum Lj / ltot)` — when active transactions jointly hold every
/// lock, a requester always blocks.
class ConflictModel {
 public:
  /// `ltot` is the total number of locks in the system (>= 1).
  explicit ConflictModel(int64_t ltot);

  /// Draws the conflict outcome. `active_locks[j]` is the number of locks
  /// held by the j-th active transaction. Returns the index of the blocking
  /// transaction in [0, k), or -1 if the requester may proceed. `k == 0`
  /// always proceeds.
  int DrawBlocker(const std::vector<int64_t>& active_locks, Rng& rng) const;

  /// Draws the scaled conflict variate `p * ltot` with `p ~ U(0, 1]` — the
  /// single RNG draw `DrawBlocker` performs. Splitting the draw from the
  /// scan lets callers that track the exact total of active lock counts
  /// skip the partial-sum scan entirely when `variate > total` (the scan
  /// could only ever return "proceed" in that case, because every partial
  /// sum of non-negative integers below 2^53 is exact in a double and
  /// bounded by the total).
  double DrawScaledVariate(Rng& rng) const {
    return rng.NextDoubleOpenClosed() * static_cast<double>(ltot_);
  }

  /// Resolves a previously drawn scaled variate against the active lock
  /// counts: returns the first index `j` whose cumulative lock count
  /// reaches `scaled_variate`, or -1. `DrawBlocker(a, rng)` is equivalent
  /// to `FindBlocker(a.data(), a.size(), DrawScaledVariate(rng))` for
  /// non-empty `a`.
  int FindBlocker(const int64_t* active_locks, size_t count,
                  double scaled_variate) const;

  /// The analytic probability that a requester is blocked (by anyone),
  /// `min(1, sum Lj / ltot)`. Exposed for tests and for the analytic
  /// cross-checks in the benches.
  double BlockProbability(const std::vector<int64_t>& active_locks) const;

  int64_t ltot() const { return ltot_; }

 private:
  int64_t ltot_;
};

}  // namespace granulock::model

#endif  // GRANULOCK_MODEL_CONFLICT_H_
