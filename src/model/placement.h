#ifndef GRANULOCK_MODEL_PLACEMENT_H_
#define GRANULOCK_MODEL_PLACEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace granulock::model {

/// Granule placement strategies (§2 and §3.5 of the paper): how the `NU`
/// entities a transaction touches map onto lockable granules, i.e. how many
/// of the `ltot` locks the transaction must acquire.
enum class Placement {
  /// Entities are packed into the fewest possible granules — models purely
  /// sequential access (range scans): `LU = ceil(NU * ltot / dbsize)`.
  kBest,
  /// Entities are drawn at random; the expected number of granules touched
  /// follows Yao's formula (Ries & Stonebraker's "random placement").
  kRandom,
  /// Every entity may land in a distinct granule: `LU = min(NU, ltot)`.
  kWorst,
};

/// Parse/format helpers ("best" / "random" / "worst").
const char* PlacementToString(Placement p);
bool PlacementFromString(const std::string& s, Placement* out);

/// The number of locks a transaction needs, as both the real-valued
/// expectation (used for lock-overhead cost, where fractional expected
/// locks are meaningful) and the integer count fed to the conflict model.
struct LockDemand {
  /// Integer lock count used by the conflict-interval computation;
  /// clamped to [best, min(NU, ltot)] and >= 1.
  int64_t locks;
  /// Real-valued lock count used for overhead cost: LIOtime = expected_locks
  /// * liotime, LCPUtime = expected_locks * lcputime.
  double expected_locks;
};

/// Yao's approximation for the expected number of granules touched when
/// `nu` distinct entities are drawn uniformly from `dbsize` entities that
/// are grouped into `ltot` equal granules:
///
///   E[granules] = ltot * (1 - C(dbsize - dbsize/ltot, nu) / C(dbsize, nu))
///
/// Granule size `dbsize/ltot` is treated as a real number (the paper sweeps
/// `ltot` values that do not divide `dbsize`). Requires 1 <= nu <= dbsize
/// and 1 <= ltot <= dbsize.
double YaoExpectedGranules(int64_t dbsize, int64_t ltot, int64_t nu);

/// Locks under best placement: ceil(nu * ltot / dbsize).
int64_t BestPlacementLocks(int64_t dbsize, int64_t ltot, int64_t nu);

/// Locks under worst placement: min(nu, ltot).
int64_t WorstPlacementLocks(int64_t ltot, int64_t nu);

/// Lock demand for a transaction of `nu` entities under `placement`.
LockDemand LocksRequired(Placement placement, int64_t dbsize, int64_t ltot,
                         int64_t nu);

/// Evaluates Yao's formula for every `nu` in `1..max_nu` in a single pass,
/// writing `YaoExpectedGranules(dbsize, ltot, nu)` to `out[nu - 1]`.
///
/// The per-`nu` product shares all but its last factor with the `nu - 1`
/// product, so the whole sweep extends one running product instead of
/// restarting it: O(max_nu) total instead of O(max_nu^2). The running
/// product performs the identical floating-point operation sequence as the
/// scalar routine's prefix (including the `numer <= 0` and underflow-to-0
/// cutoffs, both of which are absorbing), so every output is bit-identical
/// to its scalar counterpart. Requires 1 <= max_nu <= dbsize and
/// 1 <= ltot <= dbsize; `out` must hold `max_nu` doubles.
void YaoExpectedGranulesSweep(int64_t dbsize, int64_t ltot, int64_t max_nu,
                              double* out);

/// Precomputed `LocksRequired` answers for every transaction size a
/// workload can draw, for one fixed `(placement, dbsize, ltot)` cell.
///
/// Transaction generation queries the same `(nu, ltot)` point millions of
/// times per replication; under random placement each query used to pay an
/// O(nu) Yao product. The table folds the whole `nu` range into one
/// `YaoExpectedGranulesSweep`, making lookups O(1) and — because the sweep
/// is bit-identical to the scalar formula — leaving every downstream
/// metric unchanged.
class LockDemandTable {
 public:
  /// Builds the table for `nu` in `1..max_nu`. Requirements are those of
  /// `LocksRequired` (1 <= max_nu <= dbsize, 1 <= ltot <= dbsize).
  LockDemandTable(Placement placement, int64_t dbsize, int64_t ltot,
                  int64_t max_nu);

  /// The demand for a transaction touching `nu` entities; `nu` must be in
  /// `1..max_nu`. Bit-identical to `LocksRequired(placement, dbsize, ltot,
  /// nu)`.
  const LockDemand& Lookup(int64_t nu) const {
    return table_[static_cast<size_t>(nu - 1)];
  }

  int64_t max_nu() const { return static_cast<int64_t>(table_.size()); }

 private:
  std::vector<LockDemand> table_;
};

}  // namespace granulock::model

#endif  // GRANULOCK_MODEL_PLACEMENT_H_
