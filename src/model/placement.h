#ifndef GRANULOCK_MODEL_PLACEMENT_H_
#define GRANULOCK_MODEL_PLACEMENT_H_

#include <cstdint>
#include <string>

namespace granulock::model {

/// Granule placement strategies (§2 and §3.5 of the paper): how the `NU`
/// entities a transaction touches map onto lockable granules, i.e. how many
/// of the `ltot` locks the transaction must acquire.
enum class Placement {
  /// Entities are packed into the fewest possible granules — models purely
  /// sequential access (range scans): `LU = ceil(NU * ltot / dbsize)`.
  kBest,
  /// Entities are drawn at random; the expected number of granules touched
  /// follows Yao's formula (Ries & Stonebraker's "random placement").
  kRandom,
  /// Every entity may land in a distinct granule: `LU = min(NU, ltot)`.
  kWorst,
};

/// Parse/format helpers ("best" / "random" / "worst").
const char* PlacementToString(Placement p);
bool PlacementFromString(const std::string& s, Placement* out);

/// The number of locks a transaction needs, as both the real-valued
/// expectation (used for lock-overhead cost, where fractional expected
/// locks are meaningful) and the integer count fed to the conflict model.
struct LockDemand {
  /// Integer lock count used by the conflict-interval computation;
  /// clamped to [best, min(NU, ltot)] and >= 1.
  int64_t locks;
  /// Real-valued lock count used for overhead cost: LIOtime = expected_locks
  /// * liotime, LCPUtime = expected_locks * lcputime.
  double expected_locks;
};

/// Yao's approximation for the expected number of granules touched when
/// `nu` distinct entities are drawn uniformly from `dbsize` entities that
/// are grouped into `ltot` equal granules:
///
///   E[granules] = ltot * (1 - C(dbsize - dbsize/ltot, nu) / C(dbsize, nu))
///
/// Granule size `dbsize/ltot` is treated as a real number (the paper sweeps
/// `ltot` values that do not divide `dbsize`). Requires 1 <= nu <= dbsize
/// and 1 <= ltot <= dbsize.
double YaoExpectedGranules(int64_t dbsize, int64_t ltot, int64_t nu);

/// Locks under best placement: ceil(nu * ltot / dbsize).
int64_t BestPlacementLocks(int64_t dbsize, int64_t ltot, int64_t nu);

/// Locks under worst placement: min(nu, ltot).
int64_t WorstPlacementLocks(int64_t ltot, int64_t nu);

/// Lock demand for a transaction of `nu` entities under `placement`.
LockDemand LocksRequired(Placement placement, int64_t dbsize, int64_t ltot,
                         int64_t nu);

}  // namespace granulock::model

#endif  // GRANULOCK_MODEL_PLACEMENT_H_
