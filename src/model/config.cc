#include "model/config.h"

#include "util/strings.h"

namespace granulock::model {

Status SystemConfig::Validate() const {
  if (dbsize < 1) {
    return Status::InvalidArgument("dbsize must be >= 1");
  }
  if (ltot < 1 || ltot > dbsize) {
    return Status::InvalidArgument(
        StrFormat("ltot must be in [1, dbsize=%lld], got %lld",
                  (long long)dbsize, (long long)ltot));
  }
  if (ntrans < 1) {
    return Status::InvalidArgument("ntrans must be >= 1");
  }
  if (maxtransize < 1 || maxtransize > dbsize) {
    return Status::InvalidArgument(
        StrFormat("maxtransize must be in [1, dbsize=%lld], got %lld",
                  (long long)dbsize, (long long)maxtransize));
  }
  if (cputime < 0.0 || iotime < 0.0 || lcputime < 0.0 || liotime < 0.0) {
    return Status::InvalidArgument("service times must be non-negative");
  }
  if (cputime + iotime <= 0.0) {
    return Status::InvalidArgument(
        "at least one of cputime/iotime must be positive");
  }
  if (npros < 1) {
    return Status::InvalidArgument("npros must be >= 1");
  }
  if (tmax <= 0.0) {
    return Status::InvalidArgument("tmax must be positive");
  }
  if (warmup < 0.0 || warmup >= tmax) {
    return Status::InvalidArgument("warmup must be in [0, tmax)");
  }
  if (think_time < 0.0) {
    return Status::InvalidArgument("think_time must be non-negative");
  }
  return Status::OK();
}

SystemConfig SystemConfig::Table1Defaults() {
  SystemConfig cfg;
  cfg.dbsize = 5000;
  cfg.ltot = 100;
  cfg.ntrans = 10;
  cfg.maxtransize = 500;
  cfg.cputime = 0.05;
  cfg.iotime = 0.2;
  cfg.lcputime = 0.01;
  cfg.liotime = 0.2;
  cfg.npros = 10;
  cfg.tmax = 10000.0;
  cfg.warmup = 0.0;
  return cfg;
}

std::string SystemConfig::ToString() const {
  return StrFormat(
      "dbsize=%lld ltot=%lld ntrans=%lld maxtransize=%lld cputime=%g "
      "iotime=%g lcputime=%g liotime=%g npros=%lld tmax=%g warmup=%g "
      "think_time=%g",
      (long long)dbsize, (long long)ltot, (long long)ntrans,
      (long long)maxtransize, cputime, iotime, lcputime, liotime,
      (long long)npros, tmax, warmup, think_time);
}

}  // namespace granulock::model
