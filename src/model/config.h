#ifndef GRANULOCK_MODEL_CONFIG_H_
#define GRANULOCK_MODEL_CONFIG_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace granulock::model {

/// The simulation input parameters, named exactly as in §2 of the paper
/// (Dandamudi & Au, ICDE 1991). Defaults are the Table 1 values used by
/// the paper's base experiments (§3.1).
struct SystemConfig {
  /// Number of accessible entities in the entire database. An entity is
  /// the unit moved by the operating system (e.g. a 1 KiB page).
  int64_t dbsize = 5000;

  /// Number of locks (granules) in the database. `ltot == 1` is one lock
  /// for the whole database; `ltot == dbsize` is one lock per entity.
  /// This is the swept variable in every experiment.
  int64_t ltot = 100;

  /// Number of transactions in the closed system (terminal users). A
  /// completed transaction is immediately replaced by a fresh one.
  int64_t ntrans = 10;

  /// Maximum transaction size; sizes are uniform on {1..maxtransize}, so
  /// the mean size is ~maxtransize/2.
  int64_t maxtransize = 500;

  /// CPU time to process one database entity.
  double cputime = 0.05;

  /// I/O time to process one database entity (one read + one write).
  double iotime = 0.2;

  /// CPU time to request and set one lock (includes its release).
  double lcputime = 0.01;

  /// I/O time to request and set one lock (0 models a memory-resident
  /// lock table).
  double liotime = 0.2;

  /// Number of processors; each has a private CPU and disk
  /// (shared-nothing).
  int64_t npros = 10;

  /// Number of time units to run the simulation.
  double tmax = 10000.0;

  /// Measurement starts after this many time units (0 reproduces the
  /// paper's measure-from-the-start convention; benches keep 0).
  double warmup = 0.0;

  /// Mean terminal think time: a completed transaction's replacement
  /// enters the system after an exponentially distributed delay with this
  /// mean. 0 (the paper's model) replaces transactions immediately.
  double think_time = 0.0;

  /// Returns OK iff every parameter is in its documented domain
  /// (all sizes positive, ltot <= dbsize, warmup < tmax, costs >= 0, ...).
  Status Validate() const;

  /// The exact Table 1 parameter set.
  static SystemConfig Table1Defaults();

  /// One-line summary for logs and bench headers.
  std::string ToString() const;

  friend bool operator==(const SystemConfig&, const SystemConfig&) = default;
};

}  // namespace granulock::model

#endif  // GRANULOCK_MODEL_CONFIG_H_
