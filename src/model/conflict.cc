#include "model/conflict.h"

#include <algorithm>

#include "util/logging.h"

namespace granulock::model {

ConflictModel::ConflictModel(int64_t ltot) : ltot_(ltot) {
  GRANULOCK_CHECK_GE(ltot, 1);
}

int ConflictModel::DrawBlocker(const std::vector<int64_t>& active_locks,
                               Rng& rng) const {
  if (active_locks.empty()) return -1;
  // p ~ U(0, 1]; find the first j with p <= cum_j / ltot. Working with
  // p * ltot avoids accumulating division error across the partial sums.
  return FindBlocker(active_locks.data(), active_locks.size(),
                     DrawScaledVariate(rng));
}

int ConflictModel::FindBlocker(const int64_t* active_locks, size_t count,
                               double scaled_variate) const {
  double cum = 0.0;
  for (size_t j = 0; j < count; ++j) {
    GRANULOCK_CHECK_GE(active_locks[j], 0);
    cum += static_cast<double>(active_locks[j]);
    if (scaled_variate <= cum) return static_cast<int>(j);
  }
  return -1;
}

double ConflictModel::BlockProbability(
    const std::vector<int64_t>& active_locks) const {
  double sum = 0.0;
  for (int64_t l : active_locks) sum += static_cast<double>(l);
  return std::min(1.0, sum / static_cast<double>(ltot_));
}

}  // namespace granulock::model
