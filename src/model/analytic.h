#ifndef GRANULOCK_MODEL_ANALYTIC_H_
#define GRANULOCK_MODEL_ANALYTIC_H_

#include <string>

#include "model/config.h"
#include "model/placement.h"

namespace granulock::model {

/// Operational-analysis throughput bounds for the paper's closed system.
///
/// These are *model-independent* bounds computed from the configuration
/// alone (no simulation): any correct simulation of the system must stay
/// below `Upper()`, and the `ltot = 1` serial system must track
/// `serial_estimate`. The test suite uses them as an oracle for the
/// simulators, and `bench` output can show how close each operating point
/// gets to its ceiling.
struct ThroughputBounds {
  /// Disk-pool capacity bound: completions per time unit if every disk
  /// did nothing but useful transaction I/O plus the (un-retried) lock
  /// I/O, `npros / (E[NU]*iotime + E[LU]*liotime)`.
  double io_capacity = 0.0;

  /// CPU-pool capacity bound, analogously.
  double cpu_capacity = 0.0;

  /// Population (asymptotic) bound: `ntrans / R_min`, where `R_min` is
  /// the no-queueing response time of one transaction — its lock phase
  /// plus its I/O and CPU shares on an otherwise idle system.
  double population_bound = 0.0;

  /// Expected throughput of the fully serialized system (`ltot = 1`,
  /// exactly one transaction active at a time): `1 / R_min` with a
  /// single-lock lock phase. The simulated `ltot = 1` point must land
  /// near this value.
  double serial_estimate = 0.0;

  /// Mean per-transaction quantities the bounds were computed from.
  double mean_entities = 0.0;  ///< E[NU]
  double mean_locks = 0.0;     ///< E[LU] under the chosen placement

  /// The tightest upper bound: min(io_capacity, cpu_capacity,
  /// population_bound).
  double Upper() const;

  /// Human-readable summary.
  std::string ToString() const;
};

/// Computes the bounds for (`cfg`, `placement`) assuming the paper's base
/// size distribution `U{1..maxtransize}` (mean entities
/// `(maxtransize+1)/2`). `mean_locks` is evaluated at the mean transaction
/// size — exact for best/worst placement (which are linear / saturating in
/// NU over the relevant range) and a first-order approximation for
/// random placement.
ThroughputBounds ComputeThroughputBounds(const SystemConfig& cfg,
                                         Placement placement);

/// Same, for an arbitrary mean transaction size (e.g. mixtures).
ThroughputBounds ComputeThroughputBoundsForMeanSize(const SystemConfig& cfg,
                                                    Placement placement,
                                                    double mean_entities);

}  // namespace granulock::model

#endif  // GRANULOCK_MODEL_ANALYTIC_H_
