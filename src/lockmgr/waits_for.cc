#include "lockmgr/waits_for.h"

#include <algorithm>
#include <utility>

namespace granulock::lockmgr {

void WaitsForGraph::AddWait(TxnId waiter, TxnId holder) {
  if (waiter == holder) return;
  out_[waiter].insert(holder);
}

void WaitsForGraph::ClearWaits(TxnId waiter) { out_.erase(waiter); }

void WaitsForGraph::RemoveTransaction(TxnId txn) {
  out_.erase(txn);
  for (auto it = out_.begin(); it != out_.end();) {
    it->second.erase(txn);
    if (it->second.empty()) {
      it = out_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<TxnId> WaitsForGraph::FindCycleFrom(TxnId start) const {
  // Iterative DFS from `start`; a path back to `start` is a cycle. The
  // stack stores (node, next-neighbor iterator) pairs; `path` mirrors the
  // current DFS chain.
  std::vector<TxnId> path{start};
  std::unordered_set<TxnId> visited{start};
  struct Frame {
    TxnId node;
    std::unordered_set<TxnId>::const_iterator next;
    std::unordered_set<TxnId>::const_iterator end;
  };
  std::vector<Frame> stack;
  auto push = [&](TxnId node) {
    auto it = out_.find(node);
    if (it == out_.end()) {
      stack.push_back({node, {}, {}});
      return false;
    }
    stack.push_back({node, it->second.begin(), it->second.end()});
    return true;
  };
  if (!push(start)) return {};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    bool descended = false;
    while (frame.next != frame.end) {
      const TxnId next = *frame.next;
      ++frame.next;
      if (next == start) {
        return path;  // found a cycle back to start
      }
      if (visited.insert(next).second) {
        path.push_back(next);
        push(next);
        descended = true;
        break;
      }
    }
    if (!descended && !stack.empty() &&
        (stack.back().next == stack.back().end)) {
      stack.pop_back();
      if (!path.empty()) path.pop_back();
    }
  }
  return {};
}

int64_t WaitsForGraph::ChainDepthFrom(TxnId start) const {
  // Recursive DFS with memoization; on-path nodes are marked so a
  // back-edge (cycle) contributes depth 0 instead of recursing forever.
  // A depth computed while a cycle was being skipped is path-dependent,
  // so it is not memoized — keeping the result independent of the
  // unordered adjacency order even on transiently cyclic graphs.
  std::unordered_map<TxnId, int64_t> memo;
  std::unordered_set<TxnId> on_path;
  // Returns (depth, saw_cycle). Bounded by active transactions.
  auto depth = [&](auto&& self, TxnId node) -> std::pair<int64_t, bool> {
    auto mit = memo.find(node);
    if (mit != memo.end()) return {mit->second, false};
    auto it = out_.find(node);
    if (it == out_.end()) return {0, false};
    on_path.insert(node);
    int64_t best = 0;
    bool saw_cycle = false;
    for (const TxnId next : it->second) {
      if (on_path.count(next) != 0) {  // cycle: contributes 0
        saw_cycle = true;
        continue;
      }
      const auto [d, c] = self(self, next);
      best = std::max(best, 1 + d);
      saw_cycle = saw_cycle || c;
    }
    on_path.erase(node);
    if (!saw_cycle) memo.emplace(node, best);
    return {best, saw_cycle};
  };
  return depth(depth, start).first;
}

bool WaitsForGraph::HasEdge(TxnId waiter, TxnId holder) const {
  auto it = out_.find(waiter);
  return it != out_.end() && it->second.count(holder) > 0;
}

size_t WaitsForGraph::EdgeCount() const {
  size_t count = 0;
  for (const auto& [node, edges] : out_) count += edges.size();
  return count;
}

}  // namespace granulock::lockmgr
