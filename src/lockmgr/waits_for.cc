#include "lockmgr/waits_for.h"

#include <algorithm>

namespace granulock::lockmgr {

void WaitsForGraph::AddWait(TxnId waiter, TxnId holder) {
  if (waiter == holder) return;
  out_[waiter].insert(holder);
}

void WaitsForGraph::ClearWaits(TxnId waiter) { out_.erase(waiter); }

void WaitsForGraph::RemoveTransaction(TxnId txn) {
  out_.erase(txn);
  for (auto it = out_.begin(); it != out_.end();) {
    it->second.erase(txn);
    if (it->second.empty()) {
      it = out_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<TxnId> WaitsForGraph::FindCycleFrom(TxnId start) const {
  // Iterative DFS from `start`; a path back to `start` is a cycle. The
  // stack stores (node, next-neighbor iterator) pairs; `path` mirrors the
  // current DFS chain.
  std::vector<TxnId> path{start};
  std::unordered_set<TxnId> visited{start};
  struct Frame {
    TxnId node;
    std::unordered_set<TxnId>::const_iterator next;
    std::unordered_set<TxnId>::const_iterator end;
  };
  std::vector<Frame> stack;
  auto push = [&](TxnId node) {
    auto it = out_.find(node);
    if (it == out_.end()) {
      stack.push_back({node, {}, {}});
      return false;
    }
    stack.push_back({node, it->second.begin(), it->second.end()});
    return true;
  };
  if (!push(start)) return {};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    bool descended = false;
    while (frame.next != frame.end) {
      const TxnId next = *frame.next;
      ++frame.next;
      if (next == start) {
        return path;  // found a cycle back to start
      }
      if (visited.insert(next).second) {
        path.push_back(next);
        push(next);
        descended = true;
        break;
      }
    }
    if (!descended && !stack.empty() &&
        (stack.back().next == stack.back().end)) {
      stack.pop_back();
      if (!path.empty()) path.pop_back();
    }
  }
  return {};
}

bool WaitsForGraph::HasEdge(TxnId waiter, TxnId holder) const {
  auto it = out_.find(waiter);
  return it != out_.end() && it->second.count(holder) > 0;
}

size_t WaitsForGraph::EdgeCount() const {
  size_t count = 0;
  for (const auto& [node, edges] : out_) count += edges.size();
  return count;
}

}  // namespace granulock::lockmgr
