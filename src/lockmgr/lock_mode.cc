#include "lockmgr/lock_mode.h"

#include "util/logging.h"

namespace granulock::lockmgr {
namespace {

// Rows: held mode; columns: requested mode. Order: NL IS IX S SIX X.
constexpr bool kCompatible[kNumLockModes][kNumLockModes] = {
    // NL     IS     IX     S      SIX    X
    {true, true, true, true, true, true},       // NL
    {true, true, true, true, true, false},      // IS
    {true, true, true, false, false, false},    // IX
    {true, true, false, true, false, false},    // S
    {true, true, false, false, false, false},   // SIX
    {true, false, false, false, false, false},  // X
};

// Strength rank used by the supremum; IX and S are incomparable, their
// join is SIX.
constexpr int kRank[kNumLockModes] = {0, 1, 2, 2, 3, 4};

}  // namespace

const char* LockModeToString(LockMode mode) {
  switch (mode) {
    case LockMode::kNL:
      return "NL";
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kSIX:
      return "SIX";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

bool Compatible(LockMode held, LockMode requested) {
  return kCompatible[static_cast<int>(held)][static_cast<int>(requested)];
}

LockMode Supremum(LockMode a, LockMode b) {
  if (a == b) return a;
  const int ra = kRank[static_cast<int>(a)];
  const int rb = kRank[static_cast<int>(b)];
  // IX and S are the only incomparable pair; their join is SIX.
  if ((a == LockMode::kIX && b == LockMode::kS) ||
      (a == LockMode::kS && b == LockMode::kIX)) {
    return LockMode::kSIX;
  }
  // S + IX-flavoured combinations that pass through SIX.
  if ((a == LockMode::kSIX && (b == LockMode::kIX || b == LockMode::kS)) ||
      (b == LockMode::kSIX && (a == LockMode::kIX || a == LockMode::kS))) {
    return LockMode::kSIX;
  }
  return ra >= rb ? a : b;
}

bool Covers(LockMode a, LockMode b) { return Supremum(a, b) == a; }

LockMode RequiredIntention(LockMode mode) {
  switch (mode) {
    case LockMode::kNL:
      return LockMode::kNL;
    case LockMode::kIS:
    case LockMode::kS:
      return LockMode::kIS;
    case LockMode::kIX:
    case LockMode::kSIX:
    case LockMode::kX:
      return LockMode::kIX;
  }
  GRANULOCK_LOG(Fatal) << "unknown lock mode";
  return LockMode::kNL;
}

}  // namespace granulock::lockmgr
