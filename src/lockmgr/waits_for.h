#ifndef GRANULOCK_LOCKMGR_WAITS_FOR_H_
#define GRANULOCK_LOCKMGR_WAITS_FOR_H_

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lockmgr/lock_table.h"

namespace granulock::lockmgr {

/// A waits-for graph for deadlock detection under incremental ("claim as
/// needed") two-phase locking. Nodes are transactions; an edge `w -> h`
/// means transaction `w` is waiting for a lock held by `h`.
///
/// The paper assumes conservative locking precisely to avoid deadlock,
/// citing Ries & Stonebraker's observation that switching to claim-as-
/// needed "did not affect the conclusions"; the incremental simulator
/// uses this graph to re-verify that claim (see
/// `db::IncrementalSimulator` and `bench_ablation_claim_policy`).
class WaitsForGraph {
 public:
  WaitsForGraph() = default;

  /// Adds the edge `waiter -> holder`. Self-edges are ignored (a
  /// transaction never waits for itself under S-lock sharing). Duplicate
  /// edges are stored once.
  void AddWait(TxnId waiter, TxnId holder);

  /// Removes every outgoing edge of `waiter` (it stopped waiting).
  void ClearWaits(TxnId waiter);

  /// Removes the transaction entirely: its outgoing edges and every edge
  /// pointing at it.
  void RemoveTransaction(TxnId txn);

  /// Returns a deadlock cycle through `start` as an ordered list
  /// [start, t1, ..., tk] with tk waiting for start, or an empty vector
  /// if `start` is not on any cycle. Iterative DFS; O(V + E).
  std::vector<TxnId> FindCycleFrom(TxnId start) const;

  /// Length (in edges) of the longest waits-for path starting at `start`:
  /// 0 when `start` waits on nobody, 1 when all its holders are active,
  /// more when holders are themselves blocked. Back-edges to a node
  /// already on the current path contribute 0 (cycles are the deadlock
  /// detector's business). Memoized DFS; the result is a max over
  /// neighbors, so it is independent of the unordered adjacency order.
  int64_t ChainDepthFrom(TxnId start) const;

  /// True iff the edge exists.
  bool HasEdge(TxnId waiter, TxnId holder) const;

  /// Total number of edges (diagnostics).
  size_t EdgeCount() const;

  /// True iff the graph has no edges.
  bool Empty() const { return EdgeCount() == 0; }

 private:
  std::unordered_map<TxnId, std::unordered_set<TxnId>> out_;
};

}  // namespace granulock::lockmgr

#endif  // GRANULOCK_LOCKMGR_WAITS_FOR_H_
