#include "lockmgr/hierarchical.h"

#include <algorithm>
#include <map>

#include "sim/invariants.h"
#include "util/logging.h"

namespace granulock::lockmgr {

HierarchicalLockManager::HierarchicalLockManager(Options options)
    : options_(options) {
  GRANULOCK_CHECK_GE(options_.num_granules, 1);
  GRANULOCK_CHECK_GE(options_.num_files, 1);
  GRANULOCK_CHECK_LE(options_.num_files, options_.num_granules);
  granules_per_file_ = options_.num_granules / options_.num_files;
  if (granules_per_file_ < 1) granules_per_file_ = 1;
}

int64_t HierarchicalLockManager::FileOfGranule(int64_t granule) const {
  GRANULOCK_CHECK_GE(granule, 0);
  GRANULOCK_CHECK_LT(granule, options_.num_granules);
  const int64_t file = granule / granules_per_file_;
  return std::min(file, options_.num_files - 1);
}

HierarchicalLockManager::Key HierarchicalLockManager::KeyOf(
    const ObjectId& object) {
  return (static_cast<uint64_t>(object.level) << 48) |
         static_cast<uint64_t>(object.index);
}

ObjectId HierarchicalLockManager::ObjectOf(Key key) {
  ObjectId out;
  out.level = static_cast<ObjectId::Level>(key >> 48);
  out.index = static_cast<int64_t>(key & ((1ull << 48) - 1));
  return out;
}

std::vector<HierRequest> HierarchicalLockManager::EffectiveLockSet(
    const std::vector<HierRequest>& requests) const {
  // 1. Optional escalation: group granule requests by file and replace
  //    oversized groups with one file lock of the strongest mode.
  std::map<int64_t, std::vector<HierRequest>> per_file;
  std::vector<HierRequest> flat;
  for (const HierRequest& req : requests) {
    if (req.object.level == ObjectId::Level::kGranule) {
      per_file[FileOfGranule(req.object.index)].push_back(req);
    } else {
      flat.push_back(req);
    }
  }
  for (auto& [file, group] : per_file) {
    if (options_.escalation_threshold > 0 &&
        static_cast<int64_t>(group.size()) > options_.escalation_threshold) {
      LockMode strongest = LockMode::kNL;
      for (const HierRequest& req : group) {
        strongest = Supremum(strongest, req.mode);
      }
      // Intention modes never reach here (granule requests are leaf
      // requests), so `strongest` is S or X.
      flat.push_back(HierRequest{ObjectId::File(file), strongest});
    } else {
      flat.insert(flat.end(), group.begin(), group.end());
    }
  }

  // 2. Add required intention locks on ancestors, merging modes per
  //    object with the supremum.
  std::map<ObjectId, LockMode> effective;
  auto add = [&effective](const ObjectId& object, LockMode mode) {
    if (mode == LockMode::kNL) return;
    auto [it, inserted] = effective.emplace(object, mode);
    if (!inserted) it->second = Supremum(it->second, mode);
  };
  for (const HierRequest& req : flat) {
    add(req.object, req.mode);
    const LockMode intention = RequiredIntention(req.mode);
    switch (req.object.level) {
      case ObjectId::Level::kGranule:
        add(ObjectId::File(FileOfGranule(req.object.index)), intention);
        add(ObjectId::Root(), intention);
        break;
      case ObjectId::Level::kFile:
        add(ObjectId::Root(), intention);
        break;
      case ObjectId::Level::kRoot:
        break;
    }
  }

  std::vector<HierRequest> out;
  out.reserve(effective.size());
  for (const auto& [object, mode] : effective) {
    out.push_back(HierRequest{object, mode});
  }
  return out;  // already sorted by ObjectId's total order (std::map)
}

std::optional<std::pair<TxnId, LockMode>> HierarchicalLockManager::FindConflict(
    TxnId txn, Key key, LockMode mode) const {
  auto it = holders_.find(key);
  if (it == holders_.end()) return std::nullopt;
  for (const auto& [holder, held_mode] : it->second) {
    if (holder == txn) continue;
    if (!Compatible(held_mode, mode)) return std::make_pair(holder, held_mode);
  }
  return std::nullopt;
}

std::optional<TxnId> HierarchicalLockManager::TryAcquireAll(
    TxnId txn, const std::vector<HierRequest>& requests,
    HierConflictInfo* conflict) {
  GRANULOCK_CHECK(held_by_txn_.find(txn) == held_by_txn_.end())
      << "conservative protocol: txn " << txn << " already holds locks";
  const std::vector<HierRequest> effective = EffectiveLockSet(requests);
  for (const HierRequest& req : effective) {
    if (req.object.level == ObjectId::Level::kGranule) {
      GRANULOCK_CHECK_GE(req.object.index, 0);
      GRANULOCK_CHECK_LT(req.object.index, options_.num_granules);
    } else if (req.object.level == ObjectId::Level::kFile) {
      GRANULOCK_CHECK_GE(req.object.index, 0);
      GRANULOCK_CHECK_LT(req.object.index, options_.num_files);
    }
    if (auto blocker = FindConflict(txn, KeyOf(req.object), req.mode)) {
      if (conflict != nullptr) {
        *conflict = HierConflictInfo{req.object, req.mode, blocker->second,
                                     blocker->first};
      }
      return blocker->first;
    }
  }
  std::vector<Key>& held = held_by_txn_[txn];
  for (const HierRequest& req : effective) {
    const Key key = KeyOf(req.object);
    holders_[key].emplace_back(txn, req.mode);
    held.push_back(key);
  }
  return std::nullopt;
}

void HierarchicalLockManager::ReleaseAll(TxnId txn) {
  auto it = held_by_txn_.find(txn);
  if (it == held_by_txn_.end()) return;
  for (Key key : it->second) {
    auto hit = holders_.find(key);
    GRANULOCK_CHECK(hit != holders_.end());
    auto& list = hit->second;
    list.erase(std::remove_if(
                   list.begin(), list.end(),
                   [txn](const auto& h) { return h.first == txn; }),
               list.end());
    if (list.empty()) holders_.erase(hit);
  }
  held_by_txn_.erase(it);
}

void HierarchicalLockManager::CheckConsistency() const {
  // Forward: every key a transaction is indexed under names it as a
  // holder exactly once, and descendants imply intention locks on every
  // ancestor (Gray's multiple-granularity discipline).
  size_t holds_from_txns = 0;
  for (const auto& [txn, keys] : held_by_txn_) {
    GRANULOCK_AUDIT_CHECK(!keys.empty())
        << "txn " << txn << " is indexed but holds nothing";
    holds_from_txns += keys.size();
    for (const Key key : keys) {
      auto hit = holders_.find(key);
      if (hit == holders_.end()) {
        GRANULOCK_AUDIT_CHECK(false)
            << "txn " << txn << " claims a lock with no holder entry";
        continue;
      }
      const size_t entries = static_cast<size_t>(
          std::count_if(hit->second.begin(), hit->second.end(),
                        [txn = txn](const auto& h) { return h.first == txn; }));
      GRANULOCK_AUDIT_CHECK_EQ(entries, 1u)
          << "txn " << txn << " appears " << entries
          << " times among the holders of one object";
    }
    for (const Key key : keys) {
      const ObjectId object = ObjectOf(key);
      const LockMode mode = HeldMode(txn, object);
      const LockMode intention = RequiredIntention(mode);
      if (intention == LockMode::kNL) continue;
      if (object.level == ObjectId::Level::kGranule) {
        const ObjectId file = ObjectId::File(FileOfGranule(object.index));
        GRANULOCK_AUDIT_CHECK(Covers(HeldMode(txn, file), intention))
            << "txn " << txn << " holds granule " << object.index
            << " without the required intention lock on file "
            << file.index;
      }
      if (object.level != ObjectId::Level::kRoot) {
        GRANULOCK_AUDIT_CHECK(Covers(HeldMode(txn, ObjectId::Root()),
                                     intention))
            << "txn " << txn
            << " holds a descendant without the required intention lock "
               "on the root";
      }
    }
  }
  // Reverse: every holder entry is indexed and no state is empty or kNL.
  size_t holds_from_objects = 0;
  for (const auto& [key, holders] : holders_) {
    GRANULOCK_AUDIT_CHECK(!holders.empty())
        << "an object has an empty holder list";
    holds_from_objects += holders.size();
    for (const auto& [holder, mode] : holders) {
      GRANULOCK_AUDIT_CHECK(mode != LockMode::kNL)
          << "holder " << holder << " is recorded with mode kNL";
      GRANULOCK_AUDIT_CHECK(held_by_txn_.find(holder) != held_by_txn_.end())
          << "holder " << holder << " is missing from the per-txn index";
    }
  }
  GRANULOCK_AUDIT_CHECK_EQ(holds_from_txns, holds_from_objects);
}

int64_t HierarchicalLockManager::LockedGranules() const {
  int64_t count = 0;
  for (const auto& [key, holders] : holders_) {
    if (ObjectOf(key).level == ObjectId::Level::kGranule) ++count;
  }
  return count;
}

LockMode HierarchicalLockManager::HeldMode(TxnId txn,
                                           const ObjectId& object) const {
  auto it = holders_.find(KeyOf(object));
  if (it == holders_.end()) return LockMode::kNL;
  for (const auto& [holder, mode] : it->second) {
    if (holder == txn) return mode;
  }
  return LockMode::kNL;
}

}  // namespace granulock::lockmgr
