#ifndef GRANULOCK_LOCKMGR_LOCK_MODE_H_
#define GRANULOCK_LOCKMGR_LOCK_MODE_H_

#include <cstdint>

namespace granulock::lockmgr {

/// Lock modes in Gray's multiple-granularity scheme. The paper's simulated
/// system uses exclusive granule locks only; the hierarchical manager
/// (the "Gamma-style block + file granularity" extension suggested by the
/// paper's conclusions) uses the full set.
enum class LockMode : uint8_t {
  kNL = 0,   ///< no lock (identity element)
  kIS = 1,   ///< intention shared
  kIX = 2,   ///< intention exclusive
  kS = 3,    ///< shared
  kSIX = 4,  ///< shared + intention exclusive
  kX = 5,    ///< exclusive
};

/// Number of modes (array sizing).
inline constexpr int kNumLockModes = 6;

/// Short name ("IS", "X", ...).
const char* LockModeToString(LockMode mode);

/// Gray's compatibility matrix: may a lock in `held` coexist with a request
/// for `requested` on the same object by a *different* transaction?
bool Compatible(LockMode held, LockMode requested);

/// The least upper bound of two modes under the standard lock-strength
/// lattice (NL < IS < {IX, S} < SIX < X); used when a transaction upgrades
/// a lock it already holds.
LockMode Supremum(LockMode a, LockMode b);

/// True iff `a` is at least as strong as `b` (i.e. Supremum(a,b) == a).
bool Covers(LockMode a, LockMode b);

/// The intention mode a transaction must hold on every ancestor before
/// locking a descendant in `mode`: kIS for {kIS, kS}, kIX for {kIX, kSIX,
/// kX}, kNL for kNL.
LockMode RequiredIntention(LockMode mode);

}  // namespace granulock::lockmgr

#endif  // GRANULOCK_LOCKMGR_LOCK_MODE_H_
