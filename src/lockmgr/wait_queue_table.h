#ifndef GRANULOCK_LOCKMGR_WAIT_QUEUE_TABLE_H_
#define GRANULOCK_LOCKMGR_WAIT_QUEUE_TABLE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "lockmgr/lock_mode.h"
#include "lockmgr/lock_table.h"

namespace granulock::lockmgr {

/// A lock table for **incremental (claim-as-needed) two-phase locking**:
/// locks are requested one at a time as the transaction progresses, and a
/// conflicting request joins a per-granule FIFO wait queue instead of
/// failing. Deadlock becomes possible; the caller pairs this table with a
/// `WaitsForGraph` (see `db::IncrementalSimulator`).
///
/// Grant discipline: strict FIFO per granule — a request is granted
/// immediately only if it is compatible with all current holders AND the
/// queue is empty (no overtaking of queued writers by compatible readers,
/// which would starve writers). On every release the queue is drained
/// from the front while compatible.
class WaitQueueLockTable {
 public:
  enum class AcquireResult {
    kGranted,  ///< the lock is held on return
    kQueued,   ///< the request waits; the caller learns of the grant via
               ///< the vectors returned from Release/Abort
  };

  explicit WaitQueueLockTable(int64_t num_granules);

  /// Requests `granule` in `mode` for `txn`. If `txn` already holds the
  /// granule in a covering mode the request is granted trivially. A
  /// transaction may have at most one queued request at a time.
  AcquireResult Acquire(TxnId txn, int64_t granule, LockMode mode);

  /// Releases everything `txn` holds. Returns the transactions whose
  /// queued requests became granted (in grant order); each of them now
  /// holds its requested lock.
  std::vector<TxnId> ReleaseAll(TxnId txn);

  /// Aborts `txn`: removes its queued request (if any) and releases its
  /// held locks. Returns newly granted waiters, as `ReleaseAll`.
  std::vector<TxnId> Abort(TxnId txn);

  /// Transactions currently holding `granule` (any mode).
  std::vector<TxnId> Holders(int64_t granule) const;

  /// The mode `txn` holds on `granule` (kNL if none).
  LockMode HeldMode(TxnId txn, int64_t granule) const;

  /// Number of granules `txn` currently holds (any mode).
  int64_t HeldCount(TxnId txn) const;

  /// True iff `txn` has a queued (waiting) request.
  bool IsQueued(TxnId txn) const {
    return queued_on_.find(txn) != queued_on_.end();
  }

  /// The transactions queued ahead of `txn` in `granule`'s FIFO queue,
  /// front first. Empty when `txn` is not queued on `granule` — strict
  /// FIFO means these must all drain before `txn` can be granted, so
  /// contention policies treat them as blockers.
  std::vector<TxnId> WaitersAhead(TxnId txn, int64_t granule) const;

  /// True iff some *other* transaction is queued on a granule `txn`
  /// holds (i.e. a waits-for edge points at `txn`). `txn`'s own queued
  /// upgrade request on a granule it holds does not count.
  bool HasOtherWaitersOnHeldGranules(TxnId txn) const;

  /// Number of queued (waiting) requests across all granules.
  int64_t WaitingCount() const { return waiting_count_; }

  /// Number of granules currently held by at least one transaction
  /// (granules with only waiters are not counted). Order-insensitive.
  int64_t LockedGranules() const;

  /// Every queued request as (waiter, granule) pairs, in no particular
  /// order. Used to rebuild the waits-for graph for deadlock detection.
  std::vector<std::pair<TxnId, int64_t>> WaitingRequests() const;

  /// True iff no locks are held and no requests wait.
  bool Empty() const { return granules_.empty(); }

  int64_t num_granules() const { return num_granules_; }

  /// FCFS queue conservation audit: `waiting_count_` == `queued_on_`
  /// size == sum of per-granule queue lengths, every queued txn sits
  /// exactly once in exactly the queue `queued_on_` says, holder maps
  /// mirror each other, no state is empty, and every non-empty queue's
  /// head is actually blocked (incompatible with a current holder) —
  /// otherwise a grant was missed. O(locks + waiters); violations report
  /// through `invariants::Fail`.
  void CheckConsistency() const;

 private:
  friend struct AuditTestPeer;  // invariants_test corrupts state through it

  struct Waiter {
    TxnId txn;
    LockMode mode;
  };
  struct GranuleState {
    std::vector<std::pair<TxnId, LockMode>> holders;
    std::deque<Waiter> queue;
  };

  bool CompatibleWithHolders(const GranuleState& state, TxnId txn,
                             LockMode mode) const;
  void GrantTo(GranuleState& state, int64_t granule, TxnId txn,
               LockMode mode);
  /// Drains the front of `granule`'s queue while grantable, appending the
  /// granted transactions to `granted`. Erases empty states.
  void DrainQueue(int64_t granule, std::vector<TxnId>* granted);

  int64_t num_granules_;
  std::unordered_map<int64_t, GranuleState> granules_;
  std::unordered_map<TxnId, std::vector<int64_t>> held_by_txn_;
  /// The granule each transaction is queued on (at most one).
  std::unordered_map<TxnId, int64_t> queued_on_;
  int64_t waiting_count_ = 0;
};

}  // namespace granulock::lockmgr

#endif  // GRANULOCK_LOCKMGR_WAIT_QUEUE_TABLE_H_
