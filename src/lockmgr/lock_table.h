#ifndef GRANULOCK_LOCKMGR_LOCK_TABLE_H_
#define GRANULOCK_LOCKMGR_LOCK_TABLE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lockmgr/lock_mode.h"
#include "util/status.h"

namespace granulock::lockmgr {

/// Transaction identifier used by the lock managers.
using TxnId = uint64_t;

/// One granule the transaction wants, and in which mode.
struct LockRequest {
  int64_t granule = 0;
  LockMode mode = LockMode::kX;
};

/// Attribution of a refused acquisition: which granule collided, the mode
/// that was asked for, and the mode (and owner) it ran into. Filled for
/// the lowest conflicting granule, so it is deterministic.
struct ConflictInfo {
  int64_t granule = 0;
  LockMode requested = LockMode::kX;
  LockMode held = LockMode::kX;
  TxnId holder = 0;
};

/// A flat lock table over `num_granules` equal-size granules, supporting
/// shared and exclusive granule locks with **conservative (static)
/// all-or-nothing acquisition** — the locking protocol the paper simulates
/// ("Transactions request all needed locks before using the I/O and CPU
/// resources. Thus deadlock is impossible.").
///
/// The table is a passive data structure: it grants or refuses atomically
/// and reports a blocking holder, but queueing/wake-up policy belongs to
/// the caller (the simulators keep their own blocked queues, mirroring the
/// paper's model). Single-threaded by design — it lives inside a
/// discrete-event simulation.
class LockTable {
 public:
  /// Creates a table with `num_granules` >= 1 granules, all unlocked.
  explicit LockTable(int64_t num_granules);

  /// Atomically acquires every request in `requests` for `txn`, or
  /// acquires nothing. Returns the id of *a* transaction holding a
  /// conflicting lock when refused (the holder of the lowest-numbered
  /// conflicting granule), or `std::nullopt` on success.
  ///
  /// `txn` must not already hold locks (conservative protocol: one
  /// acquisition per transaction lifetime). Duplicate granules in
  /// `requests` are allowed; the strongest requested mode wins.
  ///
  /// When refused and `conflict` is non-null, it receives the colliding
  /// granule/modes/holder (contention attribution; untouched on success).
  std::optional<TxnId> TryAcquireAll(TxnId txn,
                                     const std::vector<LockRequest>& requests,
                                     ConflictInfo* conflict = nullptr);

  /// Releases everything `txn` holds. No-op for an unknown transaction.
  void ReleaseAll(TxnId txn);

  /// The mode `txn` holds on `granule` (kNL if none).
  LockMode HeldMode(TxnId txn, int64_t granule) const;

  /// True iff no transaction holds any lock.
  bool Empty() const { return held_by_txn_.empty(); }

  /// Number of granules currently locked (in any mode, by anyone).
  int64_t LockedGranules() const;

  /// Number of transactions currently holding locks.
  int64_t ActiveTransactions() const {
    return static_cast<int64_t>(held_by_txn_.size());
  }

  int64_t num_granules() const { return num_granules_; }

  /// Reference-count consistency audit: the holder map and the per-txn
  /// index mirror each other exactly (every held granule names the txn as
  /// a holder exactly once and vice versa), no granule state is empty, no
  /// granule is out of range, and S/X mutual exclusion holds (an X holder
  /// is alone). O(locks held); violations report through
  /// `invariants::Fail`.
  void CheckConsistency() const;

 private:
  friend struct AuditTestPeer;  // invariants_test corrupts state through it

  struct GranuleState {
    // Holders of this granule with their modes. With conservative S/X
    // locking the list is either one X holder or any number of S holders.
    std::vector<std::pair<TxnId, LockMode>> holders;
  };

  /// Returns the first holder of `granule` whose mode conflicts with
  /// `mode` for `txn` (ignoring `txn`'s own holdings) and that holder's
  /// mode, or nullopt.
  std::optional<std::pair<TxnId, LockMode>> FindConflict(
      TxnId txn, int64_t granule, LockMode mode) const;

  int64_t num_granules_;
  std::unordered_map<int64_t, GranuleState> granules_;
  std::unordered_map<TxnId, std::vector<int64_t>> held_by_txn_;
};

}  // namespace granulock::lockmgr

#endif  // GRANULOCK_LOCKMGR_LOCK_TABLE_H_
