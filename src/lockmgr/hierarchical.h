#ifndef GRANULOCK_LOCKMGR_HIERARCHICAL_H_
#define GRANULOCK_LOCKMGR_HIERARCHICAL_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lockmgr/lock_mode.h"
#include "lockmgr/lock_table.h"
#include "util/status.h"

namespace granulock::lockmgr {

/// An object in the three-level lock hierarchy:
/// database (root) -> file (relation) -> granule (block).
///
/// The paper's conclusions recommend exactly this structure ("providing
/// granularity at the block level and at the file level, as is done in the
/// Gamma database machine, may be adequate"); the hierarchical manager lets
/// the ablation benches quantify that recommendation.
struct ObjectId {
  enum class Level : uint8_t { kRoot = 0, kFile = 1, kGranule = 2 };

  Level level = Level::kRoot;
  int64_t index = 0;  ///< file number or granule number; 0 for the root

  static ObjectId Root() { return {Level::kRoot, 0}; }
  static ObjectId File(int64_t i) { return {Level::kFile, i}; }
  static ObjectId Granule(int64_t g) { return {Level::kGranule, g}; }

  friend bool operator==(const ObjectId&, const ObjectId&) = default;

  /// Stable total order (root < files < granules, then by index), used for
  /// deterministic conflict reporting.
  friend bool operator<(const ObjectId& a, const ObjectId& b) {
    if (a.level != b.level) return a.level < b.level;
    return a.index < b.index;
  }
};

/// A hierarchical lock request: lock `object` in `mode`. The manager adds
/// the required intention locks on all ancestors automatically.
struct HierRequest {
  ObjectId object;
  LockMode mode = LockMode::kX;
};

/// Attribution of a refused hierarchical acquisition: the first object in
/// the effective lock set (ObjectId order: root < files < granules) that
/// collided, the effective mode requested on it, and the holder's mode.
struct HierConflictInfo {
  ObjectId object;
  LockMode requested = LockMode::kX;
  LockMode held = LockMode::kX;
  TxnId holder = 0;
};

/// Multiple-granularity lock manager (Gray et al.) with **conservative
/// all-or-nothing acquisition**, matching the paper's deadlock-free
/// protocol. Like `LockTable`, it is a passive single-threaded structure:
/// queueing/wake-up is the caller's concern.
///
/// Granules are divided contiguously among files: file `f` covers granules
/// `[f * granules_per_file, (f+1) * granules_per_file)` (the last file
/// takes any remainder).
class HierarchicalLockManager {
 public:
  struct Options {
    /// Total granules (>= 1).
    int64_t num_granules = 1;
    /// Number of files the granules are divided into (>= 1,
    /// <= num_granules).
    int64_t num_files = 1;
    /// If > 0: when a single acquisition asks for more than this many
    /// granules within one file, those granule locks are escalated to one
    /// file-level lock of the strongest requested mode.
    int64_t escalation_threshold = 0;
  };

  explicit HierarchicalLockManager(Options options);

  /// Atomically acquires `requests` (plus derived intention locks) for
  /// `txn`, or acquires nothing. Returns a blocking holder (owner of the
  /// lowest conflicting object) or nullopt on success. `txn` must not
  /// already hold locks. When refused and `conflict` is non-null, it
  /// receives the colliding object/modes/holder (untouched on success).
  std::optional<TxnId> TryAcquireAll(TxnId txn,
                                     const std::vector<HierRequest>& requests,
                                     HierConflictInfo* conflict = nullptr);

  /// Releases everything `txn` holds.
  void ReleaseAll(TxnId txn);

  /// The mode `txn` holds on `object` (kNL if none). Intention locks the
  /// manager added implicitly are visible here.
  LockMode HeldMode(TxnId txn, const ObjectId& object) const;

  /// True iff nothing is locked.
  bool Empty() const { return held_by_txn_.empty(); }

  /// Number of granule-level objects currently locked (intention or
  /// stronger); file/root locks are not counted. Order-insensitive scan.
  int64_t LockedGranules() const;

  /// The file that contains `granule`.
  int64_t FileOfGranule(int64_t granule) const;

  /// Expands `requests` to the full lock set actually acquired (intention
  /// locks added, escalation applied, modes merged). Exposed for tests and
  /// for the simulators, which charge lock cost per lock actually set.
  std::vector<HierRequest> EffectiveLockSet(
      const std::vector<HierRequest>& requests) const;

  const Options& options() const { return options_; }

  /// Hierarchy audit: holder map and per-txn index mirror each other, no
  /// holder entry is kNL or empty, and the multiple-granularity
  /// discipline holds — whoever locks a granule (file) also holds the
  /// required intention mode, or stronger, on its file and the root.
  /// O(locks held); violations report through `invariants::Fail`.
  void CheckConsistency() const;

 private:
  friend struct AuditTestPeer;  // invariants_test corrupts state through it

  using Key = uint64_t;
  static Key KeyOf(const ObjectId& object);
  static ObjectId ObjectOf(Key key);

  std::optional<std::pair<TxnId, LockMode>> FindConflict(TxnId txn, Key key,
                                                         LockMode mode) const;

  Options options_;
  int64_t granules_per_file_;
  std::unordered_map<Key, std::vector<std::pair<TxnId, LockMode>>> holders_;
  std::unordered_map<TxnId, std::vector<Key>> held_by_txn_;
};

}  // namespace granulock::lockmgr

#endif  // GRANULOCK_LOCKMGR_HIERARCHICAL_H_
