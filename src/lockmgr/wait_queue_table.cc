#include "lockmgr/wait_queue_table.h"

#include <algorithm>

#include "sim/invariants.h"
#include "util/logging.h"

namespace granulock::lockmgr {

WaitQueueLockTable::WaitQueueLockTable(int64_t num_granules)
    : num_granules_(num_granules) {
  GRANULOCK_CHECK_GE(num_granules, 1);
}

bool WaitQueueLockTable::CompatibleWithHolders(const GranuleState& state,
                                               TxnId txn,
                                               LockMode mode) const {
  for (const auto& [holder, held_mode] : state.holders) {
    if (holder == txn) continue;
    if (!Compatible(held_mode, mode)) return false;
  }
  return true;
}

void WaitQueueLockTable::GrantTo(GranuleState& state, int64_t granule,
                                 TxnId txn, LockMode mode) {
  for (auto& [holder, held_mode] : state.holders) {
    if (holder == txn) {
      held_mode = Supremum(held_mode, mode);
      return;  // upgrade in place; already recorded in held_by_txn_
    }
  }
  state.holders.emplace_back(txn, mode);
  held_by_txn_[txn].push_back(granule);
}

WaitQueueLockTable::AcquireResult WaitQueueLockTable::Acquire(TxnId txn,
                                                              int64_t granule,
                                                              LockMode mode) {
  GRANULOCK_CHECK_GE(granule, 0);
  GRANULOCK_CHECK_LT(granule, num_granules_);
  GRANULOCK_CHECK(queued_on_.find(txn) == queued_on_.end())
      << "txn " << txn << " already has a queued request";
  GranuleState& state = granules_[granule];
  if (HeldMode(txn, granule) != LockMode::kNL &&
      Covers(HeldMode(txn, granule), mode)) {
    return AcquireResult::kGranted;  // already covered
  }
  if (state.queue.empty() && CompatibleWithHolders(state, txn, mode)) {
    GrantTo(state, granule, txn, mode);
    return AcquireResult::kGranted;
  }
  state.queue.push_back(Waiter{txn, mode});
  queued_on_[txn] = granule;
  ++waiting_count_;
  return AcquireResult::kQueued;
}

void WaitQueueLockTable::DrainQueue(int64_t granule,
                                    std::vector<TxnId>* granted) {
  auto it = granules_.find(granule);
  if (it == granules_.end()) return;
  GranuleState& state = it->second;
  while (!state.queue.empty()) {
    const Waiter& front = state.queue.front();
    if (!CompatibleWithHolders(state, front.txn, front.mode)) break;
    GrantTo(state, granule, front.txn, front.mode);
    granted->push_back(front.txn);
    queued_on_.erase(front.txn);
    --waiting_count_;
    state.queue.pop_front();
  }
  if (state.holders.empty() && state.queue.empty()) {
    granules_.erase(it);
  }
}

std::vector<TxnId> WaitQueueLockTable::ReleaseAll(TxnId txn) {
  std::vector<TxnId> granted;
  auto it = held_by_txn_.find(txn);
  if (it == held_by_txn_.end()) return granted;
  const std::vector<int64_t> held = std::move(it->second);
  held_by_txn_.erase(it);
  for (int64_t granule : held) {
    auto git = granules_.find(granule);
    GRANULOCK_CHECK(git != granules_.end());
    auto& holders = git->second.holders;
    holders.erase(std::remove_if(holders.begin(), holders.end(),
                                 [txn](const auto& h) {
                                   return h.first == txn;
                                 }),
                  holders.end());
    DrainQueue(granule, &granted);
  }
  return granted;
}

std::vector<TxnId> WaitQueueLockTable::Abort(TxnId txn) {
  // Remove the queued request first so it cannot be granted by the
  // release below.
  auto qit = queued_on_.find(txn);
  if (qit != queued_on_.end()) {
    const int64_t granule = qit->second;
    auto git = granules_.find(granule);
    GRANULOCK_CHECK(git != granules_.end());
    auto& queue = git->second.queue;
    auto wit = std::find_if(queue.begin(), queue.end(), [txn](const Waiter& w) {
      return w.txn == txn;
    });
    GRANULOCK_CHECK(wit != queue.end());
    queue.erase(wit);
    queued_on_.erase(qit);
    --waiting_count_;
    // Removing a queued head may unblock those behind it.
    std::vector<TxnId> granted;
    DrainQueue(granule, &granted);
    auto more = ReleaseAll(txn);
    granted.insert(granted.end(), more.begin(), more.end());
    return granted;
  }
  return ReleaseAll(txn);
}

std::vector<std::pair<TxnId, int64_t>> WaitQueueLockTable::WaitingRequests()
    const {
  std::vector<std::pair<TxnId, int64_t>> out;
  out.reserve(queued_on_.size());
  for (const auto& [txn, granule] : queued_on_) {
    out.emplace_back(txn, granule);
  }
  return out;
}

int64_t WaitQueueLockTable::LockedGranules() const {
  int64_t count = 0;
  for (const auto& [granule, state] : granules_) {
    if (!state.holders.empty()) ++count;
  }
  return count;
}

std::vector<TxnId> WaitQueueLockTable::Holders(int64_t granule) const {
  std::vector<TxnId> out;
  auto it = granules_.find(granule);
  if (it == granules_.end()) return out;
  out.reserve(it->second.holders.size());
  for (const auto& [holder, mode] : it->second.holders) {
    out.push_back(holder);
  }
  return out;
}

void WaitQueueLockTable::CheckConsistency() const {
  // Holder maps mirror each other (as in LockTable).
  size_t holds_from_txns = 0;
  for (const auto& [txn, granules] : held_by_txn_) {
    GRANULOCK_AUDIT_CHECK(!granules.empty())
        << "txn " << txn << " is indexed but holds nothing";
    holds_from_txns += granules.size();
    for (const int64_t granule : granules) {
      GRANULOCK_AUDIT_CHECK(granule >= 0 && granule < num_granules_)
          << "txn " << txn << " holds out-of-range granule " << granule;
      auto git = granules_.find(granule);
      if (git == granules_.end()) {
        GRANULOCK_AUDIT_CHECK(false)
            << "txn " << txn << " claims granule " << granule
            << " but the granule has no state";
        continue;
      }
      const auto& holders = git->second.holders;
      const size_t entries = static_cast<size_t>(
          std::count_if(holders.begin(), holders.end(),
                        [txn = txn](const auto& h) { return h.first == txn; }));
      GRANULOCK_AUDIT_CHECK_EQ(entries, 1u)
          << "txn " << txn << " appears " << entries
          << " times among holders of granule " << granule;
    }
  }
  // Queue conservation plus the no-missed-grant property.
  size_t holds_from_granules = 0;
  size_t queued_from_granules = 0;
  for (const auto& [granule, state] : granules_) {
    GRANULOCK_AUDIT_CHECK(!state.holders.empty() || !state.queue.empty())
        << "granule " << granule << " has an empty state";
    holds_from_granules += state.holders.size();
    queued_from_granules += state.queue.size();
    for (const auto& [holder, mode] : state.holders) {
      GRANULOCK_AUDIT_CHECK(mode != LockMode::kNL)
          << "granule " << granule << " holds a kNL entry for txn "
          << holder;
      GRANULOCK_AUDIT_CHECK(held_by_txn_.find(holder) != held_by_txn_.end())
          << "holder " << holder << " of granule " << granule
          << " is missing from the per-txn index";
    }
    for (const Waiter& waiter : state.queue) {
      auto qit = queued_on_.find(waiter.txn);
      GRANULOCK_AUDIT_CHECK(qit != queued_on_.end() &&
                            qit->second == granule)
          << "txn " << waiter.txn << " queues on granule " << granule
          << " but queued_on_ disagrees";
    }
    if (!state.queue.empty()) {
      const Waiter& head = state.queue.front();
      GRANULOCK_AUDIT_CHECK(
          !CompatibleWithHolders(state, head.txn, head.mode))
          << "granule " << granule << " queue head txn " << head.txn
          << " is compatible with all holders: a grant was missed";
    }
  }
  GRANULOCK_AUDIT_CHECK_EQ(holds_from_txns, holds_from_granules);
  GRANULOCK_AUDIT_CHECK_EQ(static_cast<size_t>(waiting_count_),
                           queued_from_granules);
  GRANULOCK_AUDIT_CHECK_EQ(queued_on_.size(), queued_from_granules);
  // Each queued transaction appears exactly once in the queue it points
  // at (the per-granule walk above checked membership; this rules out
  // duplicates within one queue).
  for (const auto& [txn, granule] : queued_on_) {
    auto git = granules_.find(granule);
    if (git == granules_.end()) {
      GRANULOCK_AUDIT_CHECK(false)
          << "txn " << txn << " queues on granule " << granule
          << " which has no state";
      continue;
    }
    const auto& queue = git->second.queue;
    const size_t entries = static_cast<size_t>(
        std::count_if(queue.begin(), queue.end(),
                      [txn = txn](const Waiter& w) { return w.txn == txn; }));
    GRANULOCK_AUDIT_CHECK_EQ(entries, 1u)
        << "txn " << txn << " appears " << entries
        << " times in the queue of granule " << granule;
  }
}

LockMode WaitQueueLockTable::HeldMode(TxnId txn, int64_t granule) const {
  auto it = granules_.find(granule);
  if (it == granules_.end()) return LockMode::kNL;
  for (const auto& [holder, mode] : it->second.holders) {
    if (holder == txn) return mode;
  }
  return LockMode::kNL;
}

int64_t WaitQueueLockTable::HeldCount(TxnId txn) const {
  auto it = held_by_txn_.find(txn);
  return it == held_by_txn_.end() ? 0
                                  : static_cast<int64_t>(it->second.size());
}

std::vector<TxnId> WaitQueueLockTable::WaitersAhead(TxnId txn,
                                                    int64_t granule) const {
  std::vector<TxnId> ahead;
  auto it = granules_.find(granule);
  if (it == granules_.end()) return ahead;
  for (const Waiter& waiter : it->second.queue) {
    if (waiter.txn == txn) return ahead;
    ahead.push_back(waiter.txn);
  }
  ahead.clear();  // txn is not queued here at all
  return ahead;
}

bool WaitQueueLockTable::HasOtherWaitersOnHeldGranules(TxnId txn) const {
  auto it = held_by_txn_.find(txn);
  if (it == held_by_txn_.end()) return false;
  for (const int64_t granule : it->second) {
    auto git = granules_.find(granule);
    if (git == granules_.end()) continue;
    for (const Waiter& waiter : git->second.queue) {
      if (waiter.txn != txn) return true;
    }
  }
  return false;
}

}  // namespace granulock::lockmgr
