#include "lockmgr/wait_queue_table.h"

#include <algorithm>

#include "util/logging.h"

namespace granulock::lockmgr {

WaitQueueLockTable::WaitQueueLockTable(int64_t num_granules)
    : num_granules_(num_granules) {
  GRANULOCK_CHECK_GE(num_granules, 1);
}

bool WaitQueueLockTable::CompatibleWithHolders(const GranuleState& state,
                                               TxnId txn,
                                               LockMode mode) const {
  for (const auto& [holder, held_mode] : state.holders) {
    if (holder == txn) continue;
    if (!Compatible(held_mode, mode)) return false;
  }
  return true;
}

void WaitQueueLockTable::GrantTo(GranuleState& state, int64_t granule,
                                 TxnId txn, LockMode mode) {
  for (auto& [holder, held_mode] : state.holders) {
    if (holder == txn) {
      held_mode = Supremum(held_mode, mode);
      return;  // upgrade in place; already recorded in held_by_txn_
    }
  }
  state.holders.emplace_back(txn, mode);
  held_by_txn_[txn].push_back(granule);
}

WaitQueueLockTable::AcquireResult WaitQueueLockTable::Acquire(TxnId txn,
                                                              int64_t granule,
                                                              LockMode mode) {
  GRANULOCK_CHECK_GE(granule, 0);
  GRANULOCK_CHECK_LT(granule, num_granules_);
  GRANULOCK_CHECK(queued_on_.find(txn) == queued_on_.end())
      << "txn " << txn << " already has a queued request";
  GranuleState& state = granules_[granule];
  if (HeldMode(txn, granule) != LockMode::kNL &&
      Covers(HeldMode(txn, granule), mode)) {
    return AcquireResult::kGranted;  // already covered
  }
  if (state.queue.empty() && CompatibleWithHolders(state, txn, mode)) {
    GrantTo(state, granule, txn, mode);
    return AcquireResult::kGranted;
  }
  state.queue.push_back(Waiter{txn, mode});
  queued_on_[txn] = granule;
  ++waiting_count_;
  return AcquireResult::kQueued;
}

void WaitQueueLockTable::DrainQueue(int64_t granule,
                                    std::vector<TxnId>* granted) {
  auto it = granules_.find(granule);
  if (it == granules_.end()) return;
  GranuleState& state = it->second;
  while (!state.queue.empty()) {
    const Waiter& front = state.queue.front();
    if (!CompatibleWithHolders(state, front.txn, front.mode)) break;
    GrantTo(state, granule, front.txn, front.mode);
    granted->push_back(front.txn);
    queued_on_.erase(front.txn);
    --waiting_count_;
    state.queue.pop_front();
  }
  if (state.holders.empty() && state.queue.empty()) {
    granules_.erase(it);
  }
}

std::vector<TxnId> WaitQueueLockTable::ReleaseAll(TxnId txn) {
  std::vector<TxnId> granted;
  auto it = held_by_txn_.find(txn);
  if (it == held_by_txn_.end()) return granted;
  const std::vector<int64_t> held = std::move(it->second);
  held_by_txn_.erase(it);
  for (int64_t granule : held) {
    auto git = granules_.find(granule);
    GRANULOCK_CHECK(git != granules_.end());
    auto& holders = git->second.holders;
    holders.erase(std::remove_if(holders.begin(), holders.end(),
                                 [txn](const auto& h) {
                                   return h.first == txn;
                                 }),
                  holders.end());
    DrainQueue(granule, &granted);
  }
  return granted;
}

std::vector<TxnId> WaitQueueLockTable::Abort(TxnId txn) {
  // Remove the queued request first so it cannot be granted by the
  // release below.
  auto qit = queued_on_.find(txn);
  if (qit != queued_on_.end()) {
    const int64_t granule = qit->second;
    auto git = granules_.find(granule);
    GRANULOCK_CHECK(git != granules_.end());
    auto& queue = git->second.queue;
    auto wit = std::find_if(queue.begin(), queue.end(), [txn](const Waiter& w) {
      return w.txn == txn;
    });
    GRANULOCK_CHECK(wit != queue.end());
    queue.erase(wit);
    queued_on_.erase(qit);
    --waiting_count_;
    // Removing a queued head may unblock those behind it.
    std::vector<TxnId> granted;
    DrainQueue(granule, &granted);
    auto more = ReleaseAll(txn);
    granted.insert(granted.end(), more.begin(), more.end());
    return granted;
  }
  return ReleaseAll(txn);
}

std::vector<std::pair<TxnId, int64_t>> WaitQueueLockTable::WaitingRequests()
    const {
  std::vector<std::pair<TxnId, int64_t>> out;
  out.reserve(queued_on_.size());
  for (const auto& [txn, granule] : queued_on_) {
    out.emplace_back(txn, granule);
  }
  return out;
}

std::vector<TxnId> WaitQueueLockTable::Holders(int64_t granule) const {
  std::vector<TxnId> out;
  auto it = granules_.find(granule);
  if (it == granules_.end()) return out;
  out.reserve(it->second.holders.size());
  for (const auto& [holder, mode] : it->second.holders) {
    out.push_back(holder);
  }
  return out;
}

LockMode WaitQueueLockTable::HeldMode(TxnId txn, int64_t granule) const {
  auto it = granules_.find(granule);
  if (it == granules_.end()) return LockMode::kNL;
  for (const auto& [holder, mode] : it->second.holders) {
    if (holder == txn) return mode;
  }
  return LockMode::kNL;
}

}  // namespace granulock::lockmgr
