#include "lockmgr/lock_table.h"

#include <algorithm>

#include "util/logging.h"

namespace granulock::lockmgr {

LockTable::LockTable(int64_t num_granules) : num_granules_(num_granules) {
  GRANULOCK_CHECK_GE(num_granules, 1);
}

std::optional<TxnId> LockTable::FindConflict(TxnId txn, int64_t granule,
                                             LockMode mode) const {
  auto it = granules_.find(granule);
  if (it == granules_.end()) return std::nullopt;
  for (const auto& [holder, held_mode] : it->second.holders) {
    if (holder == txn) continue;
    if (!Compatible(held_mode, mode)) return holder;
  }
  return std::nullopt;
}

std::optional<TxnId> LockTable::TryAcquireAll(
    TxnId txn, const std::vector<LockRequest>& requests) {
  GRANULOCK_CHECK(held_by_txn_.find(txn) == held_by_txn_.end())
      << "conservative protocol: txn " << txn << " already holds locks";
  // Conflict scan in granule order so the reported blocker is
  // deterministic (lowest conflicting granule).
  std::vector<LockRequest> sorted = requests;
  std::sort(sorted.begin(), sorted.end(),
            [](const LockRequest& a, const LockRequest& b) {
              return a.granule < b.granule;
            });
  for (const LockRequest& req : sorted) {
    GRANULOCK_CHECK_GE(req.granule, 0);
    GRANULOCK_CHECK_LT(req.granule, num_granules_);
    if (auto blocker = FindConflict(txn, req.granule, req.mode)) {
      return blocker;
    }
  }
  // All clear: acquire. Deduplicate, keeping the strongest mode per
  // granule.
  std::vector<int64_t>& held = held_by_txn_[txn];
  for (size_t i = 0; i < sorted.size(); ++i) {
    LockMode mode = sorted[i].mode;
    while (i + 1 < sorted.size() &&
           sorted[i + 1].granule == sorted[i].granule) {
      ++i;
      mode = Supremum(mode, sorted[i].mode);
    }
    granules_[sorted[i].granule].holders.emplace_back(txn, mode);
    held.push_back(sorted[i].granule);
  }
  return std::nullopt;
}

void LockTable::ReleaseAll(TxnId txn) {
  auto it = held_by_txn_.find(txn);
  if (it == held_by_txn_.end()) return;
  for (int64_t granule : it->second) {
    auto git = granules_.find(granule);
    GRANULOCK_CHECK(git != granules_.end());
    auto& holders = git->second.holders;
    holders.erase(std::remove_if(holders.begin(), holders.end(),
                                 [txn](const auto& h) {
                                   return h.first == txn;
                                 }),
                  holders.end());
    if (holders.empty()) granules_.erase(git);
  }
  held_by_txn_.erase(it);
}

LockMode LockTable::HeldMode(TxnId txn, int64_t granule) const {
  auto it = granules_.find(granule);
  if (it == granules_.end()) return LockMode::kNL;
  for (const auto& [holder, mode] : it->second.holders) {
    if (holder == txn) return mode;
  }
  return LockMode::kNL;
}

int64_t LockTable::LockedGranules() const {
  return static_cast<int64_t>(granules_.size());
}

}  // namespace granulock::lockmgr
