#include "lockmgr/lock_table.h"

#include <algorithm>

#include "sim/invariants.h"
#include "util/logging.h"

namespace granulock::lockmgr {

LockTable::LockTable(int64_t num_granules) : num_granules_(num_granules) {
  GRANULOCK_CHECK_GE(num_granules, 1);
}

std::optional<std::pair<TxnId, LockMode>> LockTable::FindConflict(
    TxnId txn, int64_t granule, LockMode mode) const {
  auto it = granules_.find(granule);
  if (it == granules_.end()) return std::nullopt;
  for (const auto& [holder, held_mode] : it->second.holders) {
    if (holder == txn) continue;
    if (!Compatible(held_mode, mode)) return std::make_pair(holder, held_mode);
  }
  return std::nullopt;
}

std::optional<TxnId> LockTable::TryAcquireAll(
    TxnId txn, const std::vector<LockRequest>& requests,
    ConflictInfo* conflict) {
  GRANULOCK_CHECK(held_by_txn_.find(txn) == held_by_txn_.end())
      << "conservative protocol: txn " << txn << " already holds locks";
  // Conflict scan in granule order so the reported blocker is
  // deterministic (lowest conflicting granule).
  std::vector<LockRequest> sorted = requests;
  std::sort(sorted.begin(), sorted.end(),
            [](const LockRequest& a, const LockRequest& b) {
              return a.granule < b.granule;
            });
  for (const LockRequest& req : sorted) {
    GRANULOCK_CHECK_GE(req.granule, 0);
    GRANULOCK_CHECK_LT(req.granule, num_granules_);
    if (auto blocker = FindConflict(txn, req.granule, req.mode)) {
      if (conflict != nullptr) {
        *conflict = ConflictInfo{req.granule, req.mode, blocker->second,
                                 blocker->first};
      }
      return blocker->first;
    }
  }
  // All clear: acquire. Deduplicate, keeping the strongest mode per
  // granule.
  std::vector<int64_t>& held = held_by_txn_[txn];
  for (size_t i = 0; i < sorted.size(); ++i) {
    LockMode mode = sorted[i].mode;
    while (i + 1 < sorted.size() &&
           sorted[i + 1].granule == sorted[i].granule) {
      ++i;
      mode = Supremum(mode, sorted[i].mode);
    }
    granules_[sorted[i].granule].holders.emplace_back(txn, mode);
    held.push_back(sorted[i].granule);
  }
  return std::nullopt;
}

void LockTable::ReleaseAll(TxnId txn) {
  auto it = held_by_txn_.find(txn);
  if (it == held_by_txn_.end()) return;
  for (int64_t granule : it->second) {
    auto git = granules_.find(granule);
    GRANULOCK_CHECK(git != granules_.end());
    auto& holders = git->second.holders;
    holders.erase(std::remove_if(holders.begin(), holders.end(),
                                 [txn](const auto& h) {
                                   return h.first == txn;
                                 }),
                  holders.end());
    if (holders.empty()) granules_.erase(git);
  }
  held_by_txn_.erase(it);
}

LockMode LockTable::HeldMode(TxnId txn, int64_t granule) const {
  auto it = granules_.find(granule);
  if (it == granules_.end()) return LockMode::kNL;
  for (const auto& [holder, mode] : it->second.holders) {
    if (holder == txn) return mode;
  }
  return LockMode::kNL;
}

int64_t LockTable::LockedGranules() const {
  return static_cast<int64_t>(granules_.size());
}

void LockTable::CheckConsistency() const {
  // Forward direction: every granule a transaction claims to hold names
  // it as a holder exactly once.
  size_t holds_from_txns = 0;
  for (const auto& [txn, granules] : held_by_txn_) {
    GRANULOCK_AUDIT_CHECK(!granules.empty())
        << "txn " << txn << " is indexed but holds nothing";
    holds_from_txns += granules.size();
    for (const int64_t granule : granules) {
      GRANULOCK_AUDIT_CHECK(granule >= 0 && granule < num_granules_)
          << "txn " << txn << " holds out-of-range granule " << granule;
      auto git = granules_.find(granule);
      if (git == granules_.end()) {
        GRANULOCK_AUDIT_CHECK(false)
            << "txn " << txn << " claims granule " << granule
            << " but the granule has no holder entry";
        continue;
      }
      const auto& holders = git->second.holders;
      const size_t entries = static_cast<size_t>(
          std::count_if(holders.begin(), holders.end(),
                        [txn = txn](const auto& h) { return h.first == txn; }));
      GRANULOCK_AUDIT_CHECK_EQ(entries, 1u)
          << "txn " << txn << " appears " << entries
          << " times among holders of granule " << granule;
    }
  }
  // Reverse direction: every holder entry is indexed, no state is empty,
  // and X excludes everything else.
  size_t holds_from_granules = 0;
  for (const auto& [granule, state] : granules_) {
    GRANULOCK_AUDIT_CHECK(!state.holders.empty())
        << "granule " << granule << " has an empty holder list";
    holds_from_granules += state.holders.size();
    bool has_exclusive = false;
    for (const auto& [holder, mode] : state.holders) {
      GRANULOCK_AUDIT_CHECK(mode != LockMode::kNL)
          << "granule " << granule << " holds a kNL entry for txn "
          << holder;
      if (!Compatible(mode, mode)) has_exclusive = true;
      auto hit = held_by_txn_.find(holder);
      GRANULOCK_AUDIT_CHECK(hit != held_by_txn_.end())
          << "holder " << holder << " of granule " << granule
          << " is missing from the per-txn index";
    }
    if (has_exclusive) {
      GRANULOCK_AUDIT_CHECK_EQ(state.holders.size(), 1u)
          << "granule " << granule
          << " has an exclusive holder sharing with others";
    }
  }
  // The two directions count the same set of (txn, granule) holds.
  GRANULOCK_AUDIT_CHECK_EQ(holds_from_txns, holds_from_granules);
}

}  // namespace granulock::lockmgr
