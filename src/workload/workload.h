#ifndef GRANULOCK_WORKLOAD_WORKLOAD_H_
#define GRANULOCK_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/config.h"
#include "model/placement.h"
#include "util/random.h"
#include "util/status.h"
#include "workload/size_distribution.h"

namespace granulock::workload {

/// How relations are partitioned across the shared-nothing nodes (§2).
enum class PartitioningMethod {
  /// Round-robin horizontal partitioning: every relation is spread over all
  /// disks, so a transaction splits into exactly `npros` sub-transactions.
  kHorizontal,
  /// Random partitioning: items land on a random subset of disks, modelled
  /// as `PU ~ U{1..npros}` sub-transactions on distinct random nodes.
  kRandom,
};

const char* PartitioningToString(PartitioningMethod m);
bool PartitioningFromString(const std::string& s, PartitioningMethod* out);

/// A complete workload description: transaction sizes, granule placement,
/// and data partitioning. Combined with a `SystemConfig`, this fully
/// determines the simulated system.
struct WorkloadSpec {
  std::shared_ptr<const SizeDistribution> sizes;
  model::Placement placement = model::Placement::kBest;
  PartitioningMethod partitioning = PartitioningMethod::kHorizontal;

  /// The paper's base workload for `cfg`: uniform sizes on
  /// {1..maxtransize}, best placement, horizontal partitioning.
  static WorkloadSpec Base(const model::SystemConfig& cfg);

  /// Returns OK iff the spec is internally consistent with `cfg`
  /// (distribution present, max size <= dbsize).
  Status Validate(const model::SystemConfig& cfg) const;

  /// One-line description for bench headers.
  std::string Describe() const;
};

/// Everything random about one transaction, drawn once at creation
/// (the variables called NUi, LUi, PUi, IOtimei, CPUtimei, LIOtimei,
/// LCPUtimei in §2 of the paper).
struct TransactionParams {
  int64_t nu = 0;          ///< entities accessed
  int64_t lu = 0;          ///< integer lock count (conflict model)
  double expected_locks = 0.0;  ///< real lock count (overhead cost basis)
  int64_t pu = 0;          ///< number of sub-transactions (processors used)
  std::vector<int32_t> nodes;  ///< the `pu` distinct nodes assigned

  double io_demand = 0.0;       ///< NU * iotime (split across sub-txns)
  double cpu_demand = 0.0;      ///< NU * cputime
  double lock_io_demand = 0.0;  ///< expected_locks * liotime
  double lock_cpu_demand = 0.0; ///< expected_locks * lcputime
};

/// Draws a fresh transaction's parameters for (`cfg`, `spec`) using `rng`.
/// `spec` must have passed `Validate(cfg)`.
TransactionParams GenerateTransaction(const model::SystemConfig& cfg,
                                      const WorkloadSpec& spec, Rng& rng);

/// Amortized transaction generator for one fixed (`cfg`, `spec`) cell.
///
/// `GenerateTransaction` re-derives the lock demand (an O(nu) Yao product
/// under random placement) and allocates a fresh `nodes` vector on every
/// call; engines call it once per simulated transaction — millions of
/// times per sweep. The factory precomputes a `LockDemandTable` over the
/// whole size range and fills a caller-owned `TransactionParams` in place,
/// so steady-state generation does no allocation and no per-call Yao work.
///
/// Determinism contract: `Generate` consumes RNG draws in exactly the same
/// order and count as `GenerateTransaction` (size sample, then `pu` and
/// node draws for random partitioning) and produces bit-identical
/// parameters.
class TransactionFactory {
 public:
  /// `spec` must have passed `Validate(cfg)`; both are copied/shared, so
  /// the factory has no lifetime ties to the arguments.
  TransactionFactory(const model::SystemConfig& cfg, const WorkloadSpec& spec);

  /// Draws one transaction into `*params`, reusing its `nodes` capacity.
  void Generate(Rng& rng, TransactionParams* params) const;

 private:
  std::shared_ptr<const SizeDistribution> sizes_;
  PartitioningMethod partitioning_;
  model::LockDemandTable demand_table_;
  int64_t dbsize_;
  int64_t npros_;
  double iotime_;
  double cputime_;
  double liotime_;
  double lcputime_;
};

}  // namespace granulock::workload

#endif  // GRANULOCK_WORKLOAD_WORKLOAD_H_
