#include "workload/size_distribution.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/strings.h"

namespace granulock::workload {

UniformSizeDistribution::UniformSizeDistribution(int64_t maxtransize)
    : maxtransize_(maxtransize) {
  GRANULOCK_CHECK_GE(maxtransize, 1);
}

int64_t UniformSizeDistribution::Sample(Rng& rng) const {
  return rng.UniformInt(1, maxtransize_);
}

double UniformSizeDistribution::Mean() const {
  return (static_cast<double>(maxtransize_) + 1.0) / 2.0;
}

std::string UniformSizeDistribution::Describe() const {
  return StrFormat("uniform{1..%lld}", (long long)maxtransize_);
}

ConstantSizeDistribution::ConstantSizeDistribution(int64_t size)
    : size_(size) {
  GRANULOCK_CHECK_GE(size, 1);
}

int64_t ConstantSizeDistribution::Sample(Rng& rng) const {
  (void)rng;
  return size_;
}

std::string ConstantSizeDistribution::Describe() const {
  return StrFormat("constant{%lld}", (long long)size_);
}

MixedSizeDistribution::MixedSizeDistribution(std::vector<Component> components)
    : components_(std::move(components)) {}

Result<std::shared_ptr<const SizeDistribution>> MixedSizeDistribution::Create(
    std::vector<Component> components) {
  if (components.empty()) {
    return Status::InvalidArgument("mixture needs at least one component");
  }
  double total = 0.0;
  for (const Component& c : components) {
    if (c.dist == nullptr) {
      return Status::InvalidArgument("mixture component is null");
    }
    if (c.weight < 0.0) {
      return Status::InvalidArgument("mixture weight is negative");
    }
    total += c.weight;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        StrFormat("mixture weights sum to %g, expected 1", total));
  }
  return std::shared_ptr<const SizeDistribution>(
      new MixedSizeDistribution(std::move(components)));
}

int64_t MixedSizeDistribution::Sample(Rng& rng) const {
  double p = rng.NextDouble();
  for (const Component& c : components_) {
    if (p < c.weight) return c.dist->Sample(rng);
    p -= c.weight;
  }
  // Floating-point slack: fall through to the last component.
  return components_.back().dist->Sample(rng);
}

double MixedSizeDistribution::Mean() const {
  double mean = 0.0;
  for (const Component& c : components_) mean += c.weight * c.dist->Mean();
  return mean;
}

int64_t MixedSizeDistribution::MaxSize() const {
  int64_t max_size = 1;
  for (const Component& c : components_) {
    max_size = std::max(max_size, c.dist->MaxSize());
  }
  return max_size;
}

std::string MixedSizeDistribution::Describe() const {
  std::string out = "mix(";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.0f%% %s", components_[i].weight * 100.0,
                     components_[i].dist->Describe().c_str());
  }
  out += ")";
  return out;
}

std::shared_ptr<const SizeDistribution> MakeSmallLargeMix(
    double small_fraction, int64_t small_max, int64_t large_max) {
  auto result = MixedSizeDistribution::Create(
      {{small_fraction, std::make_shared<UniformSizeDistribution>(small_max)},
       {1.0 - small_fraction,
        std::make_shared<UniformSizeDistribution>(large_max)}});
  GRANULOCK_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace granulock::workload
