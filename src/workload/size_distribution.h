#ifndef GRANULOCK_WORKLOAD_SIZE_DISTRIBUTION_H_
#define GRANULOCK_WORKLOAD_SIZE_DISTRIBUTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace granulock::workload {

/// Distribution of transaction sizes (`NU`, the number of database entities
/// a transaction accesses). The paper uses `U{1..maxtransize}` for the base
/// experiments (§3.1–3.5) and an 80%/20% small/large mix in §3.6.
class SizeDistribution {
 public:
  virtual ~SizeDistribution() = default;

  /// Draws one transaction size (>= 1).
  virtual int64_t Sample(Rng& rng) const = 0;

  /// The distribution mean, used for analytic sanity checks and reporting.
  virtual double Mean() const = 0;

  /// The largest size this distribution can produce; must be <= dbsize for
  /// a valid experiment.
  virtual int64_t MaxSize() const = 0;

  /// Human-readable description for bench headers.
  virtual std::string Describe() const = 0;
};

/// Sizes uniform on {1, ..., maxtransize} — the paper's base workload,
/// giving a mean of (maxtransize + 1) / 2 ~ 0.5 * maxtransize.
class UniformSizeDistribution final : public SizeDistribution {
 public:
  /// Requires maxtransize >= 1.
  explicit UniformSizeDistribution(int64_t maxtransize);

  int64_t Sample(Rng& rng) const override;
  double Mean() const override;
  int64_t MaxSize() const override { return maxtransize_; }
  std::string Describe() const override;

 private:
  int64_t maxtransize_;
};

/// Every transaction has exactly `size` entities; useful for tests and
/// ablations where size variance would confound the effect under study.
class ConstantSizeDistribution final : public SizeDistribution {
 public:
  explicit ConstantSizeDistribution(int64_t size);

  int64_t Sample(Rng& rng) const override;
  double Mean() const override { return static_cast<double>(size_); }
  int64_t MaxSize() const override { return size_; }
  std::string Describe() const override;

 private:
  int64_t size_;
};

/// A finite mixture of size distributions: component `i` is drawn with
/// probability `weight[i]`. The paper's §3.6 workload is
/// `Mixed({0.8, U{1..50}}, {0.2, U{1..500}})`.
class MixedSizeDistribution final : public SizeDistribution {
 public:
  struct Component {
    double weight;  ///< selection probability; weights must sum to ~1
    std::shared_ptr<const SizeDistribution> dist;
  };

  /// Validates and builds the mixture. Fails if `components` is empty, a
  /// weight is negative, a component is null, or weights do not sum to 1
  /// (within 1e-9).
  static Result<std::shared_ptr<const SizeDistribution>> Create(
      std::vector<Component> components);

  int64_t Sample(Rng& rng) const override;
  double Mean() const override;
  int64_t MaxSize() const override;
  std::string Describe() const override;

 private:
  explicit MixedSizeDistribution(std::vector<Component> components);

  std::vector<Component> components_;
};

/// Convenience: the paper's §3.6 mixed workload — `small_fraction` of
/// transactions are `U{1..small_max}`, the rest `U{1..large_max}`.
std::shared_ptr<const SizeDistribution> MakeSmallLargeMix(
    double small_fraction, int64_t small_max, int64_t large_max);

}  // namespace granulock::workload

#endif  // GRANULOCK_WORKLOAD_SIZE_DISTRIBUTION_H_
