#include "workload/workload.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

namespace granulock::workload {

const char* PartitioningToString(PartitioningMethod m) {
  switch (m) {
    case PartitioningMethod::kHorizontal:
      return "horizontal";
    case PartitioningMethod::kRandom:
      return "random";
  }
  return "?";
}

bool PartitioningFromString(const std::string& s, PartitioningMethod* out) {
  if (s == "horizontal") {
    *out = PartitioningMethod::kHorizontal;
  } else if (s == "random") {
    *out = PartitioningMethod::kRandom;
  } else {
    return false;
  }
  return true;
}

WorkloadSpec WorkloadSpec::Base(const model::SystemConfig& cfg) {
  WorkloadSpec spec;
  spec.sizes = std::make_shared<UniformSizeDistribution>(cfg.maxtransize);
  spec.placement = model::Placement::kBest;
  spec.partitioning = PartitioningMethod::kHorizontal;
  return spec;
}

Status WorkloadSpec::Validate(const model::SystemConfig& cfg) const {
  if (sizes == nullptr) {
    return Status::InvalidArgument("workload has no size distribution");
  }
  if (sizes->MaxSize() > cfg.dbsize) {
    return Status::InvalidArgument(StrFormat(
        "size distribution can produce %lld entities but dbsize is %lld",
        (long long)sizes->MaxSize(), (long long)cfg.dbsize));
  }
  return Status::OK();
}

std::string WorkloadSpec::Describe() const {
  return StrFormat("sizes=%s placement=%s partitioning=%s",
                   sizes ? sizes->Describe().c_str() : "<none>",
                   model::PlacementToString(placement),
                   PartitioningToString(partitioning));
}

TransactionParams GenerateTransaction(const model::SystemConfig& cfg,
                                      const WorkloadSpec& spec, Rng& rng) {
  GRANULOCK_CHECK(spec.sizes != nullptr);
  TransactionParams params;
  params.nu = spec.sizes->Sample(rng);
  GRANULOCK_CHECK_GE(params.nu, 1);
  GRANULOCK_CHECK_LE(params.nu, cfg.dbsize);

  const model::LockDemand demand =
      model::LocksRequired(spec.placement, cfg.dbsize, cfg.ltot, params.nu);
  params.lu = demand.locks;
  params.expected_locks = demand.expected_locks;

  switch (spec.partitioning) {
    case PartitioningMethod::kHorizontal:
      params.pu = cfg.npros;
      break;
    case PartitioningMethod::kRandom:
      params.pu = rng.UniformInt(1, cfg.npros);
      break;
  }
  // Distinct nodes: horizontal uses all of them; random picks a uniform
  // PU-subset ("no two sub-transactions are assigned to the same
  // processor").
  if (params.pu == cfg.npros) {
    params.nodes.resize(static_cast<size_t>(cfg.npros));
    for (int64_t i = 0; i < cfg.npros; ++i) {
      params.nodes[static_cast<size_t>(i)] = static_cast<int32_t>(i);
    }
  } else {
    const std::vector<int64_t> chosen =
        rng.SampleWithoutReplacement(cfg.npros, params.pu);
    params.nodes.assign(chosen.begin(), chosen.end());
  }

  params.io_demand = static_cast<double>(params.nu) * cfg.iotime;
  params.cpu_demand = static_cast<double>(params.nu) * cfg.cputime;
  params.lock_io_demand = params.expected_locks * cfg.liotime;
  params.lock_cpu_demand = params.expected_locks * cfg.lcputime;
  return params;
}

namespace {

// Floyd's k-subset sampler writing into a caller-owned buffer. Performs
// the identical `UniformInt` draw sequence as
// `Rng::SampleWithoutReplacement` (membership tests consume no
// randomness), but tracks the chosen set in the output buffer itself — a
// linear scan over at most `npros` elements — instead of a freshly
// allocated hash set.
void SampleNodesInto(Rng& rng, int64_t n, int64_t k,
                     std::vector<int32_t>* out) {
  out->clear();
  for (int64_t j = n - k; j < n; ++j) {
    const int64_t t = rng.UniformInt(0, j);
    // `j` itself can never be present yet (every earlier element is < j),
    // so the collision fallback always inserts.
    const bool taken =
        std::find(out->begin(), out->end(), static_cast<int32_t>(t)) !=
        out->end();
    out->push_back(static_cast<int32_t>(taken ? j : t));
  }
  std::sort(out->begin(), out->end());
}

}  // namespace

TransactionFactory::TransactionFactory(const model::SystemConfig& cfg,
                                       const WorkloadSpec& spec)
    : sizes_(spec.sizes),
      partitioning_(spec.partitioning),
      demand_table_(spec.placement, cfg.dbsize, cfg.ltot,
                    spec.sizes != nullptr ? spec.sizes->MaxSize() : 1),
      dbsize_(cfg.dbsize),
      npros_(cfg.npros),
      iotime_(cfg.iotime),
      cputime_(cfg.cputime),
      liotime_(cfg.liotime),
      lcputime_(cfg.lcputime) {
  GRANULOCK_CHECK(sizes_ != nullptr);
}

void TransactionFactory::Generate(Rng& rng, TransactionParams* params) const {
  params->nu = sizes_->Sample(rng);
  GRANULOCK_CHECK_GE(params->nu, 1);
  GRANULOCK_CHECK_LE(params->nu, dbsize_);

  const model::LockDemand& demand = demand_table_.Lookup(params->nu);
  params->lu = demand.locks;
  params->expected_locks = demand.expected_locks;

  switch (partitioning_) {
    case PartitioningMethod::kHorizontal:
      params->pu = npros_;
      break;
    case PartitioningMethod::kRandom:
      params->pu = rng.UniformInt(1, npros_);
      break;
  }
  if (params->pu == npros_) {
    params->nodes.resize(static_cast<size_t>(npros_));
    for (int64_t i = 0; i < npros_; ++i) {
      params->nodes[static_cast<size_t>(i)] = static_cast<int32_t>(i);
    }
  } else {
    SampleNodesInto(rng, npros_, params->pu, &params->nodes);
  }

  params->io_demand = static_cast<double>(params->nu) * iotime_;
  params->cpu_demand = static_cast<double>(params->nu) * cputime_;
  params->lock_io_demand = params->expected_locks * liotime_;
  params->lock_cpu_demand = params->expected_locks * lcputime_;
}

}  // namespace granulock::workload
