#include "sim/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace granulock::sim {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
}

double RunningStat::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

void RunningStat::Reset() { *this = RunningStat(); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void TimeWeightedStat::Start(double start_time, double value) {
  start_time_ = last_time_ = start_time;
  value_ = value;
  weighted_sum_ = 0.0;
  started_ = true;
}

void TimeWeightedStat::Update(double now, double value) {
  GRANULOCK_CHECK(started_) << "TimeWeightedStat::Start was not called";
  GRANULOCK_CHECK_GE(now, last_time_);
  weighted_sum_ += value_ * (now - last_time_);
  last_time_ = now;
  value_ = value;
}

double TimeWeightedStat::Average(double now) const {
  GRANULOCK_CHECK(started_);
  GRANULOCK_CHECK_GE(now, last_time_);
  const double span = now - start_time_;
  if (span <= 0.0) return value_;
  return (weighted_sum_ + value_ * (now - last_time_)) / span;
}

void TimeWeightedStat::ResetWindow(double now) {
  GRANULOCK_CHECK(started_);
  start_time_ = last_time_ = now;
  weighted_sum_ = 0.0;
}

QuantileEstimator::QuantileEstimator(std::size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_state_(seed) {
  GRANULOCK_CHECK_GE(capacity, 1u);
  sample_.reserve(capacity);
}

void QuantileEstimator::Add(double x) {
  ++count_;
  sorted_valid_ = false;
  if (sample_.size() < capacity_) {
    sample_.push_back(x);
    return;
  }
  // Reservoir sampling (Algorithm R): keep x with probability
  // capacity/count, replacing a uniformly random resident. SplitMix64
  // inline keeps this header-light and deterministic.
  rng_state_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  const uint64_t slot = z % count_;
  if (slot < sample_.size()) {
    sample_[static_cast<std::size_t>(slot)] = x;
  }
}

double QuantileEstimator::Quantile(double q) const {
  if (sample_.empty()) return 0.0;
  GRANULOCK_CHECK_GE(q, 0.0);
  GRANULOCK_CHECK_LE(q, 1.0);
  if (!sorted_valid_) {
    sorted_ = sample_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void QuantileEstimator::Reset() {
  count_ = 0;
  sample_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

namespace {

// Exact two-sided t quantiles for small degrees of freedom, one row per
// confidence level {0.90, 0.95, 0.99}, df = 1..30.
constexpr double kT90[30] = {
    6.3138, 2.9200, 2.3534, 2.1318, 2.0150, 1.9432, 1.8946, 1.8595, 1.8331,
    1.8125, 1.7959, 1.7823, 1.7709, 1.7613, 1.7531, 1.7459, 1.7396, 1.7341,
    1.7291, 1.7247, 1.7207, 1.7171, 1.7139, 1.7109, 1.7081, 1.7056, 1.7033,
    1.7011, 1.6991, 1.6973};
constexpr double kT95[30] = {
    12.7062, 4.3027, 3.1824, 2.7764, 2.5706, 2.4469, 2.3646, 2.3060, 2.2622,
    2.2281,  2.2010, 2.1788, 2.1604, 2.1448, 2.1314, 2.1199, 2.1098, 2.1009,
    2.0930,  2.0860, 2.0796, 2.0739, 2.0687, 2.0639, 2.0595, 2.0555, 2.0518,
    2.0484,  2.0452, 2.0423};
constexpr double kT99[30] = {
    63.6567, 9.9248, 5.8409, 4.6041, 4.0321, 3.7074, 3.4995, 3.3554, 3.2498,
    3.1693,  3.1058, 3.0545, 3.0123, 2.9768, 2.9467, 2.9208, 2.8982, 2.8784,
    2.8609,  2.8453, 2.8314, 2.8188, 2.8073, 2.7969, 2.7874, 2.7787, 2.7707,
    2.7633,  2.7564, 2.7500};

double NormalQuantileTwoSided(double level) {
  if (level >= 0.989) return 2.5758;
  if (level >= 0.949) return 1.9600;
  return 1.6449;  // 0.90
}

}  // namespace

double StudentTQuantile(uint64_t df, double level) {
  GRANULOCK_CHECK_GE(df, 1u);
  const double* table;
  if (level >= 0.989) {
    table = kT99;
  } else if (level >= 0.949) {
    table = kT95;
  } else {
    table = kT90;
  }
  if (df <= 30) return table[df - 1];
  // For df > 30, the t distribution is close to normal; apply the standard
  // 1/(4*df) first-order correction.
  const double z = NormalQuantileTwoSided(level);
  return z * (1.0 + (z * z + 1.0) / (4.0 * static_cast<double>(df)));
}

double ConfidenceHalfWidth(uint64_t count, double stddev, double level) {
  if (count < 2) return 0.0;
  const double t = StudentTQuantile(count - 1, level);
  return t * stddev / std::sqrt(static_cast<double>(count));
}

std::vector<double> BatchMeans(const std::vector<double>& series,
                               size_t num_batches) {
  GRANULOCK_CHECK_GE(num_batches, 1u);
  std::vector<double> out;
  if (series.empty()) return out;
  if (num_batches > series.size()) num_batches = series.size();
  const size_t batch = series.size() / num_batches;
  out.reserve(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    const size_t begin = b * batch;
    // Fold the remainder into the last batch.
    const size_t end = (b + 1 == num_batches) ? series.size() : begin + batch;
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) sum += series[i];
    out.push_back(sum / static_cast<double>(end - begin));
  }
  return out;
}

}  // namespace granulock::sim
