#ifndef GRANULOCK_SIM_INLINE_CALLBACK_H_
#define GRANULOCK_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace granulock::sim {

/// A move-only `void()` callable with small-buffer storage, built for the
/// event engine's hot path.
///
/// `std::function` heap-allocates for any capture list beyond two words,
/// which made every scheduled event cost a malloc/free pair. The engines'
/// event callbacks capture at most ~40 bytes (`this`, a transaction
/// pointer, a node index, a couple of doubles), so a 48-byte inline buffer
/// stores every callback in this codebase with zero allocations; larger
/// callables transparently fall back to the heap rather than failing to
/// compile, keeping the type a drop-in `Simulator::Callback`.
///
/// Dispatch is two raw function pointers (invoke and move-or-destroy)
/// instead of a vtable, so moving an event slot during heap sifts or slab
/// growth is a couple of pointer copies plus the callable's own move.
class InlineCallback {
 public:
  /// Inline capacity. Callables up to this size (and alignof <=
  /// max_align_t) are stored in place; bigger ones go to the heap.
  static constexpr size_t kInlineSize = 48;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT(runtime/explicit): drop-in for function
    using Decayed = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Decayed&>,
                  "InlineCallback requires a void() callable");
    if constexpr (sizeof(Decayed) <= kInlineSize &&
                  alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(static_cast<Decayed*>(p)))(); };
      move_destroy_ = [](void* dst, void* src) {
        Decayed* s = std::launder(static_cast<Decayed*>(src));
        if (dst != nullptr) ::new (dst) Decayed(std::move(*s));
        s->~Decayed();
      };
    } else {
      ::new (static_cast<void*>(storage_))
          Decayed*(new Decayed(std::forward<F>(f)));
      invoke_ = [](void* p) {
        (**std::launder(static_cast<Decayed**>(p)))();
      };
      move_destroy_ = [](void* dst, void* src) {
        Decayed** s = std::launder(static_cast<Decayed**>(src));
        if (dst != nullptr) {
          ::new (dst) Decayed*(*s);  // ownership transfers with the pointer
        } else {
          delete *s;
        }
      };
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  /// True when a callable is stored.
  explicit operator bool() const { return invoke_ != nullptr; }

  /// Invokes the stored callable. Undefined when empty.
  void operator()() { invoke_(storage_); }

  /// Destroys the stored callable (if any), leaving the object empty.
  void Reset() {
    if (move_destroy_ != nullptr) {
      move_destroy_(nullptr, storage_);
      invoke_ = nullptr;
      move_destroy_ = nullptr;
    }
  }

 private:
  void MoveFrom(InlineCallback& other) noexcept {
    if (other.move_destroy_ != nullptr) {
      other.move_destroy_(storage_, other.storage_);
      invoke_ = other.invoke_;
      move_destroy_ = other.move_destroy_;
      other.invoke_ = nullptr;
      other.move_destroy_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  void (*invoke_)(void*) = nullptr;
  /// With a non-null `dst`: move-construct the callable into `dst` and
  /// destroy the source. With null `dst`: destroy only.
  void (*move_destroy_)(void* dst, void* src) = nullptr;
};

}  // namespace granulock::sim

#endif  // GRANULOCK_SIM_INLINE_CALLBACK_H_
