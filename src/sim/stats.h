#ifndef GRANULOCK_SIM_STATS_H_
#define GRANULOCK_SIM_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace granulock::sim {

/// Online mean/variance accumulator (Welford's algorithm). Numerically
/// stable for long simulation runs; O(1) per observation.
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations so far.
  uint64_t count() const { return count_; }

  /// Sample mean (0 when empty).
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance (0 when fewer than two observations).
  double Variance() const;

  /// Sample standard deviation.
  double StdDev() const;

  /// Smallest / largest observation (0 when empty).
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }

  /// Sum of all observations.
  double Sum() const { return sum_; }

  /// Forgets everything.
  void Reset();

  /// Merges another accumulator into this one (parallel reduction of
  /// replications).
  void Merge(const RunningStat& other);

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal (queue lengths,
/// number of active transactions, ...). Call `Update(now, new_value)` at
/// every change; the value holds between updates.
class TimeWeightedStat {
 public:
  /// Starts observation at `start_time` with initial value `value`.
  void Start(double start_time, double value);

  /// Records that the signal changed to `value` at time `now` (>= the last
  /// update time).
  void Update(double now, double value);

  /// Time average over [start, now]; `now` must be >= the last update.
  double Average(double now) const;

  /// Restarts the window at `now`, keeping the current value (warmup
  /// discard).
  void ResetWindow(double now);

  /// The current (most recently set) value of the signal.
  double current() const { return value_; }

 private:
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
  bool started_ = false;
};

/// Streaming quantile estimator: keeps an exact sample up to `capacity`
/// observations, then switches to uniform reservoir sampling, so memory is
/// bounded while quantiles stay unbiased. Used for response-time
/// percentiles (p50/p95/p99).
class QuantileEstimator {
 public:
  /// `capacity` bounds the retained sample (>= 1). `seed` drives the
  /// reservoir replacement draws (the estimator is deterministic given
  /// the seed and input order).
  explicit QuantileEstimator(std::size_t capacity = 4096,
                             uint64_t seed = 0x5eed);

  /// Adds one observation.
  void Add(double x);

  /// The q-quantile (0 <= q <= 1) of the retained sample, by linear
  /// interpolation; 0 when empty.
  double Quantile(double q) const;

  /// Observations seen (not retained).
  uint64_t count() const { return count_; }

  /// Forgets everything (keeps capacity and PRNG state).
  void Reset();

 private:
  std::size_t capacity_;
  uint64_t count_ = 0;
  uint64_t rng_state_;
  std::vector<double> sample_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Two-sided Student-t confidence half-width for a sample with the given
/// count/stddev, at the given confidence level (supported: 0.90, 0.95,
/// 0.99). Returns 0 for fewer than two observations.
double ConfidenceHalfWidth(uint64_t count, double stddev, double level);

/// The t-distribution quantile t_{df, 1-(1-level)/2} used above; exposed
/// for tests. Uses an exact small-df table and the Cornish-Fisher-style
/// normal expansion beyond it.
double StudentTQuantile(uint64_t df, double level);

/// Batch-means helper: splits a series of observations into `num_batches`
/// equal batches and returns the per-batch means (used to estimate the
/// variance of correlated output series like response times).
std::vector<double> BatchMeans(const std::vector<double>& series,
                               std::size_t num_batches);

}  // namespace granulock::sim

#endif  // GRANULOCK_SIM_STATS_H_
