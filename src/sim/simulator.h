#ifndef GRANULOCK_SIM_SIMULATOR_H_
#define GRANULOCK_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "sim/inline_callback.h"

namespace granulock::sim {

/// Simulation time. The paper's model is expressed in abstract "time units"
/// (1 unit ~ 0.5 s under the paper's example calibration); we keep them as
/// doubles since all service times are products of real-valued parameters.
using SimTime = double;

/// Identifier for a scheduled event, usable to cancel it before it fires.
/// Encodes (generation << 32 | slot index) into the event slab; 0 is never
/// a valid id (generations start at 1), so a zero-initialized id is safely
/// cancellable as a no-op.
using EventId = uint64_t;

/// A sequential discrete-event simulation engine.
///
/// The engine owns a clock and a pending-event set ordered by (time,
/// insertion sequence) — ties fire in scheduling order, which makes every
/// run fully deterministic for a fixed seed. Events are arbitrary
/// callbacks; higher-level abstractions (servers, queues) are built on top.
///
/// Hot-path design (this is the innermost loop of every experiment):
///  * The pending set is a calendar queue (Brown 1988) with a sorted
///    "bottom rung" (the ladder-queue refinement): future events hash
///    into an array of buckets by "day" = floor(time / width) mod
///    nbuckets — O(1) insert, no sift chains — while the imminent day's
///    events are pulled into a small array sorted descending, so
///    extract-min is a literal `pop_back`. A burst of same-timestamp
///    events is sorted once at the day boundary instead of re-scanned on
///    every pop. The bucket width adapts automatically (from the gaps
///    between the soonest pending events, with Brown's outlier-filtered
///    two-pass mean so far-future watchdogs don't wreck the estimate)
///    and the bucket count doubles/halves with the pending population.
///    When the queue is sparse relative to its year, the refill falls
///    back to a direct min search (the classic calendar-queue fallback).
///  * Storage is structure-of-arrays: each bucket keeps `time`, `seq` and
///    slot-reference arrays side by side so min-scans touch densely
///    packed 8-byte lanes, and the event slab splits callbacks,
///    generations and flags into parallel arrays so staleness checks
///    never drag 64-byte callback objects through the cache.
///  * Callbacks live in `InlineCallback` small-buffer storage inside the
///    slab — no per-event heap allocation.
///  * Slots are recycled through a free list; each reuse bumps a
///    generation stamp, so a stale `EventId` (already fired or cancelled)
///    can never touch a later event that happens to reuse its slot.
///  * `Cancel` is O(1): it destroys the callback and invalidates the
///    slot's generation; the calendar entry is deleted lazily when its
///    bucket is next scanned. When stale entries outnumber live ones —
///    or pile up past an absolute floor, so low-churn long runs cannot
///    carry tombstones indefinitely — they are swept out in one O(n)
///    compaction pass.
///
/// Determinism: pops always yield the exact (time, seq) minimum of the
/// live set — the calendar layout only changes *where* entries wait, not
/// the order they fire — so runs are bit-identical to the previous
/// binary-heap engine (`scheduler_differential_test` proves this against
/// a reference heap under randomized schedule/cancel streams).
///
/// Not thread-safe: a `Simulator` and everything scheduled on it must be
/// driven from one thread. (Running *replications* in parallel is safe —
/// use one Simulator per replication; see `core::ParallelRunner`.)
class Simulator {
 public:
  using Callback = InlineCallback;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Starts at 0.
  SimTime Now() const { return now_; }

  /// Schedules `callback` to run at absolute time `at` (>= Now()). Returns
  /// an id that can be passed to `Cancel`.
  EventId ScheduleAt(SimTime at, Callback callback);

  /// Schedules `callback` to run `delay` (>= 0) time units from now.
  EventId ScheduleAfter(SimTime delay, Callback callback);

  /// Like `ScheduleAt`/`ScheduleAfter`, but the event is an *observer*: it
  /// may only read simulation state (metric sampling, progress hooks) and
  /// is excluded from `ExecutedEvents()`, so enabling observability does
  /// not change the reported event count. Observer events still execute in
  /// (time, scheduling order) like any other event.
  EventId ScheduleObserverAt(SimTime at, Callback callback);
  EventId ScheduleObserverAfter(SimTime delay, Callback callback);

  /// Cancels a pending event in O(1). Cancelling an event that already
  /// fired (or was already cancelled) is a no-op: the id's generation no
  /// longer matches its slot, even if the slot has been reused.
  void Cancel(EventId id);

  /// Runs the earliest pending event, advancing the clock to its timestamp.
  /// Returns false if no events remain.
  bool Step();

  /// Runs events until the next event would fire strictly after `deadline`
  /// (or no events remain), then sets the clock to exactly `deadline`.
  /// Events scheduled *at* `deadline` do fire.
  void RunUntil(SimTime deadline);

  /// Runs events until none remain.
  void RunUntilEmpty();

  /// Number of pending (non-cancelled) events.
  size_t PendingEvents() const { return live_count_; }

  /// Size of the internal pending-event store (all calendar entries),
  /// including lazily-deleted (cancelled) entries awaiting compaction —
  /// the engine's actual memory footprint. Diagnostics and the
  /// cancel-churn memory regression tests; bounded by `PendingEvents()`
  /// plus the compaction thresholds.
  size_t HeapSize() const { return live_count_ + stale_count_; }

  /// Total number of simulation events executed so far (diagnostics).
  /// Observer events are counted separately in
  /// `ExecutedObserverEvents()`.
  uint64_t ExecutedEvents() const { return executed_; }
  uint64_t ExecutedObserverEvents() const { return observer_executed_; }

  /// High-water mark of the pending-event set (engine self-profiling:
  /// the event queue is the simulator's main memory consumer).
  size_t MaxPendingEvents() const { return max_pending_; }

  /// Full audit of the engine's internal bookkeeping: every live slot has
  /// a callback and exactly one matching calendar entry, every entry sits
  /// in the bucket its day maps to and no live entry lies before the
  /// day cursor or the clock, stale entries are counted exactly, slots
  /// are either live or on the free list, and the pending count is
  /// `entries - stale`. O(pending events); violations report through
  /// `invariants::Fail`.
  void CheckConsistency() const;

 private:
  friend struct AuditTestPeer;  // invariants_test corrupts state through it

  /// One calendar bucket, structure-of-arrays: `time[i]`, `seq[i]` and
  /// `ref[i]` describe one pending entry. `ref` packs
  /// (generation << 32 | slot) exactly like an `EventId`; an entry is
  /// stale (lazily deleted) when its generation no longer matches its
  /// slot's. Entries are unordered within a bucket — extraction scans.
  struct Bucket {
    std::vector<SimTime> time;
    std::vector<uint64_t> seq;
    std::vector<uint64_t> ref;
  };

  /// One pending entry in AoS form (bottom rung and rebuild scratch).
  struct CalEntry {
    SimTime time;
    uint64_t seq;
    uint64_t ref;
  };

  /// Descending (time, seq) order: sorting the bottom with this puts the
  /// minimum at the back, where `pop_back` is O(1).
  struct EntryLater {
    bool operator()(const CalEntry& a, const CalEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Compact when stale entries both outnumber live ones and are plentiful
  /// enough to amortize the O(n) sweep...
  static constexpr size_t kCompactMinStale = 64;
  /// ...or unconditionally once this many tombstones accumulate, so a
  /// long-lived run with a large live set and slow cancel churn (stale
  /// never outnumbers live) still gets swept instead of carrying stale
  /// slots for the whole run.
  static constexpr size_t kCompactStaleFloor = 1024;

  /// Calendar tuning. Bucket counts are powers of two (masked modulo);
  /// the count doubles when live entries exceed twice the bucket count
  /// and halves when they fall below a quarter of it (8x hysteresis so
  /// oscillating populations don't thrash rebuilds).
  static constexpr size_t kMinBuckets = 16;
  /// Width is estimated from the gaps between this many soonest events.
  static constexpr size_t kWidthSampleMax = 64;
  static constexpr double kMinWidth = 1e-9;
  /// This many consecutive sparse refills (full lap without an in-day
  /// hit) force a same-size rebuild to recalibrate the width — small
  /// queues never grow, so this is their only calibration path.
  static constexpr size_t kSparseRebuildThreshold = 8;
  /// At or below this many live events a sparse refill pulls the whole
  /// queue into the bottom (a sorted array beats any bucketing at this
  /// size).
  static constexpr size_t kSmallPullAll = 32;

  EventId Schedule(SimTime at, Callback callback, bool observer);

  /// Maps a timestamp to its calendar day. Guarded against overflowing
  /// the uint64 cast for absurd time/width ratios.
  uint64_t DayOf(SimTime t) const {
    const double day = t * inv_width_;
    if (day >= 9.2e18) return uint64_t{9200000000000000000u};
    return static_cast<uint64_t>(day);
  }

  bool IsStaleRef(uint64_t ref) const {
    const uint32_t slot = static_cast<uint32_t>(ref & 0xffffffffu);
    return (slot_flags_[slot] & kLiveFlag) == 0 ||
           slot_gen_[slot] != static_cast<uint32_t>(ref >> 32);
  }

  /// Swap-removes entry `i` from `bucket` (order within a bucket is
  /// irrelevant; extraction order comes from the sorted bottom).
  static void RemoveEntry(Bucket& bucket, size_t i);

  /// Drops stale entries from `bucket`, decrementing `stale_count_`.
  void DropStale(Bucket& bucket);

  /// Ensures the bottom holds the live (time, seq) minimum at its back:
  /// pops stale tail entries, refilling from the calendar when the
  /// bottom drains. Returns false iff no live events remain.
  bool PrepareMin();

  /// Moves the soonest day's entries from the calendar into the (empty)
  /// bottom: scans days forward from the cursor for one lap, then falls
  /// back to a direct global-minimum search (sparse queue). Prunes stale
  /// entries as it goes and advances `current_day_`/`bottom_day_`.
  /// Returns false iff no live events exist.
  bool RefillBottom();

  /// Pops the bottom's back entry — the live minimum — advances the
  /// clock, and runs its callback.
  void Fire();

  uint32_t AcquireSlot();
  /// Marks the slot's event finished: destroys the callback, bumps the
  /// generation (skipping 0 on wrap so ids stay non-zero), and recycles
  /// the slot.
  void ReleaseSlot(uint32_t index);

  /// Sweeps all stale entries out of the calendar (O(entries)).
  void Compact();
  void MaybeCompact();

  /// Rebuilds the calendar with `new_bucket_count` buckets and a width
  /// re-estimated from the pending events, dropping stale entries.
  /// (time, seq) is a total order — seq is unique — so redistribution
  /// cannot reorder eventual pops; determinism is unaffected.
  void Rebuild(size_t new_bucket_count);

  /// Picks a bucket width ~3x the mean gap between the soonest pending
  /// events (so consecutive pops usually stay within one bucket-day),
  /// falling back to the current width when there is no signal (fewer
  /// than two events, or all at one instant).
  double ChooseWidth(const std::vector<CalEntry>& entries) const;

  static constexpr uint8_t kLiveFlag = 1;
  static constexpr uint8_t kObserverFlag = 2;

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  uint64_t observer_executed_ = 0;
  size_t max_pending_ = 0;
  size_t live_count_ = 0;
  size_t stale_count_ = 0;  // stale (cancelled) entries still in buckets

  /// `bottom_day_` value meaning "no bottom region claimed yet".
  static constexpr uint64_t kNoBottomDay = ~uint64_t{0};

  // Calendar state.
  std::vector<Bucket> buckets_;  // power-of-two count
  size_t bucket_mask_ = 0;
  double width_ = 1.0;
  double inv_width_ = 1.0;
  uint64_t current_day_ = 0;  // no live calendar entry has an earlier day

  // Bottom rung: entries of the imminent day (<= bottom_day_), sorted
  // descending by (time, seq) so the back is the minimum. Entries with
  // day <= bottom_day_ insert here (sorted); later days go to the
  // calendar, whose live entries all have day > bottom_day_.
  std::vector<CalEntry> bottom_;
  uint64_t bottom_day_ = kNoBottomDay;
  size_t sparse_refills_ = 0;  // consecutive refills that needed fallback

  // Event slab, structure-of-arrays: parallel by slot index.
  std::vector<Callback> slot_cb_;
  std::vector<uint32_t> slot_gen_;
  std::vector<uint8_t> slot_flags_;  // kLiveFlag | kObserverFlag
  std::vector<uint32_t> free_slots_;

  std::vector<CalEntry> rebuild_scratch_;
  mutable std::vector<SimTime> width_scratch_;
};

}  // namespace granulock::sim

#endif  // GRANULOCK_SIM_SIMULATOR_H_
