#ifndef GRANULOCK_SIM_SIMULATOR_H_
#define GRANULOCK_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "sim/inline_callback.h"

namespace granulock::sim {

/// Simulation time. The paper's model is expressed in abstract "time units"
/// (1 unit ~ 0.5 s under the paper's example calibration); we keep them as
/// doubles since all service times are products of real-valued parameters.
using SimTime = double;

/// Identifier for a scheduled event, usable to cancel it before it fires.
/// Encodes (generation << 32 | slot index) into the event slab; 0 is never
/// a valid id (generations start at 1), so a zero-initialized id is safely
/// cancellable as a no-op.
using EventId = uint64_t;

/// A sequential discrete-event simulation engine.
///
/// The engine owns a clock and a pending-event set ordered by (time,
/// insertion sequence) — ties fire in scheduling order, which makes every
/// run fully deterministic for a fixed seed. Events are arbitrary
/// callbacks; higher-level abstractions (servers, queues) are built on top.
///
/// Hot-path design (this is the innermost loop of every experiment):
///  * Callbacks live in `InlineCallback` small-buffer storage inside a
///    slab of event slots — no per-event heap allocation.
///  * Slots are recycled through a free list; each reuse bumps a
///    generation stamp, so a stale `EventId` (already fired or cancelled)
///    can never touch a later event that happens to reuse its slot.
///  * `Cancel` is O(1): it destroys the callback and invalidates the
///    slot's generation; the heap entry is deleted lazily when popped.
///    When the stale fraction of the heap grows past a threshold the heap
///    is compacted in one O(n) pass, so cancel-heavy workloads cannot
///    accumulate unbounded stale entries.
///
/// Not thread-safe: a `Simulator` and everything scheduled on it must be
/// driven from one thread. (Running *replications* in parallel is safe —
/// use one Simulator per replication; see `core::ParallelRunner`.)
class Simulator {
 public:
  using Callback = InlineCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Starts at 0.
  SimTime Now() const { return now_; }

  /// Schedules `callback` to run at absolute time `at` (>= Now()). Returns
  /// an id that can be passed to `Cancel`.
  EventId ScheduleAt(SimTime at, Callback callback);

  /// Schedules `callback` to run `delay` (>= 0) time units from now.
  EventId ScheduleAfter(SimTime delay, Callback callback);

  /// Like `ScheduleAt`/`ScheduleAfter`, but the event is an *observer*: it
  /// may only read simulation state (metric sampling, progress hooks) and
  /// is excluded from `ExecutedEvents()`, so enabling observability does
  /// not change the reported event count. Observer events still execute in
  /// (time, scheduling order) like any other event.
  EventId ScheduleObserverAt(SimTime at, Callback callback);
  EventId ScheduleObserverAfter(SimTime delay, Callback callback);

  /// Cancels a pending event in O(1). Cancelling an event that already
  /// fired (or was already cancelled) is a no-op: the id's generation no
  /// longer matches its slot, even if the slot has been reused.
  void Cancel(EventId id);

  /// Runs the earliest pending event, advancing the clock to its timestamp.
  /// Returns false if no events remain.
  bool Step();

  /// Runs events until the next event would fire strictly after `deadline`
  /// (or no events remain), then sets the clock to exactly `deadline`.
  /// Events scheduled *at* `deadline` do fire.
  void RunUntil(SimTime deadline);

  /// Runs events until none remain.
  void RunUntilEmpty();

  /// Number of pending (non-cancelled) events.
  size_t PendingEvents() const { return live_count_; }

  /// Size of the internal event heap, including lazily-deleted (cancelled)
  /// entries awaiting compaction — the engine's actual memory footprint.
  /// Diagnostics and the cancel-churn memory regression test; bounded by
  /// `PendingEvents()` plus the compaction threshold.
  size_t HeapSize() const { return heap_.size(); }

  /// Total number of simulation events executed so far (diagnostics).
  /// Observer events are counted separately in
  /// `ExecutedObserverEvents()`.
  uint64_t ExecutedEvents() const { return executed_; }
  uint64_t ExecutedObserverEvents() const { return observer_executed_; }

  /// High-water mark of the pending-event set (engine self-profiling:
  /// the event queue is the simulator's main memory consumer).
  size_t MaxPendingEvents() const { return max_pending_; }

  /// Full audit of the engine's internal bookkeeping: every live slot has
  /// a callback and exactly one matching heap entry, stale heap entries
  /// are counted exactly, slots are either live or on the free list, no
  /// pending event lies in the past, and the pending count is
  /// `heap - stale`. O(pending events); violations report through
  /// `invariants::Fail`.
  void CheckConsistency() const;

 private:
  friend struct AuditTestPeer;  // invariants_test corrupts state through it

  /// One slab slot. `generation` advances every time the slot's event
  /// finishes (fires or is cancelled), invalidating outstanding ids and
  /// heap entries that still reference the old generation.
  struct EventSlot {
    Callback callback;
    uint32_t generation = 1;
    bool live = false;      // holds an un-fired, un-cancelled event
    bool observer = false;  // excluded from the executed-event count
  };

  /// One pending-heap entry; 24 bytes, cheap to sift. An entry is stale
  /// (lazily deleted) when its generation no longer matches its slot.
  struct HeapEntry {
    SimTime time;
    uint64_t seq;  // tie-break: FIFO among equal timestamps
    uint32_t slot;
    uint32_t generation;
  };
  struct EntryLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Compact when the heap carries both more stale entries than live ones
  /// and enough of them to amortize the O(n) rebuild.
  static constexpr size_t kCompactMinStale = 64;

  EventId Schedule(SimTime at, Callback callback, bool observer);
  bool IsStale(const HeapEntry& entry) const {
    const EventSlot& slot = slots_[entry.slot];
    return !slot.live || slot.generation != entry.generation;
  }
  /// Marks the slot's event finished: destroys the callback, bumps the
  /// generation (skipping 0 on wrap so ids stay non-zero), and recycles
  /// the slot.
  void ReleaseSlot(uint32_t index);
  /// Rebuilds the heap without its stale entries (O(n)).
  void CompactHeap();
  void MaybeCompactHeap();

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  uint64_t observer_executed_ = 0;
  size_t max_pending_ = 0;
  size_t live_count_ = 0;
  size_t stale_count_ = 0;  // stale (cancelled) entries still in the heap
  std::vector<HeapEntry> heap_;  // std::push_heap/pop_heap with EntryLater
  std::vector<EventSlot> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace granulock::sim

#endif  // GRANULOCK_SIM_SIMULATOR_H_
