#ifndef GRANULOCK_SIM_SIMULATOR_H_
#define GRANULOCK_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace granulock::sim {

/// Simulation time. The paper's model is expressed in abstract "time units"
/// (1 unit ~ 0.5 s under the paper's example calibration); we keep them as
/// doubles since all service times are products of real-valued parameters.
using SimTime = double;

/// Identifier for a scheduled event, usable to cancel it before it fires.
using EventId = uint64_t;

/// A sequential discrete-event simulation engine.
///
/// The engine owns a clock and a pending-event set ordered by (time,
/// insertion sequence) — ties fire in scheduling order, which makes every
/// run fully deterministic for a fixed seed. Events are arbitrary
/// callbacks; higher-level abstractions (servers, queues) are built on top.
///
/// Not thread-safe: a `Simulator` and everything scheduled on it must be
/// driven from one thread. (Running *replications* in parallel is safe —
/// use one Simulator per replication.)
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Starts at 0.
  SimTime Now() const { return now_; }

  /// Schedules `callback` to run at absolute time `at` (>= Now()). Returns
  /// an id that can be passed to `Cancel`.
  EventId ScheduleAt(SimTime at, Callback callback);

  /// Schedules `callback` to run `delay` (>= 0) time units from now.
  EventId ScheduleAfter(SimTime delay, Callback callback);

  /// Like `ScheduleAt`/`ScheduleAfter`, but the event is an *observer*: it
  /// may only read simulation state (metric sampling, progress hooks) and
  /// is excluded from `ExecutedEvents()`, so enabling observability does
  /// not change the reported event count. Observer events still execute in
  /// (time, scheduling order) like any other event.
  EventId ScheduleObserverAt(SimTime at, Callback callback);
  EventId ScheduleObserverAfter(SimTime delay, Callback callback);

  /// Cancels a pending event. Cancelling an event that already fired (or
  /// was already cancelled) is a no-op.
  void Cancel(EventId id);

  /// Runs the earliest pending event, advancing the clock to its timestamp.
  /// Returns false if no events remain.
  bool Step();

  /// Runs events until the next event would fire strictly after `deadline`
  /// (or no events remain), then sets the clock to exactly `deadline`.
  /// Events scheduled *at* `deadline` do fire.
  void RunUntil(SimTime deadline);

  /// Runs events until none remain.
  void RunUntilEmpty();

  /// Number of pending (non-cancelled) events.
  size_t PendingEvents() const { return heap_.size() - cancelled_.size(); }

  /// Total number of simulation events executed so far (diagnostics).
  /// Observer events are counted separately in
  /// `ExecutedObserverEvents()`.
  uint64_t ExecutedEvents() const { return executed_; }
  uint64_t ExecutedObserverEvents() const { return observer_executed_; }

  /// High-water mark of the pending-event set (engine self-profiling:
  /// the event queue is the simulator's main memory consumer).
  size_t MaxPendingEvents() const { return max_pending_; }

  /// Full audit of the engine's internal bookkeeping: every live event id
  /// has exactly one callback, every cancelled id is still in the heap,
  /// no pending event lies in the past, and the pending count is
  /// `heap - cancelled`. O(pending events); violations report through
  /// `invariants::Fail`.
  void CheckConsistency() const;

 private:
  friend struct AuditTestPeer;  // invariants_test corrupts state through it

  struct Event {
    SimTime time;
    uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventId id;
    bool observer;  // excluded from the executed-event count
    // `Callback` lives in callbacks_ keyed by id so the heap stays cheap to
    // copy during sift operations.
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  EventId Schedule(SimTime at, Callback callback, bool observer);

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t executed_ = 0;
  uint64_t observer_executed_ = 0;
  size_t max_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace granulock::sim

#endif  // GRANULOCK_SIM_SIMULATOR_H_
