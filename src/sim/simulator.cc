#include "sim/simulator.h"

#include <algorithm>

#include "sim/invariants.h"
#include "util/logging.h"

namespace granulock::sim {

EventId Simulator::Schedule(SimTime at, Callback callback, bool observer) {
  GRANULOCK_CHECK_GE(at, now_) << "cannot schedule into the past";
  const EventId id = next_id_++;
  heap_.push(Event{at, next_seq_++, id, observer});
  callbacks_.emplace(id, std::move(callback));
  max_pending_ = std::max(max_pending_, heap_.size() - cancelled_.size());
  return id;
}

EventId Simulator::ScheduleAt(SimTime at, Callback callback) {
  return Schedule(at, std::move(callback), /*observer=*/false);
}

EventId Simulator::ScheduleAfter(SimTime delay, Callback callback) {
  GRANULOCK_CHECK_GE(delay, 0.0);
  return ScheduleAt(now_ + delay, std::move(callback));
}

EventId Simulator::ScheduleObserverAt(SimTime at, Callback callback) {
  return Schedule(at, std::move(callback), /*observer=*/true);
}

EventId Simulator::ScheduleObserverAfter(SimTime delay, Callback callback) {
  GRANULOCK_CHECK_GE(delay, 0.0);
  return ScheduleObserverAt(now_ + delay, std::move(callback));
}

void Simulator::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return;  // already fired or cancelled
  callbacks_.erase(it);
  cancelled_.insert(id);
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    auto cancelled_it = cancelled_.find(ev.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    auto cb_it = callbacks_.find(ev.id);
    GRANULOCK_CHECK(cb_it != callbacks_.end());
    Callback cb = std::move(cb_it->second);
    callbacks_.erase(cb_it);
    // Event-time monotonicity: the clock never runs backwards. The heap
    // pops in (time, seq) order and scheduling into the past is rejected,
    // so a violation here means the pending-event bookkeeping is corrupt.
    GRANULOCK_DCHECK_GE(ev.time, now_)
        << "event " << ev.id << " fires at " << ev.time
        << " but the clock is at " << now_;
    now_ = ev.time;
    if (ev.observer) {
      ++observer_executed_;
    } else {
      ++executed_;
    }
    cb();
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime deadline) {
  GRANULOCK_CHECK_GE(deadline, now_);
  while (!heap_.empty()) {
    // Skip stale cancelled entries at the top without advancing time.
    Event ev = heap_.top();
    if (cancelled_.count(ev.id) > 0) {
      heap_.pop();
      cancelled_.erase(ev.id);
      continue;
    }
    if (ev.time > deadline) break;
    Step();
  }
  now_ = deadline;
}

void Simulator::RunUntilEmpty() {
  while (Step()) {
  }
}

void Simulator::CheckConsistency() const {
  // Every heap entry is either live (has a callback) or lazily cancelled.
  GRANULOCK_AUDIT_CHECK_EQ(heap_.size(), callbacks_.size() + cancelled_.size())
      << "heap=" << heap_.size() << " callbacks=" << callbacks_.size()
      << " cancelled=" << cancelled_.size();
  for (const EventId id : cancelled_) {
    GRANULOCK_AUDIT_CHECK(callbacks_.find(id) == callbacks_.end())
        << "event " << id << " is both cancelled and live";
  }
  // The heap min is the next event to fire; anything earlier than the
  // clock would have fired already (or time would run backwards).
  if (!heap_.empty()) {
    GRANULOCK_AUDIT_CHECK_GE(heap_.top().time, now_)
        << "next event at " << heap_.top().time << " is before now="
        << now_;
  }
  GRANULOCK_AUDIT_CHECK_GE(max_pending_, PendingEvents());
}

}  // namespace granulock::sim
