#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "sim/invariants.h"
#include "util/logging.h"

namespace granulock::sim {

namespace {

constexpr uint64_t MakeEventId(uint32_t slot, uint32_t generation) {
  return (static_cast<uint64_t>(generation) << 32) | slot;
}

}  // namespace

Simulator::Simulator() {
  buckets_.resize(kMinBuckets);
  bucket_mask_ = kMinBuckets - 1;
}

uint32_t Simulator::AcquireSlot() {
  if (free_slots_.empty()) {
    GRANULOCK_CHECK_LT(slot_gen_.size(), (size_t{1} << 32))
        << "event slab exhausted";
    slot_cb_.emplace_back();
    slot_gen_.push_back(1);
    slot_flags_.push_back(0);
    return static_cast<uint32_t>(slot_gen_.size() - 1);
  }
  const uint32_t index = free_slots_.back();
  free_slots_.pop_back();
  return index;
}

void Simulator::ReleaseSlot(uint32_t index) {
  slot_cb_[index].Reset();
  slot_flags_[index] = 0;
  if (++slot_gen_[index] == 0) slot_gen_[index] = 1;  // ids stay non-zero
  free_slots_.push_back(index);
  --live_count_;
}

EventId Simulator::Schedule(SimTime at, Callback callback, bool observer) {
  GRANULOCK_CHECK_GE(at, now_) << "cannot schedule into the past";
  const uint32_t index = AcquireSlot();
  slot_cb_[index] = std::move(callback);
  slot_flags_[index] =
      static_cast<uint8_t>(kLiveFlag | (observer ? kObserverFlag : 0));
  const uint64_t ref = MakeEventId(index, slot_gen_[index]);
  const uint64_t day = DayOf(at);
  const uint64_t seq = next_seq_++;
  if (day <= bottom_day_ && bottom_day_ != kNoBottomDay) {
    // Imminent event: sorted-insert into the bottom so it pops in pure
    // (time, seq) order ahead of everything in the calendar. The bottom
    // is small (one day's events), so the shift is a short memmove.
    const CalEntry entry{at, seq, ref};
    bottom_.insert(std::lower_bound(bottom_.begin(), bottom_.end(), entry,
                                    EntryLater{}),
                   entry);
  } else {
    Bucket& bucket = buckets_[day & bucket_mask_];
    bucket.time.push_back(at);
    bucket.seq.push_back(seq);
    bucket.ref.push_back(ref);
  }
  ++live_count_;
  max_pending_ = std::max(max_pending_, live_count_);
  if (live_count_ > buckets_.size() * 2) Rebuild(buckets_.size() * 2);
  return ref;
}

EventId Simulator::ScheduleAt(SimTime at, Callback callback) {
  return Schedule(at, std::move(callback), /*observer=*/false);
}

EventId Simulator::ScheduleAfter(SimTime delay, Callback callback) {
  GRANULOCK_CHECK_GE(delay, 0.0);
  return ScheduleAt(now_ + delay, std::move(callback));
}

EventId Simulator::ScheduleObserverAt(SimTime at, Callback callback) {
  return Schedule(at, std::move(callback), /*observer=*/true);
}

EventId Simulator::ScheduleObserverAfter(SimTime delay, Callback callback) {
  GRANULOCK_CHECK_GE(delay, 0.0);
  return ScheduleObserverAt(now_ + delay, std::move(callback));
}

void Simulator::Cancel(EventId id) {
  const uint32_t index = static_cast<uint32_t>(id & 0xffffffffu);
  const uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (index >= slot_gen_.size()) return;  // never scheduled
  if ((slot_flags_[index] & kLiveFlag) == 0 ||
      slot_gen_[index] != generation) {
    return;  // already fired or cancelled (possibly reused since)
  }
  ReleaseSlot(index);
  // The queue entry referencing the old generation is now stale; it is
  // skipped (and pruned) when next encountered, or swept out by
  // compaction below.
  ++stale_count_;
  MaybeCompact();
}

void Simulator::MaybeCompact() {
  // Ratio trigger: stale entries dominate and the sweep amortizes.
  // Floor trigger: a large live set with slow churn never satisfies the
  // ratio, but tombstones must not accumulate without bound either.
  if ((stale_count_ >= kCompactMinStale && stale_count_ > live_count_) ||
      stale_count_ >= kCompactStaleFloor) {
    Compact();
  }
}

void Simulator::RemoveEntry(Bucket& bucket, size_t i) {
  bucket.time[i] = bucket.time.back();
  bucket.seq[i] = bucket.seq.back();
  bucket.ref[i] = bucket.ref.back();
  bucket.time.pop_back();
  bucket.seq.pop_back();
  bucket.ref.pop_back();
}

void Simulator::DropStale(Bucket& bucket) {
  for (size_t i = 0; i < bucket.ref.size();) {
    if (IsStaleRef(bucket.ref[i])) {
      RemoveEntry(bucket, i);
      --stale_count_;
    } else {
      ++i;
    }
  }
}

void Simulator::Compact() {
  for (Bucket& bucket : buckets_) DropStale(bucket);
  // The bottom is kept sorted, so compaction must preserve order here
  // (erase-remove, no swap tricks).
  auto keep_end = std::remove_if(
      bottom_.begin(), bottom_.end(), [this](const CalEntry& entry) {
        if (IsStaleRef(entry.ref)) {
          --stale_count_;
          return true;
        }
        return false;
      });
  bottom_.erase(keep_end, bottom_.end());
  GRANULOCK_DCHECK_EQ(stale_count_, size_t{0});
  stale_count_ = 0;
}

bool Simulator::RefillBottom() {
  GRANULOCK_DCHECK(bottom_.empty());
  if (live_count_ == 0) return false;
  // Every pending event is >= now_, so the cursor can skip straight past
  // days the clock has already left behind.
  const uint64_t now_day = DayOf(now_);
  uint64_t day = std::max(current_day_, now_day);
  // One lap of the calendar: visit days in order. The first day holding
  // a live in-day entry is the global minimum's day, because no live
  // calendar entry lies behind the cursor.
  bool found = false;
  for (size_t lap = 0; lap < buckets_.size(); ++lap, ++day) {
    Bucket& bucket = buckets_[day & bucket_mask_];
    if (bucket.ref.empty()) continue;
    DropStale(bucket);
    for (size_t i = 0; i < bucket.time.size();) {
      // Same bucket, different year: not this day's business.
      if (DayOf(bucket.time[i]) == day) {
        bottom_.push_back(
            CalEntry{bucket.time[i], bucket.seq[i], bucket.ref[i]});
        RemoveEntry(bucket, i);
      } else {
        ++i;
      }
    }
    if (!bottom_.empty()) {
      found = true;
      break;
    }
  }
  if (found) {
    sparse_refills_ = 0;
  } else {
    // A full lap found nothing in-day: the queue is sparse relative to
    // its year (all events more than nbuckets days out), which means the
    // width underestimates the real event gaps. Repeated sparse refills
    // trigger a same-size rebuild purely to re-estimate the width from
    // the pending population (small queues never hit the growth-triggered
    // rebuild that normally calibrates it).
    if (++sparse_refills_ >= kSparseRebuildThreshold) {
      sparse_refills_ = 0;
      Rebuild(buckets_.size());
    }
    if (live_count_ <= kSmallPullAll) {
      // Tiny queue: pull *everything* into the bottom, degrading to a
      // plain sorted-array priority queue — optimal at this size, and
      // subsequent imminent inserts go straight into the bottom instead
      // of round-tripping through the calendar.
      uint64_t max_day = 0;
      for (Bucket& bucket : buckets_) {
        DropStale(bucket);
        for (size_t i = 0; i < bucket.time.size(); ++i) {
          max_day = std::max(max_day, DayOf(bucket.time[i]));
          bottom_.push_back(
              CalEntry{bucket.time[i], bucket.seq[i], bucket.ref[i]});
        }
        bucket.time.clear();
        bucket.seq.clear();
        bucket.ref.clear();
      }
      GRANULOCK_CHECK(!bottom_.empty())
          << "live_count=" << live_count_ << " but no live entry found";
      day = max_day;
    } else {
      // Direct search for the minimum day; pull that day and jump the
      // cursor to it.
      uint64_t best_day = 0;
      for (Bucket& bucket : buckets_) {
        DropStale(bucket);
        for (SimTime t : bucket.time) {
          const uint64_t d = DayOf(t);
          if (!found || d < best_day) {
            best_day = d;
            found = true;
          }
        }
      }
      GRANULOCK_CHECK(found) << "live_count=" << live_count_
                             << " but no live entry found";
      day = best_day;
      Bucket& bucket = buckets_[day & bucket_mask_];
      for (size_t i = 0; i < bucket.time.size();) {
        if (DayOf(bucket.time[i]) == day) {
          bottom_.push_back(
              CalEntry{bucket.time[i], bucket.seq[i], bucket.ref[i]});
          RemoveEntry(bucket, i);
        } else {
          ++i;
        }
      }
    }
  }
  // Minimum at the back; a same-timestamp burst is sorted once here
  // instead of re-scanned on every pop.
  std::sort(bottom_.begin(), bottom_.end(), EntryLater{});
  current_day_ = day;
  bottom_day_ = day;
  return true;
}

bool Simulator::PrepareMin() {
  for (;;) {
    while (!bottom_.empty()) {
      if (IsStaleRef(bottom_.back().ref)) {
        bottom_.pop_back();
        --stale_count_;
        continue;
      }
      return true;
    }
    if (!RefillBottom()) return false;
  }
}

void Simulator::Fire() {
  const CalEntry entry = bottom_.back();
  bottom_.pop_back();
  const uint32_t slot = static_cast<uint32_t>(entry.ref & 0xffffffffu);
  // Move the callback out before invoking: the callback may schedule new
  // events that reuse this very slot.
  Callback cb = std::move(slot_cb_[slot]);
  const bool observer = (slot_flags_[slot] & kObserverFlag) != 0;
  ReleaseSlot(slot);
  // Event-time monotonicity: the clock never runs backwards. Extraction
  // yields the (time, seq) minimum and scheduling into the past is
  // rejected, so a violation here means the queue bookkeeping is
  // corrupt.
  GRANULOCK_DCHECK_GE(entry.time, now_)
      << "event " << entry.ref << " fires at " << entry.time
      << " but the clock is at " << now_;
  now_ = entry.time;
  if (observer) {
    ++observer_executed_;
  } else {
    ++executed_;
  }
  if (live_count_ < buckets_.size() / 4 && buckets_.size() > kMinBuckets) {
    Rebuild(buckets_.size() / 2);
  }
  cb();
}

bool Simulator::Step() {
  if (!PrepareMin()) return false;
  Fire();
  return true;
}

void Simulator::RunUntil(SimTime deadline) {
  GRANULOCK_CHECK_GE(deadline, now_);
  while (PrepareMin()) {
    if (bottom_.back().time > deadline) break;
    Fire();
  }
  now_ = deadline;
}

void Simulator::RunUntilEmpty() {
  while (Step()) {
  }
}

double Simulator::ChooseWidth(const std::vector<CalEntry>& entries) const {
  if (entries.size() < 2) return width_;
  const size_t k = std::min(entries.size(), kWidthSampleMax);
  width_scratch_.clear();
  width_scratch_.reserve(entries.size());
  for (const CalEntry& entry : entries) width_scratch_.push_back(entry.time);
  // The k soonest events are the neighborhood the cursor is about to walk
  // through; their gaps predict the pop cadence.
  std::nth_element(width_scratch_.begin(), width_scratch_.begin() + (k - 1),
                   width_scratch_.end());
  std::sort(width_scratch_.begin(), width_scratch_.begin() + k);
  // Brown's two-pass estimate: a raw mean gap is easily wrecked by a few
  // far-future stragglers (watchdogs, observer ticks) in an otherwise
  // dense schedule — one huge gap would spread the dense cluster across
  // a single day and turn extraction into a linear scan. Average once,
  // then average again over only the gaps below twice the raw mean.
  const double raw_span = width_scratch_[k - 1] - width_scratch_[0];
  if (!(raw_span > 0.0)) return width_;  // all at one instant: no signal
  const double raw_mean = raw_span / static_cast<double>(k - 1);
  double filtered_sum = 0.0;
  size_t filtered_n = 0;
  for (size_t i = 1; i < k; ++i) {
    const double gap = width_scratch_[i] - width_scratch_[i - 1];
    if (gap <= 2.0 * raw_mean) {
      filtered_sum += gap;
      ++filtered_n;
    }
  }
  // ~3x the (filtered) mean gap keeps consecutive pops usually within one
  // day while still spreading the population over distinct buckets.
  double width = filtered_n > 0 && filtered_sum > 0.0
                     ? 3.0 * filtered_sum / static_cast<double>(filtered_n)
                     : 3.0 * raw_mean;
  if (!std::isfinite(width)) return width_;
  return std::max(width, kMinWidth);
}

void Simulator::Rebuild(size_t new_bucket_count) {
  rebuild_scratch_.clear();
  rebuild_scratch_.reserve(live_count_);
  for (Bucket& bucket : buckets_) {
    for (size_t i = 0; i < bucket.time.size(); ++i) {
      if (!IsStaleRef(bucket.ref[i])) {
        rebuild_scratch_.push_back(
            CalEntry{bucket.time[i], bucket.seq[i], bucket.ref[i]});
      }
    }
    bucket.time.clear();
    bucket.seq.clear();
    bucket.ref.clear();
  }
  // The bottom redistributes like any other pending entries; the next
  // extraction refills it under the new geometry.
  for (const CalEntry& entry : bottom_) {
    if (!IsStaleRef(entry.ref)) rebuild_scratch_.push_back(entry);
  }
  bottom_.clear();
  bottom_day_ = kNoBottomDay;
  stale_count_ = 0;  // stale entries dropped during collection
  GRANULOCK_DCHECK_EQ(rebuild_scratch_.size(), live_count_);

  width_ = ChooseWidth(rebuild_scratch_);
  inv_width_ = 1.0 / width_;
  buckets_.resize(new_bucket_count);
  bucket_mask_ = new_bucket_count - 1;
  // now_ <= every live timestamp, so DayOf(now_) lower-bounds every live
  // day — a valid (if conservative) cursor.
  current_day_ = DayOf(now_);
  for (const CalEntry& entry : rebuild_scratch_) {
    Bucket& bucket = buckets_[DayOf(entry.time) & bucket_mask_];
    bucket.time.push_back(entry.time);
    bucket.seq.push_back(entry.seq);
    bucket.ref.push_back(entry.ref);
  }
}

void Simulator::CheckConsistency() const {
  // Every queue entry is either live or lazily deleted, the stale counter
  // matches the actual number of stale entries, each calendar entry sits
  // in the bucket its day maps to, and the bottom/calendar split respects
  // `bottom_day_`.
  size_t live_entries = 0;
  size_t stale_entries = 0;
  std::vector<uint8_t> seen(slot_gen_.size(), 0);
  GRANULOCK_AUDIT_CHECK_EQ(bucket_mask_ + 1, buckets_.size())
      << "bucket mask " << bucket_mask_ << " does not match "
      << buckets_.size() << " buckets";
  GRANULOCK_AUDIT_CHECK(width_ > 0.0 && inv_width_ == 1.0 / width_)
      << "width=" << width_ << " inv_width=" << inv_width_;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const Bucket& bucket = buckets_[b];
    GRANULOCK_AUDIT_CHECK(bucket.time.size() == bucket.seq.size() &&
                          bucket.time.size() == bucket.ref.size())
        << "bucket " << b << " parallel arrays disagree";
    for (size_t i = 0; i < bucket.time.size(); ++i) {
      const uint32_t slot = static_cast<uint32_t>(bucket.ref[i] & 0xffffffffu);
      GRANULOCK_AUDIT_CHECK_LT(slot, slot_gen_.size())
          << "calendar entry references slot " << slot << " beyond slab";
      GRANULOCK_AUDIT_CHECK_EQ(DayOf(bucket.time[i]) & bucket_mask_, b)
          << "entry at t=" << bucket.time[i] << " (day "
          << DayOf(bucket.time[i]) << ") stored in bucket " << b;
      if (IsStaleRef(bucket.ref[i])) {
        ++stale_entries;
        continue;
      }
      ++live_entries;
      GRANULOCK_AUDIT_CHECK(!seen[slot])
          << "slot " << slot << " has two live queue entries";
      seen[slot] = 1;
      // The live minimum is the next event to fire; anything earlier than
      // the clock would have fired already (or time would run backwards).
      GRANULOCK_AUDIT_CHECK_GE(bucket.time[i], now_)
          << "pending event at " << bucket.time[i] << " is before now="
          << now_;
      // The day cursor lower-bounds every live calendar day (refill
      // relies on it to stop at the first in-day hit), and the bottom
      // holds everything at or before `bottom_day_`.
      GRANULOCK_AUDIT_CHECK_GE(DayOf(bucket.time[i]), current_day_)
          << "pending event at day " << DayOf(bucket.time[i])
          << " is behind the cursor at " << current_day_;
      if (bottom_day_ != kNoBottomDay) {
        GRANULOCK_AUDIT_CHECK_GT(DayOf(bucket.time[i]), bottom_day_)
            << "calendar entry at day " << DayOf(bucket.time[i])
            << " belongs in the bottom (bottom_day=" << bottom_day_ << ")";
      }
    }
  }
  for (size_t i = 0; i < bottom_.size(); ++i) {
    const CalEntry& entry = bottom_[i];
    const uint32_t slot = static_cast<uint32_t>(entry.ref & 0xffffffffu);
    GRANULOCK_AUDIT_CHECK_LT(slot, slot_gen_.size())
        << "bottom entry references slot " << slot << " beyond slab";
    GRANULOCK_AUDIT_CHECK(bottom_day_ != kNoBottomDay)
        << "bottom holds entries but claims no day";
    GRANULOCK_AUDIT_CHECK_LE(DayOf(entry.time), bottom_day_)
        << "bottom entry at day " << DayOf(entry.time)
        << " is beyond bottom_day=" << bottom_day_;
    if (i + 1 < bottom_.size()) {
      const CalEntry& next = bottom_[i + 1];
      GRANULOCK_AUDIT_CHECK(entry.time > next.time ||
                            (entry.time == next.time && entry.seq > next.seq))
          << "bottom not sorted descending at index " << i;
    }
    if (IsStaleRef(entry.ref)) {
      ++stale_entries;
      continue;
    }
    ++live_entries;
    GRANULOCK_AUDIT_CHECK(!seen[slot])
        << "slot " << slot << " has two live queue entries";
    seen[slot] = 1;
    GRANULOCK_AUDIT_CHECK_GE(entry.time, now_)
        << "pending event at " << entry.time << " is before now=" << now_;
  }
  GRANULOCK_AUDIT_CHECK_EQ(stale_entries, stale_count_)
      << "stale queue entries=" << stale_entries << " but counter says "
      << stale_count_;
  GRANULOCK_AUDIT_CHECK_EQ(live_entries, live_count_)
      << "live queue entries=" << live_entries << " but counter says "
      << live_count_;
  // Every slot is live (with a callback and a queue entry) or recycled.
  size_t live_slots = 0;
  for (size_t i = 0; i < slot_gen_.size(); ++i) {
    if (slot_flags_[i] & kLiveFlag) {
      ++live_slots;
      GRANULOCK_AUDIT_CHECK(static_cast<bool>(slot_cb_[i]))
          << "live slot " << i << " has no callback";
      GRANULOCK_AUDIT_CHECK(seen[i])
          << "live slot " << i << " has no queue entry";
    }
  }
  GRANULOCK_AUDIT_CHECK_EQ(live_slots, live_count_);
  GRANULOCK_AUDIT_CHECK_EQ(slot_gen_.size(), live_count_ + free_slots_.size())
      << "slots=" << slot_gen_.size() << " live=" << live_count_
      << " free=" << free_slots_.size();
  GRANULOCK_AUDIT_CHECK_GE(max_pending_, PendingEvents());
}

}  // namespace granulock::sim
