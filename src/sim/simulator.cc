#include "sim/simulator.h"

#include <algorithm>

#include "sim/invariants.h"
#include "util/logging.h"

namespace granulock::sim {

namespace {

constexpr uint64_t MakeEventId(uint32_t slot, uint32_t generation) {
  return (static_cast<uint64_t>(generation) << 32) | slot;
}

}  // namespace

EventId Simulator::Schedule(SimTime at, Callback callback, bool observer) {
  GRANULOCK_CHECK_GE(at, now_) << "cannot schedule into the past";
  uint32_t index;
  if (free_slots_.empty()) {
    GRANULOCK_CHECK_LT(slots_.size(), (size_t{1} << 32))
        << "event slab exhausted";
    index = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    index = free_slots_.back();
    free_slots_.pop_back();
  }
  EventSlot& slot = slots_[index];
  slot.callback = std::move(callback);
  slot.live = true;
  slot.observer = observer;
  heap_.push_back(HeapEntry{at, next_seq_++, index, slot.generation});
  std::push_heap(heap_.begin(), heap_.end(), EntryLater{});
  ++live_count_;
  max_pending_ = std::max(max_pending_, live_count_);
  return MakeEventId(index, slot.generation);
}

EventId Simulator::ScheduleAt(SimTime at, Callback callback) {
  return Schedule(at, std::move(callback), /*observer=*/false);
}

EventId Simulator::ScheduleAfter(SimTime delay, Callback callback) {
  GRANULOCK_CHECK_GE(delay, 0.0);
  return ScheduleAt(now_ + delay, std::move(callback));
}

EventId Simulator::ScheduleObserverAt(SimTime at, Callback callback) {
  return Schedule(at, std::move(callback), /*observer=*/true);
}

EventId Simulator::ScheduleObserverAfter(SimTime delay, Callback callback) {
  GRANULOCK_CHECK_GE(delay, 0.0);
  return ScheduleObserverAt(now_ + delay, std::move(callback));
}

void Simulator::ReleaseSlot(uint32_t index) {
  EventSlot& slot = slots_[index];
  slot.callback.Reset();
  slot.live = false;
  if (++slot.generation == 0) slot.generation = 1;  // ids stay non-zero
  free_slots_.push_back(index);
  --live_count_;
}

void Simulator::Cancel(EventId id) {
  const uint32_t index = static_cast<uint32_t>(id & 0xffffffffu);
  const uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (index >= slots_.size()) return;  // never scheduled
  const EventSlot& slot = slots_[index];
  if (!slot.live || slot.generation != generation) {
    return;  // already fired or cancelled (possibly reused since)
  }
  ReleaseSlot(index);
  // The heap entry referencing the old generation is now stale; it is
  // skipped when popped, or swept out by compaction below.
  ++stale_count_;
  MaybeCompactHeap();
}

void Simulator::MaybeCompactHeap() {
  if (stale_count_ >= kCompactMinStale && stale_count_ > live_count_) {
    CompactHeap();
  }
}

void Simulator::CompactHeap() {
  auto keep_end = std::remove_if(
      heap_.begin(), heap_.end(),
      [this](const HeapEntry& entry) { return IsStale(entry); });
  heap_.erase(keep_end, heap_.end());
  // (time, seq) is a total order — seq is unique — so rebuilding the heap
  // cannot reorder eventual pops; determinism is unaffected.
  std::make_heap(heap_.begin(), heap_.end(), EntryLater{});
  stale_count_ = 0;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EntryLater{});
    const HeapEntry entry = heap_.back();
    heap_.pop_back();
    if (IsStale(entry)) {
      --stale_count_;
      continue;
    }
    EventSlot& slot = slots_[entry.slot];
    // Move the callback out before invoking: the callback may schedule new
    // events that reuse this very slot.
    Callback cb = std::move(slot.callback);
    const bool observer = slot.observer;
    ReleaseSlot(entry.slot);
    // Event-time monotonicity: the clock never runs backwards. The heap
    // pops in (time, seq) order and scheduling into the past is rejected,
    // so a violation here means the pending-event bookkeeping is corrupt.
    GRANULOCK_DCHECK_GE(entry.time, now_)
        << "event " << MakeEventId(entry.slot, entry.generation)
        << " fires at " << entry.time << " but the clock is at " << now_;
    now_ = entry.time;
    if (observer) {
      ++observer_executed_;
    } else {
      ++executed_;
    }
    cb();
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime deadline) {
  GRANULOCK_CHECK_GE(deadline, now_);
  while (!heap_.empty()) {
    // Skip stale entries at the top without advancing time.
    if (IsStale(heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), EntryLater{});
      heap_.pop_back();
      --stale_count_;
      continue;
    }
    if (heap_.front().time > deadline) break;
    Step();
  }
  now_ = deadline;
}

void Simulator::RunUntilEmpty() {
  while (Step()) {
  }
}

void Simulator::CheckConsistency() const {
  // Every heap entry is either live or lazily deleted, and the stale
  // counter matches the actual number of stale entries.
  size_t live_entries = 0;
  size_t stale_entries = 0;
  std::vector<uint8_t> seen(slots_.size(), 0);
  for (const HeapEntry& entry : heap_) {
    GRANULOCK_AUDIT_CHECK_LT(entry.slot, slots_.size())
        << "heap entry references slot " << entry.slot << " beyond slab";
    if (IsStale(entry)) {
      ++stale_entries;
      continue;
    }
    ++live_entries;
    GRANULOCK_AUDIT_CHECK(!seen[entry.slot])
        << "slot " << entry.slot << " has two live heap entries";
    seen[entry.slot] = 1;
    // The heap min is the next event to fire; anything earlier than the
    // clock would have fired already (or time would run backwards).
    GRANULOCK_AUDIT_CHECK_GE(entry.time, now_)
        << "pending event at " << entry.time << " is before now=" << now_;
  }
  GRANULOCK_AUDIT_CHECK_EQ(stale_entries, stale_count_)
      << "stale heap entries=" << stale_entries << " but counter says "
      << stale_count_;
  GRANULOCK_AUDIT_CHECK_EQ(live_entries, live_count_)
      << "live heap entries=" << live_entries << " but counter says "
      << live_count_;
  GRANULOCK_AUDIT_CHECK_EQ(heap_.size(), live_count_ + stale_count_)
      << "heap=" << heap_.size() << " live=" << live_count_
      << " stale=" << stale_count_;
  // Every slot is live (with a callback and a heap entry) or recycled.
  size_t live_slots = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) {
      ++live_slots;
      GRANULOCK_AUDIT_CHECK(static_cast<bool>(slots_[i].callback))
          << "live slot " << i << " has no callback";
      GRANULOCK_AUDIT_CHECK(seen[i])
          << "live slot " << i << " has no heap entry";
    }
  }
  GRANULOCK_AUDIT_CHECK_EQ(live_slots, live_count_);
  GRANULOCK_AUDIT_CHECK_EQ(slots_.size(), live_count_ + free_slots_.size())
      << "slots=" << slots_.size() << " live=" << live_count_
      << " free=" << free_slots_.size();
  GRANULOCK_AUDIT_CHECK_GE(max_pending_, PendingEvents());
}

}  // namespace granulock::sim
