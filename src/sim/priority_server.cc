#include "sim/priority_server.h"

#include <utility>

#include "sim/invariants.h"
#include "util/logging.h"

namespace granulock::sim {

PriorityServer::PriorityServer(Simulator* sim, std::string name)
    : sim_(sim), name_(std::move(name)) {
  GRANULOCK_CHECK(sim_ != nullptr);
}

void PriorityServer::Submit(ServiceClass cls, SimTime service,
                            Completion on_complete) {
  GRANULOCK_CHECK_GE(service, 0.0) << "negative service demand on " << name_;
  ++accepted_[ClassIndex(cls)];
  queues_[ClassIndex(cls)].push_back(
      Job{cls, service, std::move(on_complete)});
  if (current_.has_value()) {
    // Preemptive-resume: lock work interrupts transaction work.
    if (cls == ServiceClass::kLock &&
        current_->cls == ServiceClass::kTransaction) {
      PreemptCurrent();
      StartNextIfIdle();
    }
    return;
  }
  StartNextIfIdle();
}

void PriorityServer::StartNextIfIdle() {
  if (current_.has_value()) return;
  for (int c = 0; c < kNumServiceClasses; ++c) {
    if (!queues_[c].empty()) {
      Job job = std::move(queues_[c].front());
      queues_[c].pop_front();
      BeginService(std::move(job));
      return;
    }
  }
}

void PriorityServer::SetTransitionObserver(TransitionObserver observer) {
  observer_ = std::move(observer);
}

void PriorityServer::BeginService(Job job) {
  GRANULOCK_CHECK(!current_.has_value());
  current_ = std::move(job);
  NotifyTransition(/*entering=*/true, current_->cls);
  service_start_ = sim_->Now();
  completion_event_ =
      sim_->ScheduleAfter(current_->remaining, [this] { FinishCurrent(); });
}

void PriorityServer::FinishCurrent() {
  GRANULOCK_CHECK(current_.has_value());
  const int c = ClassIndex(current_->cls);
  busy_time_[c] += sim_->Now() - service_start_;
  ++completed_[c];
  ++finished_[c];
  GRANULOCK_DCHECK_LE(finished_[c], accepted_[c])
      << "server " << name_ << " finished more class-" << c
      << " jobs than were submitted";
  NotifyTransition(/*entering=*/false, current_->cls);
  Completion done = std::move(current_->on_complete);
  current_.reset();
  StartNextIfIdle();
  if (done) done();
}

void PriorityServer::PreemptCurrent() {
  GRANULOCK_CHECK(current_.has_value());
  sim_->Cancel(completion_event_);
  const SimTime served = sim_->Now() - service_start_;
  const int c = ClassIndex(current_->cls);
  busy_time_[c] += served;
  NotifyTransition(/*entering=*/false, current_->cls);
  Job job = std::move(*current_);
  current_.reset();
  job.remaining -= served;
  if (job.remaining < 0.0) job.remaining = 0.0;
  // Resume at the head of its class queue so FCFS order is preserved.
  queues_[c].push_front(std::move(job));
}

double PriorityServer::BusyTime(ServiceClass cls) const {
  double t = busy_time_[ClassIndex(cls)];
  if (current_.has_value() && current_->cls == cls) {
    t += sim_->Now() - service_start_;
  }
  return t;
}

double PriorityServer::TotalBusyTime() const {
  return BusyTime(ServiceClass::kLock) + BusyTime(ServiceClass::kTransaction);
}

uint64_t PriorityServer::CompletedJobs(ServiceClass cls) const {
  return completed_[ClassIndex(cls)];
}

void PriorityServer::ResetStats() {
  for (int c = 0; c < kNumServiceClasses; ++c) {
    busy_time_[c] = 0.0;
    completed_[c] = 0;
  }
  // Drop the already-delivered portion of the in-progress job from the
  // post-reset accounting window.
  if (current_.has_value()) {
    service_start_ = sim_->Now();
    // Note: `remaining` already reflects only future demand because the
    // completion event was scheduled from the original start; adjust it so
    // the event time stays consistent. The completion event encodes the
    // absolute finish time, so nothing further is needed here.
  }
}

size_t PriorityServer::QueueLength(ServiceClass cls) const {
  return queues_[ClassIndex(cls)].size();
}

void PriorityServer::CheckConsistency() const {
  for (int c = 0; c < kNumServiceClasses; ++c) {
    // Conservation: accepted == finished + queued + in-service, per class.
    const uint64_t in_service =
        current_.has_value() && ClassIndex(current_->cls) == c ? 1 : 0;
    GRANULOCK_AUDIT_CHECK_EQ(accepted_[c],
                             finished_[c] + queues_[c].size() + in_service)
        << "server " << name_ << " class " << c << ": accepted="
        << accepted_[c] << " finished=" << finished_[c] << " queued="
        << queues_[c].size() << " in_service=" << in_service;
    GRANULOCK_AUDIT_CHECK_GE(busy_time_[c], 0.0)
        << "server " << name_ << " class " << c;
    // The windowed completion counter can never exceed the lifetime one.
    GRANULOCK_AUDIT_CHECK_LE(completed_[c], finished_[c])
        << "server " << name_ << " class " << c;
    for (const Job& job : queues_[c]) {
      GRANULOCK_AUDIT_CHECK_GE(job.remaining, 0.0)
          << "server " << name_ << " queued job in class " << c;
    }
  }
  if (current_.has_value()) {
    GRANULOCK_AUDIT_CHECK_GE(current_->remaining, 0.0)
        << "server " << name_ << " in-service job";
    GRANULOCK_AUDIT_CHECK_LE(service_start_, sim_->Now())
        << "server " << name_ << " service started in the future";
  }
}

}  // namespace granulock::sim
