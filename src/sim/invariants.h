#ifndef GRANULOCK_SIM_INVARIANTS_H_
#define GRANULOCK_SIM_INVARIANTS_H_

#include <sstream>
#include <stdexcept>
#include <string>

/// Invariant-audit layer for the discrete-event simulators.
///
/// The paper's curves are only as trustworthy as the simulator's internal
/// bookkeeping, so the protocol invariants the model relies on — event-time
/// monotonicity, closed-system transaction conservation, lock-table
/// reference-count consistency, FCFS queue conservation, fork-join sibling
/// accounting, and waits-for acyclicity under conservative locking — are
/// checked explicitly rather than eyeballed. Three tiers:
///
///  1. `GRANULOCK_DCHECK*` — cheap O(1) assertions on hot paths. Compiled
///     to true no-ops unless the build defines `GRANULOCK_AUDIT_ENABLED`
///     (Debug and sanitizer builds do; Release does not, so Release bench
///     throughput is unaffected).
///  2. `CheckConsistency()` methods on the audited structures (lock
///     tables, wait queues, servers, simulator) — full-structure scans
///     that are always compiled; callers decide when to pay for them.
///  3. Deep audits in the engines — `CheckConsistency` sweeps plus
///     cross-structure conservation checks, gated at runtime by
///     `SetDeepAudit(true)` (the benches' `--audit` flag).
///
/// Every violated check funnels through `invariants::Fail`, which aborts
/// via the fatal logger by default; tests install a `ScopedFailureCapture`
/// to prove that deliberately corrupted state trips the right check
/// without killing the test binary.

namespace granulock::sim::invariants {

/// True when `GRANULOCK_DCHECK*` compile to real checks in this build.
#ifdef GRANULOCK_AUDIT_ENABLED
inline constexpr bool kAuditBuild = true;
#else
inline constexpr bool kAuditBuild = false;
#endif

/// Enables/disables the engines' deep (O(n) full-scan) audits. Off by
/// default; the bench binaries' `--audit` flag turns it on. The flag is a
/// process-wide atomic: it is set once before runs begin and read
/// concurrently by `ParallelRunner` workers (each simulation itself stays
/// single-threaded and audits only its own state).
void SetDeepAudit(bool enabled);
bool DeepAuditEnabled();

/// Reports an invariant violation. Handlers are consulted in order:
///  1. a thread-local `ScopedFailureThrow` (the cell-containment funnel)
///     makes `Fail` throw `AuditFailure` so the violation surfaces as a
///     per-cell failure instead of killing a whole multi-hour sweep;
///  2. a `ScopedFailureCapture` (tests) records the message and continues;
///  3. otherwise the fatal logger aborts the process.
void Fail(const char* file, int line, const std::string& message);

/// The exception `Fail` throws while a `ScopedFailureThrow` is active on
/// the failing thread. `what()` carries the full violation message.
class AuditFailure : public std::runtime_error {
 public:
  explicit AuditFailure(const std::string& message)
      : std::runtime_error(message) {}
};

/// RAII: while alive on a thread, invariant violations on that thread
/// throw `AuditFailure` instead of aborting. Installed around each cell by
/// the fault-contained experiment runner (`core::RunCell`) so a deep-audit
/// failure inside one cell degrades to a `CellOutcome` under
/// `--allow_partial` rather than an `abort()`. Thread-local, so parallel
/// workers contain their own cells independently; nesting is allowed.
class ScopedFailureThrow {
 public:
  ScopedFailureThrow();
  ~ScopedFailureThrow();

  ScopedFailureThrow(const ScopedFailureThrow&) = delete;
  ScopedFailureThrow& operator=(const ScopedFailureThrow&) = delete;
};

/// RAII capture of invariant failures for tests. While one is alive,
/// `Fail` records instead of aborting. Not thread-safe (installs a global
/// handler); tests are single-threaded. Nesting is not supported.
class ScopedFailureCapture {
 public:
  ScopedFailureCapture();
  ~ScopedFailureCapture();

  ScopedFailureCapture(const ScopedFailureCapture&) = delete;
  ScopedFailureCapture& operator=(const ScopedFailureCapture&) = delete;

  /// Number of violations recorded since construction.
  int count() const { return count_; }

  /// The most recent violation message ("" if none).
  const std::string& last_message() const { return last_message_; }

  /// Forgets recorded failures (count back to 0).
  void Reset() {
    count_ = 0;
    last_message_.clear();
  }

 private:
  friend void Fail(const char* file, int line, const std::string& message);

  int count_ = 0;
  std::string last_message_;
};

namespace internal {

/// Stream-style builder for one violation message; hands the assembled
/// text to `Fail` on destruction.
class FailureStream {
 public:
  FailureStream(const char* file, int line) : file_(file), line_(line) {}
  ~FailureStream() { Fail(file_, line_, stream_.str()); }

  FailureStream(const FailureStream&) = delete;
  FailureStream& operator=(const FailureStream&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Sink for the `cond ? (void)0 : Voidify() & stream` trick.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace granulock::sim::invariants

/// Always-compiled invariant check; used inside the `CheckConsistency`
/// audit methods and the runtime-gated deep audits. Context may be
/// streamed in: `GRANULOCK_AUDIT_CHECK(a == b) << "a=" << a;`
#define GRANULOCK_AUDIT_CHECK(condition)                              \
  (condition)                                                         \
      ? (void)0                                                       \
      : ::granulock::sim::invariants::internal::Voidify() &           \
            ::granulock::sim::invariants::internal::FailureStream(    \
                __FILE__, __LINE__)                                   \
                    .stream()                                         \
                << "Invariant violated: " #condition " "

#define GRANULOCK_AUDIT_CHECK_EQ(a, b) GRANULOCK_AUDIT_CHECK((a) == (b))
#define GRANULOCK_AUDIT_CHECK_NE(a, b) GRANULOCK_AUDIT_CHECK((a) != (b))
#define GRANULOCK_AUDIT_CHECK_LT(a, b) GRANULOCK_AUDIT_CHECK((a) < (b))
#define GRANULOCK_AUDIT_CHECK_LE(a, b) GRANULOCK_AUDIT_CHECK((a) <= (b))
#define GRANULOCK_AUDIT_CHECK_GT(a, b) GRANULOCK_AUDIT_CHECK((a) > (b))
#define GRANULOCK_AUDIT_CHECK_GE(a, b) GRANULOCK_AUDIT_CHECK((a) >= (b))

/// Hot-path invariant check: a real check in audit builds
/// (GRANULOCK_AUDIT_ENABLED — Debug and sanitizer configurations), a
/// no-op that evaluates nothing in Release. The condition stays
/// syntactically checked and its operands count as used either way.
#ifdef GRANULOCK_AUDIT_ENABLED
#define GRANULOCK_DCHECK(condition) GRANULOCK_AUDIT_CHECK(condition)
#else
#define GRANULOCK_DCHECK(condition)  \
  while (false && (condition))       \
  ::granulock::sim::invariants::internal::FailureStream(__FILE__, \
                                                        __LINE__) \
      .stream()
#endif

#define GRANULOCK_DCHECK_EQ(a, b) GRANULOCK_DCHECK((a) == (b))
#define GRANULOCK_DCHECK_NE(a, b) GRANULOCK_DCHECK((a) != (b))
#define GRANULOCK_DCHECK_LT(a, b) GRANULOCK_DCHECK((a) < (b))
#define GRANULOCK_DCHECK_LE(a, b) GRANULOCK_DCHECK((a) <= (b))
#define GRANULOCK_DCHECK_GT(a, b) GRANULOCK_DCHECK((a) > (b))
#define GRANULOCK_DCHECK_GE(a, b) GRANULOCK_DCHECK((a) >= (b))

#endif  // GRANULOCK_SIM_INVARIANTS_H_
