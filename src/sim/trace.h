#ifndef GRANULOCK_SIM_TRACE_H_
#define GRANULOCK_SIM_TRACE_H_

#include <cstdint>
#include <ostream>
#include <vector>

#include "util/status.h"

namespace granulock::sim {

/// Transaction-lifecycle event kinds recorded by the tracer.
enum class TraceEventType : uint8_t {
  kCreated = 0,        ///< transaction entered the system
  kLockRequested = 1,  ///< a lock request began (detail: locks asked)
  kLockGranted = 2,    ///< the request was granted
  kLockDenied = 3,     ///< the request was denied/blocked (detail: blocker)
  kCompleted = 4,      ///< the transaction finished and released its locks
  kAborted = 5,        ///< deadlock victim (incremental engine only)
};

/// Short name ("created", "granted", ...).
const char* TraceEventTypeToString(TraceEventType type);

/// One recorded event.
struct TraceEvent {
  double time = 0.0;
  uint64_t txn = 0;
  TraceEventType type = TraceEventType::kCreated;
  /// Type-specific payload: locks requested, blocker id, etc.
  int64_t detail = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// A bounded, in-memory recorder of transaction lifecycle events —
/// the simulators' observability hook. Pass a recorder through an
/// engine's options to capture what happened, then inspect events
/// programmatically, dump them as CSV, or run the built-in lifecycle
/// validator (used by the test suite as an end-to-end oracle).
///
/// When `capacity` is reached recording stops (the earliest events are
/// the ones kept; `dropped()` counts the rest) — simulation behaviour is
/// never affected by tracing.
class TraceRecorder {
 public:
  /// `capacity` bounds the stored events (>= 1).
  explicit TraceRecorder(size_t capacity = 1 << 20);

  /// Appends one event (no-op beyond capacity, counted in dropped()).
  void Record(double time, uint64_t txn, TraceEventType type,
              int64_t detail = 0);

  /// All retained events, in recording order (which is time order — the
  /// simulators record as they execute).
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Events discarded after the buffer filled.
  uint64_t dropped() const { return dropped_; }

  /// Writes "time,txn,event,detail" CSV (with header).
  void WriteCsv(std::ostream& os) const;

  /// Checks per-transaction lifecycle sanity over the retained events:
  ///  * timestamps are non-decreasing overall;
  ///  * a transaction's first event is kCreated, recorded exactly once;
  ///  * kCompleted/kAborted events are preceded by a kCreated;
  ///  * at most one kCompleted per transaction, and nothing after it;
  ///  * every grant has a preceding request with no undenied request
  ///    outstanding.
  /// Returns OK or an Internal status naming the first violation.
  Status ValidateLifecycles() const;

  /// Forgets everything.
  void Clear();

 private:
  size_t capacity_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
};

}  // namespace granulock::sim

#endif  // GRANULOCK_SIM_TRACE_H_
