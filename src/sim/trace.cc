#include "sim/trace.h"

#include <unordered_map>

#include "util/logging.h"
#include "util/strings.h"

namespace granulock::sim {

const char* TraceEventTypeToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kCreated:
      return "created";
    case TraceEventType::kLockRequested:
      return "lock_requested";
    case TraceEventType::kLockGranted:
      return "lock_granted";
    case TraceEventType::kLockDenied:
      return "lock_denied";
    case TraceEventType::kCompleted:
      return "completed";
    case TraceEventType::kAborted:
      return "aborted";
  }
  return "?";
}

TraceRecorder::TraceRecorder(size_t capacity) : capacity_(capacity) {
  GRANULOCK_CHECK_GE(capacity, 1u);
}

void TraceRecorder::Record(double time, uint64_t txn, TraceEventType type,
                           int64_t detail) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{time, txn, type, detail});
}

void TraceRecorder::WriteCsv(std::ostream& os) const {
  os << "time,txn,event,detail\n";
  for (const TraceEvent& ev : events_) {
    os << StrFormat("%.6f,%llu,%s,%lld\n", ev.time,
                    (unsigned long long)ev.txn,
                    TraceEventTypeToString(ev.type), (long long)ev.detail);
  }
}

Status TraceRecorder::ValidateLifecycles() const {
  struct TxnState {
    bool created = false;
    bool completed = false;
    int outstanding_requests = 0;
  };
  std::unordered_map<uint64_t, TxnState> states;
  double last_time = -1.0;
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& ev = events_[i];
    if (ev.time < last_time) {
      return Status::Internal(StrFormat(
          "event %zu: time went backwards (%.6f after %.6f)", i, ev.time,
          last_time));
    }
    last_time = ev.time;
    TxnState& state = states[ev.txn];
    if (ev.type != TraceEventType::kCreated && !state.created) {
      return Status::Internal(
          StrFormat("event %zu: txn %llu %s before creation", i,
                    (unsigned long long)ev.txn,
                    TraceEventTypeToString(ev.type)));
    }
    if (state.completed) {
      return Status::Internal(
          StrFormat("event %zu: txn %llu %s after completion", i,
                    (unsigned long long)ev.txn,
                    TraceEventTypeToString(ev.type)));
    }
    switch (ev.type) {
      case TraceEventType::kCreated:
        if (state.created) {
          return Status::Internal(StrFormat(
              "event %zu: txn %llu created twice", i,
              (unsigned long long)ev.txn));
        }
        state.created = true;
        break;
      case TraceEventType::kLockRequested:
        if (state.outstanding_requests != 0) {
          return Status::Internal(StrFormat(
              "event %zu: txn %llu has overlapping lock requests", i,
              (unsigned long long)ev.txn));
        }
        state.outstanding_requests = 1;
        break;
      case TraceEventType::kLockGranted:
      case TraceEventType::kLockDenied:
        if (state.outstanding_requests != 1) {
          return Status::Internal(StrFormat(
              "event %zu: txn %llu lock outcome without a request", i,
              (unsigned long long)ev.txn));
        }
        state.outstanding_requests = 0;
        break;
      case TraceEventType::kCompleted:
        state.completed = true;
        break;
      case TraceEventType::kAborted:
        state.outstanding_requests = 0;  // aborted requests are withdrawn
        break;
    }
  }
  return Status::OK();
}

void TraceRecorder::Clear() {
  events_.clear();
  dropped_ = 0;
}

}  // namespace granulock::sim
