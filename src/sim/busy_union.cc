#include "sim/busy_union.h"

#include "util/logging.h"

namespace granulock::sim {

void BusyUnionTracker::ResetWindow(double now) {
  last_time_ = now;
  any_time_ = 0.0;
  lock_time_ = 0.0;
}

double BusyUnionTracker::AnyBusyTime(double now) const {
  double t = any_time_;
  if (busy_count_ > 0) t += now - last_time_;
  return t;
}

double BusyUnionTracker::LockBusyTime(double now) const {
  double t = lock_time_;
  if (lock_count_ > 0) t += now - last_time_;
  return t;
}

}  // namespace granulock::sim
