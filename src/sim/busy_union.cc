#include "sim/busy_union.h"

#include "util/logging.h"

namespace granulock::sim {

void BusyUnionTracker::Accumulate(double now) {
  GRANULOCK_CHECK_GE(now, last_time_);
  const double span = now - last_time_;
  if (busy_count_ > 0) any_time_ += span;
  if (lock_count_ > 0) lock_time_ += span;
  last_time_ = now;
}

void BusyUnionTracker::Transition(double now, int delta_any, int delta_lock) {
  Accumulate(now);
  busy_count_ += delta_any;
  lock_count_ += delta_lock;
  GRANULOCK_CHECK_GE(busy_count_, 0);
  GRANULOCK_CHECK_GE(lock_count_, 0);
  GRANULOCK_CHECK_LE(lock_count_, busy_count_);
}

void BusyUnionTracker::ResetWindow(double now) {
  last_time_ = now;
  any_time_ = 0.0;
  lock_time_ = 0.0;
}

double BusyUnionTracker::AnyBusyTime(double now) const {
  double t = any_time_;
  if (busy_count_ > 0) t += now - last_time_;
  return t;
}

double BusyUnionTracker::LockBusyTime(double now) const {
  double t = lock_time_;
  if (lock_count_ > 0) t += now - last_time_;
  return t;
}

}  // namespace granulock::sim
