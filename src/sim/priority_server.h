#ifndef GRANULOCK_SIM_PRIORITY_SERVER_H_
#define GRANULOCK_SIM_PRIORITY_SERVER_H_

#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "sim/busy_union.h"
#include "sim/simulator.h"

namespace granulock::sim {

/// Service classes at a node resource. The paper specifies that "the locking
/// mechanism has preemptive power over running transactions for I/O and CPU
/// resources": lock-manager work always runs ahead of (and interrupts)
/// transaction work.
enum class ServiceClass {
  kLock = 0,         ///< lock request/set/release processing (high priority)
  kTransaction = 1,  ///< useful transaction work (low priority)
};

/// Number of distinct service classes (array sizing).
inline constexpr int kNumServiceClasses = 2;

/// A single-server queue with two priority classes and preemptive-resume
/// discipline, used for both the CPU and the disk of every node.
///
/// * Within a class, jobs are served FCFS.
/// * A kLock arrival preempts an in-service kTransaction job; the preempted
///   job keeps its accumulated service and resumes (at the head of its
///   class queue) once no lock work remains.
/// * Zero-length jobs are legal and complete immediately (same timestamp).
///
/// The server keeps per-class busy-time accounting, which is exactly what
/// the paper's `totcpus/lockcpus/totios/lockios` outputs aggregate.
class PriorityServer {
 public:
  /// Completion callbacks use the same small-buffer storage as simulator
  /// events: submitting a job never heap-allocates for the callback.
  using Completion = InlineCallback;

  /// Observer invoked at every busy-state change: `delta_any` is +1/-1
  /// when the server becomes busy/idle, `delta_lock` likewise for
  /// busy-on-lock-work. Feed these into a `BusyUnionTracker` to measure
  /// pool-level union busy time.
  using TransitionObserver =
      std::function<void(SimTime now, int delta_any, int delta_lock)>;

  /// Creates a server that schedules itself on `sim` (not owned; must
  /// outlive the server). `name` is used in diagnostics only.
  PriorityServer(Simulator* sim, std::string name);

  PriorityServer(const PriorityServer&) = delete;
  PriorityServer& operator=(const PriorityServer&) = delete;

  /// Enqueues a job demanding `service` (>= 0) time units in class `cls`;
  /// `on_complete` fires when the job has received its full service.
  void Submit(ServiceClass cls, SimTime service, Completion on_complete);

  /// Busy time delivered to class `cls` since construction (or the last
  /// `ResetStats`), including the in-progress portion of the current job.
  double BusyTime(ServiceClass cls) const;

  /// Total busy time across all classes.
  double TotalBusyTime() const;

  /// Jobs fully served per class.
  uint64_t CompletedJobs(ServiceClass cls) const;

  /// Zeroes all accounting; an in-progress job keeps its remaining demand
  /// but its pre-reset service is no longer counted. Used to discard a
  /// warmup interval.
  void ResetStats();

  /// Instantaneous queue length of class `cls` (excluding the in-service
  /// job).
  size_t QueueLength(ServiceClass cls) const;

  /// True iff a job is in service.
  bool busy() const { return current_.has_value(); }

  const std::string& name() const { return name_; }

  /// Installs the busy-transition observer (may be null). Must be set
  /// before the first `Submit`.
  void SetTransitionObserver(TransitionObserver observer);

  /// Wires busy-state transitions straight into a `BusyUnionTracker`
  /// (not owned; may be null to unwire). The direct pointer skips the
  /// `std::function` indirection of `SetTransitionObserver` — busy flips
  /// happen tens of millions of times per sweep, and every engine feeds
  /// them into a union tracker anyway. Takes precedence over an installed
  /// observer; must be set before the first `Submit`.
  void SetBusyUnion(BusyUnionTracker* tracker) { busy_union_ = tracker; }

  /// FCFS queue conservation audit: every job ever submitted is finished,
  /// queued, or in service (per class); the in-service job has
  /// non-negative remaining demand; accounting never goes negative.
  /// Unlike `CompletedJobs`, the conservation counters survive
  /// `ResetStats`, so the law holds across warmup resets. Violations
  /// report through `invariants::Fail`.
  void CheckConsistency() const;

 private:
  friend struct AuditTestPeer;  // invariants_test corrupts state through it

  struct Job {
    ServiceClass cls;
    SimTime remaining;
    Completion on_complete;
  };

  void StartNextIfIdle();
  void BeginService(Job job);
  void FinishCurrent();
  /// Moves the in-service job back to the head of its queue, crediting the
  /// service it received so far.
  void PreemptCurrent();
  int ClassIndex(ServiceClass cls) const { return static_cast<int>(cls); }
  void NotifyTransition(bool entering, ServiceClass cls) {
    if (busy_union_ == nullptr && !observer_) return;
    const int delta_any = entering ? 1 : -1;
    const int delta_lock = cls == ServiceClass::kLock ? delta_any : 0;
    if (busy_union_ != nullptr) {
      busy_union_->Transition(sim_->Now(), delta_any, delta_lock);
    } else {
      observer_(sim_->Now(), delta_any, delta_lock);
    }
  }

  Simulator* sim_;
  std::string name_;
  std::deque<Job> queues_[kNumServiceClasses];
  std::optional<Job> current_;
  SimTime service_start_ = 0.0;
  EventId completion_event_ = 0;
  BusyUnionTracker* busy_union_ = nullptr;
  TransitionObserver observer_;
  double busy_time_[kNumServiceClasses] = {0.0, 0.0};
  uint64_t completed_[kNumServiceClasses] = {0, 0};
  // Lifetime conservation counters (never reset; see CheckConsistency).
  uint64_t accepted_[kNumServiceClasses] = {0, 0};
  uint64_t finished_[kNumServiceClasses] = {0, 0};
};

}  // namespace granulock::sim

#endif  // GRANULOCK_SIM_PRIORITY_SERVER_H_
