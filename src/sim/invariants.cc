#include "sim/invariants.h"

#include <atomic>

#include "util/logging.h"

namespace granulock::sim::invariants {

namespace {

// Deep-audit switch. Atomic so that a future multi-threaded replication
// driver can flip it safely; simulations read it with relaxed ordering.
std::atomic<bool> g_deep_audit{false};

// Active failure capture. Installed/cleared only by single-threaded
// tests, but *read* by Fail, which parallel workers can reach through a
// cell body — so the pointer itself is atomic (the capture object's
// fields stay plain: they are only touched while the installing test is
// the sole running thread).
std::atomic<ScopedFailureCapture*> g_capture{nullptr};

// Depth of active ScopedFailureThrow guards on this thread. Thread-local
// because cells run on ParallelRunner workers, each containing only its
// own failures.
thread_local int t_throw_depth = 0;

}  // namespace

void SetDeepAudit(bool enabled) {
  g_deep_audit.store(enabled, std::memory_order_relaxed);
}

bool DeepAuditEnabled() {
  return g_deep_audit.load(std::memory_order_relaxed);
}

void Fail(const char* file, int line, const std::string& message) {
  if (t_throw_depth > 0) {
    throw AuditFailure(message);
  }
  ScopedFailureCapture* const capture =
      g_capture.load(std::memory_order_acquire);
  if (capture != nullptr) {
    ++capture->count_;
    capture->last_message_ = message;
    GRANULOCK_LOG(Warning) << "[captured] " << message << " (" << file << ":"
                           << line << ")";
    return;
  }
  ::granulock::internal::LogMessage(LogLevel::kFatal, file, line).stream()
      << message;
}

ScopedFailureCapture::ScopedFailureCapture() {
  GRANULOCK_CHECK(g_capture.load(std::memory_order_relaxed) == nullptr)
      << "nested ScopedFailureCapture is not supported";
  g_capture.store(this, std::memory_order_release);
}

ScopedFailureCapture::~ScopedFailureCapture() {
  g_capture.store(nullptr, std::memory_order_release);
}

ScopedFailureThrow::ScopedFailureThrow() { ++t_throw_depth; }

ScopedFailureThrow::~ScopedFailureThrow() { --t_throw_depth; }

}  // namespace granulock::sim::invariants
