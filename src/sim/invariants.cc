#include "sim/invariants.h"

#include <atomic>

#include "util/logging.h"

namespace granulock::sim::invariants {

namespace {

// Deep-audit switch. Atomic so that a future multi-threaded replication
// driver can flip it safely; simulations read it with relaxed ordering.
std::atomic<bool> g_deep_audit{false};

// Active failure capture (tests only; single-threaded).
ScopedFailureCapture* g_capture = nullptr;

// Depth of active ScopedFailureThrow guards on this thread. Thread-local
// because cells run on ParallelRunner workers, each containing only its
// own failures.
thread_local int t_throw_depth = 0;

}  // namespace

void SetDeepAudit(bool enabled) {
  g_deep_audit.store(enabled, std::memory_order_relaxed);
}

bool DeepAuditEnabled() {
  return g_deep_audit.load(std::memory_order_relaxed);
}

void Fail(const char* file, int line, const std::string& message) {
  if (t_throw_depth > 0) {
    throw AuditFailure(message);
  }
  if (g_capture != nullptr) {
    ++g_capture->count_;
    g_capture->last_message_ = message;
    GRANULOCK_LOG(Warning) << "[captured] " << message << " (" << file << ":"
                           << line << ")";
    return;
  }
  ::granulock::internal::LogMessage(LogLevel::kFatal, file, line).stream()
      << message;
}

ScopedFailureCapture::ScopedFailureCapture() {
  GRANULOCK_CHECK(g_capture == nullptr)
      << "nested ScopedFailureCapture is not supported";
  g_capture = this;
}

ScopedFailureCapture::~ScopedFailureCapture() { g_capture = nullptr; }

ScopedFailureThrow::ScopedFailureThrow() { ++t_throw_depth; }

ScopedFailureThrow::~ScopedFailureThrow() { --t_throw_depth; }

}  // namespace granulock::sim::invariants
