#ifndef GRANULOCK_SIM_BUSY_UNION_H_
#define GRANULOCK_SIM_BUSY_UNION_H_

#include "util/logging.h"

namespace granulock::sim {

/// Tracks the *union* busy time of a pool of servers: the wall-clock time
/// during which at least one server in the pool is busy, and the time
/// during which at least one is busy with lock work.
///
/// This distinction matters for reproducing the paper's output metrics:
/// its `totios`/`totcpus` are "the number of time units in which the I/O
/// [CPU] resources in the system are busy" — elapsed (union) time over the
/// resource pool, not a per-resource busy-time sum (the two coincide only
/// for npros = 1, the Ries–Stonebraker baseline the definition was
/// inherited from). See EXPERIMENTS.md, Figure 3 notes.
///
/// Servers report their state changes through `Transition`; zero-width
/// intervals (several transitions at one timestamp) contribute nothing.
class BusyUnionTracker {
 public:
  BusyUnionTracker() = default;

  /// Reports that one pool member changed state at time `now`.
  /// `delta_any` is +1 when it went from idle to busy, -1 for the reverse,
  /// 0 otherwise; `delta_lock` likewise for the busy-on-lock-work state.
  /// Inline: every server busy-state flip in every simulation funnels
  /// through here (tens of millions of calls per sweep).
  void Transition(double now, int delta_any, int delta_lock) {
    Accumulate(now);
    busy_count_ += delta_any;
    lock_count_ += delta_lock;
    GRANULOCK_CHECK_GE(busy_count_, 0);
    GRANULOCK_CHECK_GE(lock_count_, 0);
    GRANULOCK_CHECK_LE(lock_count_, busy_count_);
  }

  /// Restarts the accounting window at `now` (warmup discard); current
  /// busy counts are preserved.
  void ResetWindow(double now);

  /// Wall-clock time within the window during which >= 1 member was busy,
  /// up to `now` (>= the last transition).
  double AnyBusyTime(double now) const;

  /// Wall-clock time during which >= 1 member was busy with lock work.
  double LockBusyTime(double now) const;

  /// Members currently busy (any work) / busy with lock work.
  int busy_count() const { return busy_count_; }
  int lock_count() const { return lock_count_; }

 private:
  void Accumulate(double now) {
    GRANULOCK_CHECK_GE(now, last_time_);
    const double span = now - last_time_;
    if (busy_count_ > 0) any_time_ += span;
    if (lock_count_ > 0) lock_time_ += span;
    last_time_ = now;
  }

  int busy_count_ = 0;
  int lock_count_ = 0;
  double last_time_ = 0.0;
  double any_time_ = 0.0;
  double lock_time_ = 0.0;
};

}  // namespace granulock::sim

#endif  // GRANULOCK_SIM_BUSY_UNION_H_
