#ifndef GRANULOCK_UTIL_MUTEX_H_
#define GRANULOCK_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace granulock {

/// Annotated wrapper over `std::mutex`.
///
/// `std::mutex` itself carries no capability attribute on libstdc++, so
/// Clang's `-Wthread-safety` cannot see it being locked; every mutex in
/// the concurrent subsystems is a `granulock::Mutex` instead, which makes
/// `GRANULOCK_GUARDED_BY(mu_)` members checkable. The wrapper is
/// header-only and compiles to the exact `std::mutex` calls, so the
/// migration is free at runtime.
///
/// Locking idioms, in order of preference:
///   * `MutexLock lock(&mu_);` — RAII, scoped-capability checked;
///   * explicit `mu_.Lock()` / `mu_.Unlock()` — for lifetimes the RAII
///     scope cannot express (e.g. dropping the lock across batched I/O
///     in `CheckpointJournal::Append`); Clang verifies the balance.
class GRANULOCK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GRANULOCK_ACQUIRE() { mu_.lock(); }
  void Unlock() GRANULOCK_RELEASE() { mu_.unlock(); }
  bool TryLock() GRANULOCK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documents (to the analysis, not the runtime) that the caller holds
  /// this mutex when the fact cannot be proven structurally.
  void AssertHeld() const GRANULOCK_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for `granulock::Mutex`, visible to the capability analysis
/// as a scoped acquire/release pair.
class GRANULOCK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) GRANULOCK_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() GRANULOCK_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with `granulock::Mutex`.
///
/// `Wait` atomically releases the mutex while blocked and re-acquires it
/// before returning — which is exactly why a condition-variable wait is
/// the one blocking call that is legal with a mutex "held": the lock is
/// not actually held while sleeping. granulock-held-across-blocking
/// encodes the same exception (waits on a declared condition variable
/// are exempt; every other blocking call under a lock is a finding).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. The caller must hold `*mu`; on return it
  /// holds it again.
  void Wait(Mutex* mu) GRANULOCK_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's lock
  }

  /// Blocks until `pred()` holds (re-checked on every wakeup).
  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) GRANULOCK_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native, pred);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace granulock

#endif  // GRANULOCK_UTIL_MUTEX_H_
