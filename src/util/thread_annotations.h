#ifndef GRANULOCK_UTIL_THREAD_ANNOTATIONS_H_
#define GRANULOCK_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety capability annotations, compiled to nothing on
/// every other compiler. The Clang CI jobs build with
/// `-Wthread-safety -Werror`, which turns these declarations into a
/// static wall: a member declared `GRANULOCK_GUARDED_BY(mu_)` cannot be
/// touched without `mu_` held, a function declared
/// `GRANULOCK_REQUIRES(mu_)` cannot be called without it, and a scope
/// that forgets to release fails the build instead of deadlocking a run.
///
/// granulock-analyze reads the same annotations from source (it does not
/// need Clang): `granulock-latch-order` seeds its global acquisition-
/// order graph from `GRANULOCK_ACQUIRED_BEFORE/AFTER`, and
/// `granulock-atomic-discipline` accepts a `GRANULOCK_GUARDED_BY`
/// member as protected. Annotations are therefore load-bearing twice —
/// once in the Clang build, once in the analyzer — and the two gates
/// cross-check each other (see docs/STATIC_ANALYSIS.md).
///
/// The macro set mirrors the capability spelling of the Clang docs and
/// abseil's thread_annotations.h; the annotated `Mutex` / `MutexLock` /
/// `CondVar` wrappers that make `std::mutex` visible to the analysis
/// live in util/mutex.h.

#if defined(__clang__) && (!defined(SWIG))
#define GRANULOCK_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define GRANULOCK_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Declares a data member readable/writable only with `x` held.
#define GRANULOCK_GUARDED_BY(x) GRANULOCK_THREAD_ANNOTATION_(guarded_by(x))

/// Declares a pointer member whose *pointee* is protected by `x`.
#define GRANULOCK_PT_GUARDED_BY(x) \
  GRANULOCK_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that callers must hold the listed capabilities (exclusively).
#define GRANULOCK_REQUIRES(...) \
  GRANULOCK_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Declares that callers must hold the listed capabilities at least shared.
#define GRANULOCK_REQUIRES_SHARED(...) \
  GRANULOCK_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Declares that the function acquires the listed capabilities.
#define GRANULOCK_ACQUIRE(...) \
  GRANULOCK_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Declares that the function releases the listed capabilities.
#define GRANULOCK_RELEASE(...) \
  GRANULOCK_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Declares that the function tries to acquire, returning `result` on
/// success: `bool TryLock() GRANULOCK_TRY_ACQUIRE(true)`.
#define GRANULOCK_TRY_ACQUIRE(...) \
  GRANULOCK_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the listed capabilities (the
/// anti-deadlock annotation: a function that acquires `mu_` internally
/// excludes it).
#define GRANULOCK_EXCLUDES(...) \
  GRANULOCK_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Global lock-ordering declarations on the mutex member itself; both
/// Clang (-Wthread-safety-beta) and granulock-latch-order consume them.
#define GRANULOCK_ACQUIRED_BEFORE(...) \
  GRANULOCK_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define GRANULOCK_ACQUIRED_AFTER(...) \
  GRANULOCK_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Marks a type as a capability ("mutex") / a scoped RAII capability.
#define GRANULOCK_CAPABILITY(x) GRANULOCK_THREAD_ANNOTATION_(capability(x))
#define GRANULOCK_SCOPED_CAPABILITY \
  GRANULOCK_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that the function returns a reference to the capability `x`.
#define GRANULOCK_RETURN_CAPABILITY(x) \
  GRANULOCK_THREAD_ANNOTATION_(lock_returned(x))

/// Asserts (without acquiring) that the calling thread holds `x`.
#define GRANULOCK_ASSERT_CAPABILITY(x) \
  GRANULOCK_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use needs
/// a comment justifying why the analysis cannot see the invariant.
#define GRANULOCK_NO_THREAD_SAFETY_ANALYSIS \
  GRANULOCK_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // GRANULOCK_UTIL_THREAD_ANNOTATIONS_H_
