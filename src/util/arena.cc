#include "util/arena.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace granulock::util {

Arena::Arena(size_t initial_block_bytes)
    : next_block_bytes_(std::max<size_t>(initial_block_bytes, 64)) {}

Arena::~Arena() = default;

void Arena::AddBlock(size_t min_bytes) {
  // Geometric growth keeps the block count logarithmic in the working
  // set; `Reset()` later coalesces everything into one block anyway.
  size_t size = std::max(next_block_bytes_, min_bytes);
  Block block;
  block.data = std::make_unique<unsigned char[]>(size);
  block.size = size;
  blocks_.push_back(std::move(block));
  active_block_ = blocks_.size() - 1;
  cursor_ = 0;
  next_block_bytes_ = size * 2;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  GRANULOCK_CHECK(align != 0 && (align & (align - 1)) == 0);
  // Align the absolute address, not the block offset: `new[]` only
  // guarantees max_align_t, so over-aligned requests (cache-line buffers)
  // need the adjustment computed against the pointer value.
  const auto aligned_offset = [align](const Block& b, size_t cursor) {
    const auto base = reinterpret_cast<uintptr_t>(b.data.get()) + cursor;
    return cursor + static_cast<size_t>((-base) & (align - 1));
  };
  if (blocks_.empty()) AddBlock(bytes + align);
  Block* block = &blocks_[active_block_];
  size_t offset = aligned_offset(*block, cursor_);
  if (offset + bytes > block->size) {
    AddBlock(bytes + align);
    block = &blocks_[active_block_];
    offset = aligned_offset(*block, 0);
  }
  cursor_ = offset + bytes;
  bytes_used_ += bytes;
  high_water_ = std::max(high_water_, bytes_used_);
  return block->data.get() + offset;
}

void Arena::Reset() {
  if (blocks_.size() > 1 || (blocks_.size() == 1 && blocks_[0].size < high_water_)) {
    // Coalesce: replace the fragmented block list with one block large
    // enough for the whole previous working set.
    blocks_.clear();
    AddBlock(high_water_);
  }
  active_block_ = 0;
  cursor_ = 0;
  bytes_used_ = 0;
}

}  // namespace granulock::util
