#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace granulock {

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpenClosed() {
  return 1.0 - NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GRANULOCK_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformDouble(double lo, double hi) {
  GRANULOCK_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  GRANULOCK_CHECK_GT(mean, 0.0);
  return -mean * std::log(NextDoubleOpenClosed());
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  GRANULOCK_CHECK_GE(k, 0);
  GRANULOCK_CHECK_LE(k, n);
  // Floyd's algorithm: iterate j = n-k .. n-1, insert a uniform draw from
  // [0, j], falling back to j itself on collision. Produces a uniform
  // k-subset with exactly k insertions.
  std::unordered_set<int64_t> chosen;
  chosen.reserve(static_cast<size_t>(k));
  for (int64_t j = n - k; j < n; ++j) {
    int64_t t = UniformInt(0, j);
    if (!chosen.insert(t).second) {
      chosen.insert(j);
    }
  }
  std::vector<int64_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

// Generalized harmonic number H_{n,theta} = sum_{i=1..n} 1/i^theta.
double Zeta(int64_t n, double theta) {
  double sum = 0.0;
  for (int64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(int64_t n, double theta)
    : n_(n), theta_(theta) {
  GRANULOCK_CHECK_GE(n, 1);
  GRANULOCK_CHECK_GE(theta, 0.0);
  GRANULOCK_CHECK_LT(theta, 1.0);
  zetan_ = Zeta(n, theta);
  zeta2_ = Zeta(std::min<int64_t>(2, n), theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2_ / zetan_);
}

int64_t ZipfGenerator::Sample(Rng& rng) const {
  // Gray et al., "Quickly generating billion-record synthetic databases"
  // (SIGMOD '94) — the sampler used by YCSB.
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (n_ >= 2 && uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const int64_t value = static_cast<int64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::clamp<int64_t>(value, 0, n_ - 1);
}

Rng Rng::Fork(uint64_t stream_index) const {
  // Mix the parent seed with the stream index through SplitMix64 so child
  // streams are decorrelated from each other and from the parent.
  SplitMix64 sm(seed_ ^ (0xd1342543de82ef95ull * (stream_index + 1)));
  return Rng(sm.Next());
}

}  // namespace granulock
