#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace granulock {
namespace {

// Read from every thread that logs (ParallelRunner workers included) and
// written by flag parsing before fan-out; atomic is the discipline
// granulock-atomic-discipline demands for cross-thread globals that carry
// no mutex.
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold.store(level); }

LogLevel GetLogThreshold() { return g_threshold.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (level_ >= g_threshold.load() || level_ == LogLevel::kFatal) {
    std::cerr << "[" << LevelName(level_) << " " << file_ << ":" << line_
              << "] " << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace granulock
