#ifndef GRANULOCK_UTIL_LOGGING_H_
#define GRANULOCK_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace granulock {

/// Severity levels for the lightweight logger. `kFatal` aborts the process
/// after emitting the message; the others write to stderr and continue.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum severity that is actually emitted. Defaults to kInfo.
void SetLogThreshold(LogLevel level);

/// Returns the current minimum emitted severity.
LogLevel GetLogThreshold();

namespace internal {

/// Stream-style log message builder; emits on destruction. Used through the
/// GRANULOCK_LOG / GRANULOCK_CHECK macros, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Sink type for the `... : GRANULOCK_LOG(...)` void-conversion trick.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace granulock

/// Emits a log record at `level` (one of DEBUG, INFO, WARNING, ERROR, FATAL).
/// FATAL aborts after logging.
#define GRANULOCK_LOG(level)                                          \
  ::granulock::internal::LogMessage(::granulock::LogLevel::k##level, \
                                    __FILE__, __LINE__)               \
      .stream()

/// Aborts with a diagnostic unless `condition` holds. Intended for internal
/// invariants of the library, not for validating user input (use Status for
/// that). Additional context may be streamed in:
/// `GRANULOCK_CHECK(x > 0) << "x was " << x;`
#define GRANULOCK_CHECK(condition)                                     \
  (condition) ? (void)0                                                \
              : ::granulock::internal::LogMessageVoidify() &           \
                    GRANULOCK_LOG(Fatal)                               \
                        << "Check failed: " #condition " "

#define GRANULOCK_CHECK_EQ(a, b) GRANULOCK_CHECK((a) == (b))
#define GRANULOCK_CHECK_NE(a, b) GRANULOCK_CHECK((a) != (b))
#define GRANULOCK_CHECK_LT(a, b) GRANULOCK_CHECK((a) < (b))
#define GRANULOCK_CHECK_LE(a, b) GRANULOCK_CHECK((a) <= (b))
#define GRANULOCK_CHECK_GT(a, b) GRANULOCK_CHECK((a) > (b))
#define GRANULOCK_CHECK_GE(a, b) GRANULOCK_CHECK((a) >= (b))

#endif  // GRANULOCK_UTIL_LOGGING_H_
