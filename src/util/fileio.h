#ifndef GRANULOCK_UTIL_FILEIO_H_
#define GRANULOCK_UTIL_FILEIO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace granulock {

/// Crash-safe whole-file write: the contents land in `<path>.tmp`, are
/// flushed and fsync'ed, and only then renamed over `path` (followed by an
/// fsync of the containing directory). Readers therefore never observe a
/// torn or partially written file — on any failure (including a crash or
/// an injected short write) the destination either keeps its previous
/// contents or does not exist.
///
/// All report/CSV/trace writers in the repository route through this
/// function so no code path can leave a truncated artifact behind.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Reads a whole file into `out`. Returns NotFound when the file does not
/// exist, Internal on read errors.
Status ReadFileToString(const std::string& path, std::string* out);

/// Fault-injection hook for `WriteFileAtomic` (armed by
/// `fault::Injector` for the kWriteShortWrite point; inert when unset).
/// Called once per write with the destination path; a non-negative return
/// value caps how many bytes are actually written to the temp file before
/// the write fails (simulating a crash mid-write), -1 means no fault.
using ShortWriteHook = std::function<int64_t(const std::string& path)>;
void SetShortWriteHook(ShortWriteHook hook);

}  // namespace granulock

#endif  // GRANULOCK_UTIL_FILEIO_H_
