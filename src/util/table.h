#ifndef GRANULOCK_UTIL_TABLE_H_
#define GRANULOCK_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace granulock {

/// Accumulates rows of string cells and renders them either as an aligned
/// ASCII table (for terminal output, the format the bench binaries use to
/// print paper-style series) or as CSV (for plotting).
///
/// Usage:
/// ```
///   TablePrinter t({"locks", "throughput", "response"});
///   t.AddRow({"100", "0.124", "80.2"});
///   t.Print(std::cout);
/// ```
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one data row. The row is padded (with "") or truncated to the
  /// header width.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each double with `%.6g` into a row.
  void AddNumericRow(const std::vector<double>& values);

  /// Number of data rows added so far.
  size_t row_count() const { return rows_.size(); }

  /// Read access for exporters (e.g. the bench JSON reports).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders an aligned, right-justified ASCII table.
  void Print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted, quotes doubled).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes one CSV cell per RFC 4180 (quote iff it contains , " or newline).
std::string CsvEscape(const std::string& cell);

}  // namespace granulock

#endif  // GRANULOCK_UTIL_TABLE_H_
