#ifndef GRANULOCK_UTIL_FLAGS_H_
#define GRANULOCK_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace granulock {

/// A minimal command-line flag parser used by the bench and example
/// binaries, so every experiment can be re-run with different parameters
/// without recompiling (`bench_fig02 --tmax=20000 --seed=7`).
///
/// Supported syntax: `--name=value`, `--name value`, and bare `--name` for
/// booleans. Unknown flags are an error (catching typos in sweep scripts).
class FlagParser {
 public:
  FlagParser() = default;

  /// Registers a flag of the given type with a default and a help string.
  /// The pointee receives the default immediately and the parsed value when
  /// `Parse` runs. Pointers must outlive the parser. Registering the same
  /// name twice is a programming error and aborts.
  void AddInt64(const std::string& name, int64_t* value, int64_t def,
                const std::string& help);
  void AddDouble(const std::string& name, double* value, double def,
                 const std::string& help);
  void AddBool(const std::string& name, bool* value, bool def,
               const std::string& help);
  void AddString(const std::string& name, std::string* value,
                 const std::string& def, const std::string& help);

  /// Parses argv. On `--help`, prints usage to stdout and returns a status
  /// with code kFailedPrecondition (callers exit 0 on it). Positional
  /// arguments are collected into `positional()`.
  Status Parse(int argc, char** argv);

  /// Arguments that were not flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the registered flags with defaults and help text.
  std::string UsageString(const std::string& program) const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };
  struct FlagInfo {
    Type type;
    void* value;
    std::string default_repr;
    std::string help;
  };

  void Register(const std::string& name, FlagInfo info);
  Status SetFlag(const std::string& name, const std::string& value);

  std::map<std::string, FlagInfo> flags_;
  std::vector<std::string> positional_;
};

}  // namespace granulock

#endif  // GRANULOCK_UTIL_FLAGS_H_
