#include "util/table.h"

#include <algorithm>

#include "util/strings.h"

namespace granulock {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddNumericRow(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(StrFormat("%.6g", v));
  AddRow(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << std::string(widths[c] - row[c].size(), ' ') << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string CsvEscape(const std::string& cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << CsvEscape(row[c]);
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace granulock
