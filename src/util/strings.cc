#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace granulock {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

}  // namespace granulock
