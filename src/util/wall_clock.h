#ifndef GRANULOCK_UTIL_WALL_CLOCK_H_
#define GRANULOCK_UTIL_WALL_CLOCK_H_

namespace granulock {

/// The sanctioned wall-clock path.
///
/// Simulated results must be a pure function of configuration and seed, so
/// reading the host clock anywhere in `src/sim`, `src/core`, `src/db`, or
/// the benches is forbidden by the `granulock-determinism-time` lint rule
/// (tools/lint): one stray `std::chrono::*_clock::now()` or C `time()`
/// call that leaks into metrics or event ordering silently breaks the
/// bit-identical-replay guarantee that `determinism_test` and the resume
/// byte-identity tests rely on. Code that legitimately needs wall time —
/// run profiling (`engine.wall_seconds`), watchdog deadlines, progress
/// reporting — routes through these helpers instead, which keeps every
/// clock read greppable and auditable in one place.
///
/// `MonotonicSeconds` reads a monotonic clock, so differences are immune
/// to NTP slews and wall-time jumps; the absolute value has no meaning —
/// only use differences (or `WallTimer`, which packages the subtraction).

/// Seconds from an arbitrary fixed origin on a monotonic clock.
double MonotonicSeconds();

/// Measures elapsed wall time from construction (or the last `Reset`).
///
/// ```
///   WallTimer timer;
///   ...;
///   metrics.wall_seconds = timer.Seconds();
/// ```
class WallTimer {
 public:
  WallTimer() : start_s_(MonotonicSeconds()) {}

  /// Seconds elapsed since construction or the last `Reset()`.
  double Seconds() const { return MonotonicSeconds() - start_s_; }

  /// Restarts the measurement from now.
  void Reset() { start_s_ = MonotonicSeconds(); }

 private:
  double start_s_;
};

}  // namespace granulock

#endif  // GRANULOCK_UTIL_WALL_CLOCK_H_
