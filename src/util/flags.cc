#include "util/flags.h"

#include <iostream>

#include "util/logging.h"
#include "util/strings.h"

namespace granulock {

void FlagParser::Register(const std::string& name, FlagInfo info) {
  // Registering one name twice is a programming error in the binary (two
  // flags would silently share one spelling, and the later registration
  // used to win); fail loudly instead of accepting it.
  GRANULOCK_CHECK(flags_.find(name) == flags_.end())
      << "duplicate flag registration: --" << name;
  flags_[name] = std::move(info);
}

void FlagParser::AddInt64(const std::string& name, int64_t* value,
                          int64_t def, const std::string& help) {
  *value = def;
  Register(name, {Type::kInt64, value, StrFormat("%lld", (long long)def),
                  help});
}

void FlagParser::AddDouble(const std::string& name, double* value, double def,
                           const std::string& help) {
  *value = def;
  Register(name, {Type::kDouble, value, StrFormat("%g", def), help});
}

void FlagParser::AddBool(const std::string& name, bool* value, bool def,
                         const std::string& help) {
  *value = def;
  Register(name, {Type::kBool, value, def ? "true" : "false", help});
}

void FlagParser::AddString(const std::string& name, std::string* value,
                           const std::string& def, const std::string& help) {
  *value = def;
  Register(name, {Type::kString, value, def, help});
}

Status FlagParser::SetFlag(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  FlagInfo& info = it->second;
  switch (info.type) {
    case Type::kInt64: {
      int64_t v;
      if (!ParseInt64(value, &v)) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      *static_cast<int64_t*>(info.value) = v;
      return Status::OK();
    }
    case Type::kDouble: {
      double v;
      if (!ParseDouble(value, &v)) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      *static_cast<double*>(info.value) = v;
      return Status::OK();
    }
    case Type::kBool: {
      bool* out = static_cast<bool*>(info.value);
      if (value == "true" || value == "1" || value.empty()) {
        *out = true;
      } else if (value == "false" || value == "0") {
        *out = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      return Status::OK();
    }
    case Type::kString:
      *static_cast<std::string*>(info.value) = value;
      return Status::OK();
  }
  return Status::Internal("unreachable flag type");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg == "help") {
      std::cout << UsageString(argv[0]);
      return Status::FailedPrecondition("help requested");
    }
    std::string name, value;
    size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      auto it = flags_.find(name);
      const bool is_bool = it != flags_.end() && it->second.type == Type::kBool;
      if (!is_bool && it != flags_.end()) {
        if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
          value = argv[++i];
        } else {
          return Status::InvalidArgument(
              "flag --" + name +
              " expects a value (--" + name + "=VALUE or --" + name +
              " VALUE)");
        }
      }
    }
    GRANULOCK_RETURN_NOT_OK(SetFlag(name, value));
  }
  return Status::OK();
}

std::string FlagParser::UsageString(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n\nflags:\n";
  for (const auto& [name, info] : flags_) {
    out += StrFormat("  --%-22s %s (default: %s)\n", name.c_str(),
                     info.help.c_str(), info.default_repr.c_str());
  }
  return out;
}

}  // namespace granulock
