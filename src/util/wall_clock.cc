#include "util/wall_clock.h"

#include <chrono>

namespace granulock {

double MonotonicSeconds() {
  // The one sanctioned clock read outside tests; see the header for why
  // every other call site must route through here.
  // granulock-lint: allow(granulock-determinism-time)
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace granulock
