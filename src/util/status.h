#ifndef GRANULOCK_UTIL_STATUS_H_
#define GRANULOCK_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace granulock {

/// Error categories used across the library. The set is deliberately small:
/// simulation code mostly fails on invalid configuration or misuse.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< A parameter is out of its documented domain.
  kFailedPrecondition,///< The object is not in a state that allows the call.
  kNotFound,          ///< A looked-up entity does not exist.
  kAlreadyExists,     ///< An entity that must be unique already exists.
  kOutOfRange,        ///< An index or time value is outside a valid range.
  kInternal,          ///< An invariant of the library itself was violated.
  kCancelled,         ///< The operation was interrupted (SIGINT/SIGTERM).
  kDeadlineExceeded,  ///< A watchdog deadline expired before completion.
};

/// Returns a stable, human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result, in the style of Arrow/RocksDB.
///
/// The library does not throw exceptions across its public API; fallible
/// operations return `Status` (or `Result<T>` when they produce a value).
/// A default-constructed `Status` is OK. Statuses are cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a descriptive message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status category.
  StatusCode code() const { return code_; }

  /// The human-readable detail message ("" for OK statuses).
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error result. Holds either a `T` or a non-OK `Status`.
///
/// Usage:
/// ```
///   Result<SystemConfig> cfg = SystemConfig::FromFlags(...);
///   if (!cfg.ok()) return cfg.status();
///   Use(*cfg);
/// ```
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status. Aborts (in debug) if
  /// `status` is OK, since that would leave no value to hold.
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; `Status::OK()` when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Accessors for the contained value. Must only be called when `ok()`.
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace granulock

/// Propagates a non-OK status from an expression that yields a `Status`.
#define GRANULOCK_RETURN_NOT_OK(expr)                \
  do {                                               \
    ::granulock::Status _st = (expr);                \
    if (!_st.ok()) return _st;                       \
  } while (false)

#endif  // GRANULOCK_UTIL_STATUS_H_
