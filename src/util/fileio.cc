#include "util/fileio.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/strings.h"

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace granulock {

namespace {

ShortWriteHook g_short_write_hook;

/// fsyncs the directory containing `path` so the rename itself is durable.
/// Best-effort: some filesystems refuse O_RDONLY directory fsync.
void SyncParentDirectory(const std::string& path) {
#ifndef _WIN32
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

void SetShortWriteHook(ShortWriteHook hook) {
  g_short_write_hook = std::move(hook);
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal(StrFormat("cannot open %s: %s", tmp.c_str(),
                                      std::strerror(errno)));
  }

  size_t to_write = contents.size();
  bool injected_fault = false;
  if (g_short_write_hook) {
    const int64_t cap = g_short_write_hook(path);
    if (cap >= 0 && static_cast<size_t>(cap) < to_write) {
      to_write = static_cast<size_t>(cap);
      injected_fault = true;
    }
  }

  const size_t written =
      to_write == 0 ? 0 : std::fwrite(contents.data(), 1, to_write, f);
  const bool write_ok = written == contents.size() && !injected_fault;
  bool flush_ok = std::fflush(f) == 0;
#ifndef _WIN32
  if (flush_ok && write_ok) flush_ok = ::fsync(fileno(f)) == 0;
#endif
  std::fclose(f);

  if (!write_ok || !flush_ok) {
    // Simulated or real mid-write failure: drop the temp file and leave the
    // destination untouched (previous contents, or absent).
    std::remove(tmp.c_str());
    return Status::Internal(
        StrFormat("short write to %s (%zu of %zu bytes)", tmp.c_str(),
                  written, contents.size()));
  }

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal(StrFormat("rename %s -> %s failed: %s",
                                      tmp.c_str(), path.c_str(),
                                      std::strerror(errno)));
  }
  SyncParentDirectory(path);
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) {
    return Status::Internal(StrFormat("read from %s failed", path.c_str()));
  }
  *out = os.str();
  return Status::OK();
}

}  // namespace granulock
