#ifndef GRANULOCK_UTIL_ARENA_H_
#define GRANULOCK_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace granulock::util {

/// A monotonic bump allocator for per-replication scratch memory.
///
/// One simulation replication churns through thousands of short-lived
/// buffers (blocked-transaction lists, granule lock sets, sub-transaction
/// span scratch) whose lifetimes all end together when the replication
/// finishes. A general-purpose heap pays per-buffer bookkeeping for that
/// pattern; the arena instead hands out pointers by bumping a cursor
/// through a block and reclaims *everything* in O(1) with `Reset()`
/// between replications.
///
/// Properties:
///  * `Allocate` never frees; `Deallocate` is a no-op (containers using
///    `ArenaAllocator` grow by leaving their old buffer behind — the
///    waste is bounded because a replication's working set is bounded).
///  * `Reset()` makes all previously returned pointers invalid and makes
///    the arena's memory reusable. After a reset the arena serves the
///    next replication from one contiguous block sized to the previous
///    high-water mark, so steady-state replications allocate from one
///    warm block and never touch malloc.
///  * Not thread-safe: one arena belongs to one replication thread, the
///    same ownership discipline as `sim::Simulator`.
class Arena {
 public:
  /// `initial_block_bytes` sizes the first block (rounded up per
  /// allocation as needed).
  explicit Arena(size_t initial_block_bytes = kDefaultBlockBytes);
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena();

  /// Returns `bytes` of storage aligned to `align` (any power of two;
  /// over-aligned requests beyond alignof(std::max_align_t) are honored
  /// by padding). Never returns null; zero-byte requests return a valid
  /// unique-ish pointer.
  void* Allocate(size_t bytes, size_t align);

  /// Invalidates every pointer handed out so far and rewinds the arena.
  /// Keeps (and if fragmented, coalesces to) one block sized to the
  /// high-water mark, so the next use is allocation-free.
  void Reset();

  /// Bytes handed out since construction or the last `Reset()`.
  size_t bytes_used() const { return bytes_used_; }

  /// Largest `bytes_used()` ever observed (memory footprint ceiling).
  size_t high_water() const { return high_water_; }

  /// Number of malloc-backed blocks currently owned (1 in steady state).
  size_t block_count() const { return blocks_.size(); }

  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  /// Appends a block of at least `min_bytes` and points the cursor at it.
  void AddBlock(size_t min_bytes);

  std::vector<Block> blocks_;
  size_t active_block_ = 0;  // block the cursor currently bumps through
  size_t cursor_ = 0;        // offset into the active block
  size_t bytes_used_ = 0;
  size_t high_water_ = 0;
  size_t next_block_bytes_;
};

/// Minimal std-allocator adapter over `Arena`, for scratch containers
/// whose lifetime is bounded by one replication:
///
///   std::vector<Txn*, util::ArenaAllocator<Txn*>> blocked{
///       util::ArenaAllocator<Txn*>(arena)};
///
/// `deallocate` is a no-op — freeing is the arena owner's `Reset()`.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other)  // NOLINT(runtime/explicit)
      : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* /*p*/, size_t /*n*/) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace granulock::util

#endif  // GRANULOCK_UTIL_ARENA_H_
