#ifndef GRANULOCK_UTIL_STRINGS_H_
#define GRANULOCK_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace granulock {

/// printf-style formatting into a std::string. The format string is checked
/// by the compiler where supported.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `input` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view input, char delim);

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True iff `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a whole string as the given numeric type; returns false (leaving
/// `out` untouched) on any trailing garbage, overflow, or empty input.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

}  // namespace granulock

#endif  // GRANULOCK_UTIL_STRINGS_H_
