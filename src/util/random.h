#ifndef GRANULOCK_UTIL_RANDOM_H_
#define GRANULOCK_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace granulock {

class Rng;

/// Zipf-distributed integer sampler over [0, n) with skew parameter
/// `theta` in [0, 1): probability of rank k is proportional to
/// 1/(k+1)^theta. theta = 0 is uniform; theta ~ 0.99 is the classic
/// "YCSB zipfian" hot-key skew. Uses the Gray et al. constant-time
/// algorithm with precomputed zeta constants, so sampling is O(1).
class ZipfGenerator {
 public:
  /// Requires n >= 1 and 0 <= theta < 1.
  ZipfGenerator(int64_t n, double theta);

  /// Draws one value in [0, n); rank 0 is the hottest.
  int64_t Sample(Rng& rng) const;

  int64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  int64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

/// SplitMix64 — a tiny, well-distributed 64-bit generator used to expand a
/// single user seed into the state of stronger generators. Deterministic and
/// platform-independent (unlike std::mt19937 seeded via seed_seq differences
/// in library implementations it has a fixed, documented algorithm).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value and advances the state.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna — the library's workhorse PRNG.
///
/// Fast (a few ns per draw), passes BigCrush, 2^256-1 period, and fully
/// reproducible across platforms. Every stochastic component of the
/// simulator draws from an explicitly seeded `Rng`, so a (config, seed)
/// pair always reproduces a run exactly.
class Rng {
 public:
  /// Seeds the generator; all 2^64 seeds give well-separated streams
  /// (state is expanded through SplitMix64 per the authors' guidance).
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Raw 64 uniform random bits.
  uint64_t NextUint64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in (0, 1] — zero-free, for inverse-CDF style draws
  /// where 0 would be degenerate (e.g. the conflict-interval draw).
  double NextDoubleOpenClosed();

  /// Uniform integer in [lo, hi], inclusive on both ends. Requires lo <= hi.
  /// Uses rejection sampling (Lemire-style) so the result is exactly uniform.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw: true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Returns `k` distinct integers sampled uniformly from [0, n), in
  /// ascending order. Requires 0 <= k <= n. Uses Floyd's algorithm, which is
  /// O(k) expected time and does not allocate O(n) memory.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator; stream `i` of the same parent
  /// is reproducible. Used to give each replication its own stream.
  Rng Fork(uint64_t stream_index) const;

 private:
  uint64_t s_[4];
  uint64_t seed_;  // retained so Fork() can derive child streams
};

}  // namespace granulock

#endif  // GRANULOCK_UTIL_RANDOM_H_
