#ifndef GRANULOCK_STORAGE_RECORD_STORE_H_
#define GRANULOCK_STORAGE_RECORD_STORE_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace granulock::storage {

/// An in-memory record store partitioned round-robin across the nodes of a
/// shared-nothing cluster — the concrete data substrate under the
/// simulated database. Records are the paper's "accessible entities"
/// (`dbsize` of them); each holds one 64-bit value.
///
/// Partitioning follows the paper's layout: "relations are partitioned
/// into tuples and the tuples are distributed to disk drives in the system
/// [round robin]", i.e. record `k` lives on node `k mod npros`.
///
/// The store itself performs no concurrency control: it is the thing the
/// lock managers protect. The funds-transfer engine uses it to *observe*
/// what happens to data integrity when locking is correct, too coarse, or
/// absent.
class RecordStore {
 public:
  /// Creates `num_records` records on `num_nodes` nodes, all initialized
  /// to `initial_value`. Requires num_records >= 1, num_nodes >= 1.
  RecordStore(int64_t num_records, int64_t num_nodes,
              int64_t initial_value = 0);

  /// Reads record `key` (0 <= key < num_records).
  int64_t Read(int64_t key) const;

  /// Writes record `key`.
  void Write(int64_t key, int64_t value);

  /// Atomically adds `delta` to record `key` and returns the new value
  /// (used by reference/oracle paths, not by simulated transactions —
  /// those must read and write separately so races can manifest).
  int64_t Add(int64_t key, int64_t delta);

  /// The node record `key` lives on (round-robin).
  int32_t NodeOf(int64_t key) const;

  /// Sum of every record's value — the integrity invariant of the
  /// funds-transfer workload (transfers must conserve it).
  int64_t Total() const;

  /// Number of writes ever applied (diagnostics).
  int64_t write_count() const { return write_count_; }

  int64_t num_records() const {
    return static_cast<int64_t>(values_.size());
  }
  int64_t num_nodes() const { return num_nodes_; }

 private:
  std::vector<int64_t> values_;
  int64_t num_nodes_;
  int64_t write_count_ = 0;
};

}  // namespace granulock::storage

#endif  // GRANULOCK_STORAGE_RECORD_STORE_H_
