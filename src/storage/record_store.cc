#include "storage/record_store.h"

#include <numeric>

#include "util/logging.h"

namespace granulock::storage {

RecordStore::RecordStore(int64_t num_records, int64_t num_nodes,
                         int64_t initial_value)
    : values_(static_cast<size_t>(num_records), initial_value),
      num_nodes_(num_nodes) {
  GRANULOCK_CHECK_GE(num_records, 1);
  GRANULOCK_CHECK_GE(num_nodes, 1);
}

int64_t RecordStore::Read(int64_t key) const {
  GRANULOCK_CHECK_GE(key, 0);
  GRANULOCK_CHECK_LT(key, num_records());
  return values_[static_cast<size_t>(key)];
}

void RecordStore::Write(int64_t key, int64_t value) {
  GRANULOCK_CHECK_GE(key, 0);
  GRANULOCK_CHECK_LT(key, num_records());
  values_[static_cast<size_t>(key)] = value;
  ++write_count_;
}

int64_t RecordStore::Add(int64_t key, int64_t delta) {
  GRANULOCK_CHECK_GE(key, 0);
  GRANULOCK_CHECK_LT(key, num_records());
  values_[static_cast<size_t>(key)] += delta;
  ++write_count_;
  return values_[static_cast<size_t>(key)];
}

int32_t RecordStore::NodeOf(int64_t key) const {
  GRANULOCK_CHECK_GE(key, 0);
  GRANULOCK_CHECK_LT(key, num_records());
  return static_cast<int32_t>(key % num_nodes_);
}

int64_t RecordStore::Total() const {
  return std::accumulate(values_.begin(), values_.end(),
                         static_cast<int64_t>(0));
}

}  // namespace granulock::storage
