#include "db/explicit_simulator.h"

#include <algorithm>
#include <utility>

#include "sim/invariants.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/wall_clock.h"

namespace granulock::db {

using lockmgr::HierRequest;
using lockmgr::LockMode;
using lockmgr::LockRequest;
using lockmgr::ObjectId;
using sim::ServiceClass;

/// One live transaction with its concrete lock set. The set is drawn once
/// (a transaction's data needs do not change across retries); the lock
/// *cost* is paid on every attempt, as in the paper.
struct ExplicitSimulator::Txn {
  lockmgr::TxnId id = 0;
  workload::TransactionParams params;
  double arrival_time = 0.0;
  int64_t subtxns_remaining = 0;
  // Fan-in for the current lock-processing phase (I/O, then CPU); the two
  // phases never overlap, so one field serves both without allocating.
  int64_t lock_fanin_remaining = 0;
  std::vector<Txn*> blocked;

  /// Granules this transaction locks (kFlat, or kHierarchical fine path).
  std::vector<int64_t> granules;
  /// True if this transaction takes one database-level lock instead.
  bool coarse = false;
  /// S for read-only transactions, X otherwise.
  LockMode mode = LockMode::kX;
  /// Locks actually set per attempt (drives the lock cost).
  double locks_set = 0.0;

  // Phase accounting (always on); see core::GranularitySimulator::Txn.
  double pending_since = 0.0;
  double lock_since = 0.0;
  double grant_time = 0.0;
  double pending_wait = 0.0;
  double lock_wait = 0.0;
  double io_span_sum = 0.0;
  double cpu_span_sum = 0.0;
  double cpu_done_sum = 0.0;
  std::vector<std::pair<int32_t, double>> sub_cpu_done;

  /// Returns the transaction to its freshly-constructed state while
  /// keeping the vectors' capacity — pooled reuse must behave exactly
  /// like a new `Txn` minus the allocations.
  void Reset() {
    id = 0;
    arrival_time = 0.0;
    subtxns_remaining = 0;
    lock_fanin_remaining = 0;
    blocked.clear();
    granules.clear();
    coarse = false;
    mode = LockMode::kX;
    locks_set = 0.0;
    pending_since = 0.0;
    lock_since = 0.0;
    grant_time = 0.0;
    pending_wait = 0.0;
    lock_wait = 0.0;
    io_span_sum = 0.0;
    cpu_span_sum = 0.0;
    cpu_done_sum = 0.0;
    sub_cpu_done.clear();
  }
};

ExplicitSimulator::ExplicitSimulator(model::SystemConfig cfg,
                                     workload::WorkloadSpec spec,
                                     uint64_t seed, Options options)
    : cfg_(std::move(cfg)),
      spec_(std::move(spec)),
      options_(options),
      rng_(seed) {}

ExplicitSimulator::ExplicitSimulator(model::SystemConfig cfg,
                                     workload::WorkloadSpec spec,
                                     uint64_t seed)
    : ExplicitSimulator(std::move(cfg), std::move(spec), seed, Options{}) {}

ExplicitSimulator::~ExplicitSimulator() = default;

Result<core::SimulationMetrics> ExplicitSimulator::RunOnce(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    uint64_t seed, Options options) {
  ExplicitSimulator simulator(cfg, spec, seed, options);
  return simulator.Run();
}

Result<core::SimulationMetrics> ExplicitSimulator::RunOnce(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    uint64_t seed) {
  return RunOnce(cfg, spec, seed, Options{});
}

Result<core::SimulationMetrics> ExplicitSimulator::Run() {
  if (ran_) {
    return Status::FailedPrecondition("Run() may only be called once");
  }
  ran_ = true;
  const WallTimer wall_timer;
  GRANULOCK_RETURN_NOT_OK(cfg_.Validate());
  GRANULOCK_RETURN_NOT_OK(spec_.Validate(cfg_));
  txn_factory_.emplace(cfg_, spec_);
  if (options_.read_fraction < 0.0 || options_.read_fraction > 1.0) {
    return Status::InvalidArgument("read_fraction must be in [0, 1]");
  }
  if (options_.coarse_threshold < 0) {
    return Status::InvalidArgument("coarse_threshold must be >= 0");
  }

  switch (options_.strategy) {
    case LockingStrategy::kFlat:
      flat_table_ = std::make_unique<lockmgr::LockTable>(cfg_.ltot);
      break;
    case LockingStrategy::kHierarchical: {
      if (options_.num_files < 1 || options_.num_files > cfg_.ltot) {
        return Status::InvalidArgument(
            "num_files must be in [1, ltot] for hierarchical locking");
      }
      if (options_.escalation_threshold < 0) {
        return Status::InvalidArgument(
            "escalation_threshold must be >= 0");
      }
      lockmgr::HierarchicalLockManager::Options hier;
      hier.num_granules = cfg_.ltot;
      hier.num_files = options_.num_files;
      hier.escalation_threshold = options_.escalation_threshold;
      hier_table_ =
          std::make_unique<lockmgr::HierarchicalLockManager>(hier);
      break;
    }
  }

  cpu_.reserve(static_cast<size_t>(cfg_.npros));
  io_.reserve(static_cast<size_t>(cfg_.npros));
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    cpu_.push_back(std::make_unique<sim::PriorityServer>(
        &sim_, StrFormat("cpu%lld", (long long)n)));
    io_.push_back(std::make_unique<sim::PriorityServer>(
        &sim_, StrFormat("io%lld", (long long)n)));
    cpu_.back()->SetBusyUnion(&cpu_union_);
    io_.back()->SetBusyUnion(&io_union_);
  }

  SetUpObservability();

  active_stat_.Start(0.0, 0.0);
  blocked_stat_.Start(0.0, 0.0);
  pending_stat_.Start(0.0, 0.0);
  window_start_ = cfg_.warmup;
  if (cfg_.warmup > 0.0) {
    sim_.ScheduleAt(cfg_.warmup, [this] { BeginMeasurement(); });
  }

  InjectInitialTransactions();
  sim_.RunUntil(cfg_.tmax);

  core::SimulationMetrics m;
  m.measured_time = cfg_.tmax - window_start_;
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    m.totcpus_sum += cpu_[static_cast<size_t>(n)]->TotalBusyTime();
    m.totios_sum += io_[static_cast<size_t>(n)]->TotalBusyTime();
    m.lockcpus_sum +=
        cpu_[static_cast<size_t>(n)]->BusyTime(ServiceClass::kLock);
    m.lockios_sum +=
        io_[static_cast<size_t>(n)]->BusyTime(ServiceClass::kLock);
  }
  m.totcpus = cpu_union_.AnyBusyTime(cfg_.tmax);
  m.lockcpus = cpu_union_.LockBusyTime(cfg_.tmax);
  m.totios = io_union_.AnyBusyTime(cfg_.tmax);
  m.lockios = io_union_.LockBusyTime(cfg_.tmax);
  const double npros = static_cast<double>(cfg_.npros);
  m.usefulcpus = (m.totcpus - m.lockcpus) / npros;
  m.usefulios = (m.totios - m.lockios) / npros;
  m.totcom = totcom_;
  m.throughput =
      m.measured_time > 0.0 ? static_cast<double>(totcom_) / m.measured_time
                            : 0.0;
  m.response_time = response_.Mean();
  m.response_time_stddev = response_.StdDev();
  m.response_p50 = response_quantiles_.Quantile(0.50);
  m.response_p95 = response_quantiles_.Quantile(0.95);
  m.response_p99 = response_quantiles_.Quantile(0.99);
  m.lock_requests = lock_requests_;
  m.lock_denials = lock_denials_;
  m.denial_rate = lock_requests_ > 0 ? static_cast<double>(lock_denials_) /
                                           static_cast<double>(lock_requests_)
                                     : 0.0;
  m.avg_active = active_stat_.Average(cfg_.tmax);
  m.avg_blocked = blocked_stat_.Average(cfg_.tmax);
  m.avg_pending = pending_stat_.Average(cfg_.tmax);
  m.cpu_utilization =
      m.measured_time > 0.0 ? m.totcpus_sum / (npros * m.measured_time)
                            : 0.0;
  m.io_utilization =
      m.measured_time > 0.0 ? m.totios_sum / (npros * m.measured_time) : 0.0;
  m.events_executed = sim_.ExecutedEvents();
  m.phase_pending_wait = phase_pending_.Mean();
  m.phase_lock_wait = phase_lock_.Mean();
  m.phase_io_service = phase_io_.Mean();
  m.phase_cpu_service = phase_cpu_.Mean();
  m.phase_sync_wait = phase_sync_.Mean();

  const double wall_seconds = wall_timer.Seconds();
  PublishRunProfile(wall_seconds);
  return m;
}

void ExplicitSimulator::SetUpObservability() {
  if (options_.obs.registry != nullptr) {
    auto* reg = options_.obs.registry;
    ctr_txn_created_ = reg->GetCounter("engine.txn_created");
    ctr_lock_requests_ = reg->GetCounter("engine.lock_requests");
    ctr_lock_denials_ = reg->GetCounter("engine.lock_denials");
    ctr_lock_grants_ = reg->GetCounter("engine.lock_grants");
    ctr_subtxns_done_ = reg->GetCounter("engine.subtxns_completed");
    ctr_txn_completed_ = reg->GetCounter("engine.txn_completed");
    hist_response_ = reg->GetHistogram(
        "engine.response_time",
        {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000});
  }
  if (options_.obs.sampler != nullptr) {
    auto* sampler = options_.obs.sampler;
    std::vector<std::string> cols = {"active", "blocked", "pending",
                                     "throughput"};
    for (int64_t n = 0; n < cfg_.npros; ++n) {
      cols.push_back(StrFormat("cpu%lld_util", (long long)n));
    }
    for (int64_t n = 0; n < cfg_.npros; ++n) {
      cols.push_back(StrFormat("disk%lld_util", (long long)n));
    }
    sampler->SetColumns(std::move(cols));
    sample_cpu_busy_.assign(static_cast<size_t>(cfg_.npros), 0.0);
    sample_io_busy_.assign(static_cast<size_t>(cfg_.npros), 0.0);
    const double iv = sampler->interval();
    if (iv > 0.0 && iv <= cfg_.tmax) {
      sim_.ScheduleObserverAt(iv, [this] { SampleTick(); });
    }
  }
  if (auto* prof = options_.obs.contention) {
    prof->BeginRun(cfg_.ltot, /*imputed=*/false);
    const double iv = prof->options().sample_interval;
    if (iv > 0.0 && iv <= cfg_.tmax) {
      sim_.ScheduleObserverAt(iv, [this] { ContentionTick(); });
    }
  }
}

void ExplicitSimulator::ContentionTick() {
  auto* prof = options_.obs.contention;
  const double now = sim_.Now();
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (const auto& [id, holder] : active_) {
    for (const Txn* waiter : holder->blocked) {
      edges.emplace_back(waiter->id, id);
    }
  }
  const double ntrans = static_cast<double>(cfg_.ntrans);
  const double blocked_fraction =
      ntrans > 0.0 ? static_cast<double>(blocked_count_) / ntrans : 0.0;
  const int64_t locked = flat_table_ != nullptr
                             ? flat_table_->LockedGranules()
                             : hier_table_->LockedGranules();
  const double occupancy =
      cfg_.ltot > 0 ? std::min(1.0, static_cast<double>(locked) /
                                        static_cast<double>(cfg_.ltot))
                    : 0.0;
  prof->OnSample(now, blocked_fraction, occupancy, std::move(edges));
  const double iv = prof->options().sample_interval;
  if (now + iv <= cfg_.tmax) {
    sim_.ScheduleObserverAfter(iv, [this] { ContentionTick(); });
  }
}

void ExplicitSimulator::SampleTick() {
  auto* sampler = options_.obs.sampler;
  const double now = sim_.Now();
  const double dt = now - sample_time_;
  std::vector<double> row;
  row.reserve(4 + 2 * static_cast<size_t>(cfg_.npros));
  row.push_back(static_cast<double>(active_.size()));
  row.push_back(static_cast<double>(blocked_count_));
  row.push_back(static_cast<double>(pending_.size()));
  // Deltas clamp at 0 across the warmup reset (see GranularitySimulator).
  row.push_back(dt > 0.0 ? std::max(0.0, static_cast<double>(
                                             totcom_ - sample_totcom_)) /
                               dt
                         : 0.0);
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    const size_t i = static_cast<size_t>(n);
    const double busy = cpu_[i]->TotalBusyTime();
    row.push_back(dt > 0.0
                      ? std::max(0.0, busy - sample_cpu_busy_[i]) / dt
                      : 0.0);
    sample_cpu_busy_[i] = busy;
  }
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    const size_t i = static_cast<size_t>(n);
    const double busy = io_[i]->TotalBusyTime();
    row.push_back(dt > 0.0 ? std::max(0.0, busy - sample_io_busy_[i]) / dt
                           : 0.0);
    sample_io_busy_[i] = busy;
  }
  sample_totcom_ = totcom_;
  sample_time_ = now;
  sampler->Push(now, std::move(row));
  const double iv = sampler->interval();
  if (now + iv <= cfg_.tmax) {
    sim_.ScheduleObserverAfter(iv, [this] { SampleTick(); });
  }
}

void ExplicitSimulator::PublishRunProfile(double wall_seconds) {
  if (options_.obs.registry == nullptr) return;
  auto* reg = options_.obs.registry;
  reg->GetGauge("sim.events_executed")
      ->Set(static_cast<double>(sim_.ExecutedEvents()));
  reg->GetGauge("sim.observer_events")
      ->Set(static_cast<double>(sim_.ExecutedObserverEvents()));
  reg->GetGauge("sim.event_queue_hwm")
      ->Set(static_cast<double>(sim_.MaxPendingEvents()));
  reg->GetGauge("engine.wall_seconds")->Set(wall_seconds);
  reg->GetGauge("engine.events_per_sec")
      ->Set(wall_seconds > 0.0
                ? static_cast<double>(sim_.ExecutedEvents()) / wall_seconds
                : 0.0);
}

void ExplicitSimulator::BeginMeasurement() {
  for (auto& server : cpu_) server->ResetStats();
  for (auto& server : io_) server->ResetStats();
  totcom_ = 0;
  lock_requests_ = 0;
  lock_denials_ = 0;
  response_.Reset();
  response_quantiles_.Reset();
  phase_pending_.Reset();
  phase_lock_.Reset();
  phase_io_.Reset();
  phase_cpu_.Reset();
  phase_sync_.Reset();
  sample_totcom_ = 0;
  std::fill(sample_cpu_busy_.begin(), sample_cpu_busy_.end(), 0.0);
  std::fill(sample_io_busy_.begin(), sample_io_busy_.end(), 0.0);
  const double now = sim_.Now();
  cpu_union_.ResetWindow(now);
  io_union_.ResetWindow(now);
  active_stat_.ResetWindow(now);
  blocked_stat_.ResetWindow(now);
  pending_stat_.ResetWindow(now);
  window_start_ = now;
}

void ExplicitSimulator::InjectInitialTransactions() {
  for (int64_t i = 0; i < cfg_.ntrans; ++i) {
    sim_.ScheduleAt(static_cast<double>(i), [this] {
      Txn* txn = CreateTransaction(sim_.Now());
      EnqueuePending(txn);
      PumpLockManager();
    });
  }
}

void ExplicitSimulator::EnqueuePending(Txn* txn) {
  txn->pending_since = sim_.Now();
  pending_.push_back(txn);
  UpdateQueueStats();
}

ExplicitSimulator::Txn* ExplicitSimulator::CreateTransaction(
    double arrival_time) {
  std::unique_ptr<Txn> owned;
  if (!txn_pool_.empty()) {
    owned = std::move(txn_pool_.back());
    txn_pool_.pop_back();
  } else {
    owned = std::make_unique<Txn>();
  }
  Txn* txn = owned.get();
  txn->id = next_txn_id_++;
  txn_factory_->Generate(rng_, &txn->params);
  txn->arrival_time = arrival_time;
  if (ctr_txn_created_ != nullptr) ctr_txn_created_->Increment();
  txn->mode =
      rng_.Bernoulli(options_.read_fraction) ? LockMode::kS : LockMode::kX;
  txn->coarse = options_.strategy == LockingStrategy::kHierarchical &&
                options_.coarse_threshold > 0 &&
                txn->params.nu >= options_.coarse_threshold;
  if (txn->coarse) {
    txn->locks_set = 1.0;  // one database-level lock
  } else {
    txn->granules = SelectGranules(spec_.placement, cfg_.dbsize, cfg_.ltot,
                                   txn->params.nu, rng_);
    if (options_.strategy == LockingStrategy::kHierarchical) {
      // Hierarchical transactions pay for every lock actually set:
      // granule locks plus the derived file/root intention locks, after
      // escalation.
      std::vector<lockmgr::HierRequest> requests;
      requests.reserve(txn->granules.size());
      for (int64_t g : txn->granules) {
        requests.push_back(
            lockmgr::HierRequest{lockmgr::ObjectId::Granule(g), txn->mode});
      }
      txn->locks_set =
          static_cast<double>(hier_table_->EffectiveLockSet(requests).size());
    } else {
      txn->locks_set = static_cast<double>(txn->granules.size());
    }
  }
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id, sim::TraceEventType::kCreated,
                           txn->params.nu);
  }
  live_txns_.push_back(std::move(owned));
  return txn;
}

void ExplicitSimulator::DestroyTransaction(Txn* txn) {
  auto it = std::find_if(
      live_txns_.begin(), live_txns_.end(),
      [txn](const std::unique_ptr<Txn>& p) { return p.get() == txn; });
  GRANULOCK_CHECK(it != live_txns_.end());
  // Recycle through the pool: the closed system otherwise churns one
  // short-lived Txn (three vectors deep) per completion.
  (*it)->Reset();
  txn_pool_.push_back(std::move(*it));
  *it = std::move(live_txns_.back());
  live_txns_.pop_back();
}

void ExplicitSimulator::UpdateQueueStats() {
  const double now = sim_.Now();
  active_stat_.Update(now, static_cast<double>(active_.size()));
  blocked_stat_.Update(now, static_cast<double>(blocked_count_));
  pending_stat_.Update(now, static_cast<double>(pending_.size()));
}

void ExplicitSimulator::PumpLockManager() {
  while (!pending_.empty() &&
         (!options_.serialize_lock_manager ||
          outstanding_lock_requests_ == 0)) {
    Txn* txn = pending_.front();
    pending_.pop_front();
    UpdateQueueStats();
    BeginLockRequest(txn);
  }
  if (sim::invariants::DeepAuditEnabled()) CheckConsistency();
}

void ExplicitSimulator::CheckConsistency() const {
  GRANULOCK_AUDIT_CHECK_GE(outstanding_lock_requests_, 0);
  GRANULOCK_AUDIT_CHECK_GE(blocked_count_, 0);
  GRANULOCK_AUDIT_CHECK_EQ(
      live_txns_.size(),
      pending_.size() + static_cast<size_t>(outstanding_lock_requests_) +
          static_cast<size_t>(blocked_count_) + active_.size())
      << "live=" << live_txns_.size() << " pending=" << pending_.size()
      << " in_lock=" << outstanding_lock_requests_
      << " blocked=" << blocked_count_ << " active=" << active_.size();
  size_t blocked_from_lists = 0;
  for (const auto& [id, txn] : active_) {
    GRANULOCK_AUDIT_CHECK_EQ(id, txn->id);
    blocked_from_lists += txn->blocked.size();
    GRANULOCK_AUDIT_CHECK_GT(txn->subtxns_remaining, 0)
        << "active txn " << txn->id << " has no sub-transactions left";
    for (const Txn* waiter : txn->blocked) {
      GRANULOCK_AUDIT_CHECK(waiter->blocked.empty())
          << "blocked txn " << waiter->id
          << " blocks others: waits-for chain under conservative locking";
    }
  }
  GRANULOCK_AUDIT_CHECK_EQ(static_cast<size_t>(blocked_count_),
                           blocked_from_lists);
  // Only active transactions hold locks, and the table itself is sound.
  if (flat_table_ != nullptr) {
    GRANULOCK_AUDIT_CHECK_EQ(
        static_cast<size_t>(flat_table_->ActiveTransactions()),
        active_.size());
    flat_table_->CheckConsistency();
  }
  if (hier_table_ != nullptr) {
    GRANULOCK_AUDIT_CHECK_EQ(hier_table_->Empty(), active_.empty());
    hier_table_->CheckConsistency();
  }
}

void ExplicitSimulator::BeginLockRequest(Txn* txn) {
  ++outstanding_lock_requests_;
  ++lock_requests_;
  const double now = sim_.Now();
  txn->pending_wait += now - txn->pending_since;
  txn->lock_since = now;
  if (options_.obs.spans != nullptr) {
    options_.obs.spans->Record(txn->id, obs::Phase::kPendingWait,
                               obs::kLifecycleTrack, txn->pending_since,
                               now);
  }
  if (ctr_lock_requests_ != nullptr) ctr_lock_requests_->Increment();
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kLockRequested,
                           static_cast<int64_t>(txn->locks_set));
  }
  StartLockIoPhase(txn);
}

void ExplicitSimulator::StartLockIoPhase(Txn* txn) {
  const double per_node =
      txn->locks_set * cfg_.liotime / static_cast<double>(cfg_.npros);
  if (per_node <= 0.0) {
    StartLockCpuPhase(txn);
    return;
  }
  txn->lock_fanin_remaining = cfg_.npros;
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    io_[static_cast<size_t>(n)]->Submit(
        ServiceClass::kLock, per_node, [this, txn] {
          if (--txn->lock_fanin_remaining == 0) StartLockCpuPhase(txn);
        });
  }
}

void ExplicitSimulator::StartLockCpuPhase(Txn* txn) {
  const double per_node =
      txn->locks_set * cfg_.lcputime / static_cast<double>(cfg_.npros);
  if (per_node <= 0.0) {
    FinishLockRequest(txn);
    return;
  }
  txn->lock_fanin_remaining = cfg_.npros;
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    cpu_[static_cast<size_t>(n)]->Submit(
        ServiceClass::kLock, per_node, [this, txn] {
          if (--txn->lock_fanin_remaining == 0) FinishLockRequest(txn);
        });
  }
}

namespace {

/// Maps a hierarchy object to the profiler's contention key space.
int64_t ContentionKeyOf(const ObjectId& object) {
  switch (object.level) {
    case ObjectId::Level::kGranule:
      return object.index;
    case ObjectId::Level::kFile:
      return obs::FileObjectKey(object.index);
    case ObjectId::Level::kRoot:
      return obs::kRootObjectKey;
  }
  return obs::kRootObjectKey;
}

}  // namespace

std::optional<lockmgr::TxnId> ExplicitSimulator::TryAcquire(
    Txn* txn, DenialInfo* denial) {
  switch (options_.strategy) {
    case LockingStrategy::kFlat: {
      std::vector<LockRequest> requests;
      requests.reserve(txn->granules.size());
      for (int64_t g : txn->granules) {
        requests.push_back(LockRequest{g, txn->mode});
      }
      lockmgr::ConflictInfo conflict;
      const auto blocker = flat_table_->TryAcquireAll(
          txn->id, requests, denial != nullptr ? &conflict : nullptr);
      if (blocker.has_value() && denial != nullptr) {
        *denial = DenialInfo{conflict.granule, conflict.requested,
                             conflict.held};
      }
      return blocker;
    }
    case LockingStrategy::kHierarchical: {
      std::vector<HierRequest> requests;
      if (txn->coarse) {
        requests.push_back(HierRequest{ObjectId::Root(), txn->mode});
      } else {
        requests.reserve(txn->granules.size());
        for (int64_t g : txn->granules) {
          requests.push_back(HierRequest{ObjectId::Granule(g), txn->mode});
        }
      }
      lockmgr::HierConflictInfo conflict;
      const auto blocker = hier_table_->TryAcquireAll(
          txn->id, requests, denial != nullptr ? &conflict : nullptr);
      if (blocker.has_value() && denial != nullptr) {
        *denial = DenialInfo{ContentionKeyOf(conflict.object),
                             conflict.requested, conflict.held};
      }
      return blocker;
    }
  }
  GRANULOCK_LOG(Fatal) << "unknown locking strategy";
  return std::nullopt;
}

void ExplicitSimulator::ReleaseLocks(Txn* txn) {
  switch (options_.strategy) {
    case LockingStrategy::kFlat:
      flat_table_->ReleaseAll(txn->id);
      break;
    case LockingStrategy::kHierarchical:
      hier_table_->ReleaseAll(txn->id);
      break;
  }
}

void ExplicitSimulator::FinishLockRequest(Txn* txn) {
  --outstanding_lock_requests_;
  DenialInfo denial;
  auto* prof = options_.obs.contention;
  const std::optional<lockmgr::TxnId> blocker =
      TryAcquire(txn, prof != nullptr ? &denial : nullptr);
  if (blocker.has_value()) {
    ++lock_denials_;
    if (ctr_lock_denials_ != nullptr) ctr_lock_denials_->Increment();
    if (options_.trace != nullptr) {
      options_.trace->Record(sim_.Now(), txn->id,
                             sim::TraceEventType::kLockDenied,
                             static_cast<int64_t>(*blocker));
    }
    auto it = active_.find(*blocker);
    GRANULOCK_CHECK(it != active_.end())
        << "blocker " << *blocker << " is not active";
    it->second->blocked.push_back(txn);
    ++blocked_count_;
    if (prof != nullptr) {
      // Conservative locking cannot chain waiters, so the depth is 1.
      prof->OnBlock(txn->id, denial.key, denial.requested, denial.held,
                    /*chain_depth=*/1, sim_.Now());
    }
    UpdateQueueStats();
  } else {
    if (options_.trace != nullptr) {
      options_.trace->Record(sim_.Now(), txn->id,
                             sim::TraceEventType::kLockGranted,
                             static_cast<int64_t>(txn->locks_set));
    }
    Grant(txn);
  }
  PumpLockManager();
}

void ExplicitSimulator::Grant(Txn* txn) {
  active_.emplace(txn->id, txn);
  txn->subtxns_remaining = txn->params.pu;
  const double now = sim_.Now();
  txn->lock_wait += now - txn->lock_since;
  txn->grant_time = now;
  if (options_.obs.spans != nullptr) {
    options_.obs.spans->Record(txn->id, obs::Phase::kLockWait,
                               obs::kLifecycleTrack, txn->lock_since, now);
  }
  if (ctr_lock_grants_ != nullptr) ctr_lock_grants_->Increment();
  if (auto* prof = options_.obs.contention) {
    if (options_.strategy == LockingStrategy::kHierarchical) {
      if (txn->coarse) {
        prof->OnGrant(obs::kRootObjectKey);
      } else {
        std::vector<HierRequest> requests;
        requests.reserve(txn->granules.size());
        for (int64_t g : txn->granules) {
          requests.push_back(HierRequest{ObjectId::Granule(g), txn->mode});
        }
        for (const HierRequest& req : hier_table_->EffectiveLockSet(requests)) {
          prof->OnGrant(ContentionKeyOf(req.object));
        }
      }
    } else {
      for (int64_t g : txn->granules) prof->OnGrant(g);
    }
  }
  UpdateQueueStats();
  for (int32_t node : txn->params.nodes) {
    StartSubTransaction(txn, node);
  }
}

void ExplicitSimulator::StartSubTransaction(Txn* txn, int32_t node) {
  const double pu = static_cast<double>(txn->params.pu);
  const double io_share = txn->params.io_demand / pu;
  const double cpu_share = txn->params.cpu_demand / pu;
  auto* io_server = io_[static_cast<size_t>(node)].get();
  auto* cpu_server = cpu_[static_cast<size_t>(node)].get();
  io_server->Submit(
      ServiceClass::kTransaction, io_share,
      [this, txn, node, cpu_server, cpu_share] {
        const double io_done = sim_.Now();
        txn->io_span_sum += io_done - txn->grant_time;
        if (options_.obs.spans != nullptr) {
          options_.obs.spans->Record(txn->id, obs::Phase::kIoService, node,
                                     txn->grant_time, io_done);
        }
        cpu_server->Submit(ServiceClass::kTransaction, cpu_share,
                           [this, txn, node, io_done] {
                             const double cpu_done = sim_.Now();
                             txn->cpu_span_sum += cpu_done - io_done;
                             txn->cpu_done_sum += cpu_done;
                             if (options_.obs.spans != nullptr) {
                               options_.obs.spans->Record(
                                   txn->id, obs::Phase::kCpuService, node,
                                   io_done, cpu_done);
                               txn->sub_cpu_done.emplace_back(node,
                                                              cpu_done);
                             }
                             OnSubTransactionDone(txn);
                           });
      });
}

void ExplicitSimulator::OnSubTransactionDone(Txn* txn) {
  GRANULOCK_CHECK_GT(txn->subtxns_remaining, 0);
  if (ctr_subtxns_done_ != nullptr) ctr_subtxns_done_->Increment();
  if (--txn->subtxns_remaining == 0) {
    Complete(txn);
  }
}

void ExplicitSimulator::Complete(Txn* txn) {
  ReleaseLocks(txn);
  auto it = active_.find(txn->id);
  GRANULOCK_CHECK(it != active_.end());
  active_.erase(it);

  const double now = sim_.Now();
  const double response = now - txn->arrival_time;
  ++totcom_;
  response_.Add(response);
  response_quantiles_.Add(response);
  const double pu = static_cast<double>(txn->params.pu);
  phase_pending_.Add(txn->pending_wait);
  phase_lock_.Add(txn->lock_wait);
  phase_io_.Add(txn->io_span_sum / pu);
  phase_cpu_.Add(txn->cpu_span_sum / pu);
  phase_sync_.Add(now - txn->cpu_done_sum / pu);
  if (ctr_txn_completed_ != nullptr) ctr_txn_completed_->Increment();
  if (hist_response_ != nullptr) hist_response_->Observe(response);
  if (options_.obs.spans != nullptr) {
    for (const auto& [node, cpu_done] : txn->sub_cpu_done) {
      options_.obs.spans->Record(txn->id, obs::Phase::kSyncWait, node,
                                 cpu_done, now);
    }
    options_.obs.spans->TxnComplete(txn->id, txn->arrival_time, now,
                                    txn->params.pu);
  }
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kCompleted,
                           static_cast<int64_t>(txn->blocked.size()));
  }

  // The blocked stint counts as lock wait, as in the granularity engine.
  blocked_count_ -= static_cast<int64_t>(txn->blocked.size());
  for (Txn* released : txn->blocked) {
    released->lock_wait += now - released->lock_since;
    if (auto* prof = options_.obs.contention) {
      prof->OnUnblock(released->id, now);
    }
    if (options_.obs.spans != nullptr) {
      options_.obs.spans->Record(released->id, obs::Phase::kLockWait,
                                 obs::kLifecycleTrack, released->lock_since,
                                 now);
    }
    EnqueuePending(released);
  }
  txn->blocked.clear();

  if (cfg_.think_time > 0.0) {
    sim_.ScheduleAfter(rng_.Exponential(cfg_.think_time), [this] {
      Txn* fresh = CreateTransaction(sim_.Now());
      EnqueuePending(fresh);
      PumpLockManager();
    });
  } else {
    Txn* fresh = CreateTransaction(sim_.Now());
    EnqueuePending(fresh);
  }

  DestroyTransaction(txn);
  UpdateQueueStats();
  PumpLockManager();
}

}  // namespace granulock::db
