#ifndef GRANULOCK_DB_CONTENTION_POLICY_H_
#define GRANULOCK_DB_CONTENTION_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lockmgr/lock_mode.h"
#include "lockmgr/wait_queue_table.h"
#include "lockmgr/waits_for.h"
#include "util/random.h"
#include "util/status.h"

namespace granulock::db {

/// Pluggable contention resolution for the incremental (claim-as-needed)
/// engine. The paper sidesteps the question by locking conservatively
/// ("deadlock is impossible"); the incremental engine lives where it
/// isn't, and the *choice* of restart/wait policy is what decides whether
/// the system degrades gracefully or collapses past the thrashing
/// boundary (Thomasian). This header separates that choice from the
/// engine: a `ContentionPolicy` decides who aborts when a lock request
/// blocks, a `RestartGovernor` decides how victims back off and when a
/// transaction has restarted enough to be sacrificed, and an
/// `AdmissionController` throttles the effective multiprogramming level
/// when the blocked fraction says the system is past its knee.
///
/// Determinism contract: policies are pure functions of the lock-table
/// state and the read-only transaction directory — they draw no
/// randomness and iterate no unordered containers, so a run's results
/// depend only on (config, seed, policy).

/// Who aborts when a lock request joins a wait queue.
enum class ContentionPolicyKind {
  /// Baseline: search for a waits-for cycle through the requester; if one
  /// exists the *requester* aborts. Bit-identical to the engine's
  /// historical hard-coded behavior (proven by test).
  kDetectRequester = 0,
  /// Cycle search as above, but the victim is the cycle member holding
  /// the fewest locks (cheapest to redo; ties break to the youngest).
  kDetectFewestLocks = 1,
  /// Cycle search; the victim is the cycle member with the fewest
  /// restarts spared so far (the youngest — least wasted work; ties
  /// break to the largest id).
  kDetectYoungest = 2,
  /// Timestamp wound-wait (no cycle search): an older requester wounds
  /// every younger blocker (they abort, immediately when waiting or at
  /// the next safe point when running); a younger requester waits.
  /// Waits-for edges therefore always point young -> old: acyclic.
  kWoundWait = 3,
  /// Timestamp wait-die (no cycle search): the requester waits only when
  /// it is older than every blocker, otherwise it aborts (dies). Edges
  /// point old -> young: acyclic.
  kWaitDie = 4,
  /// Wait-depth limitation, WDL(1) per Thomasian: a request may wait
  /// only on active (non-blocked) holders, with nobody queued ahead of
  /// it and nobody waiting on the requester's own locks — otherwise the
  /// requester aborts. No waits-for edge ever enters a blocked
  /// transaction, so chains have depth <= 1 and cycles cannot form.
  kWaitDepth = 5,
};

inline constexpr int kNumContentionPolicies = 6;

/// Stable flag/spec name ("detect", "detect_fewest_locks",
/// "detect_youngest", "wound_wait", "wait_die", "wait_depth").
const char* ContentionPolicyName(ContentionPolicyKind kind);

/// Parses a `--policy` value; InvalidArgument lists the known names.
Result<ContentionPolicyKind> ParseContentionPolicy(const std::string& name);

/// Comma-separated list of every policy name (help/error text).
std::string KnownContentionPolicyNames();

/// Read-only view of per-transaction engine state a policy may consult.
/// Transaction ids are creation-ordered and survive restarts, so they
/// double as the timestamps wound-wait/wait-die compare: a smaller id is
/// an older transaction.
class TxnDirectory {
 public:
  virtual ~TxnDirectory() = default;
  /// How many times `txn` has aborted and restarted so far.
  virtual int64_t RestartsOf(lockmgr::TxnId txn) const = 0;
  /// True when `txn` is already marked to abort at its next safe point
  /// (a wounded running holder); policies skip such blockers.
  virtual bool IsDoomed(lockmgr::TxnId txn) const = 0;
};

/// One blocked lock request, as presented to a policy.
struct ConflictRequest {
  lockmgr::TxnId requester = 0;
  int64_t granule = 0;
  lockmgr::LockMode mode = lockmgr::LockMode::kX;
};

/// A policy's verdict: the transactions that must abort (possibly
/// including the requester). Empty means the requester simply waits. The
/// engine aborts waiting victims immediately and marks running victims
/// doomed (they abort at their next safe point), then asks again while
/// the requester is still queued.
struct ConflictDecision {
  std::vector<lockmgr::TxnId> victims;
};

/// Strategy interface. `OnBlock` runs after the requester has joined the
/// wait queue for `req.granule`; the table reflects that state.
class ContentionPolicy {
 public:
  virtual ~ContentionPolicy() = default;
  virtual ContentionPolicyKind kind() const = 0;
  virtual ConflictDecision OnBlock(const ConflictRequest& req,
                                   const lockmgr::WaitQueueLockTable& table,
                                   const TxnDirectory& txns) = 0;
};

std::unique_ptr<ContentionPolicy> MakeContentionPolicy(
    ContentionPolicyKind kind);

/// Rebuilds the waits-for graph from the table's queues (waiter -> every
/// holder of the waited granule) — the same edge set the deep audit and
/// the baseline detection use.
lockmgr::WaitsForGraph BuildWaitsForGraph(
    const lockmgr::WaitQueueLockTable& table);

/// The transactions blocking `req`: every holder of `req.granule` other
/// than the requester plus every waiter queued ahead of it (strict FIFO —
/// the request cannot be granted before those drain). This is exactly the
/// edge set the waits-for audit attributes to the requester, so policies
/// reasoning about "who am I waiting on" stay consistent with the audit.
std::vector<lockmgr::TxnId> BlockersOf(
    const ConflictRequest& req, const lockmgr::WaitQueueLockTable& table);

// ---------------------------------------------------------------------
// Restart governor

struct RestartGovernorOptions {
  /// Multiplier applied to the backoff mean per restart beyond the
  /// first. 1.0 (the default) reproduces the historical fixed-mean
  /// backoff bit-exactly. Must be >= 1.
  double backoff_factor = 1.0;
  /// Upper bound on the backoff mean; <= 0 disables the cap.
  double max_backoff = 0.0;
  /// Per-transaction restart budget: a victim that has already restarted
  /// this many times is *sacrificed* (terminally aborted and replaced by
  /// a fresh transaction) instead of restarting again. < 0 = unlimited.
  int64_t max_restarts = -1;
};

/// Decides how a victim backs off and when it is sacrificed. Jitter
/// comes from the engine's own deterministic RNG stream (passed in), so
/// the governor adds no randomness source of its own.
class RestartGovernor {
 public:
  RestartGovernor(double base_delay, RestartGovernorOptions options);

  /// True when a victim on its `restarts`-th abort (1-based, counted
  /// *after* the increment) has exhausted its budget and must be
  /// sacrificed rather than restarted.
  bool ShouldSacrifice(int64_t restarts) const;

  /// One exponential backoff draw for a victim's `restarts`-th abort
  /// (1-based). The mean is base_delay * factor^(restarts-1), clamped to
  /// `max_backoff`; with factor == 1 the mean stays exactly `base_delay`
  /// so the draw is bit-identical to the historical code's.
  double BackoffDelay(int64_t restarts, Rng& rng) const;

  /// The backoff mean used for a victim's `restarts`-th abort (tests).
  double BackoffMean(int64_t restarts) const;

  const RestartGovernorOptions& options() const { return options_; }

 private:
  double base_delay_;
  RestartGovernorOptions options_;
};

// ---------------------------------------------------------------------
// Admission controller

struct AdmissionOptions {
  /// Master switch; when false the controller is never constructed and
  /// the engine is bit-identical to a run without one.
  bool enabled = false;
  /// Blocked fraction — (lock waiters + backoff sleepers) / admitted —
  /// above which the target MPL contracts multiplicatively.
  double high_water = 0.6;
  /// Blocked fraction below which the target recovers additively —
  /// hysteresis: between the waters the target holds.
  double low_water = 0.3;
  /// Simulated-time spacing of controller evaluations. Short relative to
  /// transaction response times: an overloaded seed population (MPL far
  /// past the knee) must be clamped before its restart storm pollutes a
  /// whole measurement window.
  double interval = 10.0;
  /// Multiplicative decrease applied to the target on contraction.
  /// Halving reaches a sane target from any overload in log2(MPL)
  /// evaluations; the additive +1 recovery then probes back up slowly
  /// (classic AIMD asymmetry).
  double decrease_factor = 0.5;
  /// Additive increase applied on recovery.
  int64_t increase_step = 1;
  /// The target never contracts below this.
  int64_t min_mpl = 1;
};

/// Multiprogramming-level throttle with blocked-fraction feedback:
/// classic AIMD with hysteresis. New and restarting-as-fresh
/// (sacrifice-replacement) transactions park in an admission queue while
/// the admitted count sits at the target; completions and target raises
/// drain it FIFO.
class AdmissionController {
 public:
  /// `max_mpl` is the configured MPL (cfg.ntrans) — the target's ceiling
  /// and starting value.
  AdmissionController(AdmissionOptions options, int64_t max_mpl);

  int64_t target() const { return target_; }

  /// One feedback evaluation: contract above the high water, recover
  /// below the low water, hold in between. Returns true when the target
  /// changed.
  bool Evaluate(double blocked_fraction);

  /// Evaluations that contracted the target (diagnostics).
  int64_t contractions() const { return contractions_; }

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  int64_t max_mpl_;
  int64_t target_;
  int64_t contractions_ = 0;
};

/// Validates governor + admission option ranges (flag parsing and the
/// engine both call this).
Status ValidateContentionOptions(const RestartGovernorOptions& governor,
                                 const AdmissionOptions& admission);

/// Everything the incremental engine needs to resolve contention.
struct ContentionOptions {
  ContentionPolicyKind policy = ContentionPolicyKind::kDetectRequester;
  RestartGovernorOptions governor;
  AdmissionOptions admission;
};

/// Fault-injection hook for the `policy_victim_flip` point: when armed
/// and firing, replaces the first victim with the never-assigned txn id
/// 0, which the engine rejects with a contained error (see
/// docs/ROBUSTNESS.md). Counted only on non-empty decisions, so hit N
/// addresses the Nth victim decision of the run. `key` is the run's
/// seed. Inert (one relaxed load) when nothing is armed.
void MaybeInjectVictimFlip(uint64_t key, std::vector<lockmgr::TxnId>* victims);

}  // namespace granulock::db

#endif  // GRANULOCK_DB_CONTENTION_POLICY_H_
