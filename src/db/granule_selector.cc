#include "db/granule_selector.h"

#include <algorithm>

#include "util/logging.h"

namespace granulock::db {

int64_t GranuleOfEntity(int64_t entity, int64_t dbsize, int64_t ltot) {
  GRANULOCK_CHECK_GE(entity, 0);
  GRANULOCK_CHECK_LT(entity, dbsize);
  // 128-bit intermediate: entity * ltot can exceed 2^63 for very large
  // configured databases.
  const auto g = static_cast<int64_t>(
      (static_cast<__int128>(entity) * ltot) / dbsize);
  return std::min(g, ltot - 1);
}

std::vector<int64_t> SelectGranules(model::Placement placement,
                                    int64_t dbsize, int64_t ltot, int64_t nu,
                                    Rng& rng) {
  GRANULOCK_CHECK_GE(nu, 1);
  GRANULOCK_CHECK_LE(nu, dbsize);
  GRANULOCK_CHECK_GE(ltot, 1);
  GRANULOCK_CHECK_LE(ltot, dbsize);
  switch (placement) {
    case model::Placement::kBest: {
      const int64_t count = model::BestPlacementLocks(dbsize, ltot, nu);
      const int64_t start = rng.UniformInt(0, ltot - 1);
      std::vector<int64_t> out;
      out.reserve(static_cast<size_t>(count));
      for (int64_t i = 0; i < count; ++i) {
        out.push_back((start + i) % ltot);
      }
      std::sort(out.begin(), out.end());
      return out;
    }
    case model::Placement::kRandom: {
      const std::vector<int64_t> entities =
          rng.SampleWithoutReplacement(dbsize, nu);
      std::vector<int64_t> out;
      out.reserve(entities.size());
      for (int64_t e : entities) {
        out.push_back(GranuleOfEntity(e, dbsize, ltot));
      }
      // Entities are sorted, and GranuleOfEntity is monotone, so the
      // granules are sorted too; just deduplicate.
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    }
    case model::Placement::kWorst: {
      const int64_t count = model::WorstPlacementLocks(ltot, nu);
      return rng.SampleWithoutReplacement(ltot, count);
    }
  }
  GRANULOCK_LOG(Fatal) << "unknown placement";
  return {};
}

}  // namespace granulock::db
