#ifndef GRANULOCK_DB_EXPLICIT_SIMULATOR_H_
#define GRANULOCK_DB_EXPLICIT_SIMULATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/metrics.h"
#include "db/granule_selector.h"
#include "lockmgr/hierarchical.h"
#include "lockmgr/lock_table.h"
#include "model/config.h"
#include "obs/hooks.h"
#include "sim/busy_union.h"
#include "sim/priority_server.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "util/random.h"
#include "util/status.h"
#include "workload/workload.h"

namespace granulock::db {

/// The same closed shared-nothing system as `core::GranularitySimulator`,
/// but with an **explicit lock table** instead of the Ries–Stonebraker
/// probabilistic conflict model: every transaction locks a concrete set of
/// granules (drawn by `SelectGranules`), conflicts are detected against
/// real holders, and lock cost is charged per lock actually set.
///
/// Two purposes:
///  1. Cross-validation — the paper *approximates* conflicts; this engine
///     measures them. `bench_ablation_conflict_model` overlays the two.
///  2. Extension — the hierarchical strategy implements the paper's
///     closing recommendation (file-level locks for large transactions,
///     block-level for small ones, as in the Gamma machine) and lets
///     `bench_ablation_mgl` quantify it on the mixed workload.
class ExplicitSimulator {
 public:
  /// How transactions translate their granule set into lock requests.
  enum class LockingStrategy {
    /// Exclusive (or shared, see `read_fraction`) locks on each granule in
    /// a flat lock table — the paper's protocol, made explicit.
    kFlat,
    /// Multiple-granularity locking: transactions touching at least
    /// `coarse_threshold` entities take one database-level lock; smaller
    /// ones take intention locks plus granule locks.
    kHierarchical,
  };

  struct Options {
    LockingStrategy strategy = LockingStrategy::kFlat;
    /// kHierarchical only: entity-count threshold at which a transaction
    /// locks the whole database instead of individual granules. 0 disables
    /// coarse locking (everyone locks granules).
    int64_t coarse_threshold = 0;
    /// kHierarchical only: number of files the granules are divided into
    /// (>= 1). Fine-grained transactions take intention locks on the
    /// files they touch; with > 1 file a coarse reader/writer conflicts
    /// only at the root.
    int64_t num_files = 1;
    /// kHierarchical only: per-file lock escalation threshold passed to
    /// the hierarchical manager (0 disables escalation).
    int64_t escalation_threshold = 0;
    /// Probability that a transaction is read-only and takes S locks
    /// (default 0: all transactions update, matching the paper).
    double read_fraction = 0.0;
    /// Process one lock request at a time (see DESIGN.md §4.2).
    bool serialize_lock_manager = true;
    /// Optional lifecycle tracer (not owned; must outlive the run).
    sim::TraceRecorder* trace = nullptr;
    /// Optional observability sinks (not owned; must outlive the run).
    /// Attaching any of them never changes simulated results.
    obs::Hooks obs;
  };

  ExplicitSimulator(model::SystemConfig cfg, workload::WorkloadSpec spec,
                    uint64_t seed, Options options);
  ExplicitSimulator(model::SystemConfig cfg, workload::WorkloadSpec spec,
                    uint64_t seed);
  ~ExplicitSimulator();

  ExplicitSimulator(const ExplicitSimulator&) = delete;
  ExplicitSimulator& operator=(const ExplicitSimulator&) = delete;

  /// Validates, runs to `cfg.tmax`, returns the metrics. Call once.
  Result<core::SimulationMetrics> Run();

  static Result<core::SimulationMetrics> RunOnce(
      const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
      uint64_t seed, Options options);
  static Result<core::SimulationMetrics> RunOnce(
      const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
      uint64_t seed);

 private:
  friend struct AuditTestPeer;  // invariants_test corrupts state through it

  struct Txn;

  /// Deep audit (runs at quiescent points when
  /// `sim::invariants::DeepAuditEnabled()`): closed-system conservation,
  /// blocked-list accounting, depth-one waits-for (conservative locking
  /// cannot chain waiters), and the active lock table's own
  /// `CheckConsistency` — every active transaction holds locks, nobody
  /// else does.
  void CheckConsistency() const;

  void InjectInitialTransactions();
  void PumpLockManager();
  void BeginLockRequest(Txn* txn);
  void StartLockIoPhase(Txn* txn);
  void StartLockCpuPhase(Txn* txn);
  void FinishLockRequest(Txn* txn);
  void Grant(Txn* txn);
  void StartSubTransaction(Txn* txn, int32_t node);
  void OnSubTransactionDone(Txn* txn);
  void Complete(Txn* txn);

  Txn* CreateTransaction(double arrival_time);
  void DestroyTransaction(Txn* txn);
  void EnqueuePending(Txn* txn);
  void UpdateQueueStats();
  void BeginMeasurement();
  void SetUpObservability();
  void SampleTick();
  /// One periodic contention-profiler sample (observer event; only
  /// scheduled when options_.obs.contention is set).
  void ContentionTick();
  void PublishRunProfile(double wall_seconds);

  /// Contention attribution for a refused acquisition, in the profiler's
  /// key space (granule g -> g, file f -> FileObjectKey(f), root ->
  /// kRootObjectKey).
  struct DenialInfo {
    int64_t key = 0;
    lockmgr::LockMode requested = lockmgr::LockMode::kX;
    lockmgr::LockMode held = lockmgr::LockMode::kX;
  };

  /// Attempts the acquisition against whichever lock manager is active;
  /// returns the blocking transaction id or nullopt. When refused and
  /// `denial` is non-null, it is filled with the colliding object/modes.
  std::optional<lockmgr::TxnId> TryAcquire(Txn* txn, DenialInfo* denial);
  void ReleaseLocks(Txn* txn);

  model::SystemConfig cfg_;
  workload::WorkloadSpec spec_;
  Options options_;
  /// Built in `Run()` (needs a validated spec); amortizes lock-demand and
  /// node-set work across every transaction the run creates.
  std::optional<workload::TransactionFactory> txn_factory_;
  Rng rng_;

  sim::Simulator sim_;
  std::vector<std::unique_ptr<sim::PriorityServer>> cpu_;
  std::vector<std::unique_ptr<sim::PriorityServer>> io_;
  sim::BusyUnionTracker cpu_union_;
  sim::BusyUnionTracker io_union_;

  std::unique_ptr<lockmgr::LockTable> flat_table_;
  std::unique_ptr<lockmgr::HierarchicalLockManager> hier_table_;

  std::deque<Txn*> pending_;
  std::unordered_map<lockmgr::TxnId, Txn*> active_;
  std::vector<std::unique_ptr<Txn>> live_txns_;
  std::vector<std::unique_ptr<Txn>> txn_pool_;  // recycled Txn objects
  int64_t blocked_count_ = 0;
  int outstanding_lock_requests_ = 0;

  int64_t totcom_ = 0;
  int64_t lock_requests_ = 0;
  int64_t lock_denials_ = 0;
  sim::RunningStat response_;
  sim::QuantileEstimator response_quantiles_;
  sim::TimeWeightedStat active_stat_;
  sim::TimeWeightedStat blocked_stat_;
  sim::TimeWeightedStat pending_stat_;
  double window_start_ = 0.0;

  // Response-time decomposition (always on; see SimulationMetrics).
  sim::RunningStat phase_pending_;
  sim::RunningStat phase_lock_;
  sim::RunningStat phase_io_;
  sim::RunningStat phase_cpu_;
  sim::RunningStat phase_sync_;

  // Cached registry instruments (null unless options_.obs.registry set).
  obs::Counter* ctr_txn_created_ = nullptr;
  obs::Counter* ctr_lock_requests_ = nullptr;
  obs::Counter* ctr_lock_denials_ = nullptr;
  obs::Counter* ctr_lock_grants_ = nullptr;
  obs::Counter* ctr_subtxns_done_ = nullptr;
  obs::Counter* ctr_txn_completed_ = nullptr;
  obs::Histogram* hist_response_ = nullptr;

  // Sampler baselines for per-interval deltas.
  std::vector<double> sample_cpu_busy_;
  std::vector<double> sample_io_busy_;
  int64_t sample_totcom_ = 0;
  double sample_time_ = 0.0;

  uint64_t next_txn_id_ = 1;
  bool ran_ = false;
};

}  // namespace granulock::db

#endif  // GRANULOCK_DB_EXPLICIT_SIMULATOR_H_
