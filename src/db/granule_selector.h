#ifndef GRANULOCK_DB_GRANULE_SELECTOR_H_
#define GRANULOCK_DB_GRANULE_SELECTOR_H_

#include <cstdint>
#include <vector>

#include "model/placement.h"
#include "util/random.h"

namespace granulock::db {

/// Draws the *concrete* set of granules (ids in [0, ltot)) locked by a
/// transaction that accesses `nu` entities of a `dbsize`-entity database
/// under the given placement strategy. This is the explicit-lock-table
/// counterpart of `model::LocksRequired`, which only computes the count:
///
/// * kBest — the `ceil(nu*ltot/dbsize)` granules are contiguous, starting
///   at a uniformly random granule (wrapping), modelling a sequential scan
///   beginning at a random position.
/// * kRandom — `nu` distinct entities are drawn uniformly; each entity `e`
///   belongs to granule `floor(e * ltot / dbsize)`; the set of distinct
///   granules touched is returned (its expected size is Yao's formula).
/// * kWorst — `min(nu, ltot)` distinct granules drawn uniformly (every
///   entity in its own granule, spread maximally).
///
/// Requires 1 <= nu <= dbsize and 1 <= ltot <= dbsize. The result is
/// sorted, duplicate-free and non-empty.
std::vector<int64_t> SelectGranules(model::Placement placement,
                                    int64_t dbsize, int64_t ltot, int64_t nu,
                                    Rng& rng);

/// Maps entity `e` (in [0, dbsize)) to its granule under the equal-division
/// scheme used by `SelectGranules`: granule `floor(e * ltot / dbsize)`.
int64_t GranuleOfEntity(int64_t entity, int64_t dbsize, int64_t ltot);

}  // namespace granulock::db

#endif  // GRANULOCK_DB_GRANULE_SELECTOR_H_
