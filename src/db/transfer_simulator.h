#ifndef GRANULOCK_DB_TRANSFER_SIMULATOR_H_
#define GRANULOCK_DB_TRANSFER_SIMULATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/metrics.h"
#include "lockmgr/lock_table.h"
#include "model/config.h"
#include "obs/contention.h"
#include "sim/busy_union.h"
#include "sim/priority_server.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "storage/record_store.h"
#include "util/random.h"
#include "util/status.h"

namespace granulock::db {

/// The paper's motivating example, made executable: a closed system of
/// **funds-transfer transactions** against real account records
/// (`storage::RecordStore`), under the simulated shared-nothing timing
/// model. Each transfer debits one random account and credits another:
/// read both balances, compute, write both back — with real I/O/CPU delays
/// between the reads and the writes, so incorrect concurrency control
/// produces genuine *lost updates* ("it might lead to the lost update
/// problem in a funds transfer transaction", §1).
///
/// Two concurrency-control modes:
///  * kConservativeLocking — the paper's protocol over a real lock table
///    at the configured granularity (`cfg.ltot`); execution is
///    serializable, so the total balance is conserved;
///  * kNoLocking — transactions run unprotected; concurrent transfers
///    overwrite each other's balances and the invariant breaks. This mode
///    exists to demonstrate *why* the locking whose granularity the paper
///    tunes is needed at all.
///
/// Beyond correctness, the engine reports the usual timing metrics, so the
/// granularity trade-off can be studied on a realistic OLTP workload
/// (2-record transactions ~ the debit-credit benchmark the paper cites).
class TransferSimulator {
 public:
  enum class ConcurrencyControl {
    kConservativeLocking,
    kNoLocking,
  };

  struct Options {
    ConcurrencyControl concurrency_control =
        ConcurrencyControl::kConservativeLocking;
    /// Every account starts with this balance.
    int64_t initial_balance = 1000;
    /// Probability that a transfer debits account 0 (a hot spot); 0 picks
    /// both accounts uniformly.
    double hot_fraction = 0.0;
    /// Zipf skew for account selection (0 = uniform, up to ~0.99 for the
    /// YCSB-style hot-key distribution). Composes with `hot_fraction`.
    double zipf_theta = 0.0;
    /// Optional contention profiler (not owned; must outlive the run).
    /// Attaching it never changes simulated results. Only meaningful
    /// under kConservativeLocking (kNoLocking never blocks).
    obs::ContentionProfiler* contention = nullptr;
  };

  /// The run outcome: timing metrics plus the data-integrity verdict.
  struct Report {
    core::SimulationMetrics metrics;
    /// Sum of balances before / after the run.
    int64_t initial_total = 0;
    int64_t final_total = 0;
    /// Net delta intended by the writes that were applied (non-zero only
    /// for transfers cut off mid-write by tmax; every completed transfer
    /// nets to zero).
    int64_t in_flight_imbalance = 0;
    /// True iff money was conserved, i.e.
    /// `final_total == initial_total + in_flight_imbalance`. Lost updates
    /// (writes based on stale reads) break this identity; partial
    /// transfers at the simulation horizon do not.
    bool conserved = false;
    /// Writes applied to the store.
    int64_t writes_applied = 0;
  };

  TransferSimulator(model::SystemConfig cfg, uint64_t seed, Options options);
  TransferSimulator(model::SystemConfig cfg, uint64_t seed);
  ~TransferSimulator();

  TransferSimulator(const TransferSimulator&) = delete;
  TransferSimulator& operator=(const TransferSimulator&) = delete;

  /// Validates, runs to `cfg.tmax`, returns the report. Call once.
  /// `cfg.maxtransize` is ignored (every transfer touches 2 records).
  Result<Report> Run();

  static Result<Report> RunOnce(const model::SystemConfig& cfg,
                                uint64_t seed, Options options);
  static Result<Report> RunOnce(const model::SystemConfig& cfg,
                                uint64_t seed);

 private:
  friend struct AuditTestPeer;  // invariants_test corrupts state through it

  struct Txn;

  /// Deep audit (runs at quiescent points when
  /// `sim::invariants::DeepAuditEnabled()`): closed-system conservation
  /// over pending / lock-processing / blocked / active, blocked-list
  /// accounting, and — under conservative locking — the lock table's own
  /// invariants with exactly the active transactions holding locks.
  void CheckConsistency() const;

  void PumpLockManager();
  void BeginLockRequest(Txn* txn);
  void FinishLockRequest(Txn* txn);
  void StartReads(Txn* txn);
  void OnReadsDone(Txn* txn);
  void StartWrites(Txn* txn);
  void Complete(Txn* txn);

  Txn* CreateTransaction(double arrival_time);
  void DestroyTransaction(Txn* txn);
  void UpdateQueueStats();
  void BeginMeasurement();
  /// One periodic contention-profiler sample (observer event; only
  /// scheduled when options_.contention is set).
  void ContentionTick();
  int64_t GranuleOfAccount(int64_t account) const;

  model::SystemConfig cfg_;
  Options options_;
  Rng rng_;

  sim::Simulator sim_;
  std::vector<std::unique_ptr<sim::PriorityServer>> cpu_;
  std::vector<std::unique_ptr<sim::PriorityServer>> io_;
  sim::BusyUnionTracker cpu_union_;
  sim::BusyUnionTracker io_union_;

  std::unique_ptr<storage::RecordStore> store_;
  std::unique_ptr<ZipfGenerator> zipf_;
  std::unique_ptr<lockmgr::LockTable> table_;

  std::deque<Txn*> pending_;
  std::unordered_map<lockmgr::TxnId, Txn*> active_;
  std::vector<std::unique_ptr<Txn>> live_txns_;
  std::vector<std::unique_ptr<Txn>> txn_pool_;  // recycled Txn objects
  int64_t blocked_count_ = 0;
  int outstanding_lock_requests_ = 0;
  /// Net intended delta of applied writes (see Report::in_flight_imbalance).
  int64_t net_applied_ = 0;

  int64_t totcom_ = 0;
  int64_t lock_requests_ = 0;
  int64_t lock_denials_ = 0;
  sim::RunningStat response_;
  sim::QuantileEstimator response_quantiles_;
  sim::TimeWeightedStat active_stat_;
  sim::TimeWeightedStat blocked_stat_;
  sim::TimeWeightedStat pending_stat_;
  double window_start_ = 0.0;

  uint64_t next_txn_id_ = 1;
  bool ran_ = false;
};

}  // namespace granulock::db

#endif  // GRANULOCK_DB_TRANSFER_SIMULATOR_H_
