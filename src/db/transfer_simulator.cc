#include "db/transfer_simulator.h"

#include <algorithm>
#include <utility>

#include "db/granule_selector.h"
#include "sim/invariants.h"
#include "util/logging.h"
#include "util/strings.h"

namespace granulock::db {

using lockmgr::LockMode;
using lockmgr::LockRequest;
using sim::ServiceClass;

/// One in-flight transfer: debit `from`, credit `to` by `amount`. The
/// balances read during the read phase are held in `read_from`/`read_to`
/// until the write phase applies them — the window in which a concurrent
/// unprotected transfer can be lost.
struct TransferSimulator::Txn {
  lockmgr::TxnId id = 0;
  double arrival_time = 0.0;
  int64_t from = 0;
  int64_t to = 0;
  int64_t amount = 0;
  int64_t read_from = 0;
  int64_t read_to = 0;
  int64_t phase_remaining = 0;
  // Fan-in for the current lock-cost phase (I/O, then CPU); the phases
  // never overlap for one transaction, so one field serves both.
  int64_t lock_fanin_remaining = 0;
  std::vector<Txn*> blocked;

  /// Returns the transaction to its freshly-constructed state while
  /// keeping the vector's capacity — pooled reuse must behave exactly
  /// like a new `Txn` minus the allocations.
  void Reset() {
    id = 0;
    arrival_time = 0.0;
    from = 0;
    to = 0;
    amount = 0;
    read_from = 0;
    read_to = 0;
    phase_remaining = 0;
    lock_fanin_remaining = 0;
    blocked.clear();
  }
};

TransferSimulator::TransferSimulator(model::SystemConfig cfg, uint64_t seed,
                                     Options options)
    : cfg_(std::move(cfg)), options_(options), rng_(seed) {}

TransferSimulator::TransferSimulator(model::SystemConfig cfg, uint64_t seed)
    : TransferSimulator(std::move(cfg), seed, Options{}) {}

TransferSimulator::~TransferSimulator() = default;

Result<TransferSimulator::Report> TransferSimulator::RunOnce(
    const model::SystemConfig& cfg, uint64_t seed, Options options) {
  TransferSimulator simulator(cfg, seed, options);
  return simulator.Run();
}

Result<TransferSimulator::Report> TransferSimulator::RunOnce(
    const model::SystemConfig& cfg, uint64_t seed) {
  return RunOnce(cfg, seed, Options{});
}

int64_t TransferSimulator::GranuleOfAccount(int64_t account) const {
  return GranuleOfEntity(account, cfg_.dbsize, cfg_.ltot);
}

Result<TransferSimulator::Report> TransferSimulator::Run() {
  if (ran_) {
    return Status::FailedPrecondition("Run() may only be called once");
  }
  ran_ = true;
  GRANULOCK_RETURN_NOT_OK(cfg_.Validate());
  if (cfg_.dbsize < 2) {
    return Status::InvalidArgument("transfers need at least two accounts");
  }
  if (options_.hot_fraction < 0.0 || options_.hot_fraction > 1.0) {
    return Status::InvalidArgument("hot_fraction must be in [0, 1]");
  }
  if (options_.zipf_theta < 0.0 || options_.zipf_theta >= 1.0) {
    return Status::InvalidArgument("zipf_theta must be in [0, 1)");
  }
  if (options_.zipf_theta > 0.0) {
    zipf_ = std::make_unique<ZipfGenerator>(cfg_.dbsize, options_.zipf_theta);
  }

  store_ = std::make_unique<storage::RecordStore>(cfg_.dbsize, cfg_.npros,
                                                  options_.initial_balance);
  table_ = std::make_unique<lockmgr::LockTable>(cfg_.ltot);
  const int64_t initial_total = store_->Total();

  cpu_.reserve(static_cast<size_t>(cfg_.npros));
  io_.reserve(static_cast<size_t>(cfg_.npros));
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    cpu_.push_back(std::make_unique<sim::PriorityServer>(
        &sim_, StrFormat("cpu%lld", (long long)n)));
    io_.push_back(std::make_unique<sim::PriorityServer>(
        &sim_, StrFormat("io%lld", (long long)n)));
    cpu_.back()->SetBusyUnion(&cpu_union_);
    io_.back()->SetBusyUnion(&io_union_);
  }

  if (auto* prof = options_.contention) {
    prof->BeginRun(cfg_.ltot, /*imputed=*/false);
    const double iv = prof->options().sample_interval;
    if (iv > 0.0 && iv <= cfg_.tmax) {
      sim_.ScheduleObserverAt(iv, [this] { ContentionTick(); });
    }
  }

  active_stat_.Start(0.0, 0.0);
  blocked_stat_.Start(0.0, 0.0);
  pending_stat_.Start(0.0, 0.0);
  window_start_ = cfg_.warmup;
  if (cfg_.warmup > 0.0) {
    sim_.ScheduleAt(cfg_.warmup, [this] { BeginMeasurement(); });
  }

  for (int64_t i = 0; i < cfg_.ntrans; ++i) {
    sim_.ScheduleAt(static_cast<double>(i), [this] {
      Txn* txn = CreateTransaction(sim_.Now());
      pending_.push_back(txn);
      UpdateQueueStats();
      PumpLockManager();
    });
  }
  sim_.RunUntil(cfg_.tmax);

  Report report;
  core::SimulationMetrics& m = report.metrics;
  m.measured_time = cfg_.tmax - window_start_;
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    m.totcpus_sum += cpu_[static_cast<size_t>(n)]->TotalBusyTime();
    m.totios_sum += io_[static_cast<size_t>(n)]->TotalBusyTime();
    m.lockcpus_sum +=
        cpu_[static_cast<size_t>(n)]->BusyTime(ServiceClass::kLock);
    m.lockios_sum +=
        io_[static_cast<size_t>(n)]->BusyTime(ServiceClass::kLock);
  }
  m.totcpus = cpu_union_.AnyBusyTime(cfg_.tmax);
  m.lockcpus = cpu_union_.LockBusyTime(cfg_.tmax);
  m.totios = io_union_.AnyBusyTime(cfg_.tmax);
  m.lockios = io_union_.LockBusyTime(cfg_.tmax);
  const double npros = static_cast<double>(cfg_.npros);
  m.usefulcpus = (m.totcpus - m.lockcpus) / npros;
  m.usefulios = (m.totios - m.lockios) / npros;
  m.totcom = totcom_;
  m.throughput =
      m.measured_time > 0.0 ? static_cast<double>(totcom_) / m.measured_time
                            : 0.0;
  m.response_time = response_.Mean();
  m.response_time_stddev = response_.StdDev();
  m.response_p50 = response_quantiles_.Quantile(0.50);
  m.response_p95 = response_quantiles_.Quantile(0.95);
  m.response_p99 = response_quantiles_.Quantile(0.99);
  m.lock_requests = lock_requests_;
  m.lock_denials = lock_denials_;
  m.denial_rate = lock_requests_ > 0 ? static_cast<double>(lock_denials_) /
                                           static_cast<double>(lock_requests_)
                                     : 0.0;
  m.avg_active = active_stat_.Average(cfg_.tmax);
  m.avg_blocked = blocked_stat_.Average(cfg_.tmax);
  m.avg_pending = pending_stat_.Average(cfg_.tmax);
  m.cpu_utilization =
      m.measured_time > 0.0 ? m.totcpus_sum / (npros * m.measured_time)
                            : 0.0;
  m.io_utilization =
      m.measured_time > 0.0 ? m.totios_sum / (npros * m.measured_time) : 0.0;
  m.events_executed = sim_.ExecutedEvents();

  report.initial_total = initial_total;
  report.final_total = store_->Total();
  report.in_flight_imbalance = net_applied_;
  report.conserved =
      report.final_total == report.initial_total + report.in_flight_imbalance;
  report.writes_applied = store_->write_count();
  return report;
}

void TransferSimulator::BeginMeasurement() {
  for (auto& server : cpu_) server->ResetStats();
  for (auto& server : io_) server->ResetStats();
  totcom_ = 0;
  lock_requests_ = 0;
  lock_denials_ = 0;
  response_.Reset();
  response_quantiles_.Reset();
  const double now = sim_.Now();
  cpu_union_.ResetWindow(now);
  io_union_.ResetWindow(now);
  active_stat_.ResetWindow(now);
  blocked_stat_.ResetWindow(now);
  pending_stat_.ResetWindow(now);
  window_start_ = now;
}

TransferSimulator::Txn* TransferSimulator::CreateTransaction(
    double arrival_time) {
  std::unique_ptr<Txn> owned;
  if (!txn_pool_.empty()) {
    owned = std::move(txn_pool_.back());
    txn_pool_.pop_back();
  } else {
    owned = std::make_unique<Txn>();
  }
  Txn* txn = owned.get();
  txn->id = next_txn_id_++;
  txn->arrival_time = arrival_time;
  const auto draw_account = [this] {
    return zipf_ ? zipf_->Sample(rng_) : rng_.UniformInt(0, cfg_.dbsize - 1);
  };
  txn->from =
      rng_.Bernoulli(options_.hot_fraction) ? 0 : draw_account();
  do {
    txn->to = draw_account();
  } while (txn->to == txn->from);
  txn->amount = rng_.UniformInt(1, 10);
  live_txns_.push_back(std::move(owned));
  return txn;
}

void TransferSimulator::DestroyTransaction(Txn* txn) {
  auto it = std::find_if(
      live_txns_.begin(), live_txns_.end(),
      [txn](const std::unique_ptr<Txn>& p) { return p.get() == txn; });
  GRANULOCK_CHECK(it != live_txns_.end());
  // Recycle through the pool: the closed system otherwise churns one
  // short-lived Txn per completion.
  (*it)->Reset();
  txn_pool_.push_back(std::move(*it));
  *it = std::move(live_txns_.back());
  live_txns_.pop_back();
}

void TransferSimulator::UpdateQueueStats() {
  const double now = sim_.Now();
  active_stat_.Update(now, static_cast<double>(active_.size()));
  blocked_stat_.Update(now, static_cast<double>(blocked_count_));
  pending_stat_.Update(now, static_cast<double>(pending_.size()));
}

void TransferSimulator::PumpLockManager() {
  while (!pending_.empty() && outstanding_lock_requests_ == 0) {
    Txn* txn = pending_.front();
    pending_.pop_front();
    UpdateQueueStats();
    if (options_.concurrency_control == ConcurrencyControl::kNoLocking) {
      // Straight to execution — this is how updates get lost.
      active_.emplace(txn->id, txn);
      UpdateQueueStats();
      StartReads(txn);
      continue;
    }
    BeginLockRequest(txn);
  }
  if (sim::invariants::DeepAuditEnabled()) CheckConsistency();
}

void TransferSimulator::CheckConsistency() const {
  GRANULOCK_AUDIT_CHECK_GE(outstanding_lock_requests_, 0);
  GRANULOCK_AUDIT_CHECK_GE(blocked_count_, 0);
  GRANULOCK_AUDIT_CHECK_EQ(
      live_txns_.size(),
      pending_.size() + static_cast<size_t>(outstanding_lock_requests_) +
          static_cast<size_t>(blocked_count_) + active_.size())
      << "live=" << live_txns_.size() << " pending=" << pending_.size()
      << " in_lock=" << outstanding_lock_requests_
      << " blocked=" << blocked_count_ << " active=" << active_.size();
  size_t blocked_from_lists = 0;
  for (const auto& [id, txn] : active_) {
    GRANULOCK_AUDIT_CHECK_EQ(id, txn->id);
    blocked_from_lists += txn->blocked.size();
    for (const Txn* waiter : txn->blocked) {
      GRANULOCK_AUDIT_CHECK(waiter->blocked.empty())
          << "blocked txn " << waiter->id
          << " blocks others: waits-for chain under conservative locking";
    }
  }
  GRANULOCK_AUDIT_CHECK_EQ(static_cast<size_t>(blocked_count_),
                           blocked_from_lists);
  if (options_.concurrency_control ==
      ConcurrencyControl::kConservativeLocking) {
    GRANULOCK_AUDIT_CHECK_EQ(
        static_cast<size_t>(table_->ActiveTransactions()), active_.size());
    table_->CheckConsistency();
  }
}

void TransferSimulator::BeginLockRequest(Txn* txn) {
  ++outstanding_lock_requests_;
  ++lock_requests_;
  // Lock cost per the paper's model: per-lock I/O then CPU, shared across
  // all nodes at preemptive priority.
  const int64_t granule_a = GranuleOfAccount(txn->from);
  const int64_t granule_b = GranuleOfAccount(txn->to);
  const double locks = granule_a == granule_b ? 1.0 : 2.0;
  const double npros = static_cast<double>(cfg_.npros);
  const double io_share = locks * cfg_.liotime / npros;
  const double cpu_share = locks * cfg_.lcputime / npros;
  auto cpu_phase = [this, txn, cpu_share, npros] {
    if (cpu_share <= 0.0) {
      FinishLockRequest(txn);
      return;
    }
    txn->lock_fanin_remaining = cfg_.npros;
    for (int64_t n = 0; n < cfg_.npros; ++n) {
      cpu_[static_cast<size_t>(n)]->Submit(
          ServiceClass::kLock, cpu_share, [this, txn] {
            if (--txn->lock_fanin_remaining == 0) FinishLockRequest(txn);
          });
    }
    (void)npros;
  };
  if (io_share <= 0.0) {
    cpu_phase();
    return;
  }
  txn->lock_fanin_remaining = cfg_.npros;
  auto shared_cpu_phase =
      std::make_shared<std::function<void()>>(std::move(cpu_phase));
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    io_[static_cast<size_t>(n)]->Submit(
        ServiceClass::kLock, io_share, [txn, shared_cpu_phase] {
          if (--txn->lock_fanin_remaining == 0) (*shared_cpu_phase)();
        });
  }
}

void TransferSimulator::FinishLockRequest(Txn* txn) {
  --outstanding_lock_requests_;
  const int64_t granule_a = GranuleOfAccount(txn->from);
  const int64_t granule_b = GranuleOfAccount(txn->to);
  std::vector<LockRequest> requests{{granule_a, LockMode::kX},
                                    {granule_b, LockMode::kX}};
  auto* prof = options_.contention;
  lockmgr::ConflictInfo conflict;
  const auto blocker = table_->TryAcquireAll(
      txn->id, requests, prof != nullptr ? &conflict : nullptr);
  if (blocker.has_value()) {
    ++lock_denials_;
    auto it = active_.find(*blocker);
    GRANULOCK_CHECK(it != active_.end());
    it->second->blocked.push_back(txn);
    ++blocked_count_;
    if (prof != nullptr) {
      // Conservative locking cannot chain waiters, so the depth is 1.
      prof->OnBlock(txn->id, conflict.granule, conflict.requested,
                    conflict.held, /*chain_depth=*/1, sim_.Now());
    }
    UpdateQueueStats();
  } else {
    if (prof != nullptr) {
      prof->OnGrant(granule_a);
      if (granule_b != granule_a) prof->OnGrant(granule_b);
    }
    active_.emplace(txn->id, txn);
    UpdateQueueStats();
    StartReads(txn);
  }
  PumpLockManager();
}

void TransferSimulator::ContentionTick() {
  auto* prof = options_.contention;
  const double now = sim_.Now();
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (const auto& [id, holder] : active_) {
    for (const Txn* waiter : holder->blocked) {
      edges.emplace_back(waiter->id, id);
    }
  }
  const double ntrans = static_cast<double>(cfg_.ntrans);
  const double blocked_fraction =
      ntrans > 0.0 ? static_cast<double>(blocked_count_) / ntrans : 0.0;
  const double occupancy =
      cfg_.ltot > 0
          ? std::min(1.0, static_cast<double>(table_->LockedGranules()) /
                              static_cast<double>(cfg_.ltot))
          : 0.0;
  prof->OnSample(now, blocked_fraction, occupancy, std::move(edges));
  const double iv = prof->options().sample_interval;
  if (now + iv <= cfg_.tmax) {
    sim_.ScheduleObserverAfter(iv, [this] { ContentionTick(); });
  }
}

void TransferSimulator::StartReads(Txn* txn) {
  txn->phase_remaining = 2;
  const auto read = [this, txn](int64_t account, int64_t* slot) {
    io_[static_cast<size_t>(store_->NodeOf(account))]->Submit(
        ServiceClass::kTransaction, cfg_.iotime,
        [this, txn, account, slot] {
          // The balance is captured at read-completion time; it can go
          // stale before the write phase applies it.
          *slot = store_->Read(account);
          OnReadsDone(txn);
        });
  };
  read(txn->from, &txn->read_from);
  read(txn->to, &txn->read_to);
}

void TransferSimulator::OnReadsDone(Txn* txn) {
  if (--txn->phase_remaining > 0) return;
  // Compute phase: validate and build the new balances on the debit
  // account's CPU.
  cpu_[static_cast<size_t>(store_->NodeOf(txn->from))]->Submit(
      ServiceClass::kTransaction, 2.0 * cfg_.cputime,
      [this, txn] { StartWrites(txn); });
}

void TransferSimulator::StartWrites(Txn* txn) {
  const auto write = [this, txn](int64_t account, int64_t value,
                                 int64_t delta) {
    io_[static_cast<size_t>(store_->NodeOf(account))]->Submit(
        ServiceClass::kTransaction, cfg_.iotime,
        [this, txn, account, value, delta] {
          store_->Write(account, value);
          net_applied_ += delta;
          if (--txn->phase_remaining == 0) Complete(txn);
        });
  };
  // Track the delta each applied write intends, so the integrity check
  // can net out transfers cut off mid-write by the simulation horizon.
  txn->phase_remaining = 2;
  write(txn->from, txn->read_from - txn->amount, -txn->amount);
  write(txn->to, txn->read_to + txn->amount, txn->amount);
}

void TransferSimulator::Complete(Txn* txn) {
  if (options_.concurrency_control ==
      ConcurrencyControl::kConservativeLocking) {
    table_->ReleaseAll(txn->id);
  }
  auto it = active_.find(txn->id);
  GRANULOCK_CHECK(it != active_.end());
  active_.erase(it);

  ++totcom_;
  response_.Add(sim_.Now() - txn->arrival_time);
  response_quantiles_.Add(sim_.Now() - txn->arrival_time);

  blocked_count_ -= static_cast<int64_t>(txn->blocked.size());
  for (Txn* released : txn->blocked) {
    if (auto* prof = options_.contention) {
      prof->OnUnblock(released->id, sim_.Now());
    }
    pending_.push_back(released);
  }
  txn->blocked.clear();

  Txn* fresh = CreateTransaction(sim_.Now());
  pending_.push_back(fresh);

  DestroyTransaction(txn);
  UpdateQueueStats();
  PumpLockManager();
}

}  // namespace granulock::db
