#include "db/contention_policy.h"

#include <algorithm>
#include <cmath>

#include "core/fault.h"

namespace granulock::db {

using lockmgr::TxnId;
using lockmgr::WaitQueueLockTable;
using lockmgr::WaitsForGraph;

const char* ContentionPolicyName(ContentionPolicyKind kind) {
  switch (kind) {
    case ContentionPolicyKind::kDetectRequester:
      return "detect";
    case ContentionPolicyKind::kDetectFewestLocks:
      return "detect_fewest_locks";
    case ContentionPolicyKind::kDetectYoungest:
      return "detect_youngest";
    case ContentionPolicyKind::kWoundWait:
      return "wound_wait";
    case ContentionPolicyKind::kWaitDie:
      return "wait_die";
    case ContentionPolicyKind::kWaitDepth:
      return "wait_depth";
  }
  return "?";
}

std::string KnownContentionPolicyNames() {
  std::string known;
  for (int p = 0; p < kNumContentionPolicies; ++p) {
    if (p > 0) known += ", ";
    known += ContentionPolicyName(static_cast<ContentionPolicyKind>(p));
  }
  return known;
}

Result<ContentionPolicyKind> ParseContentionPolicy(const std::string& name) {
  for (int p = 0; p < kNumContentionPolicies; ++p) {
    const auto kind = static_cast<ContentionPolicyKind>(p);
    if (name == ContentionPolicyName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown contention policy '" + name +
                                 "' (known: " + KnownContentionPolicyNames() +
                                 ")");
}

WaitsForGraph BuildWaitsForGraph(const WaitQueueLockTable& table) {
  WaitsForGraph graph;
  for (const auto& [waiter, granule] : table.WaitingRequests()) {
    for (TxnId holder : table.Holders(granule)) {
      graph.AddWait(waiter, holder);
    }
  }
  return graph;
}

std::vector<TxnId> BlockersOf(const ConflictRequest& req,
                              const WaitQueueLockTable& table) {
  std::vector<TxnId> blockers;
  for (TxnId holder : table.Holders(req.granule)) {
    if (holder != req.requester) blockers.push_back(holder);
  }
  for (TxnId ahead : table.WaitersAhead(req.requester, req.granule)) {
    blockers.push_back(ahead);
  }
  // Holder order is the table's insertion order and the ahead list is
  // queue order — both deterministic — but policies compare ids, so a
  // sorted, deduplicated list is the cleanest contract.
  std::sort(blockers.begin(), blockers.end());
  blockers.erase(std::unique(blockers.begin(), blockers.end()),
                 blockers.end());
  return blockers;
}

namespace {

class DetectRequesterPolicy final : public ContentionPolicy {
 public:
  ContentionPolicyKind kind() const override {
    return ContentionPolicyKind::kDetectRequester;
  }
  ConflictDecision OnBlock(const ConflictRequest& req,
                           const WaitQueueLockTable& table,
                           const TxnDirectory&) override {
    if (BuildWaitsForGraph(table).FindCycleFrom(req.requester).empty()) {
      return {};
    }
    return {{req.requester}};
  }
};

/// Shared shape of the two victim-selecting detectors: find the cycle
/// through the requester, pick the member minimizing a cost, preferring
/// the youngest (largest id) on ties.
template <typename CostFn>
ConflictDecision DetectWithVictim(const ConflictRequest& req,
                                  const WaitQueueLockTable& table,
                                  CostFn cost) {
  const std::vector<TxnId> cycle =
      BuildWaitsForGraph(table).FindCycleFrom(req.requester);
  if (cycle.empty()) return {};
  TxnId victim = cycle.front();
  int64_t victim_cost = cost(victim);
  for (size_t i = 1; i < cycle.size(); ++i) {
    const int64_t c = cost(cycle[i]);
    if (c < victim_cost || (c == victim_cost && cycle[i] > victim)) {
      victim = cycle[i];
      victim_cost = c;
    }
  }
  return {{victim}};
}

class DetectFewestLocksPolicy final : public ContentionPolicy {
 public:
  ContentionPolicyKind kind() const override {
    return ContentionPolicyKind::kDetectFewestLocks;
  }
  ConflictDecision OnBlock(const ConflictRequest& req,
                           const WaitQueueLockTable& table,
                           const TxnDirectory&) override {
    return DetectWithVictim(
        req, table, [&table](TxnId txn) { return table.HeldCount(txn); });
  }
};

class DetectYoungestPolicy final : public ContentionPolicy {
 public:
  ContentionPolicyKind kind() const override {
    return ContentionPolicyKind::kDetectYoungest;
  }
  ConflictDecision OnBlock(const ConflictRequest& req,
                           const WaitQueueLockTable& table,
                           const TxnDirectory& txns) override {
    return DetectWithVictim(
        req, table, [&txns](TxnId txn) { return txns.RestartsOf(txn); });
  }
};

class WoundWaitPolicy final : public ContentionPolicy {
 public:
  ContentionPolicyKind kind() const override {
    return ContentionPolicyKind::kWoundWait;
  }
  ConflictDecision OnBlock(const ConflictRequest& req,
                           const WaitQueueLockTable& table,
                           const TxnDirectory& txns) override {
    // The requester wounds every younger blocker; older blockers it
    // waits for. Already-doomed blockers are dying on their own. After
    // the wounds land every waits-for edge from the requester reaches an
    // older or doomed transaction, and doomed transactions never queue,
    // so ids strictly decrease along waiting chains: no cycle.
    ConflictDecision decision;
    for (TxnId blocker : BlockersOf(req, table)) {
      if (blocker > req.requester && !txns.IsDoomed(blocker)) {
        decision.victims.push_back(blocker);
      }
    }
    return decision;
  }
};

class WaitDiePolicy final : public ContentionPolicy {
 public:
  ContentionPolicyKind kind() const override {
    return ContentionPolicyKind::kWaitDie;
  }
  ConflictDecision OnBlock(const ConflictRequest& req,
                           const WaitQueueLockTable& table,
                           const TxnDirectory& txns) override {
    // The requester may wait only for strictly older (or doomed — they
    // hold no future) blockers... inverted: it *dies* when any live
    // blocker is older. Surviving waits point old -> young, so ids
    // strictly increase along waiting chains: no cycle.
    for (TxnId blocker : BlockersOf(req, table)) {
      if (blocker < req.requester && !txns.IsDoomed(blocker)) {
        return {{req.requester}};
      }
    }
    return {};
  }
};

class WaitDepthPolicy final : public ContentionPolicy {
 public:
  ContentionPolicyKind kind() const override {
    return ContentionPolicyKind::kWaitDepth;
  }
  ConflictDecision OnBlock(const ConflictRequest& req,
                           const WaitQueueLockTable& table,
                           const TxnDirectory&) override {
    // WDL(1): the requester may wait only at depth one — at the head of
    // the queue, on active holders, while nobody waits on its own locks.
    // Any deeper nesting aborts the requester, so no waits-for edge ever
    // enters a blocked transaction and cycles cannot form.
    if (!table.WaitersAhead(req.requester, req.granule).empty()) {
      return {{req.requester}};
    }
    for (TxnId holder : table.Holders(req.granule)) {
      if (holder != req.requester && table.IsQueued(holder)) {
        return {{req.requester}};
      }
    }
    if (table.HasOtherWaitersOnHeldGranules(req.requester)) {
      return {{req.requester}};
    }
    return {};
  }
};

}  // namespace

std::unique_ptr<ContentionPolicy> MakeContentionPolicy(
    ContentionPolicyKind kind) {
  switch (kind) {
    case ContentionPolicyKind::kDetectRequester:
      return std::make_unique<DetectRequesterPolicy>();
    case ContentionPolicyKind::kDetectFewestLocks:
      return std::make_unique<DetectFewestLocksPolicy>();
    case ContentionPolicyKind::kDetectYoungest:
      return std::make_unique<DetectYoungestPolicy>();
    case ContentionPolicyKind::kWoundWait:
      return std::make_unique<WoundWaitPolicy>();
    case ContentionPolicyKind::kWaitDie:
      return std::make_unique<WaitDiePolicy>();
    case ContentionPolicyKind::kWaitDepth:
      return std::make_unique<WaitDepthPolicy>();
  }
  return std::make_unique<DetectRequesterPolicy>();
}

// ---------------------------------------------------------------------

RestartGovernor::RestartGovernor(double base_delay,
                                 RestartGovernorOptions options)
    : base_delay_(base_delay), options_(options) {}

bool RestartGovernor::ShouldSacrifice(int64_t restarts) const {
  return options_.max_restarts >= 0 && restarts > options_.max_restarts;
}

double RestartGovernor::BackoffMean(int64_t restarts) const {
  // Iterative multiply (not pow): the factor == 1 case stays exactly
  // base_delay, keeping the baseline governor's draws bit-identical to
  // the historical fixed-mean backoff.
  double mean = base_delay_;
  if (options_.backoff_factor != 1.0) {
    for (int64_t i = 1; i < restarts; ++i) {
      mean *= options_.backoff_factor;
      if (options_.max_backoff > 0.0 && mean >= options_.max_backoff) break;
    }
  }
  if (options_.max_backoff > 0.0 && mean > options_.max_backoff) {
    mean = options_.max_backoff;
  }
  return mean;
}

double RestartGovernor::BackoffDelay(int64_t restarts, Rng& rng) const {
  return rng.Exponential(BackoffMean(restarts));
}

// ---------------------------------------------------------------------

AdmissionController::AdmissionController(AdmissionOptions options,
                                         int64_t max_mpl)
    : options_(options), max_mpl_(max_mpl), target_(max_mpl) {}

bool AdmissionController::Evaluate(double blocked_fraction) {
  const int64_t before = target_;
  if (blocked_fraction > options_.high_water) {
    const auto contracted = static_cast<int64_t>(std::floor(
        static_cast<double>(target_) * options_.decrease_factor));
    target_ = std::max(options_.min_mpl, contracted);
    if (target_ < before) ++contractions_;
  } else if (blocked_fraction < options_.low_water) {
    target_ = std::min(max_mpl_, target_ + options_.increase_step);
  }
  return target_ != before;
}

Status ValidateContentionOptions(const RestartGovernorOptions& governor,
                                 const AdmissionOptions& admission) {
  if (governor.backoff_factor < 1.0) {
    return Status::InvalidArgument("backoff_factor must be >= 1");
  }
  if (governor.max_backoff < 0.0) {
    return Status::InvalidArgument("max_backoff must be >= 0 (0 = uncapped)");
  }
  if (admission.high_water <= 0.0 || admission.high_water > 1.0 ||
      admission.low_water < 0.0 ||
      admission.low_water >= admission.high_water) {
    return Status::InvalidArgument(
        "admission waters must satisfy 0 <= low < high <= 1");
  }
  if (admission.interval <= 0.0) {
    return Status::InvalidArgument("admission interval must be positive");
  }
  if (admission.decrease_factor <= 0.0 || admission.decrease_factor >= 1.0) {
    return Status::InvalidArgument(
        "admission decrease_factor must be in (0, 1)");
  }
  if (admission.increase_step < 1) {
    return Status::InvalidArgument("admission increase_step must be >= 1");
  }
  if (admission.min_mpl < 1) {
    return Status::InvalidArgument("admission min_mpl must be >= 1");
  }
  return Status::OK();
}

void MaybeInjectVictimFlip(uint64_t key, std::vector<TxnId>* victims) {
  if (victims->empty()) return;
  auto& injector = fault::Injector::Global();
  if (!injector.armed()) return;  // inert fast path
  if (injector.ShouldFire(fault::InjectionPoint::kPolicyVictimFlip, key)) {
    // Txn id 0 is never assigned (the engine numbers from 1), so the
    // flipped decision fails the engine's victim lookup and the error is
    // contained by RunCell.
    (*victims)[0] = 0;
  }
}

}  // namespace granulock::db
