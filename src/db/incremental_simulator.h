#ifndef GRANULOCK_DB_INCREMENTAL_SIMULATOR_H_
#define GRANULOCK_DB_INCREMENTAL_SIMULATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/metrics.h"
#include "db/contention_policy.h"
#include "lockmgr/wait_queue_table.h"
#include "lockmgr/waits_for.h"
#include "model/config.h"
#include "obs/hooks.h"
#include "sim/busy_union.h"
#include "sim/priority_server.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "util/random.h"
#include "util/status.h"
#include "workload/workload.h"

namespace granulock::db {

/// The closed shared-nothing system under **incremental (claim-as-needed)
/// two-phase locking** — the alternative the paper explicitly chose NOT to
/// model, citing Ries & Stonebraker's finding that it "did not affect the
/// conclusions of the study" (§2, footnote 1). This engine exists to
/// re-verify that claim within this reproduction
/// (`bench_ablation_claim_policy`).
///
/// Protocol differences from the conservative engines:
///  * a transaction acquires its locks one at a time, interleaved with
///    processing: lock granule k (paying one lock's cost), then process
///    its `NU/LU` entities (fork–join across the transaction's nodes),
///    then lock granule k+1, ...;
///  * a conflicting request joins a per-granule FIFO wait queue while the
///    transaction KEEPS its earlier locks — so deadlock is possible;
///  * contention resolution is pluggable (`Options::contention`): the
///    default policy searches for a waits-for cycle on every wait and
///    aborts the *requester* — bit-identical to the engine's historical
///    hard-coded behavior — while the alternatives pick other victims or
///    avoid the cycle search entirely (wound-wait, wait-die, wait-depth;
///    see db/contention_policy.h). A victim releases its locks and
///    restarts from its first granule (same parameters), paying all
///    costs again, unless the restart governor sacrifices it. Aborts are
///    reported in `SimulationMetrics::deadlock_aborts`, split into
///    `txn_restarts` + `txn_sacrificed`.
///
/// Granule acquisition order is a random shuffle of the transaction's
/// granule set — sorted acquisition would make deadlock impossible and
/// silently turn this into ordered locking.
class IncrementalSimulator {
 public:
  struct Options {
    /// Probability that a transaction is read-only and takes S locks.
    double read_fraction = 0.0;
    /// Mean of the exponential backoff a deadlock victim sleeps before
    /// restarting. Without it, high-contention random-access workloads
    /// livelock (victims restart instantly, re-form the same cycle and
    /// abort again). Must be > 0.
    double restart_delay = 10.0;
    /// Contention resolution: victim policy, restart governor, admission
    /// controller. The defaults (detect-requester policy, factor-1
    /// uncapped governor, admission disabled) are bit-identical to the
    /// engine's historical hard-coded behavior.
    ContentionOptions contention;
    /// Optional lifecycle tracer (not owned; must outlive the run).
    /// Incremental runs additionally record `aborted` events for deadlock
    /// victims.
    sim::TraceRecorder* trace = nullptr;
    /// Optional observability sinks (not owned; must outlive the run).
    /// Attaching any of them never changes simulated results. Under this
    /// engine `phase_lock_wait` covers lock-cost service, wait-queue
    /// time, and deadlock abort/backoff; `phase_pending_wait` is 0 (no
    /// pending queue).
    obs::Hooks obs;
  };

  IncrementalSimulator(model::SystemConfig cfg, workload::WorkloadSpec spec,
                       uint64_t seed, Options options);
  IncrementalSimulator(model::SystemConfig cfg, workload::WorkloadSpec spec,
                       uint64_t seed);
  ~IncrementalSimulator();

  IncrementalSimulator(const IncrementalSimulator&) = delete;
  IncrementalSimulator& operator=(const IncrementalSimulator&) = delete;

  /// Validates, runs to `cfg.tmax`, returns the metrics. Call once.
  Result<core::SimulationMetrics> Run();

  static Result<core::SimulationMetrics> RunOnce(
      const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
      uint64_t seed, Options options);
  static Result<core::SimulationMetrics> RunOnce(
      const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
      uint64_t seed);

 private:
  friend struct AuditTestPeer;  // invariants_test corrupts state through it

  struct Txn;
  class PolicyDirectory;

  /// Deep audit (runs at quiescent points when
  /// `sim::invariants::DeepAuditEnabled()`): every live transaction is
  /// running, waiting, backing off after an abort, or parked by the
  /// admission controller; the wait count matches the lock table; the
  /// table's own invariants hold; no doomed transaction is queued; and
  /// the waits-for graph rebuilt from the table is acyclic (every cycle
  /// is broken by a victim abort the moment its closing edge appears —
  /// by construction under the timestamp/wait-depth policies).
  void CheckConsistency() const;

  void StartTransaction(Txn* txn);
  void RequestNextLock(Txn* txn);
  void PayLockCost(Txn* txn, std::function<void()> then);
  void OnLockCostPaid(Txn* txn);
  void OnLockGranted(Txn* txn);
  void DoStageWork(Txn* txn);
  void OnStageDone(Txn* txn);
  void Complete(Txn* txn);
  /// Runs the contention policy after `txn` queued on `granule`: aborts
  /// waiting victims, dooms running ones, re-asks while the requester
  /// stays queued, and records the profiler wait when it does.
  void ResolveConflict(Txn* txn, int64_t granule);
  /// Aborts `txn` (a queued waiter when `waiting`, else a doomed running
  /// transaction at a safe point): releases its locks, then either
  /// schedules a governed backoff restart or sacrifices it.
  void AbortTxn(Txn* txn, bool waiting);
  /// Terminal abort: the transaction is destroyed and replaced by a
  /// fresh one so the closed system stays closed.
  void SacrificeTxn(Txn* txn);
  void HandleGrants(const std::vector<lockmgr::TxnId>& granted);
  /// Starts `txn` immediately, or parks it in the admission queue when
  /// the controller is enabled (FIFO drain via ReleaseAdmitted).
  void AdmitOrHold(Txn* txn);
  void ReleaseAdmitted();
  /// Transactions occupying an MPL slot: running + waiting + in backoff.
  int64_t AdmittedCount() const;
  /// Periodic admission-controller evaluation (a regular event — it
  /// changes admission decisions by design; never scheduled when the
  /// controller is disabled).
  void AdmissionTick();

  Txn* CreateTransaction(double arrival_time);
  void DestroyTransaction(Txn* txn);
  void UpdateQueueStats();
  void BeginMeasurement();
  void SetUpObservability();
  void SampleTick();
  /// One periodic contention-profiler sample (observer event; only
  /// scheduled when options_.obs.contention is set).
  void ContentionTick();
  void PublishRunProfile(double wall_seconds);

  model::SystemConfig cfg_;
  workload::WorkloadSpec spec_;
  Options options_;
  /// Built in `Run()` (needs a validated spec); amortizes lock-demand and
  /// node-set work across every transaction the run creates.
  std::optional<workload::TransactionFactory> txn_factory_;
  Rng rng_;

  sim::Simulator sim_;
  std::vector<std::unique_ptr<sim::PriorityServer>> cpu_;
  std::vector<std::unique_ptr<sim::PriorityServer>> io_;
  sim::BusyUnionTracker cpu_union_;
  sim::BusyUnionTracker io_union_;

  std::unique_ptr<lockmgr::WaitQueueLockTable> table_;
  lockmgr::WaitsForGraph waits_for_;
  std::unordered_map<lockmgr::TxnId, Txn*> txn_by_id_;
  std::vector<std::unique_ptr<Txn>> live_txns_;
  std::vector<std::unique_ptr<Txn>> txn_pool_;  // recycled Txn objects
  int64_t waiting_count_ = 0;
  int64_t running_count_ = 0;
  /// Deadlock victims sleeping out their restart backoff (they hold no
  /// locks and sit in no queue — only this counter accounts for them).
  int64_t in_backoff_ = 0;

  // Contention resolution (built in Run(); see db/contention_policy.h).
  std::unique_ptr<ContentionPolicy> policy_;
  std::optional<RestartGovernor> governor_;
  std::optional<AdmissionController> admission_;
  /// Created-but-not-yet-started transactions parked by the admission
  /// controller, FIFO. They hold no locks and occupy no MPL slot.
  std::deque<Txn*> admission_queue_;
  int64_t admission_held_ = 0;
  sim::TimeWeightedStat admission_stat_;

  int64_t totcom_ = 0;
  int64_t lock_requests_ = 0;
  int64_t lock_waits_ = 0;
  int64_t deadlock_aborts_ = 0;
  int64_t txn_restarts_ = 0;
  int64_t txn_sacrificed_ = 0;
  sim::RunningStat response_;
  sim::QuantileEstimator response_quantiles_;
  sim::TimeWeightedStat active_stat_;
  sim::TimeWeightedStat blocked_stat_;
  double window_start_ = 0.0;

  // Response-time decomposition (always on; see SimulationMetrics).
  sim::RunningStat phase_pending_;  // admission-queue wait (0 when disabled)
  sim::RunningStat phase_lock_;
  sim::RunningStat phase_io_;
  sim::RunningStat phase_cpu_;
  sim::RunningStat phase_sync_;

  // Cached registry instruments (null unless options_.obs.registry set).
  obs::Counter* ctr_txn_created_ = nullptr;
  obs::Counter* ctr_lock_requests_ = nullptr;
  obs::Counter* ctr_lock_denials_ = nullptr;
  obs::Counter* ctr_lock_grants_ = nullptr;
  obs::Counter* ctr_subtxns_done_ = nullptr;
  obs::Counter* ctr_txn_completed_ = nullptr;
  obs::Counter* ctr_deadlock_aborts_ = nullptr;
  obs::Histogram* hist_response_ = nullptr;

  // Sampler baselines for per-interval deltas.
  std::vector<double> sample_cpu_busy_;
  std::vector<double> sample_io_busy_;
  int64_t sample_totcom_ = 0;
  double sample_time_ = 0.0;

  uint64_t next_txn_id_ = 1;
  /// The run's seed, kept as the policy_victim_flip fault-injection key.
  uint64_t seed_ = 0;
  bool ran_ = false;
};

}  // namespace granulock::db

#endif  // GRANULOCK_DB_INCREMENTAL_SIMULATOR_H_
