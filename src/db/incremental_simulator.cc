#include "db/incremental_simulator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "db/granule_selector.h"
#include "sim/invariants.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/wall_clock.h"

namespace granulock::db {

using lockmgr::LockMode;
using lockmgr::WaitQueueLockTable;
using sim::ServiceClass;

/// One live transaction under claim-as-needed locking. The granule list is
/// acquired in (shuffled) order; `next_lock` indexes the stage being
/// worked on.
struct IncrementalSimulator::Txn {
  lockmgr::TxnId id = 0;
  workload::TransactionParams params;
  double arrival_time = 0.0;
  LockMode mode = LockMode::kX;
  std::vector<int64_t> granules;  // acquisition order (shuffled)
  size_t next_lock = 0;
  int64_t substages_remaining = 0;
  // Fan-in for the current lock-cost phase (I/O, then CPU); the phases
  // never overlap for one transaction, so one field serves both.
  int64_t lock_fanin_remaining = 0;
  int64_t restarts = 0;
  /// Wounded by a contention policy while running: aborts at its next
  /// safe point (lock cost paid / stage join) instead of proceeding.
  bool doomed = false;
  /// Time spent parked in the admission queue before starting (0 when
  /// admission control is disabled).
  double admitted_wait = 0.0;

  // Phase accounting (always on). There is no pending queue, so
  // `phase_lock_wait` absorbs everything between stages: lock-cost
  // service, wait-queue time, and deadlock abort/backoff. Each stage's
  // fork-join io/cpu/sync sub-spans tile [stage grant, stage end], and
  // re-run stages after an abort occupy fresh wall-clock, so the per-txn
  // identity lock + io/pu + cpu/pu + sync/pu = response still holds.
  double lock_since = 0.0;   // entered lock acquisition (current stint)
  double stage_start = 0.0;  // current stage's lock granted, work began
  double lock_wait = 0.0;
  double io_span_sum = 0.0;
  double cpu_span_sum = 0.0;
  double sync_span_sum = 0.0;
  double stage_cpu_done_sum = 0.0;  // current stage only
  // (node, cpu-done) of the current stage; spans-attached runs only.
  std::vector<std::pair<int32_t, double>> sub_cpu_done;

  /// Returns the transaction to its freshly-constructed state while
  /// keeping the vectors' capacity — pooled reuse must behave exactly
  /// like a new `Txn` minus the allocations.
  void Reset() {
    id = 0;
    arrival_time = 0.0;
    mode = LockMode::kX;
    granules.clear();
    next_lock = 0;
    substages_remaining = 0;
    lock_fanin_remaining = 0;
    restarts = 0;
    doomed = false;
    admitted_wait = 0.0;
    lock_since = 0.0;
    stage_start = 0.0;
    lock_wait = 0.0;
    io_span_sum = 0.0;
    cpu_span_sum = 0.0;
    sync_span_sum = 0.0;
    stage_cpu_done_sum = 0.0;
    sub_cpu_done.clear();
  }
};

IncrementalSimulator::IncrementalSimulator(model::SystemConfig cfg,
                                           workload::WorkloadSpec spec,
                                           uint64_t seed, Options options)
    : cfg_(std::move(cfg)),
      spec_(std::move(spec)),
      options_(options),
      rng_(seed),
      seed_(seed) {}

IncrementalSimulator::IncrementalSimulator(model::SystemConfig cfg,
                                           workload::WorkloadSpec spec,
                                           uint64_t seed)
    : IncrementalSimulator(std::move(cfg), std::move(spec), seed, Options{}) {}

IncrementalSimulator::~IncrementalSimulator() = default;

/// The read-only per-transaction view handed to contention policies.
class IncrementalSimulator::PolicyDirectory final : public TxnDirectory {
 public:
  explicit PolicyDirectory(const IncrementalSimulator* self) : self_(self) {}
  int64_t RestartsOf(lockmgr::TxnId txn) const override {
    auto it = self_->txn_by_id_.find(txn);
    return it == self_->txn_by_id_.end() ? 0 : it->second->restarts;
  }
  bool IsDoomed(lockmgr::TxnId txn) const override {
    auto it = self_->txn_by_id_.find(txn);
    return it != self_->txn_by_id_.end() && it->second->doomed;
  }

 private:
  const IncrementalSimulator* self_;
};

Result<core::SimulationMetrics> IncrementalSimulator::RunOnce(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    uint64_t seed, Options options) {
  IncrementalSimulator simulator(cfg, spec, seed, options);
  return simulator.Run();
}

Result<core::SimulationMetrics> IncrementalSimulator::RunOnce(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    uint64_t seed) {
  return RunOnce(cfg, spec, seed, Options{});
}

Result<core::SimulationMetrics> IncrementalSimulator::Run() {
  if (ran_) {
    return Status::FailedPrecondition("Run() may only be called once");
  }
  ran_ = true;
  const WallTimer wall_timer;
  GRANULOCK_RETURN_NOT_OK(cfg_.Validate());
  GRANULOCK_RETURN_NOT_OK(spec_.Validate(cfg_));
  txn_factory_.emplace(cfg_, spec_);
  if (options_.read_fraction < 0.0 || options_.read_fraction > 1.0) {
    return Status::InvalidArgument("read_fraction must be in [0, 1]");
  }
  if (options_.restart_delay <= 0.0) {
    return Status::InvalidArgument("restart_delay must be positive");
  }
  GRANULOCK_RETURN_NOT_OK(ValidateContentionOptions(
      options_.contention.governor, options_.contention.admission));
  policy_ = MakeContentionPolicy(options_.contention.policy);
  governor_.emplace(options_.restart_delay, options_.contention.governor);

  table_ = std::make_unique<WaitQueueLockTable>(cfg_.ltot);
  cpu_.reserve(static_cast<size_t>(cfg_.npros));
  io_.reserve(static_cast<size_t>(cfg_.npros));
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    cpu_.push_back(std::make_unique<sim::PriorityServer>(
        &sim_, StrFormat("cpu%lld", (long long)n)));
    io_.push_back(std::make_unique<sim::PriorityServer>(
        &sim_, StrFormat("io%lld", (long long)n)));
    cpu_.back()->SetBusyUnion(&cpu_union_);
    io_.back()->SetBusyUnion(&io_union_);
  }

  SetUpObservability();

  active_stat_.Start(0.0, 0.0);
  blocked_stat_.Start(0.0, 0.0);
  window_start_ = cfg_.warmup;
  if (cfg_.warmup > 0.0) {
    sim_.ScheduleAt(cfg_.warmup, [this] { BeginMeasurement(); });
  }
  if (options_.contention.admission.enabled) {
    // A *regular* event chain: the controller changes which transactions
    // run and when, by design. With admission disabled no controller
    // exists and no event is ever scheduled, so the run is bit-identical
    // to one built before the controller did.
    admission_.emplace(options_.contention.admission, cfg_.ntrans);
    admission_stat_.Start(0.0, 0.0);
    const double iv = options_.contention.admission.interval;
    if (iv <= cfg_.tmax) {
      sim_.ScheduleAt(iv, [this] { AdmissionTick(); });
    }
  }

  for (int64_t i = 0; i < cfg_.ntrans; ++i) {
    sim_.ScheduleAt(static_cast<double>(i), [this] {
      AdmitOrHold(CreateTransaction(sim_.Now()));
    });
  }
  sim_.RunUntil(cfg_.tmax);

  core::SimulationMetrics m;
  m.measured_time = cfg_.tmax - window_start_;
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    m.totcpus_sum += cpu_[static_cast<size_t>(n)]->TotalBusyTime();
    m.totios_sum += io_[static_cast<size_t>(n)]->TotalBusyTime();
    m.lockcpus_sum +=
        cpu_[static_cast<size_t>(n)]->BusyTime(ServiceClass::kLock);
    m.lockios_sum +=
        io_[static_cast<size_t>(n)]->BusyTime(ServiceClass::kLock);
  }
  m.totcpus = cpu_union_.AnyBusyTime(cfg_.tmax);
  m.lockcpus = cpu_union_.LockBusyTime(cfg_.tmax);
  m.totios = io_union_.AnyBusyTime(cfg_.tmax);
  m.lockios = io_union_.LockBusyTime(cfg_.tmax);
  const double npros = static_cast<double>(cfg_.npros);
  m.usefulcpus = (m.totcpus - m.lockcpus) / npros;
  m.usefulios = (m.totios - m.lockios) / npros;
  m.totcom = totcom_;
  m.throughput =
      m.measured_time > 0.0 ? static_cast<double>(totcom_) / m.measured_time
                            : 0.0;
  m.response_time = response_.Mean();
  m.response_time_stddev = response_.StdDev();
  m.response_p50 = response_quantiles_.Quantile(0.50);
  m.response_p95 = response_quantiles_.Quantile(0.95);
  m.response_p99 = response_quantiles_.Quantile(0.99);
  m.lock_requests = lock_requests_;
  m.lock_denials = lock_waits_;
  m.denial_rate = lock_requests_ > 0 ? static_cast<double>(lock_waits_) /
                                           static_cast<double>(lock_requests_)
                                     : 0.0;
  m.avg_active = active_stat_.Average(cfg_.tmax);
  m.avg_blocked = blocked_stat_.Average(cfg_.tmax);
  // Admission parking is the claim-as-needed analogue of the conservative
  // engines' pending queue; without the controller there is none.
  m.avg_pending = admission_ ? admission_stat_.Average(cfg_.tmax) : 0.0;
  m.cpu_utilization =
      m.measured_time > 0.0 ? m.totcpus_sum / (npros * m.measured_time)
                            : 0.0;
  m.io_utilization =
      m.measured_time > 0.0 ? m.totios_sum / (npros * m.measured_time) : 0.0;
  m.deadlock_aborts = deadlock_aborts_;
  m.txn_restarts = txn_restarts_;
  m.txn_sacrificed = txn_sacrificed_;
  m.avg_admission_held = admission_ ? admission_stat_.Average(cfg_.tmax) : 0.0;
  m.events_executed = sim_.ExecutedEvents();
  // Mean over completed txns; exactly 0.0 with admission disabled (every
  // Add is 0.0, and Welford keeps a mean of identical values exact).
  m.phase_pending_wait = phase_pending_.Mean();
  m.phase_lock_wait = phase_lock_.Mean();
  m.phase_io_service = phase_io_.Mean();
  m.phase_cpu_service = phase_cpu_.Mean();
  m.phase_sync_wait = phase_sync_.Mean();

  const double wall_seconds = wall_timer.Seconds();
  PublishRunProfile(wall_seconds);
  return m;
}

void IncrementalSimulator::SetUpObservability() {
  if (options_.obs.registry != nullptr) {
    auto* reg = options_.obs.registry;
    ctr_txn_created_ = reg->GetCounter("engine.txn_created");
    ctr_lock_requests_ = reg->GetCounter("engine.lock_requests");
    ctr_lock_denials_ = reg->GetCounter("engine.lock_denials");
    ctr_lock_grants_ = reg->GetCounter("engine.lock_grants");
    ctr_subtxns_done_ = reg->GetCounter("engine.subtxns_completed");
    ctr_txn_completed_ = reg->GetCounter("engine.txn_completed");
    ctr_deadlock_aborts_ = reg->GetCounter("engine.deadlock_aborts");
    hist_response_ = reg->GetHistogram(
        "engine.response_time",
        {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000});
  }
  if (options_.obs.sampler != nullptr) {
    auto* sampler = options_.obs.sampler;
    std::vector<std::string> cols = {"active", "blocked", "pending",
                                     "throughput"};
    for (int64_t n = 0; n < cfg_.npros; ++n) {
      cols.push_back(StrFormat("cpu%lld_util", (long long)n));
    }
    for (int64_t n = 0; n < cfg_.npros; ++n) {
      cols.push_back(StrFormat("disk%lld_util", (long long)n));
    }
    sampler->SetColumns(std::move(cols));
    sample_cpu_busy_.assign(static_cast<size_t>(cfg_.npros), 0.0);
    sample_io_busy_.assign(static_cast<size_t>(cfg_.npros), 0.0);
    const double iv = sampler->interval();
    if (iv > 0.0 && iv <= cfg_.tmax) {
      sim_.ScheduleObserverAt(iv, [this] { SampleTick(); });
    }
  }
  if (auto* prof = options_.obs.contention) {
    prof->BeginRun(cfg_.ltot, /*imputed=*/false);
    const double iv = prof->options().sample_interval;
    if (iv > 0.0 && iv <= cfg_.tmax) {
      sim_.ScheduleObserverAt(iv, [this] { ContentionTick(); });
    }
  }
}

void IncrementalSimulator::ContentionTick() {
  auto* prof = options_.obs.contention;
  const double now = sim_.Now();
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (const auto& [waiter, granule] : table_->WaitingRequests()) {
    for (lockmgr::TxnId holder : table_->Holders(granule)) {
      if (holder != waiter) edges.emplace_back(waiter, holder);
    }
  }
  const double ntrans = static_cast<double>(cfg_.ntrans);
  const double blocked_fraction =
      ntrans > 0.0 ? static_cast<double>(waiting_count_) / ntrans : 0.0;
  const double occupancy =
      cfg_.ltot > 0
          ? std::min(1.0, static_cast<double>(table_->LockedGranules()) /
                              static_cast<double>(cfg_.ltot))
          : 0.0;
  prof->OnSample(now, blocked_fraction, occupancy, std::move(edges),
                 deadlock_aborts_, txn_restarts_, txn_sacrificed_);
  const double iv = prof->options().sample_interval;
  if (now + iv <= cfg_.tmax) {
    sim_.ScheduleObserverAfter(iv, [this] { ContentionTick(); });
  }
}

void IncrementalSimulator::SampleTick() {
  auto* sampler = options_.obs.sampler;
  const double now = sim_.Now();
  const double dt = now - sample_time_;
  std::vector<double> row;
  row.reserve(4 + 2 * static_cast<size_t>(cfg_.npros));
  row.push_back(static_cast<double>(running_count_));
  row.push_back(static_cast<double>(waiting_count_));
  row.push_back(0.0);  // no pending queue
  // Deltas clamp at 0 across the warmup reset (see GranularitySimulator).
  row.push_back(dt > 0.0 ? std::max(0.0, static_cast<double>(
                                             totcom_ - sample_totcom_)) /
                               dt
                         : 0.0);
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    const size_t i = static_cast<size_t>(n);
    const double busy = cpu_[i]->TotalBusyTime();
    row.push_back(dt > 0.0
                      ? std::max(0.0, busy - sample_cpu_busy_[i]) / dt
                      : 0.0);
    sample_cpu_busy_[i] = busy;
  }
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    const size_t i = static_cast<size_t>(n);
    const double busy = io_[i]->TotalBusyTime();
    row.push_back(dt > 0.0 ? std::max(0.0, busy - sample_io_busy_[i]) / dt
                           : 0.0);
    sample_io_busy_[i] = busy;
  }
  sample_totcom_ = totcom_;
  sample_time_ = now;
  sampler->Push(now, std::move(row));
  const double iv = sampler->interval();
  if (now + iv <= cfg_.tmax) {
    sim_.ScheduleObserverAfter(iv, [this] { SampleTick(); });
  }
}

void IncrementalSimulator::PublishRunProfile(double wall_seconds) {
  if (options_.obs.registry == nullptr) return;
  auto* reg = options_.obs.registry;
  reg->GetGauge("sim.events_executed")
      ->Set(static_cast<double>(sim_.ExecutedEvents()));
  reg->GetGauge("sim.observer_events")
      ->Set(static_cast<double>(sim_.ExecutedObserverEvents()));
  reg->GetGauge("sim.event_queue_hwm")
      ->Set(static_cast<double>(sim_.MaxPendingEvents()));
  reg->GetGauge("engine.wall_seconds")->Set(wall_seconds);
  reg->GetGauge("engine.events_per_sec")
      ->Set(wall_seconds > 0.0
                ? static_cast<double>(sim_.ExecutedEvents()) / wall_seconds
                : 0.0);
}

void IncrementalSimulator::BeginMeasurement() {
  for (auto& server : cpu_) server->ResetStats();
  for (auto& server : io_) server->ResetStats();
  totcom_ = 0;
  lock_requests_ = 0;
  lock_waits_ = 0;
  deadlock_aborts_ = 0;
  txn_restarts_ = 0;
  txn_sacrificed_ = 0;
  response_.Reset();
  response_quantiles_.Reset();
  phase_pending_.Reset();
  phase_lock_.Reset();
  phase_io_.Reset();
  phase_cpu_.Reset();
  phase_sync_.Reset();
  sample_totcom_ = 0;
  std::fill(sample_cpu_busy_.begin(), sample_cpu_busy_.end(), 0.0);
  std::fill(sample_io_busy_.begin(), sample_io_busy_.end(), 0.0);
  const double now = sim_.Now();
  cpu_union_.ResetWindow(now);
  io_union_.ResetWindow(now);
  active_stat_.ResetWindow(now);
  blocked_stat_.ResetWindow(now);
  if (admission_) admission_stat_.ResetWindow(now);
  window_start_ = now;
}

IncrementalSimulator::Txn* IncrementalSimulator::CreateTransaction(
    double arrival_time) {
  std::unique_ptr<Txn> owned;
  if (!txn_pool_.empty()) {
    owned = std::move(txn_pool_.back());
    txn_pool_.pop_back();
  } else {
    owned = std::make_unique<Txn>();
  }
  Txn* txn = owned.get();
  txn->id = next_txn_id_++;
  txn_factory_->Generate(rng_, &txn->params);
  txn->arrival_time = arrival_time;
  txn->mode =
      rng_.Bernoulli(options_.read_fraction) ? LockMode::kS : LockMode::kX;
  txn->granules = SelectGranules(spec_.placement, cfg_.dbsize, cfg_.ltot,
                                 txn->params.nu, rng_);
  // Claim-as-needed acquires each lock when the data is first touched, so
  // the acquisition order follows the ACCESS order:
  //  * best placement models a sequential scan — scan order. The selected
  //    run may wrap past the last granule; rotate the sorted set so it
  //    starts after the wrap gap (wrapped ranges are the only way two
  //    scans can deadlock).
  //  * random/worst placement model random access — a random order, which
  //    is what makes hold-and-wait cycles (deadlocks) common there.
  if (spec_.placement == model::Placement::kBest) {
    for (size_t i = 0; i + 1 < txn->granules.size(); ++i) {
      if (txn->granules[i + 1] - txn->granules[i] > 1) {
        std::rotate(txn->granules.begin(), txn->granules.begin() + i + 1,
                    txn->granules.end());
        break;
      }
    }
  } else {
    rng_.Shuffle(txn->granules);
  }
  if (ctr_txn_created_ != nullptr) ctr_txn_created_->Increment();
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id, sim::TraceEventType::kCreated,
                           txn->params.nu);
  }
  txn_by_id_.emplace(txn->id, txn);
  live_txns_.push_back(std::move(owned));
  return txn;
}

void IncrementalSimulator::DestroyTransaction(Txn* txn) {
  txn_by_id_.erase(txn->id);
  auto it = std::find_if(
      live_txns_.begin(), live_txns_.end(),
      [txn](const std::unique_ptr<Txn>& p) { return p.get() == txn; });
  GRANULOCK_CHECK(it != live_txns_.end());
  // Recycle through the pool: restarts and completions otherwise churn
  // one short-lived Txn (two vectors deep) per event.
  (*it)->Reset();
  txn_pool_.push_back(std::move(*it));
  *it = std::move(live_txns_.back());
  live_txns_.pop_back();
}

void IncrementalSimulator::UpdateQueueStats() {
  const double now = sim_.Now();
  active_stat_.Update(now, static_cast<double>(running_count_));
  blocked_stat_.Update(now, static_cast<double>(waiting_count_));
}

void IncrementalSimulator::StartTransaction(Txn* txn) {
  txn->next_lock = 0;
  txn->lock_since = sim_.Now();
  ++running_count_;
  UpdateQueueStats();
  RequestNextLock(txn);
}

void IncrementalSimulator::RequestNextLock(Txn* txn) {
  GRANULOCK_CHECK_LT(txn->next_lock, txn->granules.size());
  ++lock_requests_;
  if (ctr_lock_requests_ != nullptr) ctr_lock_requests_->Increment();
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kLockRequested,
                           txn->granules[txn->next_lock]);
  }
  PayLockCost(txn, [this, txn] { OnLockCostPaid(txn); });
}

void IncrementalSimulator::PayLockCost(Txn* txn, std::function<void()> then) {
  // One lock's request/set/release cost, shared by all processors at
  // preemptive priority (same sharing rule as the conservative engines,
  // scaled to a single lock).
  const double npros = static_cast<double>(cfg_.npros);
  const double io_share = cfg_.liotime / npros;
  const double cpu_share = cfg_.lcputime / npros;
  auto after_io = [this, txn, cpu_share, then = std::move(then)]() mutable {
    if (cpu_share <= 0.0) {
      then();
      return;
    }
    txn->lock_fanin_remaining = cfg_.npros;
    auto shared_then = std::make_shared<std::function<void()>>(std::move(then));
    for (int64_t n = 0; n < cfg_.npros; ++n) {
      cpu_[static_cast<size_t>(n)]->Submit(
          ServiceClass::kLock, cpu_share, [txn, shared_then] {
            if (--txn->lock_fanin_remaining == 0) (*shared_then)();
          });
    }
  };
  if (io_share <= 0.0) {
    after_io();
    return;
  }
  txn->lock_fanin_remaining = cfg_.npros;
  auto shared_after =
      std::make_shared<std::function<void()>>(std::move(after_io));
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    io_[static_cast<size_t>(n)]->Submit(
        ServiceClass::kLock, io_share, [txn, shared_after] {
          if (--txn->lock_fanin_remaining == 0) (*shared_after)();
        });
  }
}

void IncrementalSimulator::OnLockCostPaid(Txn* txn) {
  if (txn->doomed) {
    // Wounded while paying the lock cost: abort here, before touching the
    // table again (a doomed transaction must never queue).
    AbortTxn(txn, /*waiting=*/false);
    if (sim::invariants::DeepAuditEnabled()) CheckConsistency();
    return;
  }
  const int64_t granule = txn->granules[txn->next_lock];
  const WaitQueueLockTable::AcquireResult result =
      table_->Acquire(txn->id, granule, txn->mode);
  if (result == WaitQueueLockTable::AcquireResult::kGranted) {
    if (options_.trace != nullptr) {
      options_.trace->Record(sim_.Now(), txn->id,
                             sim::TraceEventType::kLockGranted, granule);
    }
    if (auto* prof = options_.obs.contention) prof->OnGrant(granule);
    DoStageWork(txn);
    return;
  }
  // Queued: the transaction now waits while holding its earlier locks.
  ++lock_waits_;
  if (ctr_lock_denials_ != nullptr) ctr_lock_denials_->Increment();
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kLockDenied, granule);
  }
  --running_count_;
  ++waiting_count_;
  UpdateQueueStats();
  ResolveConflict(txn, granule);
  if (sim::invariants::DeepAuditEnabled()) CheckConsistency();
}

void IncrementalSimulator::ResolveConflict(Txn* txn, int64_t granule) {
  const ConflictRequest req{txn->id, granule, txn->mode};
  const PolicyDirectory dir(this);
  bool requester_gone = false;
  // Re-ask while the requester stays queued: aborting one victim can
  // expose a new conflict shape (e.g. the next holder in a cycle). Each
  // round either aborts/dooms at least one victim or stops, so the loop
  // terminates. Under the default detect policy the first round returns
  // either nothing (no cycle) or the requester — a single iteration,
  // bit-identical to the engine's historical hard-coded check.
  while (!requester_gone && table_->IsQueued(txn->id)) {
    ConflictDecision decision = policy_->OnBlock(req, *table_, dir);
    MaybeInjectVictimFlip(seed_, &decision.victims);
    if (decision.victims.empty()) break;
    bool progressed = false;
    for (lockmgr::TxnId victim_id : decision.victims) {
      auto it = txn_by_id_.find(victim_id);
      if (it == txn_by_id_.end()) {
        // Policies may only name live transactions (holders or waiters);
        // anything else is a policy bug — or an injected fault, which the
        // cell-retry harness must contain, so fail loudly rather than
        // corrupt state.
        throw std::runtime_error(StrFormat(
            "contention policy '%s' chose victim txn %llu which does not "
            "exist",
            ContentionPolicyName(policy_->kind()),
            (unsigned long long)victim_id));
      }
      Txn* victim = it->second;
      if (victim->doomed) continue;
      const bool is_requester = victim == txn;
      if (table_->IsQueued(victim->id)) {
        progressed = true;
        AbortTxn(victim, /*waiting=*/true);
        if (is_requester) {
          requester_gone = true;
          break;
        }
      } else if (!is_requester) {
        // A running holder cannot be yanked mid-service: doom it so it
        // aborts at its next safe point (lock cost paid / stage join).
        progressed = true;
        victim->doomed = true;
      }
      // is_requester && !queued: a victim abort above already unblocked
      // the requester mid-round; nothing left to do.
    }
    if (!progressed) break;
  }
  if (!requester_gone && table_->IsQueued(txn->id)) {
    if (auto* prof = options_.obs.contention) {
      // A genuine wait (not a victim abort): attribute it to the granule,
      // with the strongest mode held by the other holders (Supremum is
      // order-insensitive, so the unordered holder scan is safe) and the
      // length of the waits-for chain rebuilt from the table's queues
      // (holder sets shift as grants move, so stored edges would go
      // stale).
      waits_for_ = BuildWaitsForGraph(*table_);
      LockMode held = LockMode::kNL;
      for (lockmgr::TxnId holder : table_->Holders(granule)) {
        if (holder != txn->id) {
          held = Supremum(held, table_->HeldMode(holder, granule));
        }
      }
      prof->OnBlock(txn->id, granule, txn->mode, held,
                    waits_for_.ChainDepthFrom(txn->id), sim_.Now());
    }
  }
}

void IncrementalSimulator::CheckConsistency() const {
  GRANULOCK_AUDIT_CHECK_GE(running_count_, 0);
  GRANULOCK_AUDIT_CHECK_GE(waiting_count_, 0);
  GRANULOCK_AUDIT_CHECK_GE(in_backoff_, 0);
  GRANULOCK_AUDIT_CHECK_GE(admission_held_, 0);
  // Closed system: every live transaction is running, queued on a lock,
  // sleeping out a deadlock backoff, or parked by the admission
  // controller. Sacrificed transactions were replaced one-for-one, so
  // the identity survives terminal aborts.
  GRANULOCK_AUDIT_CHECK_EQ(
      live_txns_.size(),
      static_cast<size_t>(running_count_ + waiting_count_ + in_backoff_ +
                          admission_held_))
      << "live=" << live_txns_.size() << " running=" << running_count_
      << " waiting=" << waiting_count_ << " backoff=" << in_backoff_
      << " admission_held=" << admission_held_;
  GRANULOCK_AUDIT_CHECK_EQ(admission_queue_.size(),
                           static_cast<size_t>(admission_held_));
  GRANULOCK_AUDIT_CHECK_EQ(txn_by_id_.size(), live_txns_.size());
  GRANULOCK_AUDIT_CHECK_EQ(waiting_count_, table_->WaitingCount());
  table_->CheckConsistency();
  // A doomed transaction aborts at its next safe point and never queues;
  // a queued doomed transaction would deadlock against its own abort.
  for (const auto& [waiter, granule] : table_->WaitingRequests()) {
    auto it = txn_by_id_.find(waiter);
    GRANULOCK_AUDIT_CHECK(it != txn_by_id_.end())
        << "queued txn " << waiter << " is not live";
    GRANULOCK_AUDIT_CHECK(it == txn_by_id_.end() || !it->second->doomed)
        << "doomed txn " << waiter << " is queued on granule " << granule;
  }
  // Acyclicity: every cycle is detected and broken (victim abort) at the
  // instant its closing edge would appear, so between events the
  // waits-for graph rebuilt from the table has no cycle.
  lockmgr::WaitsForGraph graph;
  const auto waiting = table_->WaitingRequests();
  for (const auto& [waiter, granule] : waiting) {
    for (lockmgr::TxnId holder : table_->Holders(granule)) {
      graph.AddWait(waiter, holder);
    }
  }
  for (const auto& [waiter, granule] : waiting) {
    GRANULOCK_AUDIT_CHECK(graph.FindCycleFrom(waiter).empty())
        << "undetected deadlock cycle through txn " << waiter
        << " waiting on granule " << granule;
  }
}

void IncrementalSimulator::AbortTxn(Txn* txn, bool waiting) {
  ++deadlock_aborts_;
  ++txn->restarts;
  if (ctr_deadlock_aborts_ != nullptr) ctr_deadlock_aborts_->Increment();
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kAborted, txn->restarts);
  }
  if (waiting) {
    --waiting_count_;
  } else {
    --running_count_;  // doomed victim aborting at a safe point
  }
  const bool sacrifice = governor_->ShouldSacrifice(txn->restarts);
  if (!sacrifice) ++in_backoff_;
  if (auto* prof = options_.obs.contention) {
    // Close any open wait (no-op for the usual instant-abort victim, whose
    // wait was never recorded as a genuine block).
    prof->OnUnblock(txn->id, sim_.Now());
  }
  txn->doomed = false;
  const std::vector<lockmgr::TxnId> granted = table_->Abort(txn->id);
  UpdateQueueStats();
  HandleGrants(granted);
  if (sacrifice) {
    SacrificeTxn(txn);
    return;
  }
  ++txn_restarts_;
  // Restart from the first granule with the same parameters (all lock
  // costs are paid again) after a randomized backoff — restarting
  // immediately would re-form the same cycle under heavy contention and
  // livelock the system. The governor grows the mean with each restart
  // of the same transaction (and caps it) when configured; the factor-1
  // default collapses to the historical fixed-mean draw.
  sim_.ScheduleAfter(governor_->BackoffDelay(txn->restarts, rng_),
                     [this, txn] {
                       --in_backoff_;
                       ++running_count_;
                       txn->next_lock = 0;
                       UpdateQueueStats();
                       RequestNextLock(txn);
                       if (sim::invariants::DeepAuditEnabled()) {
                         CheckConsistency();
                       }
                     });
}

void IncrementalSimulator::SacrificeTxn(Txn* txn) {
  // Terminal abort: the restart budget is spent. Replace the victim with
  // a fresh transaction (same create-then-destroy order as Complete) so
  // the closed system stays closed.
  ++txn_sacrificed_;
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kCompleted,
                           /*detail=*/-1);  // -1 marks a sacrifice
  }
  Txn* fresh = CreateTransaction(sim_.Now());
  DestroyTransaction(txn);
  AdmitOrHold(fresh);
}

void IncrementalSimulator::AdmitOrHold(Txn* txn) {
  if (!admission_) {
    StartTransaction(txn);
    return;
  }
  admission_queue_.push_back(txn);
  ++admission_held_;
  admission_stat_.Update(sim_.Now(), static_cast<double>(admission_held_));
  ReleaseAdmitted();
}

void IncrementalSimulator::ReleaseAdmitted() {
  if (!admission_) return;
  while (!admission_queue_.empty() &&
         AdmittedCount() < admission_->target()) {
    Txn* txn = admission_queue_.front();
    admission_queue_.pop_front();
    --admission_held_;
    admission_stat_.Update(sim_.Now(), static_cast<double>(admission_held_));
    txn->admitted_wait = sim_.Now() - txn->arrival_time;
    StartTransaction(txn);
  }
}

int64_t IncrementalSimulator::AdmittedCount() const {
  return running_count_ + waiting_count_ + in_backoff_;
}

void IncrementalSimulator::AdmissionTick() {
  // "Blocked" = contention-induced dead time: queued on a lock OR sleeping
  // out a restart backoff. Counting only lock waiters misses the dominant
  // thrashing mode of this engine, where deadlock victims spend the
  // collapse parked in backoff rather than in wait queues.
  const int64_t admitted = AdmittedCount();
  const double blocked_fraction =
      admitted > 0 ? static_cast<double>(waiting_count_ + in_backoff_) /
                         static_cast<double>(admitted)
                   : 0.0;
  admission_->Evaluate(blocked_fraction);
  // Raising the target admits parked work immediately; lowering it only
  // stops future admissions (running transactions are never preempted).
  ReleaseAdmitted();
  const double iv = options_.contention.admission.interval;
  if (sim_.Now() + iv <= cfg_.tmax) {
    sim_.ScheduleAfter(iv, [this] { AdmissionTick(); });
  }
  if (sim::invariants::DeepAuditEnabled()) CheckConsistency();
}

void IncrementalSimulator::HandleGrants(
    const std::vector<lockmgr::TxnId>& granted) {
  for (lockmgr::TxnId id : granted) {
    auto it = txn_by_id_.find(id);
    GRANULOCK_CHECK(it != txn_by_id_.end());
    Txn* waiter = it->second;
    --waiting_count_;
    ++running_count_;
    if (auto* prof = options_.obs.contention) {
      prof->OnUnblock(waiter->id, sim_.Now());
      prof->OnGrant(waiter->granules[waiter->next_lock]);
    }
    UpdateQueueStats();
    DoStageWork(waiter);
  }
}

void IncrementalSimulator::DoStageWork(Txn* txn) {
  // Process this granule's share of the transaction's entities: the
  // entities are spread over the transaction's nodes (horizontal
  // partitioning spreads every granule across all disks), so each stage
  // fork-joins across the same node set.
  const double now = sim_.Now();
  txn->lock_wait += now - txn->lock_since;
  txn->stage_start = now;
  txn->stage_cpu_done_sum = 0.0;
  if (options_.obs.spans != nullptr) {
    options_.obs.spans->Record(txn->id, obs::Phase::kLockWait,
                               obs::kLifecycleTrack, txn->lock_since, now);
  }
  if (ctr_lock_grants_ != nullptr) ctr_lock_grants_->Increment();
  const double stages = static_cast<double>(txn->granules.size());
  const double pu = static_cast<double>(txn->params.pu);
  const double io_share = txn->params.io_demand / (stages * pu);
  const double cpu_share = txn->params.cpu_demand / (stages * pu);
  txn->substages_remaining = txn->params.pu;
  for (int32_t node : txn->params.nodes) {
    auto* io_server = io_[static_cast<size_t>(node)].get();
    auto* cpu_server = cpu_[static_cast<size_t>(node)].get();
    io_server->Submit(
        ServiceClass::kTransaction, io_share,
        [this, txn, node, cpu_server, cpu_share] {
          const double io_done = sim_.Now();
          txn->io_span_sum += io_done - txn->stage_start;
          if (options_.obs.spans != nullptr) {
            options_.obs.spans->Record(txn->id, obs::Phase::kIoService,
                                       node, txn->stage_start, io_done);
          }
          cpu_server->Submit(ServiceClass::kTransaction, cpu_share,
                             [this, txn, node, io_done] {
                               const double cpu_done = sim_.Now();
                               txn->cpu_span_sum += cpu_done - io_done;
                               txn->stage_cpu_done_sum += cpu_done;
                               if (options_.obs.spans != nullptr) {
                                 options_.obs.spans->Record(
                                     txn->id, obs::Phase::kCpuService, node,
                                     io_done, cpu_done);
                                 txn->sub_cpu_done.emplace_back(node,
                                                                cpu_done);
                               }
                               OnStageDone(txn);
                             });
        });
  }
}

void IncrementalSimulator::OnStageDone(Txn* txn) {
  GRANULOCK_CHECK_GT(txn->substages_remaining, 0);
  if (ctr_subtxns_done_ != nullptr) ctr_subtxns_done_->Increment();
  if (--txn->substages_remaining > 0) return;
  // Stage fork-join complete: every sub-stage's remaining time until now
  // is synchronization wait (zero for the last one to finish).
  const double now = sim_.Now();
  const double pu = static_cast<double>(txn->params.pu);
  txn->sync_span_sum += pu * now - txn->stage_cpu_done_sum;
  if (options_.obs.spans != nullptr) {
    for (const auto& [node, cpu_done] : txn->sub_cpu_done) {
      options_.obs.spans->Record(txn->id, obs::Phase::kSyncWait, node,
                                 cpu_done, now);
    }
    txn->sub_cpu_done.clear();
  }
  if (txn->doomed) {
    // Wounded while processing this stage: abort at the join, after the
    // sync accounting above, instead of requesting the next lock.
    AbortTxn(txn, /*waiting=*/false);
    if (sim::invariants::DeepAuditEnabled()) CheckConsistency();
    return;
  }
  ++txn->next_lock;
  if (txn->next_lock < txn->granules.size()) {
    txn->lock_since = now;
    RequestNextLock(txn);
    return;
  }
  Complete(txn);
}

void IncrementalSimulator::Complete(Txn* txn) {
  const std::vector<lockmgr::TxnId> granted = table_->ReleaseAll(txn->id);
  --running_count_;
  ++totcom_;
  const double now = sim_.Now();
  const double response = now - txn->arrival_time;
  response_.Add(response);
  response_quantiles_.Add(response);
  const double pu = static_cast<double>(txn->params.pu);
  phase_pending_.Add(txn->admitted_wait);
  phase_lock_.Add(txn->lock_wait);
  phase_io_.Add(txn->io_span_sum / pu);
  phase_cpu_.Add(txn->cpu_span_sum / pu);
  phase_sync_.Add(txn->sync_span_sum / pu);
  if (ctr_txn_completed_ != nullptr) ctr_txn_completed_->Increment();
  if (hist_response_ != nullptr) hist_response_->Observe(response);
  if (options_.obs.spans != nullptr) {
    options_.obs.spans->TxnComplete(txn->id, txn->arrival_time, now,
                                    txn->params.pu);
  }
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kCompleted,
                           static_cast<int64_t>(txn->granules.size()));
  }
  UpdateQueueStats();
  HandleGrants(granted);
  // A completion frees an MPL slot; drain the admission queue into it
  // (no-op when the controller is disabled or nothing is parked).
  ReleaseAdmitted();
  if (cfg_.think_time > 0.0) {
    sim_.ScheduleAfter(rng_.Exponential(cfg_.think_time), [this] {
      AdmitOrHold(CreateTransaction(sim_.Now()));
    });
  } else {
    Txn* fresh = CreateTransaction(sim_.Now());
    DestroyTransaction(txn);
    AdmitOrHold(fresh);
    if (sim::invariants::DeepAuditEnabled()) CheckConsistency();
    return;
  }
  DestroyTransaction(txn);
  if (sim::invariants::DeepAuditEnabled()) CheckConsistency();
}

}  // namespace granulock::db
