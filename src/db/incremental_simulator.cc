#include "db/incremental_simulator.h"

#include <algorithm>

#include "db/granule_selector.h"
#include "util/logging.h"
#include "util/strings.h"

namespace granulock::db {

using lockmgr::LockMode;
using lockmgr::WaitQueueLockTable;
using sim::ServiceClass;

/// One live transaction under claim-as-needed locking. The granule list is
/// acquired in (shuffled) order; `next_lock` indexes the stage being
/// worked on.
struct IncrementalSimulator::Txn {
  lockmgr::TxnId id = 0;
  workload::TransactionParams params;
  double arrival_time = 0.0;
  LockMode mode = LockMode::kX;
  std::vector<int64_t> granules;  // acquisition order (shuffled)
  size_t next_lock = 0;
  int64_t substages_remaining = 0;
  int64_t restarts = 0;
};

IncrementalSimulator::IncrementalSimulator(model::SystemConfig cfg,
                                           workload::WorkloadSpec spec,
                                           uint64_t seed, Options options)
    : cfg_(std::move(cfg)),
      spec_(std::move(spec)),
      options_(options),
      rng_(seed) {}

IncrementalSimulator::IncrementalSimulator(model::SystemConfig cfg,
                                           workload::WorkloadSpec spec,
                                           uint64_t seed)
    : IncrementalSimulator(std::move(cfg), std::move(spec), seed, Options{}) {}

IncrementalSimulator::~IncrementalSimulator() = default;

Result<core::SimulationMetrics> IncrementalSimulator::RunOnce(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    uint64_t seed, Options options) {
  IncrementalSimulator simulator(cfg, spec, seed, options);
  return simulator.Run();
}

Result<core::SimulationMetrics> IncrementalSimulator::RunOnce(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    uint64_t seed) {
  return RunOnce(cfg, spec, seed, Options{});
}

Result<core::SimulationMetrics> IncrementalSimulator::Run() {
  if (ran_) {
    return Status::FailedPrecondition("Run() may only be called once");
  }
  ran_ = true;
  GRANULOCK_RETURN_NOT_OK(cfg_.Validate());
  GRANULOCK_RETURN_NOT_OK(spec_.Validate(cfg_));
  if (options_.read_fraction < 0.0 || options_.read_fraction > 1.0) {
    return Status::InvalidArgument("read_fraction must be in [0, 1]");
  }
  if (options_.restart_delay <= 0.0) {
    return Status::InvalidArgument("restart_delay must be positive");
  }

  table_ = std::make_unique<WaitQueueLockTable>(cfg_.ltot);
  cpu_.reserve(static_cast<size_t>(cfg_.npros));
  io_.reserve(static_cast<size_t>(cfg_.npros));
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    cpu_.push_back(std::make_unique<sim::PriorityServer>(
        &sim_, StrFormat("cpu%lld", (long long)n)));
    io_.push_back(std::make_unique<sim::PriorityServer>(
        &sim_, StrFormat("io%lld", (long long)n)));
    cpu_.back()->SetTransitionObserver(
        [this](double now, int delta_any, int delta_lock) {
          cpu_union_.Transition(now, delta_any, delta_lock);
        });
    io_.back()->SetTransitionObserver(
        [this](double now, int delta_any, int delta_lock) {
          io_union_.Transition(now, delta_any, delta_lock);
        });
  }

  active_stat_.Start(0.0, 0.0);
  blocked_stat_.Start(0.0, 0.0);
  window_start_ = cfg_.warmup;
  if (cfg_.warmup > 0.0) {
    sim_.ScheduleAt(cfg_.warmup, [this] { BeginMeasurement(); });
  }

  for (int64_t i = 0; i < cfg_.ntrans; ++i) {
    sim_.ScheduleAt(static_cast<double>(i), [this] {
      Txn* txn = CreateTransaction(sim_.Now());
      StartTransaction(txn);
    });
  }
  sim_.RunUntil(cfg_.tmax);

  core::SimulationMetrics m;
  m.measured_time = cfg_.tmax - window_start_;
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    m.totcpus_sum += cpu_[static_cast<size_t>(n)]->TotalBusyTime();
    m.totios_sum += io_[static_cast<size_t>(n)]->TotalBusyTime();
    m.lockcpus_sum +=
        cpu_[static_cast<size_t>(n)]->BusyTime(ServiceClass::kLock);
    m.lockios_sum +=
        io_[static_cast<size_t>(n)]->BusyTime(ServiceClass::kLock);
  }
  m.totcpus = cpu_union_.AnyBusyTime(cfg_.tmax);
  m.lockcpus = cpu_union_.LockBusyTime(cfg_.tmax);
  m.totios = io_union_.AnyBusyTime(cfg_.tmax);
  m.lockios = io_union_.LockBusyTime(cfg_.tmax);
  const double npros = static_cast<double>(cfg_.npros);
  m.usefulcpus = (m.totcpus - m.lockcpus) / npros;
  m.usefulios = (m.totios - m.lockios) / npros;
  m.totcom = totcom_;
  m.throughput =
      m.measured_time > 0.0 ? static_cast<double>(totcom_) / m.measured_time
                            : 0.0;
  m.response_time = response_.Mean();
  m.response_time_stddev = response_.StdDev();
  m.response_p50 = response_quantiles_.Quantile(0.50);
  m.response_p95 = response_quantiles_.Quantile(0.95);
  m.response_p99 = response_quantiles_.Quantile(0.99);
  m.lock_requests = lock_requests_;
  m.lock_denials = lock_waits_;
  m.denial_rate = lock_requests_ > 0 ? static_cast<double>(lock_waits_) /
                                           static_cast<double>(lock_requests_)
                                     : 0.0;
  m.avg_active = active_stat_.Average(cfg_.tmax);
  m.avg_blocked = blocked_stat_.Average(cfg_.tmax);
  m.avg_pending = 0.0;  // no pending queue under claim-as-needed
  m.cpu_utilization =
      m.measured_time > 0.0 ? m.totcpus_sum / (npros * m.measured_time)
                            : 0.0;
  m.io_utilization =
      m.measured_time > 0.0 ? m.totios_sum / (npros * m.measured_time) : 0.0;
  m.deadlock_aborts = deadlock_aborts_;
  m.events_executed = sim_.ExecutedEvents();
  return m;
}

void IncrementalSimulator::BeginMeasurement() {
  for (auto& server : cpu_) server->ResetStats();
  for (auto& server : io_) server->ResetStats();
  totcom_ = 0;
  lock_requests_ = 0;
  lock_waits_ = 0;
  deadlock_aborts_ = 0;
  response_.Reset();
  response_quantiles_.Reset();
  const double now = sim_.Now();
  cpu_union_.ResetWindow(now);
  io_union_.ResetWindow(now);
  active_stat_.ResetWindow(now);
  blocked_stat_.ResetWindow(now);
  window_start_ = now;
}

IncrementalSimulator::Txn* IncrementalSimulator::CreateTransaction(
    double arrival_time) {
  auto owned = std::make_unique<Txn>();
  Txn* txn = owned.get();
  txn->id = next_txn_id_++;
  txn->params = workload::GenerateTransaction(cfg_, spec_, rng_);
  txn->arrival_time = arrival_time;
  txn->mode =
      rng_.Bernoulli(options_.read_fraction) ? LockMode::kS : LockMode::kX;
  txn->granules = SelectGranules(spec_.placement, cfg_.dbsize, cfg_.ltot,
                                 txn->params.nu, rng_);
  // Claim-as-needed acquires each lock when the data is first touched, so
  // the acquisition order follows the ACCESS order:
  //  * best placement models a sequential scan — scan order. The selected
  //    run may wrap past the last granule; rotate the sorted set so it
  //    starts after the wrap gap (wrapped ranges are the only way two
  //    scans can deadlock).
  //  * random/worst placement model random access — a random order, which
  //    is what makes hold-and-wait cycles (deadlocks) common there.
  if (spec_.placement == model::Placement::kBest) {
    for (size_t i = 0; i + 1 < txn->granules.size(); ++i) {
      if (txn->granules[i + 1] - txn->granules[i] > 1) {
        std::rotate(txn->granules.begin(), txn->granules.begin() + i + 1,
                    txn->granules.end());
        break;
      }
    }
  } else {
    rng_.Shuffle(txn->granules);
  }
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id, sim::TraceEventType::kCreated,
                           txn->params.nu);
  }
  txn_by_id_.emplace(txn->id, txn);
  live_txns_.push_back(std::move(owned));
  return txn;
}

void IncrementalSimulator::DestroyTransaction(Txn* txn) {
  txn_by_id_.erase(txn->id);
  auto it = std::find_if(
      live_txns_.begin(), live_txns_.end(),
      [txn](const std::unique_ptr<Txn>& p) { return p.get() == txn; });
  GRANULOCK_CHECK(it != live_txns_.end());
  *it = std::move(live_txns_.back());
  live_txns_.pop_back();
}

void IncrementalSimulator::UpdateQueueStats() {
  const double now = sim_.Now();
  active_stat_.Update(now, static_cast<double>(running_count_));
  blocked_stat_.Update(now, static_cast<double>(waiting_count_));
}

void IncrementalSimulator::StartTransaction(Txn* txn) {
  txn->next_lock = 0;
  ++running_count_;
  UpdateQueueStats();
  RequestNextLock(txn);
}

void IncrementalSimulator::RequestNextLock(Txn* txn) {
  GRANULOCK_CHECK_LT(txn->next_lock, txn->granules.size());
  ++lock_requests_;
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kLockRequested,
                           txn->granules[txn->next_lock]);
  }
  PayLockCost(txn, [this, txn] { OnLockCostPaid(txn); });
}

void IncrementalSimulator::PayLockCost(Txn* txn, std::function<void()> then) {
  // One lock's request/set/release cost, shared by all processors at
  // preemptive priority (same sharing rule as the conservative engines,
  // scaled to a single lock).
  const double npros = static_cast<double>(cfg_.npros);
  const double io_share = cfg_.liotime / npros;
  const double cpu_share = cfg_.lcputime / npros;
  auto after_io = [this, txn, cpu_share, then = std::move(then)]() mutable {
    if (cpu_share <= 0.0) {
      then();
      return;
    }
    auto remaining = std::make_shared<int64_t>(cfg_.npros);
    auto shared_then = std::make_shared<std::function<void()>>(std::move(then));
    for (int64_t n = 0; n < cfg_.npros; ++n) {
      cpu_[static_cast<size_t>(n)]->Submit(
          ServiceClass::kLock, cpu_share, [remaining, shared_then] {
            if (--*remaining == 0) (*shared_then)();
          });
    }
    (void)txn;
  };
  if (io_share <= 0.0) {
    after_io();
    return;
  }
  auto remaining = std::make_shared<int64_t>(cfg_.npros);
  auto shared_after = std::make_shared<std::function<void()>>(std::move(after_io));
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    io_[static_cast<size_t>(n)]->Submit(
        ServiceClass::kLock, io_share, [remaining, shared_after] {
          if (--*remaining == 0) (*shared_after)();
        });
  }
}

void IncrementalSimulator::OnLockCostPaid(Txn* txn) {
  const int64_t granule = txn->granules[txn->next_lock];
  const WaitQueueLockTable::AcquireResult result =
      table_->Acquire(txn->id, granule, txn->mode);
  if (result == WaitQueueLockTable::AcquireResult::kGranted) {
    if (options_.trace != nullptr) {
      options_.trace->Record(sim_.Now(), txn->id,
                             sim::TraceEventType::kLockGranted, granule);
    }
    DoStageWork(txn);
    return;
  }
  // Queued: the transaction now waits while holding its earlier locks.
  ++lock_waits_;
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kLockDenied, granule);
  }
  --running_count_;
  ++waiting_count_;
  UpdateQueueStats();
  // Deadlock check: rebuild the waits-for graph from the table's queues
  // (holder sets shift as grants move, so stored edges would go stale).
  waits_for_ = lockmgr::WaitsForGraph();
  for (const auto& [waiter, waited_granule] : table_->WaitingRequests()) {
    for (lockmgr::TxnId holder : table_->Holders(waited_granule)) {
      waits_for_.AddWait(waiter, holder);
    }
  }
  if (!waits_for_.FindCycleFrom(txn->id).empty()) {
    AbortAndRestart(txn);
  }
}

void IncrementalSimulator::AbortAndRestart(Txn* txn) {
  ++deadlock_aborts_;
  ++txn->restarts;
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kAborted, txn->restarts);
  }
  --waiting_count_;
  const std::vector<lockmgr::TxnId> granted = table_->Abort(txn->id);
  UpdateQueueStats();
  HandleGrants(granted);
  // Restart from the first granule with the same parameters (all lock
  // costs are paid again) after a randomized backoff — restarting
  // immediately would re-form the same cycle under heavy contention and
  // livelock the system.
  sim_.ScheduleAfter(rng_.Exponential(options_.restart_delay), [this, txn] {
    ++running_count_;
    txn->next_lock = 0;
    UpdateQueueStats();
    RequestNextLock(txn);
  });
}

void IncrementalSimulator::HandleGrants(
    const std::vector<lockmgr::TxnId>& granted) {
  for (lockmgr::TxnId id : granted) {
    auto it = txn_by_id_.find(id);
    GRANULOCK_CHECK(it != txn_by_id_.end());
    Txn* waiter = it->second;
    --waiting_count_;
    ++running_count_;
    UpdateQueueStats();
    DoStageWork(waiter);
  }
}

void IncrementalSimulator::DoStageWork(Txn* txn) {
  // Process this granule's share of the transaction's entities: the
  // entities are spread over the transaction's nodes (horizontal
  // partitioning spreads every granule across all disks), so each stage
  // fork-joins across the same node set.
  const double stages = static_cast<double>(txn->granules.size());
  const double pu = static_cast<double>(txn->params.pu);
  const double io_share = txn->params.io_demand / (stages * pu);
  const double cpu_share = txn->params.cpu_demand / (stages * pu);
  txn->substages_remaining = txn->params.pu;
  for (int32_t node : txn->params.nodes) {
    auto* io_server = io_[static_cast<size_t>(node)].get();
    auto* cpu_server = cpu_[static_cast<size_t>(node)].get();
    io_server->Submit(ServiceClass::kTransaction, io_share,
                      [this, txn, cpu_server, cpu_share] {
                        cpu_server->Submit(
                            ServiceClass::kTransaction, cpu_share,
                            [this, txn] { OnStageDone(txn); });
                      });
  }
}

void IncrementalSimulator::OnStageDone(Txn* txn) {
  GRANULOCK_CHECK_GT(txn->substages_remaining, 0);
  if (--txn->substages_remaining > 0) return;
  ++txn->next_lock;
  if (txn->next_lock < txn->granules.size()) {
    RequestNextLock(txn);
    return;
  }
  Complete(txn);
}

void IncrementalSimulator::Complete(Txn* txn) {
  const std::vector<lockmgr::TxnId> granted = table_->ReleaseAll(txn->id);
  --running_count_;
  ++totcom_;
  response_.Add(sim_.Now() - txn->arrival_time);
  response_quantiles_.Add(sim_.Now() - txn->arrival_time);
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kCompleted,
                           static_cast<int64_t>(txn->granules.size()));
  }
  UpdateQueueStats();
  HandleGrants(granted);
  if (cfg_.think_time > 0.0) {
    sim_.ScheduleAfter(rng_.Exponential(cfg_.think_time), [this] {
      StartTransaction(CreateTransaction(sim_.Now()));
    });
  } else {
    Txn* fresh = CreateTransaction(sim_.Now());
    DestroyTransaction(txn);
    StartTransaction(fresh);
    return;
  }
  DestroyTransaction(txn);
}

}  // namespace granulock::db
