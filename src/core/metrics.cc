#include "core/metrics.h"

#include <cmath>

#include "util/strings.h"

namespace granulock::core {

namespace {

// Every SimulationMetrics member is an 8-byte scalar, so the struct size
// is exactly 8 bytes per field. If this assert fires you added a field to
// SimulationMetrics without adding it to GRANULOCK_METRICS_FIELDS — which
// would silently exclude it from replication aggregation.
constexpr size_t kMetricsFieldCount =
#define GRANULOCK_COUNT_FIELD(name, kind) +1
    GRANULOCK_METRICS_FIELDS(GRANULOCK_COUNT_FIELD);
#undef GRANULOCK_COUNT_FIELD
static_assert(sizeof(SimulationMetrics) == kMetricsFieldCount * 8,
              "SimulationMetrics has a field missing from "
              "GRANULOCK_METRICS_FIELDS (see metrics.h)");

inline void FinalizeField(double& v, double n, metrics_kind::kMeanDouble) {
  v /= n;
}
inline void FinalizeField(int64_t& v, double n, metrics_kind::kMeanInt64) {
  v = static_cast<int64_t>(static_cast<double>(v) / n);
}
inline void FinalizeField(uint64_t&, double, metrics_kind::kSumUint64) {}

}  // namespace

void SimulationMetrics::Accumulate(const SimulationMetrics& other) {
#define GRANULOCK_ACCUMULATE_FIELD(name, kind) name += other.name;
  GRANULOCK_METRICS_FIELDS(GRANULOCK_ACCUMULATE_FIELD)
#undef GRANULOCK_ACCUMULATE_FIELD
}

void SimulationMetrics::FinalizeMeans(int64_t replications) {
  const double n = static_cast<double>(replications);
#define GRANULOCK_FINALIZE_FIELD(name, kind) \
  FinalizeField(name, n, metrics_kind::kind{});
  GRANULOCK_METRICS_FIELDS(GRANULOCK_FINALIZE_FIELD)
#undef GRANULOCK_FINALIZE_FIELD
}

std::string SimulationMetrics::ToString() const {
  std::string out;
  out += StrFormat("throughput        %.6g txn/unit (totcom=%lld over %g)\n",
                   throughput, (long long)totcom, measured_time);
  out += StrFormat("response time     %.6g (stddev %.6g)\n", response_time,
                   response_time_stddev);
  out += StrFormat("response p50/p95/p99  %.6g / %.6g / %.6g\n",
                   response_p50, response_p95, response_p99);
  out += StrFormat("totcpus           %.6g   lockcpus %.6g   usefulcpus %.6g\n",
                   totcpus, lockcpus, usefulcpus);
  out += StrFormat("totios            %.6g   lockios  %.6g   usefulios  %.6g\n",
                   totios, lockios, usefulios);
  out += StrFormat("busy-time sums    cpu %.6g (lock %.6g)   io %.6g (lock %.6g)\n",
                   totcpus_sum, lockcpus_sum, totios_sum, lockios_sum);
  out += StrFormat("lock requests     %lld (denied %lld, rate %.3f)\n",
                   (long long)lock_requests, (long long)lock_denials,
                   denial_rate);
  out += StrFormat("avg active/blocked/pending  %.3f / %.3f / %.3f\n",
                   avg_active, avg_blocked, avg_pending);
  out += StrFormat("utilization       cpu %.3f  io %.3f\n", cpu_utilization,
                   io_utilization);
  if (deadlock_aborts > 0) {
    out += StrFormat("deadlock aborts   %lld (restarted %lld, sacrificed %lld)\n",
                     (long long)deadlock_aborts, (long long)txn_restarts,
                     (long long)txn_sacrificed);
  }
  if (avg_admission_held > 0.0) {
    out += StrFormat("admission held    %.3f (time-avg parked txns)\n",
                     avg_admission_held);
  }
  // Display-only: Welford accumulation can leave a phase mean at a tiny
  // negative (e.g. -2e-16) when its true value is 0; print it as 0 rather
  // than as "-0.0%". The stored fields stay untouched.
  const auto tidy = [](double p) {
    return std::abs(p) < 1e-9 ? 0.0 : p;
  };
  const double phases[] = {tidy(phase_pending_wait), tidy(phase_lock_wait),
                           tidy(phase_io_service), tidy(phase_cpu_service),
                           tidy(phase_sync_wait)};
  const char* names[] = {"pending wait", "lock wait", "io service",
                         "cpu service", "sync wait"};
  double phase_total = 0.0;
  for (double p : phases) phase_total += p;
  if (phase_total > 0.0) {
    out += "response decomposition:\n";
    const double denom = response_time > 0.0 ? response_time : 1.0;
    for (int i = 0; i < 5; ++i) {
      out += StrFormat("  %-14s %10.6g  (%5.1f%%)\n", names[i], phases[i],
                       100.0 * phases[i] / denom);
    }
    out += StrFormat("  %-14s %10.6g  (vs response %.6g)\n", "sum",
                     phase_total, response_time);
  }
  return out;
}

}  // namespace granulock::core
