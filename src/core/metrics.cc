#include "core/metrics.h"

#include "util/strings.h"

namespace granulock::core {

std::string SimulationMetrics::ToString() const {
  std::string out;
  out += StrFormat("throughput        %.6g txn/unit (totcom=%lld over %g)\n",
                   throughput, (long long)totcom, measured_time);
  out += StrFormat("response time     %.6g (stddev %.6g)\n", response_time,
                   response_time_stddev);
  out += StrFormat("response p50/p95/p99  %.6g / %.6g / %.6g\n",
                   response_p50, response_p95, response_p99);
  out += StrFormat("totcpus           %.6g   lockcpus %.6g   usefulcpus %.6g\n",
                   totcpus, lockcpus, usefulcpus);
  out += StrFormat("totios            %.6g   lockios  %.6g   usefulios  %.6g\n",
                   totios, lockios, usefulios);
  out += StrFormat("busy-time sums    cpu %.6g (lock %.6g)   io %.6g (lock %.6g)\n",
                   totcpus_sum, lockcpus_sum, totios_sum, lockios_sum);
  out += StrFormat("lock requests     %lld (denied %lld, rate %.3f)\n",
                   (long long)lock_requests, (long long)lock_denials,
                   denial_rate);
  out += StrFormat("avg active/blocked/pending  %.3f / %.3f / %.3f\n",
                   avg_active, avg_blocked, avg_pending);
  out += StrFormat("utilization       cpu %.3f  io %.3f\n", cpu_utilization,
                   io_utilization);
  if (deadlock_aborts > 0) {
    out += StrFormat("deadlock aborts   %lld\n", (long long)deadlock_aborts);
  }
  return out;
}

}  // namespace granulock::core
