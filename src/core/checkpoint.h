#ifndef GRANULOCK_CORE_CHECKPOINT_H_
#define GRANULOCK_CORE_CHECKPOINT_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "core/metrics.h"
#include "util/status.h"

namespace granulock::core {

/// Identifies one (series, sweep-point, replication) cell of an
/// experiment grid — the unit of checkpointing, retry, and fault
/// containment.
struct CellKey {
  int series = 0;
  int point = 0;
  int rep = 0;

  friend bool operator==(const CellKey&, const CellKey&) = default;
};

/// FNV-1a over a canonical description of a run's inputs (experiment id,
/// seed, replication count, grid, per-series configuration). Two runs with
/// the same fingerprint produce bit-identical cell metrics, so journaled
/// cells are safe to reuse across processes.
uint64_t FingerprintString(const std::string& canonical);

/// Renders a fingerprint as fixed-width lowercase hex.
std::string FingerprintToHex(uint64_t fingerprint);

/// An append-only JSONL checkpoint journal of completed cells.
///
/// Line 1 is a header carrying a format version and the run fingerprint;
/// every further line records one completed cell's full
/// `SimulationMetrics` (doubles serialized with round-trip precision, so a
/// resumed run merges to *bit-identical* aggregate metrics and
/// byte-identical JSON reports versus an uninterrupted run).
///
/// Crash safety: each `Append` is flushed and fsync'ed before returning,
/// and `Open(resume=true)` tolerates exactly one trailing partial line
/// (the record that was being written when the process died) — it is
/// discarded with a warning. A malformed line anywhere *else* means real
/// corruption and fails the open. A fingerprint mismatch fails the open:
/// resuming a journal written for different inputs would silently splice
/// wrong results into the grid.
///
/// Thread-safe: cells complete on ParallelRunner workers; appends are
/// serialized internally.
class CheckpointJournal {
 public:
  /// Opens `path` for the run identified by `fingerprint`.
  /// With `resume` false, any existing journal is discarded and a fresh
  /// header is written. With `resume` true, existing complete records are
  /// loaded (a missing file starts an empty journal) and subsequent
  /// appends extend the file.
  static Result<std::unique_ptr<CheckpointJournal>> Open(
      const std::string& path, uint64_t fingerprint, bool resume);

  ~CheckpointJournal();

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// True (filling `*out`) when `key` was already journaled.
  bool Lookup(const CellKey& key, SimulationMetrics* out) const;

  /// Appends one completed cell and makes it durable (fflush + fsync).
  /// Appending a key that is already present is an error (a cell ran
  /// twice — the skip logic is broken).
  Status Append(const CellKey& key, const SimulationMetrics& metrics);

  /// Cells loaded from disk at `Open` (resume runs).
  int64_t loaded_cells() const { return loaded_cells_; }

  /// Cells currently known (loaded + appended).
  size_t size() const;

  const std::string& path() const { return path_; }

  /// Serializes one record line (exposed for tests: the resume test
  /// byte-compares journals).
  static std::string EncodeRecord(const CellKey& key,
                                  const SimulationMetrics& metrics);

  /// Parses one record line. Used by `Open`; exposed for tests.
  static Status DecodeRecord(const std::string& line, CellKey* key,
                             SimulationMetrics* metrics);

 private:
  CheckpointJournal(std::string path, uint64_t fingerprint);

  Status LoadExisting();
  Status OpenForAppend(bool truncate);

  const std::string path_;
  const uint64_t fingerprint_;
  int64_t loaded_cells_ = 0;

  mutable std::mutex mu_;
  std::map<std::tuple<int, int, int>, SimulationMetrics> cells_;
  std::FILE* file_ = nullptr;
};

}  // namespace granulock::core

#endif  // GRANULOCK_CORE_CHECKPOINT_H_
