#ifndef GRANULOCK_CORE_CHECKPOINT_H_
#define GRANULOCK_CORE_CHECKPOINT_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "core/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace granulock::core {

/// Identifies one (series, sweep-point, replication) cell of an
/// experiment grid — the unit of checkpointing, retry, and fault
/// containment.
struct CellKey {
  int series = 0;
  int point = 0;
  int rep = 0;

  friend bool operator==(const CellKey&, const CellKey&) = default;
};

/// FNV-1a over a canonical description of a run's inputs (experiment id,
/// seed, replication count, grid, per-series configuration). Two runs with
/// the same fingerprint produce bit-identical cell metrics, so journaled
/// cells are safe to reuse across processes.
uint64_t FingerprintString(const std::string& canonical);

/// Renders a fingerprint as fixed-width lowercase hex.
std::string FingerprintToHex(uint64_t fingerprint);

/// An append-only JSONL checkpoint journal of completed cells.
///
/// Line 1 is a header carrying a format version and the run fingerprint;
/// every further line records one completed cell's full
/// `SimulationMetrics` (doubles serialized with round-trip precision, so a
/// resumed run merges to *bit-identical* aggregate metrics and
/// byte-identical JSON reports versus an uninterrupted run).
///
/// Crash safety: every `Append` is durable (flushed and fsync'ed) before
/// it returns, and `Open(resume=true)` tolerates exactly one trailing
/// partial line (the record that was being written when the process died)
/// — it is discarded with a warning. A malformed line anywhere *else*
/// means real corruption and fails the open. A fingerprint mismatch fails
/// the open: resuming a journal written for different inputs would
/// silently splice wrong results into the grid.
///
/// Thread-safe: cells complete on ParallelRunner workers; appends are
/// group-committed. Each `Append` enqueues its encoded record under the
/// mutex and then one caller at a time — the *flusher* — drops the mutex
/// and writes the whole pending batch with a single fwrite+fflush+fsync;
/// everyone whose record rode in that batch returns once it is durable.
/// No mutex is ever held across file I/O (the granulock-held-across-
/// blocking analyzer rule enforces exactly this shape), so appenders keep
/// enqueueing while a flush is on the disk, and N concurrent appends cost
/// as few as one fsync instead of N. Serial runs degenerate to batches of
/// one record in call order — the journal bytes are identical to the
/// historical one-record-per-fsync writer.
class CheckpointJournal {
 public:
  /// Opens `path` for the run identified by `fingerprint`.
  /// With `resume` false, any existing journal is discarded and a fresh
  /// header is written. With `resume` true, existing complete records are
  /// loaded (a missing file starts an empty journal) and subsequent
  /// appends extend the file.
  static Result<std::unique_ptr<CheckpointJournal>> Open(
      const std::string& path, uint64_t fingerprint, bool resume);

  ~CheckpointJournal();

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// True (filling `*out`) when `key` was already journaled.
  bool Lookup(const CellKey& key, SimulationMetrics* out) const
      GRANULOCK_EXCLUDES(mu_);

  /// Appends one completed cell and makes it durable (fflush + fsync,
  /// possibly batched with concurrent appends — see the class comment).
  /// Appending a key that is already present is an error (a cell ran
  /// twice — the skip logic is broken).
  Status Append(const CellKey& key, const SimulationMetrics& metrics)
      GRANULOCK_EXCLUDES(mu_);

  /// Cells loaded from disk at `Open` (resume runs).
  int64_t loaded_cells() const { return loaded_cells_; }

  /// Cells currently known (loaded + appended).
  size_t size() const GRANULOCK_EXCLUDES(mu_);

  const std::string& path() const { return path_; }

  /// Serializes one record line (exposed for tests: the resume test
  /// byte-compares journals).
  static std::string EncodeRecord(const CellKey& key,
                                  const SimulationMetrics& metrics);

  /// Parses one record line. Used by `Open`; exposed for tests.
  static Status DecodeRecord(const std::string& line, CellKey* key,
                             SimulationMetrics* metrics);

 private:
  CheckpointJournal(std::string path, uint64_t fingerprint);

  Status LoadExisting();
  Status OpenForAppend(bool truncate);

  /// Blocks until every record enqueued up to `target_seq` is durable (or
  /// a flush has failed), electing this thread as the flusher when no
  /// flush is in flight. The mutex is *dropped* around the batched
  /// fwrite+fflush+fsync.
  Status WaitDurable(uint64_t target_seq) GRANULOCK_EXCLUDES(mu_);

  const std::string path_;
  const uint64_t fingerprint_;
  int64_t loaded_cells_ = 0;

  mutable granulock::Mutex mu_;
  granulock::CondVar flush_cv_;
  std::map<std::tuple<int, int, int>, SimulationMetrics> cells_
      GRANULOCK_GUARDED_BY(mu_);
  /// Encoded records accepted but not yet handed to a flusher.
  std::string pending_ GRANULOCK_GUARDED_BY(mu_);
  /// Sequence number of the newest enqueued / newest durable record.
  uint64_t enqueued_seq_ GRANULOCK_GUARDED_BY(mu_) = 0;
  uint64_t durable_seq_ GRANULOCK_GUARDED_BY(mu_) = 0;
  /// True while some thread is writing a batch with mu_ dropped.
  bool flusher_active_ GRANULOCK_GUARDED_BY(mu_) = false;
  /// Sticky: once a batch fails to reach disk the journal is poisoned and
  /// every subsequent Append reports the failure.
  bool flush_failed_ GRANULOCK_GUARDED_BY(mu_) = false;
  std::string flush_error_ GRANULOCK_GUARDED_BY(mu_);
  /// Set during single-threaded Open and immutable afterwards (the
  /// *stream* is serialized by the flusher election, not by mu_).
  std::FILE* file_ = nullptr;
};

}  // namespace granulock::core

#endif  // GRANULOCK_CORE_CHECKPOINT_H_
