#include "core/experiment.h"

#include <algorithm>
#include <csignal>
#include <utility>

#include "sim/invariants.h"
#include "sim/stats.h"
#include "util/arena.h"
#include "util/logging.h"
#include "util/random.h"

namespace granulock::core {

namespace {

/// Per-worker scratch arena handed to each cell's engine and reset
/// wholesale between cells. After the first cell on a thread reaches its
/// high-water mark, every later cell's transaction scratch runs entirely
/// inside one reused block. Thread-local, so parallel replications never
/// share an arena; results are bit-identical either way.
util::Arena* CellArena(util::Arena* requested) {
  if (requested != nullptr) return requested;
  static thread_local util::Arena arena;
  arena.Reset();
  return &arena;
}

/// Derives the per-replication seeds exactly as the historical serial loop
/// did: stream `r` forked from one seeder over `base_seed`. Computing them
/// up front is what lets replications run on any worker in any order while
/// staying bit-identical to serial execution.
std::vector<uint64_t> DeriveReplicationSeeds(uint64_t base_seed,
                                             int replications) {
  Rng seeder(base_seed);
  std::vector<uint64_t> seeds;
  seeds.reserve(static_cast<size_t>(replications));
  for (int r = 0; r < replications; ++r) {
    seeds.push_back(seeder.Fork(static_cast<uint64_t>(r)).NextUint64());
  }
  return seeds;
}

/// Merges surviving replications in replication order: field sums via
/// `SimulationMetrics::Accumulate`, then per-field means and the Student-t
/// confidence half-widths on the two headline outputs. When every
/// replication survives, the arithmetic — and therefore the result — is
/// bit-identical to the historical merge.
class ReplicationMerger {
 public:
  void Add(const SimulationMetrics& s) {
    merged_.mean.Accumulate(s);
    throughput_stat_.Add(s.throughput);
    response_stat_.Add(s.response_time);
    ++survivors_;
  }

  int survivors() const { return survivors_; }

  ReplicatedMetrics Finalize() {
    merged_.replications = survivors_;
    merged_.mean.FinalizeMeans(static_cast<int64_t>(survivors_));
    merged_.throughput_hw95 = sim::ConfidenceHalfWidth(
        throughput_stat_.count(), throughput_stat_.StdDev(), 0.95);
    merged_.response_hw95 = sim::ConfidenceHalfWidth(
        response_stat_.count(), response_stat_.StdDev(), 0.95);
    return merged_;
  }

 private:
  ReplicatedMetrics merged_;
  sim::RunningStat throughput_stat_;
  sim::RunningStat response_stat_;
  int survivors_ = 0;
};

/// True when the attached sinks force the serial path: the trace recorder
/// and obs sinks are unsynchronized single-run inspection tools, and the
/// serial path preserves their historical interleaving.
bool RequiresSerialExecution(const GranularitySimulator::Options& options) {
  return options.trace != nullptr || options.obs.any();
}

bool IsCancelled(const CellOutcome& outcome) {
  return !outcome.result.ok() &&
         outcome.result.status().code() == StatusCode::kCancelled;
}

/// Folds one cell's outcome into the run report. Called post-join in grid
/// index order, so the report is deterministic for any thread count.
void AccountCell(const CellPolicy& policy, int point, int64_t ltot, int rep,
                 const CellOutcome& outcome) {
  RunReport* report = policy.report;
  if (report == nullptr) return;
  if (outcome.from_checkpoint) {
    ++report->cells_from_checkpoint;
    ++report->cells_completed;
    return;
  }
  if (!outcome.ran) return;  // fail-fast stopped before reaching this cell
  if (outcome.attempts > 1) report->cell_retries += outcome.attempts - 1;
  if (outcome.result.ok()) {
    ++report->cells_completed;
    return;
  }
  if (IsCancelled(outcome)) {
    report->interrupted = true;
    return;
  }
  if (outcome.timed_out) ++report->cells_timed_out;
  report->failures.push_back(CellFailure{policy.series, point, ltot, rep,
                                         outcome.attempts, outcome.timed_out,
                                         outcome.result.status()});
}

}  // namespace

CellOutcome RunCell(const CellPolicy& policy, const CellKey& key,
                    uint64_t seed, const CellBody& body) {
  CellOutcome out;
  if (policy.journal != nullptr) {
    SimulationMetrics cached;
    if (policy.journal->Lookup(key, &cached)) {
      out.result = cached;
      out.from_checkpoint = true;
      return out;
    }
  }
  const int max_attempts = 1 + std::max(0, policy.max_cell_retries);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (policy.interrupt != nullptr &&
        policy.interrupt->load(std::memory_order_relaxed)) {
      out.ran = true;
      out.result = Status::Cancelled("run interrupted before cell started");
      return out;
    }
    out.ran = true;
    ++out.attempts;
    out.timed_out = false;
    // The watchdog (and its wall deadline) is per attempt: a retry gets a
    // fresh budget.
    fault::CellWatchdog watchdog(policy.cell_timeout_s, policy.interrupt,
                                 seed);
    try {
      // Contain invariant failures on this thread: a deep-audit Fail()
      // inside the cell throws instead of aborting the whole run.
      sim::invariants::ScopedFailureThrow contain;
      fault::Injector& injector = fault::Injector::Global();
      if (injector.armed()) {
        if (injector.ShouldFire(fault::InjectionPoint::kCellThrow, seed)) {
          throw std::runtime_error("injected cell failure (cell_throw)");
        }
        if (injector.ShouldFire(fault::InjectionPoint::kCellAuditFail, seed)) {
          sim::invariants::Fail(__FILE__, __LINE__,
                                "injected invariant failure (cell_audit_fail)");
        }
      }
      out.result = body(watchdog.active() ? &watchdog : nullptr);
    } catch (const fault::CellInterrupted& e) {
      out.result = Status::Cancelled(e.what());
      return out;  // interrupts are never retried
    } catch (const fault::CellTimeout& e) {
      out.result = Status::DeadlineExceeded(e.what());
      out.timed_out = true;
    } catch (const sim::invariants::AuditFailure& e) {
      out.result =
          Status::Internal(std::string("invariant failure: ") + e.what());
    } catch (const std::exception& e) {
      out.result =
          Status::Internal(std::string("uncaught exception: ") + e.what());
    }
    if (out.result.ok()) {
      if (policy.journal != nullptr) {
        const Status appended = policy.journal->Append(key, *out.result);
        if (!appended.ok()) {
          out.result = appended;
          return out;
        }
      }
      if (fault::Injector::Global().ShouldFire(
              fault::InjectionPoint::kSignalMidSweep, seed)) {
        std::raise(SIGTERM);
      }
      return out;
    }
    // Failed attempt: loop retries with the same derived seed.
  }
  return out;
}

void PublishCellStats(const RunReport& report,
                      obs::MetricsRegistry* registry) {
  registry->GetCounter("cells/completed")->Increment(report.cells_completed);
  registry->GetCounter("cells/from_checkpoint")
      ->Increment(report.cells_from_checkpoint);
  registry->GetCounter("cells/retried")->Increment(report.cell_retries);
  registry->GetCounter("cells/failed")
      ->Increment(static_cast<int64_t>(report.failures.size()));
  registry->GetCounter("cells/timed_out")->Increment(report.cells_timed_out);
}

Result<ReplicatedMetrics> RunReplicated(const model::SystemConfig& cfg,
                                        const workload::WorkloadSpec& spec,
                                        uint64_t base_seed, int replications,
                                        GranularitySimulator::Options options,
                                        ParallelRunner* runner,
                                        const CellPolicy& policy) {
  if (replications < 1) {
    return Status::InvalidArgument("replications must be >= 1");
  }
  const size_t reps = static_cast<size_t>(replications);
  const std::vector<uint64_t> seeds =
      DeriveReplicationSeeds(base_seed, replications);
  std::vector<CellOutcome> outcomes(reps);
  auto run_cell = [&](size_t r) {
    const CellKey key{policy.series, policy.point, static_cast<int>(r)};
    outcomes[r] =
        RunCell(policy, key, seeds[r], [&](const fault::CellWatchdog* wd) {
          GranularitySimulator::Options cell_options = options;
          cell_options.watchdog = wd;
          cell_options.arena = CellArena(options.arena);
          return GranularitySimulator::RunOnce(cfg, spec, seeds[r],
                                               cell_options);
        });
  };
  if (runner != nullptr && runner->threads() > 1 &&
      !RequiresSerialExecution(options)) {
    runner->ParallelFor(reps, [&](size_t r) { run_cell(r); });
  } else {
    for (size_t r = 0; r < reps; ++r) {
      run_cell(r);
      if (outcomes[r].result.ok()) continue;
      if (IsCancelled(outcomes[r]) || !policy.allow_partial) break;
    }
  }

  ReplicationMerger merger;
  Status first_failure;
  bool interrupted = false;
  for (size_t r = 0; r < reps; ++r) {
    const CellOutcome& o = outcomes[r];
    AccountCell(policy, policy.point, cfg.ltot, static_cast<int>(r), o);
    if (!o.ran && !o.from_checkpoint) continue;
    if (o.result.ok()) {
      merger.Add(*o.result);
    } else if (IsCancelled(o)) {
      interrupted = true;
    } else if (first_failure.ok()) {
      first_failure = o.result.status();
    }
  }
  if (!first_failure.ok() && !policy.allow_partial) return first_failure;
  if (merger.survivors() == 0) {
    if (!first_failure.ok()) return first_failure;
    if (interrupted) return Status::Cancelled("run interrupted");
    return Status::Internal("no replication produced metrics");
  }
  return merger.Finalize();
}

std::vector<int64_t> StandardLockSweep(int64_t dbsize) {
  GRANULOCK_CHECK_GE(dbsize, 1);
  static constexpr int64_t kGrid[] = {1,   2,   5,    10,   20,   50,
                                      100, 200, 500,  1000, 2000, 5000,
                                      10000, 20000, 50000};
  std::vector<int64_t> out;
  for (int64_t v : kGrid) {
    if (v <= dbsize) out.push_back(v);
  }
  if (out.empty() || out.back() != dbsize) out.push_back(dbsize);
  return out;
}

Result<std::vector<SweepPoint>> SweepLockCounts(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    const std::vector<int64_t>& lock_counts, uint64_t base_seed,
    int replications, GranularitySimulator::Options options,
    ParallelRunner* runner, const CellPolicy& policy) {
  if (replications < 1) {
    return Status::InvalidArgument("replications must be >= 1");
  }
  const size_t points = lock_counts.size();
  const size_t reps = static_cast<size_t>(replications);
  const std::vector<uint64_t> seeds =
      DeriveReplicationSeeds(base_seed, replications);
  // Every point's serial run re-seeds from `base_seed`, so all points share
  // the same replication seeds.
  std::vector<model::SystemConfig> point_cfgs(points, cfg);
  for (size_t p = 0; p < points; ++p) point_cfgs[p].ltot = lock_counts[p];
  std::vector<std::vector<CellOutcome>> outcomes(points);
  for (auto& row : outcomes) row.resize(reps);
  auto run_cell = [&](size_t p, size_t r) {
    const CellKey key{policy.series, static_cast<int>(p),
                      static_cast<int>(r)};
    outcomes[p][r] =
        RunCell(policy, key, seeds[r], [&](const fault::CellWatchdog* wd) {
          GranularitySimulator::Options cell_options = options;
          cell_options.watchdog = wd;
          cell_options.arena = CellArena(options.arena);
          return GranularitySimulator::RunOnce(point_cfgs[p], spec, seeds[r],
                                               cell_options);
        });
  };

  if (runner != nullptr && runner->threads() > 1 &&
      !RequiresSerialExecution(options)) {
    // Parallel path: flatten the whole (point × replication) grid into one
    // task batch so the pool stays saturated across point boundaries.
    // Failures are reported from the post-join scan below in grid index
    // order, so the chosen failure never depends on worker scheduling.
    runner->ParallelFor(points * reps,
                        [&](size_t i) { run_cell(i / reps, i % reps); });
  } else {
    bool stop = false;
    for (size_t p = 0; p < points && !stop; ++p) {
      for (size_t r = 0; r < reps && !stop; ++r) {
        run_cell(p, r);
        const CellOutcome& o = outcomes[p][r];
        if (o.result.ok()) continue;
        if (IsCancelled(o) || !policy.allow_partial) stop = true;
      }
    }
  }

  // Post-join scan in grid index order: accounting, per-point merge, and
  // deterministic failure selection.
  std::vector<SweepPoint> out;
  out.reserve(points);
  Status first_failure;
  for (size_t p = 0; p < points; ++p) {
    ReplicationMerger merger;
    for (size_t r = 0; r < reps; ++r) {
      const CellOutcome& o = outcomes[p][r];
      AccountCell(policy, static_cast<int>(p), lock_counts[p],
                  static_cast<int>(r), o);
      if (!o.ran && !o.from_checkpoint) continue;
      if (o.result.ok()) {
        merger.Add(*o.result);
      } else if (!IsCancelled(o) && first_failure.ok()) {
        first_failure = o.result.status();
      }
    }
    if (merger.survivors() > 0) {
      out.push_back(SweepPoint{lock_counts[p], merger.Finalize()});
    }
  }
  if (!first_failure.ok() && !policy.allow_partial) return first_failure;
  return out;
}

const SweepPoint& BestThroughputPoint(const std::vector<SweepPoint>& sweep) {
  GRANULOCK_CHECK(!sweep.empty());
  return *std::max_element(sweep.begin(), sweep.end(),
                           [](const SweepPoint& a, const SweepPoint& b) {
                             return a.metrics.mean.throughput <
                                    b.metrics.mean.throughput;
                           });
}

}  // namespace granulock::core
