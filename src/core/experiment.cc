#include "core/experiment.h"

#include <algorithm>

#include "sim/stats.h"
#include "util/logging.h"
#include "util/random.h"

namespace granulock::core {

Result<ReplicatedMetrics> RunReplicated(const model::SystemConfig& cfg,
                                        const workload::WorkloadSpec& spec,
                                        uint64_t base_seed, int replications,
                                        GranularitySimulator::Options options) {
  if (replications < 1) {
    return Status::InvalidArgument("replications must be >= 1");
  }
  Rng seeder(base_seed);
  ReplicatedMetrics out;
  out.replications = replications;
  sim::RunningStat throughput_stat;
  sim::RunningStat response_stat;
  SimulationMetrics& m = out.mean;
  for (int r = 0; r < replications; ++r) {
    const uint64_t seed =
        seeder.Fork(static_cast<uint64_t>(r)).NextUint64();
    Result<SimulationMetrics> one =
        GranularitySimulator::RunOnce(cfg, spec, seed, options);
    if (!one.ok()) return one.status();
    const SimulationMetrics& s = *one;
    m.totcpus += s.totcpus;
    m.totios += s.totios;
    m.lockcpus += s.lockcpus;
    m.lockios += s.lockios;
    m.totcpus_sum += s.totcpus_sum;
    m.totios_sum += s.totios_sum;
    m.lockcpus_sum += s.lockcpus_sum;
    m.lockios_sum += s.lockios_sum;
    m.usefulcpus += s.usefulcpus;
    m.usefulios += s.usefulios;
    m.totcom += s.totcom;
    m.throughput += s.throughput;
    m.response_time += s.response_time;
    m.measured_time += s.measured_time;
    m.response_time_stddev += s.response_time_stddev;
    m.response_p50 += s.response_p50;
    m.response_p95 += s.response_p95;
    m.response_p99 += s.response_p99;
    m.lock_requests += s.lock_requests;
    m.lock_denials += s.lock_denials;
    m.denial_rate += s.denial_rate;
    m.avg_active += s.avg_active;
    m.avg_blocked += s.avg_blocked;
    m.avg_pending += s.avg_pending;
    m.cpu_utilization += s.cpu_utilization;
    m.io_utilization += s.io_utilization;
    m.deadlock_aborts += s.deadlock_aborts;
    m.events_executed += s.events_executed;
    m.phase_pending_wait += s.phase_pending_wait;
    m.phase_lock_wait += s.phase_lock_wait;
    m.phase_io_service += s.phase_io_service;
    m.phase_cpu_service += s.phase_cpu_service;
    m.phase_sync_wait += s.phase_sync_wait;
    throughput_stat.Add(s.throughput);
    response_stat.Add(s.response_time);
  }
  const double n = static_cast<double>(replications);
  m.totcpus /= n;
  m.totios /= n;
  m.lockcpus /= n;
  m.lockios /= n;
  m.totcpus_sum /= n;
  m.totios_sum /= n;
  m.lockcpus_sum /= n;
  m.lockios_sum /= n;
  m.usefulcpus /= n;
  m.usefulios /= n;
  m.totcom = static_cast<int64_t>(static_cast<double>(m.totcom) / n);
  m.throughput /= n;
  m.response_time /= n;
  m.measured_time /= n;
  m.response_time_stddev /= n;
  m.response_p50 /= n;
  m.response_p95 /= n;
  m.response_p99 /= n;
  m.lock_requests =
      static_cast<int64_t>(static_cast<double>(m.lock_requests) / n);
  m.lock_denials =
      static_cast<int64_t>(static_cast<double>(m.lock_denials) / n);
  m.denial_rate /= n;
  m.avg_active /= n;
  m.avg_blocked /= n;
  m.avg_pending /= n;
  m.cpu_utilization /= n;
  m.io_utilization /= n;
  m.deadlock_aborts =
      static_cast<int64_t>(static_cast<double>(m.deadlock_aborts) / n);
  m.phase_pending_wait /= n;
  m.phase_lock_wait /= n;
  m.phase_io_service /= n;
  m.phase_cpu_service /= n;
  m.phase_sync_wait /= n;
  out.throughput_hw95 = sim::ConfidenceHalfWidth(
      throughput_stat.count(), throughput_stat.StdDev(), 0.95);
  out.response_hw95 = sim::ConfidenceHalfWidth(
      response_stat.count(), response_stat.StdDev(), 0.95);
  return out;
}

std::vector<int64_t> StandardLockSweep(int64_t dbsize) {
  GRANULOCK_CHECK_GE(dbsize, 1);
  static constexpr int64_t kGrid[] = {1,   2,   5,    10,   20,   50,
                                      100, 200, 500,  1000, 2000, 5000,
                                      10000, 20000, 50000};
  std::vector<int64_t> out;
  for (int64_t v : kGrid) {
    if (v <= dbsize) out.push_back(v);
  }
  if (out.empty() || out.back() != dbsize) out.push_back(dbsize);
  return out;
}

Result<std::vector<SweepPoint>> SweepLockCounts(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    const std::vector<int64_t>& lock_counts, uint64_t base_seed,
    int replications, GranularitySimulator::Options options) {
  std::vector<SweepPoint> out;
  out.reserve(lock_counts.size());
  for (int64_t ltot : lock_counts) {
    model::SystemConfig point_cfg = cfg;
    point_cfg.ltot = ltot;
    Result<ReplicatedMetrics> metrics =
        RunReplicated(point_cfg, spec, base_seed, replications, options);
    if (!metrics.ok()) return metrics.status();
    out.push_back(SweepPoint{ltot, std::move(metrics).value()});
  }
  return out;
}

const SweepPoint& BestThroughputPoint(const std::vector<SweepPoint>& sweep) {
  GRANULOCK_CHECK(!sweep.empty());
  return *std::max_element(sweep.begin(), sweep.end(),
                           [](const SweepPoint& a, const SweepPoint& b) {
                             return a.metrics.mean.throughput <
                                    b.metrics.mean.throughput;
                           });
}

}  // namespace granulock::core
