#include "core/experiment.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "sim/stats.h"
#include "util/logging.h"
#include "util/random.h"

namespace granulock::core {

namespace {

/// Derives the per-replication seeds exactly as the historical serial loop
/// did: stream `r` forked from one seeder over `base_seed`. Computing them
/// up front is what lets replications run on any worker in any order while
/// staying bit-identical to serial execution.
std::vector<uint64_t> DeriveReplicationSeeds(uint64_t base_seed,
                                             int replications) {
  Rng seeder(base_seed);
  std::vector<uint64_t> seeds;
  seeds.reserve(static_cast<size_t>(replications));
  for (int r = 0; r < replications; ++r) {
    seeds.push_back(seeder.Fork(static_cast<uint64_t>(r)).NextUint64());
  }
  return seeds;
}

/// Merges per-replication results in replication order: field sums via
/// `SimulationMetrics::Accumulate`, then per-field means and the Student-t
/// confidence half-widths on the two headline outputs. The first failed
/// replication (by index) aborts the merge, so error reporting is
/// deterministic regardless of worker scheduling.
Result<ReplicatedMetrics> MergeReplications(
    std::vector<std::optional<Result<SimulationMetrics>>>& results) {
  ReplicatedMetrics out;
  out.replications = static_cast<int>(results.size());
  sim::RunningStat throughput_stat;
  sim::RunningStat response_stat;
  for (auto& slot : results) {
    GRANULOCK_CHECK(slot.has_value());
    if (!slot->ok()) return slot->status();
    const SimulationMetrics& s = **slot;
    out.mean.Accumulate(s);
    throughput_stat.Add(s.throughput);
    response_stat.Add(s.response_time);
  }
  out.mean.FinalizeMeans(static_cast<int64_t>(results.size()));
  out.throughput_hw95 = sim::ConfidenceHalfWidth(
      throughput_stat.count(), throughput_stat.StdDev(), 0.95);
  out.response_hw95 = sim::ConfidenceHalfWidth(
      response_stat.count(), response_stat.StdDev(), 0.95);
  return out;
}

/// True when the attached sinks force the serial path: the trace recorder
/// and obs sinks are unsynchronized single-run inspection tools, and the
/// serial path preserves their historical interleaving.
bool RequiresSerialExecution(const GranularitySimulator::Options& options) {
  return options.trace != nullptr || options.obs.any();
}

}  // namespace

Result<ReplicatedMetrics> RunReplicated(const model::SystemConfig& cfg,
                                        const workload::WorkloadSpec& spec,
                                        uint64_t base_seed, int replications,
                                        GranularitySimulator::Options options,
                                        ParallelRunner* runner) {
  if (replications < 1) {
    return Status::InvalidArgument("replications must be >= 1");
  }
  const std::vector<uint64_t> seeds =
      DeriveReplicationSeeds(base_seed, replications);
  std::vector<std::optional<Result<SimulationMetrics>>> results(
      static_cast<size_t>(replications));
  if (runner != nullptr && runner->threads() > 1 &&
      !RequiresSerialExecution(options)) {
    runner->ParallelFor(results.size(), [&](size_t r) {
      results[r] = GranularitySimulator::RunOnce(cfg, spec, seeds[r], options);
    });
  } else {
    for (size_t r = 0; r < results.size(); ++r) {
      results[r] = GranularitySimulator::RunOnce(cfg, spec, seeds[r], options);
      if (!(*results[r]).ok()) return (*results[r]).status();
    }
  }
  return MergeReplications(results);
}

std::vector<int64_t> StandardLockSweep(int64_t dbsize) {
  GRANULOCK_CHECK_GE(dbsize, 1);
  static constexpr int64_t kGrid[] = {1,   2,   5,    10,   20,   50,
                                      100, 200, 500,  1000, 2000, 5000,
                                      10000, 20000, 50000};
  std::vector<int64_t> out;
  for (int64_t v : kGrid) {
    if (v <= dbsize) out.push_back(v);
  }
  if (out.empty() || out.back() != dbsize) out.push_back(dbsize);
  return out;
}

Result<std::vector<SweepPoint>> SweepLockCounts(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    const std::vector<int64_t>& lock_counts, uint64_t base_seed,
    int replications, GranularitySimulator::Options options,
    ParallelRunner* runner) {
  const size_t points = lock_counts.size();
  std::vector<SweepPoint> out;
  out.reserve(points);
  if (runner == nullptr || runner->threads() <= 1 ||
      RequiresSerialExecution(options) || replications < 1) {
    for (int64_t ltot : lock_counts) {
      model::SystemConfig point_cfg = cfg;
      point_cfg.ltot = ltot;
      Result<ReplicatedMetrics> metrics =
          RunReplicated(point_cfg, spec, base_seed, replications, options);
      if (!metrics.ok()) return metrics.status();
      out.push_back(SweepPoint{ltot, std::move(metrics).value()});
    }
    return out;
  }

  // Parallel path: flatten the whole (point × replication) grid into one
  // task batch so the pool stays saturated across point boundaries. Every
  // point uses the same replication seeds (each point's serial run re-seeds
  // from `base_seed`), and per-point merges happen in index order after the
  // join — bit-identical to the serial nest above for any thread count.
  const size_t reps = static_cast<size_t>(replications);
  const std::vector<uint64_t> seeds =
      DeriveReplicationSeeds(base_seed, replications);
  std::vector<model::SystemConfig> point_cfgs(points, cfg);
  for (size_t p = 0; p < points; ++p) point_cfgs[p].ltot = lock_counts[p];
  std::vector<std::vector<std::optional<Result<SimulationMetrics>>>> results(
      points);
  for (auto& row : results) row.resize(reps);
  runner->ParallelFor(points * reps, [&](size_t i) {
    const size_t p = i / reps;
    const size_t r = i % reps;
    results[p][r] =
        GranularitySimulator::RunOnce(point_cfgs[p], spec, seeds[r], options);
  });
  for (size_t p = 0; p < points; ++p) {
    Result<ReplicatedMetrics> metrics = MergeReplications(results[p]);
    if (!metrics.ok()) return metrics.status();
    out.push_back(SweepPoint{lock_counts[p], std::move(metrics).value()});
  }
  return out;
}

const SweepPoint& BestThroughputPoint(const std::vector<SweepPoint>& sweep) {
  GRANULOCK_CHECK(!sweep.empty());
  return *std::max_element(sweep.begin(), sweep.end(),
                           [](const SweepPoint& a, const SweepPoint& b) {
                             return a.metrics.mean.throughput <
                                    b.metrics.mean.throughput;
                           });
}

}  // namespace granulock::core
