#include "core/checkpoint.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "obs/json_writer.h"
#include "util/fileio.h"
#include "util/logging.h"
#include "util/strings.h"

namespace granulock::core {

namespace {

constexpr int kJournalVersion = 1;

/// Number of SimulationMetrics fields, from the X-macro list.
#define GRANULOCK_CKPT_COUNT(name, kind) +1
constexpr int kNumMetricFields = 0 GRANULOCK_METRICS_FIELDS(GRANULOCK_CKPT_COUNT);
#undef GRANULOCK_CKPT_COUNT

bool ParseMetricValue(std::string_view token, double* out) {
  if (token == "null") {  // JsonWriter emits null for non-finite doubles
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  return ParseDouble(token, out);
}

bool ParseMetricValue(std::string_view token, int64_t* out) {
  return ParseInt64(token, out);
}

bool ParseMetricValue(std::string_view token, uint64_t* out) {
  if (token.empty() || token[0] == '-') return false;
  std::string buf(token);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

/// Assigns one named metrics field from its serialized token. Returns
/// false for an unknown name or an unparsable value.
bool SetMetricsField(SimulationMetrics* m, std::string_view name,
                     std::string_view token) {
#define GRANULOCK_CKPT_SET(fname, kind) \
  if (name == #fname) return ParseMetricValue(token, &m->fname);
  GRANULOCK_METRICS_FIELDS(GRANULOCK_CKPT_SET)
#undef GRANULOCK_CKPT_SET
  return false;
}

/// A cursor over one journal line. The grammar is the exact output of
/// `EncodeRecord`/`EncodeHeader` (flat JSON, no escapes in keys, no
/// nested containers beyond the fixed shape), so the parser stays tiny
/// while still rejecting anything malformed.
class LineParser {
 public:
  explicit LineParser(std::string_view s) : s_(s) {}

  bool Consume(char c) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  /// Parses a double-quoted string without escape sequences (the only
  /// kind the journal emits).
  bool ParseString(std::string_view* out) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    const size_t start = pos_ + 1;
    size_t end = start;
    while (end < s_.size() && s_[end] != '"') {
      if (s_[end] == '\\') return false;
      ++end;
    }
    if (end >= s_.size()) return false;
    *out = s_.substr(start, end - start);
    pos_ = end + 1;
    return true;
  }

  /// Extracts one JSON number token (or the literal `null`).
  bool ParseValueToken(std::string_view* out) {
    SkipWs();
    const size_t start = pos_;
    if (StartsWith(s_.substr(pos_), "null")) {
      pos_ += 4;
      *out = s_.substr(start, 4);
      return true;
    }
    size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) != 0 ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    if (end == start) return false;
    *out = s_.substr(start, end - start);
    pos_ = end;
    return true;
  }

  bool ParseInt(int* out) {
    std::string_view token;
    int64_t v = 0;
    if (!ParseValueToken(&token) || !ParseInt64(token, &v)) return false;
    *out = static_cast<int>(v);
    return true;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

std::string EncodeHeader(uint64_t fingerprint) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("granulock_checkpoint").Value(static_cast<int64_t>(kJournalVersion));
  w.Key("fingerprint").Value(FingerprintToHex(fingerprint));
  w.EndObject();
  return os.str();
}

Status DecodeHeader(const std::string& line, uint64_t* fingerprint) {
  LineParser p(line);
  std::string_view key, token, fp_hex;
  int64_t version = 0;
  if (!p.Consume('{') || !p.ParseString(&key) ||
      key != "granulock_checkpoint" || !p.Consume(':') ||
      !p.ParseValueToken(&token) || !ParseInt64(token, &version) ||
      !p.Consume(',') || !p.ParseString(&key) || key != "fingerprint" ||
      !p.Consume(':') || !p.ParseString(&fp_hex) || !p.Consume('}') ||
      !p.AtEnd()) {
    return Status::InvalidArgument("malformed checkpoint journal header");
  }
  if (version != kJournalVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported checkpoint journal version %lld (expected %d)",
                  (long long)version, kJournalVersion));
  }
  std::string hex(fp_hex);
  char* end = nullptr;
  errno = 0;
  const unsigned long long fp = std::strtoull(hex.c_str(), &end, 16);
  if (errno != 0 || end != hex.c_str() + hex.size() || hex.empty()) {
    return Status::InvalidArgument("malformed fingerprint in journal header");
  }
  *fingerprint = static_cast<uint64_t>(fp);
  return Status::OK();
}

}  // namespace

uint64_t FingerprintString(const std::string& canonical) {
  // FNV-1a, 64-bit.
  uint64_t h = 14695981039346656037ull;
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string FingerprintToHex(uint64_t fingerprint) {
  return StrFormat("%016llx", (unsigned long long)fingerprint);
}

std::string CheckpointJournal::EncodeRecord(const CellKey& key,
                                            const SimulationMetrics& metrics) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("cell").BeginArray();
  w.Value(key.series).Value(key.point).Value(key.rep);
  w.EndArray();
  w.Key("m").BeginObject();
#define GRANULOCK_CKPT_WRITE(fname, kind) w.Key(#fname).Value(metrics.fname);
  GRANULOCK_METRICS_FIELDS(GRANULOCK_CKPT_WRITE)
#undef GRANULOCK_CKPT_WRITE
  w.EndObject();
  w.EndObject();
  return os.str();
}

Status CheckpointJournal::DecodeRecord(const std::string& line, CellKey* key,
                                       SimulationMetrics* metrics) {
  LineParser p(line);
  std::string_view name;
  if (!p.Consume('{') || !p.ParseString(&name) || name != "cell" ||
      !p.Consume(':') || !p.Consume('[') || !p.ParseInt(&key->series) ||
      !p.Consume(',') || !p.ParseInt(&key->point) || !p.Consume(',') ||
      !p.ParseInt(&key->rep) || !p.Consume(']') || !p.Consume(',') ||
      !p.ParseString(&name) || name != "m" || !p.Consume(':') ||
      !p.Consume('{')) {
    return Status::InvalidArgument("malformed checkpoint record");
  }
  int fields = 0;
  for (;;) {
    std::string_view field, token;
    if (!p.ParseString(&field) || !p.Consume(':') ||
        !p.ParseValueToken(&token)) {
      return Status::InvalidArgument("malformed checkpoint record field");
    }
    if (!SetMetricsField(metrics, field, token)) {
      return Status::InvalidArgument("unknown or unparsable metrics field '" +
                                     std::string(field) + "'");
    }
    ++fields;
    if (p.Consume(',')) continue;
    break;
  }
  if (!p.Consume('}') || !p.Consume('}') || !p.AtEnd()) {
    return Status::InvalidArgument("trailing garbage in checkpoint record");
  }
  if (fields != kNumMetricFields) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint record carries %d metrics fields, expected %d "
        "(journal written by an incompatible version?)",
        fields, kNumMetricFields));
  }
  return Status::OK();
}

CheckpointJournal::CheckpointJournal(std::string path, uint64_t fingerprint)
    : path_(std::move(path)), fingerprint_(fingerprint) {}

CheckpointJournal::~CheckpointJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<CheckpointJournal>> CheckpointJournal::Open(
    const std::string& path, uint64_t fingerprint, bool resume) {
  std::unique_ptr<CheckpointJournal> journal(
      new CheckpointJournal(path, fingerprint));
  if (resume) {
    GRANULOCK_RETURN_NOT_OK(journal->LoadExisting());
  } else {
    GRANULOCK_RETURN_NOT_OK(journal->OpenForAppend(/*truncate=*/true));
  }
  return journal;
}

Status CheckpointJournal::LoadExisting() {
  std::string contents;
  const Status read = ReadFileToString(path_, &contents);
  if (read.code() == StatusCode::kNotFound) {
    // Nothing to resume from: start a fresh journal.
    return OpenForAppend(/*truncate=*/true);
  }
  GRANULOCK_RETURN_NOT_OK(read);
  if (contents.empty()) {
    return OpenForAppend(/*truncate=*/true);
  }

  const std::vector<std::string> lines = StrSplit(contents, '\n');
  const bool ends_with_newline = contents.back() == '\n';
  // StrSplit keeps the empty field after a trailing '\n'.
  const size_t line_count = ends_with_newline ? lines.size() - 1 : lines.size();
  if (line_count == 0) {
    return OpenForAppend(/*truncate=*/true);
  }

  uint64_t file_fingerprint = 0;
  GRANULOCK_RETURN_NOT_OK(DecodeHeader(lines[0], &file_fingerprint));
  if (file_fingerprint != fingerprint_) {
    return Status::FailedPrecondition(StrFormat(
        "checkpoint journal %s was written for fingerprint %s but this run "
        "has %s — the configuration, seed, replication count, or grid "
        "changed; delete the journal (or drop --resume) to start over",
        path_.c_str(), FingerprintToHex(file_fingerprint).c_str(),
        FingerprintToHex(fingerprint_).c_str()));
  }

  bool dropped_tail = false;
  for (size_t i = 1; i < line_count; ++i) {
    CellKey key;
    SimulationMetrics metrics;
    const Status decoded = DecodeRecord(lines[i], &key, &metrics);
    if (!decoded.ok()) {
      const bool is_last = i + 1 == line_count;
      if (is_last && !ends_with_newline) {
        // The record that was mid-write when the previous process died.
        GRANULOCK_LOG(Warning)
            << "checkpoint journal " << path_
            << ": dropping truncated trailing record (crash mid-append)";
        dropped_tail = true;
        break;
      }
      return Status::InvalidArgument(
          StrFormat("checkpoint journal %s: corrupt record on line %zu: %s",
                    path_.c_str(), i + 1, decoded.message().c_str()));
    }
    const auto [it, inserted] = cells_.emplace(
        std::make_tuple(key.series, key.point, key.rep), metrics);
    if (!inserted) {
      return Status::InvalidArgument(StrFormat(
          "checkpoint journal %s: duplicate cell (%d,%d,%d) on line %zu",
          path_.c_str(), key.series, key.point, key.rep, i + 1));
    }
  }
  loaded_cells_ = static_cast<int64_t>(cells_.size());

  if (dropped_tail) {
    // Rewrite the journal without the torn tail so appends extend a clean
    // file; the atomic writer guarantees this repair itself cannot tear.
    std::string clean = EncodeHeader(fingerprint_) + "\n";
    for (const auto& [cell, metrics] : cells_) {
      const CellKey key{std::get<0>(cell), std::get<1>(cell),
                        std::get<2>(cell)};
      clean += EncodeRecord(key, metrics) + "\n";
    }
    GRANULOCK_RETURN_NOT_OK(WriteFileAtomic(path_, clean));
  }
  return OpenForAppend(/*truncate=*/false);
}

Status CheckpointJournal::OpenForAppend(bool truncate) {
  file_ = std::fopen(path_.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    return Status::Internal(
        StrFormat("cannot open checkpoint journal %s", path_.c_str()));
  }
  if (truncate) {
    const std::string header = EncodeHeader(fingerprint_) + "\n";
    if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
        std::fflush(file_) != 0) {
      return Status::Internal(
          StrFormat("cannot write journal header to %s", path_.c_str()));
    }
#ifndef _WIN32
    ::fsync(fileno(file_));
#endif
  }
  return Status::OK();
}

bool CheckpointJournal::Lookup(const CellKey& key,
                               SimulationMetrics* out) const {
  granulock::MutexLock lock(&mu_);
  const auto it = cells_.find(std::make_tuple(key.series, key.point, key.rep));
  if (it == cells_.end()) return false;
  *out = it->second;
  return true;
}

Status CheckpointJournal::Append(const CellKey& key,
                                 const SimulationMetrics& metrics) {
  // Encode outside the lock: serialization is pure CPU work and needs no
  // shared state.
  const std::string line = EncodeRecord(key, metrics) + "\n";
  uint64_t target_seq = 0;
  {
    granulock::MutexLock lock(&mu_);
    const auto [it, inserted] = cells_.emplace(
        std::make_tuple(key.series, key.point, key.rep), metrics);
    if (!inserted) {
      return Status::AlreadyExists(
          StrFormat("cell (%d,%d,%d) journaled twice", key.series, key.point,
                    key.rep));
    }
    pending_ += line;
    target_seq = ++enqueued_seq_;
  }
  return WaitDurable(target_seq);
}

Status CheckpointJournal::WaitDurable(uint64_t target_seq) {
  mu_.Lock();
  for (;;) {
    if (flush_failed_) {
      const std::string message = flush_error_;
      mu_.Unlock();
      return Status::Internal(message);
    }
    if (durable_seq_ >= target_seq) {
      mu_.Unlock();
      return Status::OK();
    }
    if (flusher_active_) {
      // Another appender is on the disk; it will advance durable_seq_ (or
      // set the sticky error) and notify. The wait releases mu_ while
      // blocked, so the journal stays appendable throughout.
      flush_cv_.Wait(&mu_);
      continue;
    }
    // Become the flusher for everything enqueued so far: one
    // fwrite+fflush+fsync makes the whole pending batch durable (group
    // commit). The mutex is dropped across the I/O.
    flusher_active_ = true;
    std::string batch;
    batch.swap(pending_);
    const uint64_t batch_seq = enqueued_seq_;
    std::FILE* const file = file_;
    mu_.Unlock();

    const bool wrote =
        std::fwrite(batch.data(), 1, batch.size(), file) == batch.size() &&
        std::fflush(file) == 0;
#ifndef _WIN32
    if (wrote) ::fsync(fileno(file));
#endif

    mu_.Lock();
    flusher_active_ = false;
    if (wrote) {
      durable_seq_ = batch_seq;
    } else {
      flush_failed_ = true;
      flush_error_ =
          StrFormat("append to checkpoint journal %s failed", path_.c_str());
    }
    flush_cv_.NotifyAll();
  }
}

size_t CheckpointJournal::size() const {
  granulock::MutexLock lock(&mu_);
  return cells_.size();
}

}  // namespace granulock::core
