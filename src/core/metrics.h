#ifndef GRANULOCK_CORE_METRICS_H_
#define GRANULOCK_CORE_METRICS_H_

#include <cstdint>
#include <string>

namespace granulock::core {

/// The complete list of `SimulationMetrics` fields with their aggregation
/// kind, in declaration order. Every consumer that must cover *all* fields
/// (replication averaging, the coverage test) expands this list instead of
/// hand-writing the fields, so a new metric cannot silently miss
/// aggregation: a `static_assert` in metrics.cc ties the list's length to
/// `sizeof(SimulationMetrics)` and fails to compile when a field is added
/// to the struct but not here.
///
/// Kinds:
///  * kMeanDouble — accumulated with +=, divided by the replication count.
///  * kMeanInt64  — accumulated with +=, mean truncated back to int64.
///  * kSumUint64  — accumulated with +=, reported as the total over
///                  replications (events_executed: the JSON report derives
///                  whole-bench events/sec from it).
#define GRANULOCK_METRICS_FIELDS(X)     \
  X(totcpus, kMeanDouble)               \
  X(totios, kMeanDouble)                \
  X(lockcpus, kMeanDouble)              \
  X(lockios, kMeanDouble)               \
  X(usefulcpus, kMeanDouble)            \
  X(usefulios, kMeanDouble)             \
  X(totcom, kMeanInt64)                 \
  X(throughput, kMeanDouble)            \
  X(response_time, kMeanDouble)         \
  X(totcpus_sum, kMeanDouble)           \
  X(totios_sum, kMeanDouble)            \
  X(lockcpus_sum, kMeanDouble)          \
  X(lockios_sum, kMeanDouble)           \
  X(measured_time, kMeanDouble)         \
  X(response_time_stddev, kMeanDouble)  \
  X(response_p50, kMeanDouble)          \
  X(response_p95, kMeanDouble)          \
  X(response_p99, kMeanDouble)          \
  X(lock_requests, kMeanInt64)          \
  X(lock_denials, kMeanInt64)           \
  X(denial_rate, kMeanDouble)           \
  X(avg_active, kMeanDouble)            \
  X(avg_blocked, kMeanDouble)           \
  X(avg_pending, kMeanDouble)           \
  X(cpu_utilization, kMeanDouble)       \
  X(io_utilization, kMeanDouble)        \
  X(deadlock_aborts, kMeanInt64)        \
  X(txn_restarts, kMeanInt64)           \
  X(txn_sacrificed, kMeanInt64)         \
  X(avg_admission_held, kMeanDouble)    \
  X(events_executed, kSumUint64)        \
  X(phase_pending_wait, kMeanDouble)    \
  X(phase_lock_wait, kMeanDouble)       \
  X(phase_io_service, kMeanDouble)      \
  X(phase_cpu_service, kMeanDouble)     \
  X(phase_sync_wait, kMeanDouble)

/// Aggregation-kind tags for the field list above; selected by overload in
/// the accumulate/finalize helpers.
namespace metrics_kind {
struct kMeanDouble {};
struct kMeanInt64 {};
struct kSumUint64 {};
}  // namespace metrics_kind

/// Everything one simulation run reports. The first block carries the
/// paper's output parameters under their original names (§2); the second
/// block adds diagnostics this implementation also records.
struct SimulationMetrics {
  // --- Paper outputs -------------------------------------------------
  // The paper defines totcpus/totios as "the number of time units in
  // which the CPU [I/O] resources in the system are busy" — wall-clock
  // (union) time over the resource pool, which coincides with a busy-time
  // sum only at npros = 1 (the uniprocessor Ries–Stonebraker baseline the
  // definition was inherited from). These fields use the union reading,
  // which reproduces the scales and per-npros separation of the paper's
  // Figures 3-5; the *_sum fields below carry per-resource totals.
  /// Wall-clock time during which at least one CPU was busy
  /// (transaction or lock work).
  double totcpus = 0.0;
  /// Wall-clock time during which at least one disk was busy.
  double totios = 0.0;
  /// Wall-clock time during which at least one CPU was doing lock
  /// request/set/release work.
  double lockcpus = 0.0;
  /// Wall-clock time during which at least one disk was doing lock work.
  double lockios = 0.0;
  /// (totcpus - lockcpus) / npros: average per-processor CPU time doing
  /// useful transaction work.
  double usefulcpus = 0.0;
  /// (totios - lockios) / npros.
  double usefulios = 0.0;
  /// Transactions completed inside the measurement window.
  int64_t totcom = 0;
  /// totcom / measured_time.
  double throughput = 0.0;
  /// Mean time from entering the pending queue to completing all
  /// processing and releasing locks.
  double response_time = 0.0;

  // --- Additional diagnostics ----------------------------------------
  /// Busy time summed over all CPUs (both classes); totcpus_sum /
  /// (npros * measured_time) is the true mean CPU utilization.
  double totcpus_sum = 0.0;
  /// Busy time summed over all disks.
  double totios_sum = 0.0;
  /// Lock-work busy time summed over all CPUs (the total CPU resource
  /// consumption of the locking mechanism).
  double lockcpus_sum = 0.0;
  /// Lock-work busy time summed over all disks.
  double lockios_sum = 0.0;
  /// Length of the measurement window (tmax - warmup).
  double measured_time = 0.0;
  /// Standard deviation of response times.
  double response_time_stddev = 0.0;
  /// Response-time percentiles (reservoir-sampled; see
  /// sim::QuantileEstimator). The paper reports means only; tails matter
  /// for real deployments, so we record them too.
  double response_p50 = 0.0;
  double response_p95 = 0.0;
  double response_p99 = 0.0;
  /// Lock requests issued / denied inside the window; a denied request is
  /// retried later (and pays the lock cost again).
  int64_t lock_requests = 0;
  int64_t lock_denials = 0;
  /// lock_denials / lock_requests (0 when no requests).
  double denial_rate = 0.0;
  /// Time-average number of transactions holding locks and executing.
  double avg_active = 0.0;
  /// Time-average number of transactions in the blocked queue.
  double avg_blocked = 0.0;
  /// Time-average length of the pending queue.
  double avg_pending = 0.0;
  /// totcpus_sum / (npros * measured_time): mean CPU utilization in
  /// [0,1].
  double cpu_utilization = 0.0;
  /// totios_sum / (npros * measured_time).
  double io_utilization = 0.0;
  /// Deadlock victims aborted and restarted (always 0 under the paper's
  /// conservative protocol; populated by the incremental claim-as-needed
  /// engine).
  int64_t deadlock_aborts = 0;
  /// Aborted transactions that went back through backoff and restarted
  /// (every abort either restarts or sacrifices, so deadlock_aborts ==
  /// txn_restarts + txn_sacrificed for the incremental engine).
  int64_t txn_restarts = 0;
  /// Transactions terminally aborted by the restart governor after
  /// exhausting their restart budget; each is replaced by a fresh
  /// transaction so the closed system stays closed.
  int64_t txn_sacrificed = 0;
  /// Time-average number of transactions parked by the admission
  /// controller (0 unless admission control is enabled).
  double avg_admission_held = 0.0;
  /// Discrete events the engine executed (diagnostics / perf). Observer
  /// events (metric sampling) are excluded, so the count is identical
  /// with observability on or off.
  uint64_t events_executed = 0;

  // --- Response-time decomposition --------------------------------------
  // Where the mean response time goes, phase by phase: means over the
  // transactions completed in the measurement window. Every wall-clock
  // instant of a transaction's life is attributed to exactly one phase
  // (averaged across its parallel sub-transactions for io/cpu/sync), so
  // the five fields sum to `response_time` up to floating-point noise.
  // Always recorded — the bookkeeping is a few arithmetic ops per
  // lifecycle transition — so results do not depend on observability
  // being enabled.
  /// Waiting in the FIFO pending queue (all attempts; 0 for the
  /// incremental engine, which has no pending queue).
  double phase_pending_wait = 0.0;
  /// Acquiring locks: lock-manager I/O+CPU service, blocked-on-a-holder
  /// wait, and (incremental engine) deadlock-restart backoff.
  double phase_lock_wait = 0.0;
  /// Sub-transaction I/O stage, including queueing at the node's disk.
  double phase_io_service = 0.0;
  /// Sub-transaction CPU stage, including queueing at the node's CPU.
  double phase_cpu_service = 0.0;
  /// Fork-join synchronization: a finished sub-transaction waiting for
  /// its siblings.
  double phase_sync_wait = 0.0;

  /// Adds every field of `other` into this struct, driven by the
  /// `GRANULOCK_METRICS_FIELDS` list — the first half of replication
  /// aggregation. Call once per replication, then `FinalizeMeans`.
  void Accumulate(const SimulationMetrics& other);

  /// Converts accumulated sums into per-replication means (`replications`
  /// >= 1). Mean fields are divided by the count (int64 means truncate,
  /// matching the historical serial aggregation exactly); sum fields
  /// (events_executed) are left as totals.
  void FinalizeMeans(int64_t replications);

  /// Multi-line human-readable report.
  std::string ToString() const;
};

}  // namespace granulock::core

#endif  // GRANULOCK_CORE_METRICS_H_
