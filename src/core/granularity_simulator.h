#ifndef GRANULOCK_CORE_GRANULARITY_SIMULATOR_H_
#define GRANULOCK_CORE_GRANULARITY_SIMULATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/fault.h"
#include "core/metrics.h"
#include "model/config.h"
#include "model/conflict.h"
#include "obs/hooks.h"
#include "sim/busy_union.h"
#include "sim/priority_server.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "util/arena.h"
#include "util/random.h"
#include "util/status.h"
#include "workload/workload.h"

namespace granulock::core {

/// The paper's simulation model (§2, Figure 1): a closed system of
/// `ntrans` transactions cycling through a shared-nothing multiprocessor.
///
/// Life of a transaction:
///  1. It sits in the FIFO *pending* queue. When it reaches the head and
///     the lock manager is free, its lock request is processed: the
///     request/set/release work (`LU*liotime` of I/O and `LU*lcputime` of
///     CPU) is shared equally by all processors and served at preemptive
///     priority over transaction work. The cost is paid whether or not the
///     locks are granted.
///  2. Conflicts are decided by the probabilistic Ries–Stonebraker model
///     over the currently active transactions. A blocked transaction waits
///     in the *blocked* queue until its blocker completes, then re-enters
///     the pending queue (and pays the lock cost again).
///  3. A granted transaction splits into `PU` sub-transactions on distinct
///     nodes (all nodes under horizontal partitioning), each performing
///     `NU/PU` entities' worth of I/O then CPU in its node's FCFS queues.
///  4. When the last sub-transaction finishes, the transaction completes,
///     releases its locks and its blocked transactions, and is replaced by
///     a fresh transaction with new random parameters.
///
/// Deadlock is impossible (conservative locking: all locks are requested
/// up front).
class GranularitySimulator {
 public:
  /// Policies that the paper leaves implicit, exposed for ablation.
  struct Options {
    /// If true (default, and the modelling assumption documented in
    /// DESIGN.md), only one lock request is processed at a time; if false
    /// the lock manager pipelines requests from the pending queue.
    bool serialize_lock_manager = true;
    /// If true (default), transactions released from the blocked queue are
    /// appended to the pending queue in FIFO order; if false they are
    /// prepended (retry-immediately policy).
    bool requeue_blocked_at_tail = true;
    /// Transaction-level admission control (the remedy §3.7 of the paper
    /// points to for heavy load): a pending transaction's lock request is
    /// dispatched only while fewer than this many transactions hold locks.
    /// 0 (default) disables the limit, reproducing the paper's model.
    int64_t max_active = 0;
    /// Adaptive transaction-level scheduling (the paper's reference [4]
    /// direction): when true, the multiprogramming cap adjusts itself
    /// every `adaptation_interval` time units — multiplicative decrease
    /// when the observed denial rate exceeds `target_denial_rate`,
    /// additive increase when it falls well below. Overrides `max_active`.
    bool adaptive_admission = false;
    /// Adaptation period in time units (> 0 when adaptive).
    double adaptation_interval = 100.0;
    /// Denial rate the adaptive controller steers toward (in (0, 1)).
    double target_denial_rate = 0.3;
    /// Optional lifecycle tracer (not owned; must outlive the run).
    /// Records created / lock_requested / lock_granted / lock_denied /
    /// completed events without affecting simulation behaviour.
    sim::TraceRecorder* trace = nullptr;
    /// Optional observability sinks (not owned; must outlive the run).
    /// Attaching any of them never changes simulated results: the same
    /// seed yields bit-identical `SimulationMetrics` either way.
    obs::Hooks obs;
    /// Optional per-cell watchdog (not owned; must outlive the run). The
    /// engine polls it from a repeating *observer* event — excluded from
    /// the executed-event count, so arming a watchdog never changes
    /// simulated results — and the poll throws to cancel the run at a
    /// deterministic simulated-time boundary. Null disables polling.
    const fault::CellWatchdog* watchdog = nullptr;
    /// Optional arena backing per-transaction scratch vectors (not owned;
    /// must outlive the engine and must not be `Reset` while it lives).
    /// Replication drivers pass a per-worker arena and reset it wholesale
    /// between cells; null makes the engine use a private arena. Either
    /// way results are bit-identical — the arena only changes where
    /// scratch memory lives.
    util::Arena* arena = nullptr;
  };

  /// Builds a simulator for (`cfg`, `spec`); `seed` fully determines the
  /// run. Construction is cheap; call `Run()` once to execute.
  GranularitySimulator(model::SystemConfig cfg, workload::WorkloadSpec spec,
                       uint64_t seed, Options options);
  GranularitySimulator(model::SystemConfig cfg, workload::WorkloadSpec spec,
                       uint64_t seed);
  ~GranularitySimulator();

  GranularitySimulator(const GranularitySimulator&) = delete;
  GranularitySimulator& operator=(const GranularitySimulator&) = delete;

  /// Validates the configuration, executes the simulation to `cfg.tmax`,
  /// and returns the collected metrics. May be called once.
  Result<SimulationMetrics> Run();

  /// Convenience: construct-and-run in one call.
  static Result<SimulationMetrics> RunOnce(const model::SystemConfig& cfg,
                                           const workload::WorkloadSpec& spec,
                                           uint64_t seed, Options options);
  static Result<SimulationMetrics> RunOnce(const model::SystemConfig& cfg,
                                           const workload::WorkloadSpec& spec,
                                           uint64_t seed);

 private:
  friend struct AuditTestPeer;  // invariants_test corrupts state through it

  struct Txn;

  /// Closed-system conservation audit (runs at quiescent points when
  /// `sim::invariants::DeepAuditEnabled()`): every live transaction is in
  /// exactly one of pending / lock-processing / blocked / active, the
  /// blocked count matches the blockers' lists, and each active
  /// transaction has sub-transactions outstanding.
  void CheckConsistency() const;

  // --- lifecycle stages (see class comment) ---
  void InjectInitialTransactions();
  void PumpLockManager();
  void BeginLockRequest(Txn* txn);
  void StartLockIoPhase(Txn* txn);
  void StartLockCpuPhase(Txn* txn);
  void FinishLockRequest(Txn* txn);
  void Grant(Txn* txn);
  void StartSubTransaction(Txn* txn, int32_t node);
  void OnSubTransactionDone(Txn* txn);
  void Complete(Txn* txn);

  Txn* CreateTransaction(double arrival_time);
  void DestroyTransaction(Txn* txn);
  void EnqueuePending(Txn* txn, bool at_tail);
  void UpdateQueueStats();
  void BeginMeasurement();
  /// Observability: cache registry instruments / declare sampler columns.
  void SetUpObservability();
  /// One periodic sampler row (runs as an observer event).
  void SampleTick();
  /// One periodic contention-profiler sample (observer event; only
  /// scheduled when options_.obs.contention is set).
  void ContentionTick();
  /// Self-rescheduling watchdog poll chain (observer events; see
  /// Options::watchdog).
  void ScheduleWatchdogPoll();
  /// Post-run self-profiling gauges (event counts, queue HWM, events/sec).
  void PublishRunProfile(double wall_seconds);
  /// Adaptive admission: periodically retune the MPL cap from the denial
  /// rate observed in the last window.
  void AdaptAdmissionCap();
  int64_t EffectiveCap() const;

  model::SystemConfig cfg_;
  workload::WorkloadSpec spec_;
  Options options_;
  /// Built in `Run()` (needs a validated spec); amortizes lock-demand and
  /// node-set work across the millions of transactions one run creates.
  std::optional<workload::TransactionFactory> txn_factory_;
  /// `options_.arena` or the private fallback; backs Txn scratch vectors.
  util::Arena* arena_ = nullptr;
  std::unique_ptr<util::Arena> owned_arena_;
  Rng rng_;
  /// Profiler-private stream for imputed granule attribution (the
  /// probabilistic conflict model has no real lock table). Never draws
  /// from `rng_`, so profiling cannot perturb the simulation.
  Rng contention_rng_;
  model::ConflictModel conflict_;

  sim::Simulator sim_;
  std::vector<std::unique_ptr<sim::PriorityServer>> cpu_;
  std::vector<std::unique_ptr<sim::PriorityServer>> io_;
  sim::BusyUnionTracker cpu_union_;
  sim::BusyUnionTracker io_union_;

  std::deque<Txn*> pending_;
  std::vector<Txn*> active_;  // holding locks, running sub-transactions
  std::vector<std::unique_ptr<Txn>> live_txns_;
  std::vector<std::unique_ptr<Txn>> txn_pool_;  // recycled Txn objects
  /// Exact sum of `params.lu` over `active_` (maintained at grant /
  /// complete, audited in CheckConsistency). Lets the conflict draw skip
  /// the partial-sum scan entirely whenever the scaled variate exceeds the
  /// total — the common case at low contention — without changing any
  /// outcome: integer partial sums below 2^53 are exact in a double, so
  /// "variate > total" is precisely the old loop's fall-through condition.
  int64_t active_lu_total_ = 0;
  int64_t blocked_count_ = 0;
  int outstanding_lock_requests_ = 0;

  // Measurement state (reset at warmup).
  int64_t totcom_ = 0;
  int64_t lock_requests_ = 0;
  int64_t lock_denials_ = 0;
  sim::RunningStat response_;
  sim::QuantileEstimator response_quantiles_;
  sim::TimeWeightedStat active_stat_;
  sim::TimeWeightedStat blocked_stat_;
  sim::TimeWeightedStat pending_stat_;
  double window_start_ = 0.0;

  // Response-time decomposition (always on; see SimulationMetrics).
  sim::RunningStat phase_pending_;
  sim::RunningStat phase_lock_;
  sim::RunningStat phase_io_;
  sim::RunningStat phase_cpu_;
  sim::RunningStat phase_sync_;

  // Cached registry instruments (null unless options_.obs.registry set).
  obs::Counter* ctr_txn_created_ = nullptr;
  obs::Counter* ctr_lock_requests_ = nullptr;
  obs::Counter* ctr_lock_denials_ = nullptr;
  obs::Counter* ctr_lock_grants_ = nullptr;
  obs::Counter* ctr_subtxns_done_ = nullptr;
  obs::Counter* ctr_txn_completed_ = nullptr;
  obs::Histogram* hist_response_ = nullptr;

  // Sampler baselines for per-interval deltas (utilization, throughput).
  std::vector<double> sample_cpu_busy_;
  std::vector<double> sample_io_busy_;
  int64_t sample_totcom_ = 0;
  double sample_time_ = 0.0;

  // Adaptive admission controller state.
  int64_t adaptive_cap_ = 0;
  int64_t window_requests_ = 0;
  int64_t window_denials_ = 0;

  uint64_t next_txn_id_ = 1;
  bool ran_ = false;
};

}  // namespace granulock::core

#endif  // GRANULOCK_CORE_GRANULARITY_SIMULATOR_H_
