#ifndef GRANULOCK_CORE_PARALLEL_RUNNER_H_
#define GRANULOCK_CORE_PARALLEL_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace granulock::core {

/// Resolves a user-requested worker-thread count (the benches' `--threads`
/// flag): 0 means "use the hardware" (`std::thread::hardware_concurrency`,
/// at least 1), a positive value is taken verbatim, and a negative value is
/// an InvalidArgument error.
Result<int> ResolveThreadCount(int64_t requested);

/// A fixed-size worker pool for embarrassingly parallel simulation work —
/// the (sweep point × replication) grid every figure in the paper runs.
///
/// Each task is an independent simulation with its own `Simulator`/`Rng`,
/// so workers share nothing; the pool only hands out indices. Determinism
/// is the caller's contract: task *inputs* (seeds, configs) are computed
/// before the fan-out and *outputs* are merged in index order after the
/// join, so results are bit-identical for any thread count, including 1.
///
/// With `threads == 1` (or a single task) `ParallelFor` runs inline on the
/// calling thread and no worker threads are ever created — that path is
/// byte-for-byte the historical serial execution.
class ParallelRunner {
 public:
  /// Creates a runner with `threads` >= 1 workers. Workers start lazily on
  /// the first multi-task `ParallelFor`.
  explicit ParallelRunner(int threads);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  int threads() const { return threads_; }

  /// Runs `fn(i)` for every i in [0, n), blocking until all calls return.
  /// Calls may execute on any worker in any order; `fn` must be safe to
  /// call concurrently for distinct indices and should not throw: the
  /// cell-containment layer (`core::RunCell`) catches failures and turns
  /// them into data. As defense in depth, an exception that does escape
  /// `fn` on a worker is captured (first one wins), the batch still drains
  /// to completion, and the exception is rethrown as a std::runtime_error
  /// on the calling thread after the join — never std::terminate.
  /// Reentrant calls (from inside `fn`) are not supported.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      GRANULOCK_EXCLUDES(mu_, error_mu_);

 private:
  void WorkerLoop() GRANULOCK_EXCLUDES(mu_, error_mu_);
  void EnsureWorkersStarted() GRANULOCK_REQUIRES(mu_);
  /// Wraps one `fn(i)` call, capturing the first escaped exception into
  /// `batch_error_`.
  void RunTask(const std::function<void(size_t)>& fn, size_t i)
      GRANULOCK_EXCLUDES(error_mu_);

  const int threads_;

  // Batch hand-off state, guarded by mu_. `epoch_` increments per batch;
  // workers pull task indices from the lock-free `next_` counter.
  granulock::Mutex mu_;
  granulock::CondVar work_cv_;
  granulock::CondVar done_cv_;
  std::vector<std::thread> workers_ GRANULOCK_GUARDED_BY(mu_);
  const std::function<void(size_t)>* fn_ GRANULOCK_GUARDED_BY(mu_) = nullptr;
  size_t n_ GRANULOCK_GUARDED_BY(mu_) = 0;
  std::atomic<size_t> next_{0};
  uint64_t epoch_ GRANULOCK_GUARDED_BY(mu_) = 0;
  int workers_done_ GRANULOCK_GUARDED_BY(mu_) = 0;
  bool stop_ GRANULOCK_GUARDED_BY(mu_) = false;

  // First exception that escaped `fn` in the current batch. error_mu_ is
  // never held together with mu_ today; the ACQUIRED_AFTER declares the
  // one legal nesting (mu_ before error_mu_) should that ever change,
  // and granulock-latch-order folds the declaration into the global
  // acquisition-order graph it proves acyclic.
  granulock::Mutex error_mu_ GRANULOCK_ACQUIRED_AFTER(mu_);
  bool batch_failed_ GRANULOCK_GUARDED_BY(error_mu_) = false;
  std::string batch_error_ GRANULOCK_GUARDED_BY(error_mu_);
};

}  // namespace granulock::core

#endif  // GRANULOCK_CORE_PARALLEL_RUNNER_H_
