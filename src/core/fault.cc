#include "core/fault.h"

#include "util/fileio.h"
#include "util/strings.h"
#include "util/wall_clock.h"

namespace granulock::fault {

const char* InjectionPointName(InjectionPoint point) {
  switch (point) {
    case InjectionPoint::kCellThrow:
      return "cell_throw";
    case InjectionPoint::kCellTimeout:
      return "cell_timeout";
    case InjectionPoint::kCellAuditFail:
      return "cell_audit_fail";
    case InjectionPoint::kWriteShortWrite:
      return "write_short_write";
    case InjectionPoint::kSignalMidSweep:
      return "signal_mid_sweep";
    case InjectionPoint::kPolicyVictimFlip:
      return "policy_victim_flip";
  }
  return "?";
}

Injector& Injector::Global() {
  static Injector* instance = new Injector();
  return *instance;
}

void Injector::Arm(InjectionPoint point, ArmSpec spec) {
  granulock::MutexLock lock(&mu_);
  PointState& state = points_[static_cast<int>(point)];
  state.armed = true;
  state.spec = spec;
  state.hits = 0;
  state.fires = 0;
  armed_any_.store(true, std::memory_order_relaxed);
}

void Injector::DisarmAll() {
  granulock::MutexLock lock(&mu_);
  for (PointState& state : points_) state = PointState{};
  armed_any_.store(false, std::memory_order_relaxed);
}

bool Injector::ShouldFire(InjectionPoint point, uint64_t key) {
  if (!armed()) return false;  // inert fast path
  granulock::MutexLock lock(&mu_);
  PointState& state = points_[static_cast<int>(point)];
  if (!state.armed) return false;
  if (state.spec.key != kAnyKey && state.spec.key != key) return false;
  const uint64_t hit = state.hits++;
  if (hit < state.spec.fire_at_hit) return false;
  if (state.spec.max_fires > 0 &&
      state.fires >= static_cast<uint64_t>(state.spec.max_fires)) {
    return false;
  }
  ++state.fires;
  return true;
}

uint64_t Injector::hits(InjectionPoint point) const {
  granulock::MutexLock lock(&mu_);
  return points_[static_cast<int>(point)].hits;
}

uint64_t Injector::fires(InjectionPoint point) const {
  granulock::MutexLock lock(&mu_);
  return points_[static_cast<int>(point)].fires;
}

Status Injector::ArmFromFlag(const std::string& spec) {
  // <point>@<hit>[xN][:key=<u64>]
  const size_t at = spec.find('@');
  if (at == std::string::npos) {
    return Status::InvalidArgument(
        "fault spec must look like <point>@<hit> (e.g. cell_throw@3), got '" +
        spec + "'");
  }
  const std::string point_name = spec.substr(0, at);
  InjectionPoint point{};
  bool found = false;
  for (int p = 0; p < kNumInjectionPoints; ++p) {
    if (point_name == InjectionPointName(static_cast<InjectionPoint>(p))) {
      point = static_cast<InjectionPoint>(p);
      found = true;
      break;
    }
  }
  if (!found) {
    std::string known;
    for (int p = 0; p < kNumInjectionPoints; ++p) {
      if (p > 0) known += ", ";
      known += InjectionPointName(static_cast<InjectionPoint>(p));
    }
    return Status::InvalidArgument("unknown injection point '" + point_name +
                                   "' (known: " + known + ")");
  }

  std::string rest = spec.substr(at + 1);
  ArmSpec arm;
  const size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    const std::string key_part = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
    if (!StartsWith(key_part, "key=")) {
      return Status::InvalidArgument("expected key=<u64> after ':' in '" +
                                     spec + "'");
    }
    int64_t key = 0;
    if (!ParseInt64(key_part.substr(4), &key) || key < 0) {
      return Status::InvalidArgument("bad key in fault spec '" + spec + "'");
    }
    arm.key = static_cast<uint64_t>(key);
  }
  const size_t x = rest.find('x');
  if (x != std::string::npos) {
    int64_t fires = 0;
    if (!ParseInt64(rest.substr(x + 1), &fires) || fires < 0) {
      return Status::InvalidArgument("bad fire count in fault spec '" + spec +
                                     "'");
    }
    arm.max_fires = fires;  // 0 = unlimited
    rest = rest.substr(0, x);
  }
  int64_t hit = 0;
  if (!ParseInt64(rest, &hit) || hit < 0) {
    return Status::InvalidArgument("bad hit ordinal in fault spec '" + spec +
                                   "'");
  }
  arm.fire_at_hit = static_cast<uint64_t>(hit);
  Arm(point, arm);

  if (point == InjectionPoint::kWriteShortWrite) {
    // Wire the util-layer atomic writer to this injector: when the point
    // fires, the write is truncated to half its payload.
    SetShortWriteHook([](const std::string& path) -> int64_t {
      // Key the evaluation by the path length; hit-ordinal arming is the
      // useful addressing mode for writes.
      if (Injector::Global().ShouldFire(InjectionPoint::kWriteShortWrite,
                                        path.size())) {
        return 1;  // one byte lands, then the "crash"
      }
      return -1;
    });
  }
  return Status::OK();
}

void Injector::DisarmShortWriteHook() { SetShortWriteHook(nullptr); }

CellWatchdog::CellWatchdog(double timeout_s,
                           const std::atomic<bool>* interrupt, uint64_t key)
    : timeout_s_(timeout_s), interrupt_(interrupt), key_(key) {
  if (timeout_s_ > 0.0) {
    deadline_s_ = MonotonicSeconds() + timeout_s_;
  }
}

bool CellWatchdog::active() const {
  return timeout_s_ > 0.0 || interrupt_ != nullptr ||
         Injector::Global().armed();
}

void CellWatchdog::Poll() const {
  if (interrupt_ != nullptr &&
      interrupt_->load(std::memory_order_relaxed)) {
    throw CellInterrupted("interrupted (SIGINT/SIGTERM)");
  }
  if (Injector::Global().ShouldFire(InjectionPoint::kCellTimeout, key_)) {
    throw CellTimeout("injected cell timeout (kCellTimeout)");
  }
  if (timeout_s_ > 0.0 && MonotonicSeconds() >= deadline_s_) {
    throw CellTimeout(
        StrFormat("cell exceeded --cell_timeout_s=%g", timeout_s_));
  }
}

}  // namespace granulock::fault
