#ifndef GRANULOCK_CORE_FAULT_H_
#define GRANULOCK_CORE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

/// Deterministic fault-injection harness for the experiment runner, in the
/// spirit of the paper's own methodology: you only trust a system's
/// behavior under stress you can reproduce exactly. Injection points are
/// compiled in always but completely inert unless armed (one relaxed
/// atomic load on the fast path), so production bench runs pay nothing.
///
/// Each evaluation of a point carries a *key* — the cell's derived PRNG
/// seed for the cell-level points — so faults are seed-addressable: arming
/// `{point, key}` hits the same logical cell regardless of worker
/// scheduling, thread count, or sweep order. Alternatively a point can be
/// armed by hit ordinal (fire on the Nth evaluation), which is
/// deterministic for serial runs and for per-cell points keyed off the
/// deterministic cell grid.
namespace granulock::fault {

/// The catalog of injection points (see docs/ROBUSTNESS.md).
enum class InjectionPoint {
  kCellThrow = 0,      ///< throw std::runtime_error inside a cell body
  kCellTimeout = 1,    ///< force the cell watchdog to expire at its next poll
  kCellAuditFail = 2,  ///< route an invariants::Fail through a cell
  kWriteShortWrite = 3,///< truncate an atomic file write mid-stream
  kSignalMidSweep = 4, ///< raise SIGTERM after a cell completes
  kPolicyVictimFlip = 5, ///< corrupt one contention-policy victim choice
};

inline constexpr int kNumInjectionPoints = 6;

/// Stable spec name ("cell_throw", "cell_timeout", "cell_audit_fail",
/// "write_short_write", "signal_mid_sweep", "policy_victim_flip").
const char* InjectionPointName(InjectionPoint point);

/// Key wildcard: the armed fault matches any evaluation key.
inline constexpr uint64_t kAnyKey = ~uint64_t{0};

/// How an armed point fires.
struct ArmSpec {
  /// 0-based evaluation ordinal (per point, counted only over evaluations
  /// whose key matches) at which the fault starts firing.
  uint64_t fire_at_hit = 0;
  /// How many matching evaluations fire after `fire_at_hit` (<= 0 means
  /// every one from `fire_at_hit` on).
  int64_t max_fires = 1;
  /// Only evaluations with this key fire; `kAnyKey` matches all.
  uint64_t key = kAnyKey;
};

/// The process-wide injector. Thread-safe: cells evaluate points from
/// ParallelRunner workers. Tests arm/disarm around runs; the benches arm
/// from `--fault_inject`.
class Injector {
 public:
  static Injector& Global();

  /// Arms `point` with `spec` (resets the point's hit counter).
  void Arm(InjectionPoint point, ArmSpec spec) GRANULOCK_EXCLUDES(mu_);

  /// Disarms every point and resets all counters. Does not clear the
  /// util fileio short-write hook installed by `ArmFromFlag` — call
  /// `DisarmShortWriteHook` for that (tests).
  void DisarmAll() GRANULOCK_EXCLUDES(mu_);

  /// True when any point is armed (one relaxed load; the inert fast path).
  bool armed() const {
    return armed_any_.load(std::memory_order_relaxed);
  }

  /// Evaluates `point` with `key`: increments the matching-hit counter and
  /// returns true when the armed spec says this evaluation faults.
  /// Always false when nothing is armed.
  bool ShouldFire(InjectionPoint point, uint64_t key)
      GRANULOCK_EXCLUDES(mu_);

  /// Diagnostics for tests: matching evaluations / actual fires so far.
  uint64_t hits(InjectionPoint point) const GRANULOCK_EXCLUDES(mu_);
  uint64_t fires(InjectionPoint point) const GRANULOCK_EXCLUDES(mu_);

  /// Parses a `--fault_inject` spec and arms accordingly. Grammar:
  ///   <point>@<hit>[xN][:key=<u64>]
  /// e.g. "cell_throw@3", "cell_timeout@0x2", "cell_throw@1:key=7".
  /// Arming kWriteShortWrite also installs the util fileio short-write
  /// hook so the atomic writer consults this injector.
  Status ArmFromFlag(const std::string& spec);

  /// Removes the fileio short-write hook (test teardown).
  static void DisarmShortWriteHook();

 private:
  Injector() = default;

  struct PointState {
    bool armed = false;
    ArmSpec spec;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  mutable granulock::Mutex mu_;
  PointState points_[kNumInjectionPoints] GRANULOCK_GUARDED_BY(mu_);
  std::atomic<bool> armed_any_{false};
};

/// Thrown by `CellWatchdog::Poll` when the cell's wall-clock deadline
/// expires (or kCellTimeout fires). Converted to a DeadlineExceeded
/// `CellOutcome` by the contained runner.
class CellTimeout : public std::runtime_error {
 public:
  explicit CellTimeout(const std::string& message)
      : std::runtime_error(message) {}
};

/// Thrown by `CellWatchdog::Poll` when the run-level interrupt flag
/// (SIGINT/SIGTERM) is set. Converted to a Cancelled `CellOutcome`; never
/// retried.
class CellInterrupted : public std::runtime_error {
 public:
  explicit CellInterrupted(const std::string& message)
      : std::runtime_error(message) {}
};

/// Per-cell cooperative deadline watchdog. The engine schedules a
/// repeating *observer* event (excluded from the executed-event count, so
/// arming a watchdog never changes simulated results) that calls `Poll()`;
/// cancellation therefore happens at deterministic simulated-time
/// boundaries, via ordinary stack unwinding out of the event loop.
class CellWatchdog {
 public:
  /// `timeout_s` <= 0 disables the wall-clock deadline; `interrupt` may be
  /// null; `key` addresses kCellTimeout injection (the cell's seed).
  CellWatchdog(double timeout_s, const std::atomic<bool>* interrupt,
               uint64_t key);

  /// True when polling can ever fire: a deadline is set, an interrupt flag
  /// is attached, or kCellTimeout is armed. Engines skip scheduling the
  /// observer chain entirely when false.
  bool active() const;

  /// Throws CellTimeout / CellInterrupted when the cell must stop;
  /// otherwise returns. Safe to call from any point of the cell body.
  void Poll() const;

  /// Simulated-time spacing of watchdog observer polls.
  double poll_interval() const { return poll_interval_; }

 private:
  double timeout_s_;
  const std::atomic<bool>* interrupt_;
  uint64_t key_;
  double poll_interval_ = 50.0;
  double deadline_s_ = 0.0;  ///< MonotonicSeconds() deadline; 0 = no deadline.
};

}  // namespace granulock::fault

#endif  // GRANULOCK_CORE_FAULT_H_
