#include "core/granularity_simulator.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/invariants.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/wall_clock.h"

namespace granulock::core {

using sim::ServiceClass;

/// One live transaction. `params` is drawn once at creation; `blocked`
/// lists the transactions this one is currently blocking.
struct GranularitySimulator::Txn {
  /// Scratch vectors draw from the run's arena: they grow to steady-state
  /// capacity once and are reclaimed wholesale when the replication's
  /// arena resets, so pooled reuse never touches the heap.
  explicit Txn(util::Arena* arena)
      : blocked(util::ArenaAllocator<Txn*>(arena)),
        sub_cpu_done(
            util::ArenaAllocator<std::pair<int32_t, double>>(arena)) {}

  uint64_t id = 0;
  workload::TransactionParams params;
  double arrival_time = 0.0;  // first entry into the pending queue
  int64_t subtxns_remaining = 0;
  // Nodes still owed their share of the current lock-processing phase
  // (I/O, then CPU). Lives in the transaction so the fan-in completions
  // capture only {this, txn} — no per-phase allocation.
  int64_t lock_fanin_remaining = 0;
  std::vector<Txn*, util::ArenaAllocator<Txn*>> blocked;

  // Phase accounting (always on). The five per-txn phase values sum to
  // the response time exactly: pending/lock intervals tile [arrival,
  // grant], and each sub-transaction's io/cpu/sync spans tile [grant,
  // completion], so their mean over `pu` sub-transactions does too.
  double pending_since = 0.0;  // entered the pending queue (current stint)
  double lock_since = 0.0;     // left pending / started lock processing
  double grant_time = 0.0;     // locks granted, sub-transactions fanned out
  double pending_wait = 0.0;   // accumulated over all pending stints
  double lock_wait = 0.0;      // accumulated over all lock attempts
  double io_span_sum = 0.0;    // sum over sub-txns of [grant, io done]
  double cpu_span_sum = 0.0;   // sum over sub-txns of [io done, cpu done]
  double cpu_done_sum = 0.0;   // sum of cpu-done timestamps (for sync)
  // (node, cpu-done) per sub-transaction; filled only when a SpanRecorder
  // is attached, to emit the sync spans at completion.
  std::vector<std::pair<int32_t, double>,
              util::ArenaAllocator<std::pair<int32_t, double>>>
      sub_cpu_done;

  /// Returns the transaction to its freshly-constructed state while keeping
  /// the vectors' capacity — pooled reuse must behave exactly like a new
  /// `Txn` minus the allocations.
  void Reset() {
    id = 0;
    arrival_time = 0.0;
    subtxns_remaining = 0;
    lock_fanin_remaining = 0;
    blocked.clear();
    pending_since = 0.0;
    lock_since = 0.0;
    grant_time = 0.0;
    pending_wait = 0.0;
    lock_wait = 0.0;
    io_span_sum = 0.0;
    cpu_span_sum = 0.0;
    cpu_done_sum = 0.0;
    sub_cpu_done.clear();
  }
};

GranularitySimulator::GranularitySimulator(model::SystemConfig cfg,
                                           workload::WorkloadSpec spec,
                                           uint64_t seed, Options options)
    : cfg_(std::move(cfg)),
      spec_(std::move(spec)),
      options_(options),
      rng_(seed),
      contention_rng_(seed ^ 0x5deece66d1ce4e5dull),
      conflict_(std::max<int64_t>(1, cfg_.ltot)) {}

GranularitySimulator::GranularitySimulator(model::SystemConfig cfg,
                                           workload::WorkloadSpec spec,
                                           uint64_t seed)
    : GranularitySimulator(std::move(cfg), std::move(spec), seed, Options{}) {}

GranularitySimulator::~GranularitySimulator() = default;

Result<SimulationMetrics> GranularitySimulator::RunOnce(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    uint64_t seed, Options options) {
  GranularitySimulator simulator(cfg, spec, seed, options);
  return simulator.Run();
}

Result<SimulationMetrics> GranularitySimulator::RunOnce(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    uint64_t seed) {
  return RunOnce(cfg, spec, seed, Options{});
}

Result<SimulationMetrics> GranularitySimulator::Run() {
  if (ran_) {
    return Status::FailedPrecondition("Run() may only be called once");
  }
  ran_ = true;
  const WallTimer wall_timer;
  GRANULOCK_RETURN_NOT_OK(cfg_.Validate());
  GRANULOCK_RETURN_NOT_OK(spec_.Validate(cfg_));
  if (options_.arena != nullptr) {
    arena_ = options_.arena;
  } else {
    owned_arena_ = std::make_unique<util::Arena>();
    arena_ = owned_arena_.get();
  }
  txn_factory_.emplace(cfg_, spec_);
  if (options_.max_active < 0) {
    return Status::InvalidArgument("max_active must be >= 0");
  }
  if (options_.adaptive_admission) {
    if (options_.adaptation_interval <= 0.0) {
      return Status::InvalidArgument("adaptation_interval must be positive");
    }
    if (options_.target_denial_rate <= 0.0 ||
        options_.target_denial_rate >= 1.0) {
      return Status::InvalidArgument("target_denial_rate must be in (0,1)");
    }
    adaptive_cap_ = cfg_.ntrans;  // start permissive, tighten on evidence
    sim_.ScheduleAt(options_.adaptation_interval,
                    [this] { AdaptAdmissionCap(); });
  }

  const size_t ntrans = static_cast<size_t>(cfg_.ntrans);
  active_.reserve(ntrans);
  live_txns_.reserve(ntrans + 1);
  txn_pool_.reserve(ntrans + 1);
  cpu_.reserve(static_cast<size_t>(cfg_.npros));
  io_.reserve(static_cast<size_t>(cfg_.npros));
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    cpu_.push_back(std::make_unique<sim::PriorityServer>(
        &sim_, StrFormat("cpu%lld", (long long)n)));
    io_.push_back(std::make_unique<sim::PriorityServer>(
        &sim_, StrFormat("io%lld", (long long)n)));
    cpu_.back()->SetBusyUnion(&cpu_union_);
    io_.back()->SetBusyUnion(&io_union_);
  }

  SetUpObservability();

  active_stat_.Start(0.0, 0.0);
  blocked_stat_.Start(0.0, 0.0);
  pending_stat_.Start(0.0, 0.0);
  window_start_ = cfg_.warmup;
  if (cfg_.warmup > 0.0) {
    sim_.ScheduleAt(cfg_.warmup, [this] { BeginMeasurement(); });
  }

  InjectInitialTransactions();
  if (options_.watchdog != nullptr && options_.watchdog->active()) {
    ScheduleWatchdogPoll();
  }
  sim_.RunUntil(cfg_.tmax);

  SimulationMetrics m;
  m.measured_time = cfg_.tmax - window_start_;
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    m.totcpus_sum += cpu_[static_cast<size_t>(n)]->TotalBusyTime();
    m.totios_sum += io_[static_cast<size_t>(n)]->TotalBusyTime();
    m.lockcpus_sum +=
        cpu_[static_cast<size_t>(n)]->BusyTime(ServiceClass::kLock);
    m.lockios_sum +=
        io_[static_cast<size_t>(n)]->BusyTime(ServiceClass::kLock);
  }
  m.totcpus = cpu_union_.AnyBusyTime(cfg_.tmax);
  m.lockcpus = cpu_union_.LockBusyTime(cfg_.tmax);
  m.totios = io_union_.AnyBusyTime(cfg_.tmax);
  m.lockios = io_union_.LockBusyTime(cfg_.tmax);
  const double npros = static_cast<double>(cfg_.npros);
  m.usefulcpus = (m.totcpus - m.lockcpus) / npros;
  m.usefulios = (m.totios - m.lockios) / npros;
  m.totcom = totcom_;
  m.throughput =
      m.measured_time > 0.0 ? static_cast<double>(totcom_) / m.measured_time
                            : 0.0;
  m.response_time = response_.Mean();
  m.response_time_stddev = response_.StdDev();
  m.response_p50 = response_quantiles_.Quantile(0.50);
  m.response_p95 = response_quantiles_.Quantile(0.95);
  m.response_p99 = response_quantiles_.Quantile(0.99);
  m.lock_requests = lock_requests_;
  m.lock_denials = lock_denials_;
  m.denial_rate = lock_requests_ > 0 ? static_cast<double>(lock_denials_) /
                                           static_cast<double>(lock_requests_)
                                     : 0.0;
  m.avg_active = active_stat_.Average(cfg_.tmax);
  m.avg_blocked = blocked_stat_.Average(cfg_.tmax);
  m.avg_pending = pending_stat_.Average(cfg_.tmax);
  m.cpu_utilization =
      m.measured_time > 0.0 ? m.totcpus_sum / (npros * m.measured_time)
                            : 0.0;
  m.io_utilization =
      m.measured_time > 0.0 ? m.totios_sum / (npros * m.measured_time) : 0.0;
  m.events_executed = sim_.ExecutedEvents();
  m.phase_pending_wait = phase_pending_.Mean();
  m.phase_lock_wait = phase_lock_.Mean();
  m.phase_io_service = phase_io_.Mean();
  m.phase_cpu_service = phase_cpu_.Mean();
  m.phase_sync_wait = phase_sync_.Mean();

  const double wall_seconds = wall_timer.Seconds();
  PublishRunProfile(wall_seconds);
  return m;
}

void GranularitySimulator::SetUpObservability() {
  if (options_.obs.registry != nullptr) {
    auto* reg = options_.obs.registry;
    ctr_txn_created_ = reg->GetCounter("engine.txn_created");
    ctr_lock_requests_ = reg->GetCounter("engine.lock_requests");
    ctr_lock_denials_ = reg->GetCounter("engine.lock_denials");
    ctr_lock_grants_ = reg->GetCounter("engine.lock_grants");
    ctr_subtxns_done_ = reg->GetCounter("engine.subtxns_completed");
    ctr_txn_completed_ = reg->GetCounter("engine.txn_completed");
    hist_response_ = reg->GetHistogram(
        "engine.response_time",
        {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000});
  }
  if (options_.obs.sampler != nullptr) {
    auto* sampler = options_.obs.sampler;
    std::vector<std::string> cols = {"active", "blocked", "pending",
                                     "throughput"};
    for (int64_t n = 0; n < cfg_.npros; ++n) {
      cols.push_back(StrFormat("cpu%lld_util", (long long)n));
    }
    for (int64_t n = 0; n < cfg_.npros; ++n) {
      cols.push_back(StrFormat("disk%lld_util", (long long)n));
    }
    sampler->SetColumns(std::move(cols));
    sample_cpu_busy_.assign(static_cast<size_t>(cfg_.npros), 0.0);
    sample_io_busy_.assign(static_cast<size_t>(cfg_.npros), 0.0);
    const double iv = sampler->interval();
    if (iv > 0.0 && iv <= cfg_.tmax) {
      sim_.ScheduleObserverAt(iv, [this] { SampleTick(); });
    }
  }
  if (options_.obs.contention != nullptr) {
    auto* prof = options_.obs.contention;
    prof->BeginRun(cfg_.ltot, /*imputed=*/true);
    const double iv = prof->options().sample_interval;
    if (iv > 0.0 && iv <= cfg_.tmax) {
      sim_.ScheduleObserverAt(iv, [this] { ContentionTick(); });
    }
  }
}

void GranularitySimulator::ScheduleWatchdogPoll() {
  sim_.ScheduleObserverAfter(options_.watchdog->poll_interval(), [this] {
    options_.watchdog->Poll();  // throws to cancel the cell
    ScheduleWatchdogPoll();
  });
}

void GranularitySimulator::SampleTick() {
  auto* sampler = options_.obs.sampler;
  const double now = sim_.Now();
  const double dt = now - sample_time_;
  std::vector<double> row;
  row.reserve(4 + 2 * static_cast<size_t>(cfg_.npros));
  row.push_back(static_cast<double>(active_.size()));
  row.push_back(static_cast<double>(blocked_count_));
  row.push_back(static_cast<double>(pending_.size()));
  // Interval deltas are clamped at 0: the warmup reset zeroes the
  // underlying totals mid-stream, so the one row straddling the warmup
  // boundary under-reports rather than going negative.
  row.push_back(dt > 0.0 ? std::max(0.0, static_cast<double>(
                                             totcom_ - sample_totcom_)) /
                               dt
                         : 0.0);
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    const size_t i = static_cast<size_t>(n);
    const double busy = cpu_[i]->TotalBusyTime();
    row.push_back(dt > 0.0
                      ? std::max(0.0, busy - sample_cpu_busy_[i]) / dt
                      : 0.0);
    sample_cpu_busy_[i] = busy;
  }
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    const size_t i = static_cast<size_t>(n);
    const double busy = io_[i]->TotalBusyTime();
    row.push_back(dt > 0.0 ? std::max(0.0, busy - sample_io_busy_[i]) / dt
                           : 0.0);
    sample_io_busy_[i] = busy;
  }
  sample_totcom_ = totcom_;
  sample_time_ = now;
  sampler->Push(now, std::move(row));
  const double iv = sampler->interval();
  if (now + iv <= cfg_.tmax) {
    sim_.ScheduleObserverAfter(iv, [this] { SampleTick(); });
  }
}

void GranularitySimulator::ContentionTick() {
  auto* prof = options_.obs.contention;
  const double now = sim_.Now();
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (const Txn* holder : active_) {
    for (const Txn* waiter : holder->blocked) {
      edges.emplace_back(waiter->id, holder->id);
    }
  }
  const double ntrans = static_cast<double>(cfg_.ntrans);
  const double blocked_fraction =
      ntrans > 0.0 ? static_cast<double>(blocked_count_) / ntrans : 0.0;
  // The probabilistic engine has no lock table; occupancy is estimated
  // from the locks the active transactions nominally hold.
  const int64_t locks_held = active_lu_total_;
  const double occupancy =
      cfg_.ltot > 0
          ? std::min(1.0, static_cast<double>(locks_held) /
                              static_cast<double>(cfg_.ltot))
          : 0.0;
  prof->OnSample(now, blocked_fraction, occupancy, std::move(edges));
  const double iv = prof->options().sample_interval;
  if (now + iv <= cfg_.tmax) {
    sim_.ScheduleObserverAfter(iv, [this] { ContentionTick(); });
  }
}

void GranularitySimulator::PublishRunProfile(double wall_seconds) {
  if (options_.obs.registry == nullptr) return;
  auto* reg = options_.obs.registry;
  reg->GetGauge("sim.events_executed")
      ->Set(static_cast<double>(sim_.ExecutedEvents()));
  reg->GetGauge("sim.observer_events")
      ->Set(static_cast<double>(sim_.ExecutedObserverEvents()));
  reg->GetGauge("sim.event_queue_hwm")
      ->Set(static_cast<double>(sim_.MaxPendingEvents()));
  reg->GetGauge("engine.wall_seconds")->Set(wall_seconds);
  reg->GetGauge("engine.events_per_sec")
      ->Set(wall_seconds > 0.0
                ? static_cast<double>(sim_.ExecutedEvents()) / wall_seconds
                : 0.0);
}

void GranularitySimulator::BeginMeasurement() {
  for (auto& server : cpu_) server->ResetStats();
  for (auto& server : io_) server->ResetStats();
  totcom_ = 0;
  lock_requests_ = 0;
  lock_denials_ = 0;
  response_.Reset();
  response_quantiles_.Reset();
  phase_pending_.Reset();
  phase_lock_.Reset();
  phase_io_.Reset();
  phase_cpu_.Reset();
  phase_sync_.Reset();
  sample_totcom_ = 0;
  std::fill(sample_cpu_busy_.begin(), sample_cpu_busy_.end(), 0.0);
  std::fill(sample_io_busy_.begin(), sample_io_busy_.end(), 0.0);
  const double now = sim_.Now();
  cpu_union_.ResetWindow(now);
  io_union_.ResetWindow(now);
  active_stat_.ResetWindow(now);
  blocked_stat_.ResetWindow(now);
  pending_stat_.ResetWindow(now);
  window_start_ = now;
}

void GranularitySimulator::InjectInitialTransactions() {
  // "Initially, transactions arrive one time unit apart and they are put on
  // the pending queue."
  for (int64_t i = 0; i < cfg_.ntrans; ++i) {
    const double at = static_cast<double>(i);
    sim_.ScheduleAt(at, [this] {
      Txn* txn = CreateTransaction(sim_.Now());
      EnqueuePending(txn, /*at_tail=*/true);
      PumpLockManager();
    });
  }
}

GranularitySimulator::Txn* GranularitySimulator::CreateTransaction(
    double arrival_time) {
  std::unique_ptr<Txn> owned;
  if (!txn_pool_.empty()) {
    owned = std::move(txn_pool_.back());
    txn_pool_.pop_back();
  } else {
    owned = std::make_unique<Txn>(arena_);
  }
  Txn* txn = owned.get();
  txn->id = next_txn_id_++;
  txn_factory_->Generate(rng_, &txn->params);
  txn->arrival_time = arrival_time;
  if (ctr_txn_created_ != nullptr) ctr_txn_created_->Increment();
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id, sim::TraceEventType::kCreated,
                           txn->params.nu);
  }
  live_txns_.push_back(std::move(owned));
  return txn;
}

void GranularitySimulator::DestroyTransaction(Txn* txn) {
  auto it = std::find_if(
      live_txns_.begin(), live_txns_.end(),
      [txn](const std::unique_ptr<Txn>& p) { return p.get() == txn; });
  GRANULOCK_CHECK(it != live_txns_.end());
  // Swap-erase: order of ownership storage is irrelevant. The transaction
  // object is recycled through the pool (a closed system churns through
  // one short-lived Txn per completion otherwise).
  (*it)->Reset();
  txn_pool_.push_back(std::move(*it));
  *it = std::move(live_txns_.back());
  live_txns_.pop_back();
}

void GranularitySimulator::EnqueuePending(Txn* txn, bool at_tail) {
  txn->pending_since = sim_.Now();
  if (at_tail) {
    pending_.push_back(txn);
  } else {
    pending_.push_front(txn);
  }
  UpdateQueueStats();
}

void GranularitySimulator::UpdateQueueStats() {
  const double now = sim_.Now();
  active_stat_.Update(now, static_cast<double>(active_.size()));
  blocked_stat_.Update(now, static_cast<double>(blocked_count_));
  pending_stat_.Update(now, static_cast<double>(pending_.size()));
}

int64_t GranularitySimulator::EffectiveCap() const {
  if (options_.adaptive_admission) return adaptive_cap_;
  return options_.max_active;
}

void GranularitySimulator::AdaptAdmissionCap() {
  // AIMD on the multiprogramming level: denials waste lock-processing
  // capacity (the cost is charged whether or not the locks are granted),
  // so a high denial rate means too many transactions are competing.
  const int64_t requests = lock_requests_ - window_requests_;
  const int64_t denials = lock_denials_ - window_denials_;
  window_requests_ = lock_requests_;
  window_denials_ = lock_denials_;
  if (requests > 0) {
    const double rate =
        static_cast<double>(denials) / static_cast<double>(requests);
    if (rate > options_.target_denial_rate) {
      adaptive_cap_ = std::max<int64_t>(1, (adaptive_cap_ * 3) / 4);
    } else if (rate < 0.5 * options_.target_denial_rate) {
      adaptive_cap_ = std::min(cfg_.ntrans, adaptive_cap_ + 1);
      PumpLockManager();  // the looser cap may admit immediately
    }
  }
  if (sim_.Now() + options_.adaptation_interval <= cfg_.tmax) {
    sim_.ScheduleAfter(options_.adaptation_interval,
                       [this] { AdaptAdmissionCap(); });
  }
}

void GranularitySimulator::PumpLockManager() {
  const int64_t cap = EffectiveCap();
  while (!pending_.empty() &&
         (!options_.serialize_lock_manager ||
          outstanding_lock_requests_ == 0) &&
         (cap == 0 ||
          static_cast<int64_t>(active_.size()) + outstanding_lock_requests_ <
              cap)) {
    Txn* txn = pending_.front();
    pending_.pop_front();
    UpdateQueueStats();
    BeginLockRequest(txn);
  }
  if (sim::invariants::DeepAuditEnabled()) CheckConsistency();
}

void GranularitySimulator::CheckConsistency() const {
  GRANULOCK_AUDIT_CHECK_GE(outstanding_lock_requests_, 0);
  GRANULOCK_AUDIT_CHECK_GE(blocked_count_, 0);
  // Closed system: every live transaction is pending, paying lock cost,
  // blocked behind an active transaction, or active — nowhere else.
  GRANULOCK_AUDIT_CHECK_EQ(
      live_txns_.size(),
      pending_.size() + static_cast<size_t>(outstanding_lock_requests_) +
          static_cast<size_t>(blocked_count_) + active_.size())
      << "live=" << live_txns_.size() << " pending=" << pending_.size()
      << " in_lock=" << outstanding_lock_requests_
      << " blocked=" << blocked_count_ << " active=" << active_.size();
  // The blocked count is exactly the sum of the blockers' lists, and
  // only active (lock-holding) transactions may block others.
  size_t blocked_from_lists = 0;
  int64_t lu_total = 0;
  for (const Txn* txn : active_) {
    blocked_from_lists += txn->blocked.size();
    lu_total += txn->params.lu;
    GRANULOCK_AUDIT_CHECK_GT(txn->subtxns_remaining, 0)
        << "active txn " << txn->id << " has no sub-transactions left";
    GRANULOCK_AUDIT_CHECK_LE(txn->subtxns_remaining, txn->params.pu)
        << "active txn " << txn->id;
    // Conservative locking: only lock holders block others, so the
    // waits-for relation has depth one and is trivially acyclic.
    for (const Txn* waiter : txn->blocked) {
      GRANULOCK_AUDIT_CHECK(waiter->blocked.empty())
          << "blocked txn " << waiter->id
          << " blocks others: waits-for chain under conservative locking";
    }
  }
  GRANULOCK_AUDIT_CHECK_EQ(static_cast<size_t>(blocked_count_),
                           blocked_from_lists);
  // The incrementally maintained conflict-scan total never drifts from
  // the ground truth it summarizes.
  GRANULOCK_AUDIT_CHECK_EQ(active_lu_total_, lu_total)
      << "active_lu_total_ drifted from the sum over active_";
}

void GranularitySimulator::BeginLockRequest(Txn* txn) {
  ++outstanding_lock_requests_;
  ++lock_requests_;
  const double now = sim_.Now();
  txn->pending_wait += now - txn->pending_since;
  txn->lock_since = now;
  if (options_.obs.spans != nullptr) {
    options_.obs.spans->Record(txn->id, obs::Phase::kPendingWait,
                               obs::kLifecycleTrack, txn->pending_since,
                               now);
  }
  if (ctr_lock_requests_ != nullptr) ctr_lock_requests_->Increment();
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kLockRequested,
                           txn->params.lu);
  }
  StartLockIoPhase(txn);
}

void GranularitySimulator::StartLockIoPhase(Txn* txn) {
  // Lock-table I/O: the work is shared equally by all nodes' disks and
  // served at preemptive priority. The phase ends when every node finishes
  // its share.
  const double per_node =
      txn->params.lock_io_demand / static_cast<double>(cfg_.npros);
  if (per_node <= 0.0) {
    StartLockCpuPhase(txn);
    return;
  }
  // The fan-in counter lives in the transaction: the I/O and CPU lock
  // phases never overlap for one transaction, so the field is free for
  // reuse and the completion capture stays allocation-free.
  txn->lock_fanin_remaining = cfg_.npros;
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    io_[static_cast<size_t>(n)]->Submit(
        ServiceClass::kLock, per_node, [this, txn] {
          if (--txn->lock_fanin_remaining == 0) StartLockCpuPhase(txn);
        });
  }
}

void GranularitySimulator::StartLockCpuPhase(Txn* txn) {
  const double per_node =
      txn->params.lock_cpu_demand / static_cast<double>(cfg_.npros);
  if (per_node <= 0.0) {
    FinishLockRequest(txn);
    return;
  }
  txn->lock_fanin_remaining = cfg_.npros;
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    cpu_[static_cast<size_t>(n)]->Submit(
        ServiceClass::kLock, per_node, [this, txn] {
          if (--txn->lock_fanin_remaining == 0) FinishLockRequest(txn);
        });
  }
}

void GranularitySimulator::FinishLockRequest(Txn* txn) {
  --outstanding_lock_requests_;
  GRANULOCK_DCHECK_GE(outstanding_lock_requests_, 0)
      << "lock request for txn " << txn->id
      << " finished more often than it began";
  // Conflict draw over the active transactions' lock counts, equivalent to
  // `conflict_.DrawBlocker` on a vector of their `lu` values but without
  // materializing that vector: the running `active_lu_total_` decides the
  // common no-conflict case with a single comparison. The early-out is
  // exact (not a shortcut) while the total stays below 2^53, where every
  // partial sum the scan would form is an exactly-represented integer; a
  // larger total falls back to the scan so the outcome is still
  // bit-identical to the reference loop.
  int blocker = -1;
  if (!active_.empty()) {
    const double scaled = conflict_.DrawScaledVariate(rng_);
    if (active_lu_total_ >= (int64_t{1} << 53) ||
        scaled <= static_cast<double>(active_lu_total_)) {
      double cum = 0.0;
      for (size_t j = 0; j < active_.size(); ++j) {
        cum += static_cast<double>(active_[j]->params.lu);
        if (scaled <= cum) {
          blocker = static_cast<int>(j);
          break;
        }
      }
    }
  }
  if (blocker >= 0) {
    ++lock_denials_;
    if (ctr_lock_denials_ != nullptr) ctr_lock_denials_->Increment();
    Txn* blocking = active_[static_cast<size_t>(blocker)];
    if (options_.trace != nullptr) {
      options_.trace->Record(sim_.Now(), txn->id,
                             sim::TraceEventType::kLockDenied,
                             static_cast<int64_t>(blocking->id));
    }
    blocking->blocked.push_back(txn);
    ++blocked_count_;
    if (options_.obs.contention != nullptr) {
      // Granule attribution is imputed (the Ries–Stonebraker model names
      // no granule): drawn uniformly from a profiler-private stream.
      // Conservative X-only locking: depth is always 1.
      const int64_t granule =
          cfg_.ltot > 1 ? contention_rng_.UniformInt(0, cfg_.ltot - 1) : 0;
      options_.obs.contention->OnBlock(txn->id, granule, lockmgr::LockMode::kX,
                                       lockmgr::LockMode::kX,
                                       /*chain_depth=*/1, sim_.Now());
    }
    UpdateQueueStats();
  } else {
    if (options_.trace != nullptr) {
      options_.trace->Record(sim_.Now(), txn->id,
                             sim::TraceEventType::kLockGranted,
                             txn->params.lu);
    }
    Grant(txn);
  }
  PumpLockManager();
}

void GranularitySimulator::Grant(Txn* txn) {
  active_.push_back(txn);
  active_lu_total_ += txn->params.lu;
  txn->subtxns_remaining = txn->params.pu;
  const double now = sim_.Now();
  txn->lock_wait += now - txn->lock_since;
  txn->grant_time = now;
  if (options_.obs.spans != nullptr) {
    options_.obs.spans->Record(txn->id, obs::Phase::kLockWait,
                               obs::kLifecycleTrack, txn->lock_since, now);
  }
  if (ctr_lock_grants_ != nullptr) ctr_lock_grants_->Increment();
  if (options_.obs.contention != nullptr) {
    // Aggregate only: the imputed engine cannot attribute grants to real
    // granules, so per-granule grant counts stay 0 here.
    options_.obs.contention->OnGrantTotal(txn->params.lu);
  }
  UpdateQueueStats();
  for (int32_t node : txn->params.nodes) {
    StartSubTransaction(txn, node);
  }
}

void GranularitySimulator::StartSubTransaction(Txn* txn, int32_t node) {
  const double pu = static_cast<double>(txn->params.pu);
  const double io_share = txn->params.io_demand / pu;
  const double cpu_share = txn->params.cpu_demand / pu;
  auto* io_server = io_[static_cast<size_t>(node)].get();
  auto* cpu_server = cpu_[static_cast<size_t>(node)].get();
  io_server->Submit(
      ServiceClass::kTransaction, io_share,
      [this, txn, node, cpu_server, cpu_share] {
        const double io_done = sim_.Now();
        txn->io_span_sum += io_done - txn->grant_time;
        if (options_.obs.spans != nullptr) {
          options_.obs.spans->Record(txn->id, obs::Phase::kIoService, node,
                                     txn->grant_time, io_done);
        }
        cpu_server->Submit(ServiceClass::kTransaction, cpu_share,
                           [this, txn, node, io_done] {
                             const double cpu_done = sim_.Now();
                             txn->cpu_span_sum += cpu_done - io_done;
                             txn->cpu_done_sum += cpu_done;
                             if (options_.obs.spans != nullptr) {
                               options_.obs.spans->Record(
                                   txn->id, obs::Phase::kCpuService, node,
                                   io_done, cpu_done);
                               txn->sub_cpu_done.emplace_back(node,
                                                              cpu_done);
                             }
                             OnSubTransactionDone(txn);
                           });
      });
}

void GranularitySimulator::OnSubTransactionDone(Txn* txn) {
  GRANULOCK_CHECK_GT(txn->subtxns_remaining, 0);
  if (ctr_subtxns_done_ != nullptr) ctr_subtxns_done_->Increment();
  if (--txn->subtxns_remaining == 0) {
    Complete(txn);
  }
}

void GranularitySimulator::Complete(Txn* txn) {
  auto it = std::find(active_.begin(), active_.end(), txn);
  GRANULOCK_CHECK(it != active_.end());
  active_.erase(it);
  active_lu_total_ -= txn->params.lu;

  const double now = sim_.Now();
  const double response = now - txn->arrival_time;
  ++totcom_;
  response_.Add(response);
  response_quantiles_.Add(response);
  const double pu = static_cast<double>(txn->params.pu);
  phase_pending_.Add(txn->pending_wait);
  phase_lock_.Add(txn->lock_wait);
  phase_io_.Add(txn->io_span_sum / pu);
  phase_cpu_.Add(txn->cpu_span_sum / pu);
  phase_sync_.Add(now - txn->cpu_done_sum / pu);
  if (ctr_txn_completed_ != nullptr) ctr_txn_completed_->Increment();
  if (hist_response_ != nullptr) hist_response_->Observe(response);
  if (options_.obs.spans != nullptr) {
    for (const auto& [node, cpu_done] : txn->sub_cpu_done) {
      options_.obs.spans->Record(txn->id, obs::Phase::kSyncWait, node,
                                 cpu_done, now);
    }
    options_.obs.spans->TxnComplete(txn->id, txn->arrival_time, now,
                                    txn->params.pu);
  }
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kCompleted,
                           static_cast<int64_t>(txn->blocked.size()));
  }

  // Release the transactions this one was blocking. Their blocked stint
  // counts as lock wait (they are still paying for the denied request).
  blocked_count_ -= static_cast<int64_t>(txn->blocked.size());
  for (Txn* released : txn->blocked) {
    released->lock_wait += now - released->lock_since;
    if (options_.obs.spans != nullptr) {
      options_.obs.spans->Record(released->id, obs::Phase::kLockWait,
                                 obs::kLifecycleTrack, released->lock_since,
                                 now);
    }
    if (options_.obs.contention != nullptr) {
      options_.obs.contention->OnUnblock(released->id, now);
    }
    EnqueuePending(released, options_.requeue_blocked_at_tail);
  }
  txn->blocked.clear();

  // Closed system: a fresh transaction replaces the completed one, after
  // the terminal's think time (0 in the paper's model).
  if (cfg_.think_time > 0.0) {
    sim_.ScheduleAfter(rng_.Exponential(cfg_.think_time), [this] {
      Txn* fresh = CreateTransaction(sim_.Now());
      EnqueuePending(fresh, /*at_tail=*/true);
      PumpLockManager();
    });
  } else {
    Txn* fresh = CreateTransaction(sim_.Now());
    EnqueuePending(fresh, /*at_tail=*/true);
  }

  DestroyTransaction(txn);
  UpdateQueueStats();
  PumpLockManager();
}

}  // namespace granulock::core
