#include "core/granularity_simulator.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"
#include "util/strings.h"

namespace granulock::core {

using sim::ServiceClass;

/// One live transaction. `params` is drawn once at creation; `blocked`
/// lists the transactions this one is currently blocking.
struct GranularitySimulator::Txn {
  uint64_t id = 0;
  workload::TransactionParams params;
  double arrival_time = 0.0;  // first entry into the pending queue
  int64_t subtxns_remaining = 0;
  std::vector<Txn*> blocked;
};

GranularitySimulator::GranularitySimulator(model::SystemConfig cfg,
                                           workload::WorkloadSpec spec,
                                           uint64_t seed, Options options)
    : cfg_(std::move(cfg)),
      spec_(std::move(spec)),
      options_(options),
      rng_(seed),
      conflict_(std::max<int64_t>(1, cfg_.ltot)) {}

GranularitySimulator::GranularitySimulator(model::SystemConfig cfg,
                                           workload::WorkloadSpec spec,
                                           uint64_t seed)
    : GranularitySimulator(std::move(cfg), std::move(spec), seed, Options{}) {}

GranularitySimulator::~GranularitySimulator() = default;

Result<SimulationMetrics> GranularitySimulator::RunOnce(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    uint64_t seed, Options options) {
  GranularitySimulator simulator(cfg, spec, seed, options);
  return simulator.Run();
}

Result<SimulationMetrics> GranularitySimulator::RunOnce(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    uint64_t seed) {
  return RunOnce(cfg, spec, seed, Options{});
}

Result<SimulationMetrics> GranularitySimulator::Run() {
  if (ran_) {
    return Status::FailedPrecondition("Run() may only be called once");
  }
  ran_ = true;
  GRANULOCK_RETURN_NOT_OK(cfg_.Validate());
  GRANULOCK_RETURN_NOT_OK(spec_.Validate(cfg_));
  if (options_.max_active < 0) {
    return Status::InvalidArgument("max_active must be >= 0");
  }
  if (options_.adaptive_admission) {
    if (options_.adaptation_interval <= 0.0) {
      return Status::InvalidArgument("adaptation_interval must be positive");
    }
    if (options_.target_denial_rate <= 0.0 ||
        options_.target_denial_rate >= 1.0) {
      return Status::InvalidArgument("target_denial_rate must be in (0,1)");
    }
    adaptive_cap_ = cfg_.ntrans;  // start permissive, tighten on evidence
    sim_.ScheduleAt(options_.adaptation_interval,
                    [this] { AdaptAdmissionCap(); });
  }

  cpu_.reserve(static_cast<size_t>(cfg_.npros));
  io_.reserve(static_cast<size_t>(cfg_.npros));
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    cpu_.push_back(std::make_unique<sim::PriorityServer>(
        &sim_, StrFormat("cpu%lld", (long long)n)));
    io_.push_back(std::make_unique<sim::PriorityServer>(
        &sim_, StrFormat("io%lld", (long long)n)));
    cpu_.back()->SetTransitionObserver(
        [this](double now, int delta_any, int delta_lock) {
          cpu_union_.Transition(now, delta_any, delta_lock);
        });
    io_.back()->SetTransitionObserver(
        [this](double now, int delta_any, int delta_lock) {
          io_union_.Transition(now, delta_any, delta_lock);
        });
  }

  active_stat_.Start(0.0, 0.0);
  blocked_stat_.Start(0.0, 0.0);
  pending_stat_.Start(0.0, 0.0);
  window_start_ = cfg_.warmup;
  if (cfg_.warmup > 0.0) {
    sim_.ScheduleAt(cfg_.warmup, [this] { BeginMeasurement(); });
  }

  InjectInitialTransactions();
  sim_.RunUntil(cfg_.tmax);

  SimulationMetrics m;
  m.measured_time = cfg_.tmax - window_start_;
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    m.totcpus_sum += cpu_[static_cast<size_t>(n)]->TotalBusyTime();
    m.totios_sum += io_[static_cast<size_t>(n)]->TotalBusyTime();
    m.lockcpus_sum +=
        cpu_[static_cast<size_t>(n)]->BusyTime(ServiceClass::kLock);
    m.lockios_sum +=
        io_[static_cast<size_t>(n)]->BusyTime(ServiceClass::kLock);
  }
  m.totcpus = cpu_union_.AnyBusyTime(cfg_.tmax);
  m.lockcpus = cpu_union_.LockBusyTime(cfg_.tmax);
  m.totios = io_union_.AnyBusyTime(cfg_.tmax);
  m.lockios = io_union_.LockBusyTime(cfg_.tmax);
  const double npros = static_cast<double>(cfg_.npros);
  m.usefulcpus = (m.totcpus - m.lockcpus) / npros;
  m.usefulios = (m.totios - m.lockios) / npros;
  m.totcom = totcom_;
  m.throughput =
      m.measured_time > 0.0 ? static_cast<double>(totcom_) / m.measured_time
                            : 0.0;
  m.response_time = response_.Mean();
  m.response_time_stddev = response_.StdDev();
  m.response_p50 = response_quantiles_.Quantile(0.50);
  m.response_p95 = response_quantiles_.Quantile(0.95);
  m.response_p99 = response_quantiles_.Quantile(0.99);
  m.lock_requests = lock_requests_;
  m.lock_denials = lock_denials_;
  m.denial_rate = lock_requests_ > 0 ? static_cast<double>(lock_denials_) /
                                           static_cast<double>(lock_requests_)
                                     : 0.0;
  m.avg_active = active_stat_.Average(cfg_.tmax);
  m.avg_blocked = blocked_stat_.Average(cfg_.tmax);
  m.avg_pending = pending_stat_.Average(cfg_.tmax);
  m.cpu_utilization =
      m.measured_time > 0.0 ? m.totcpus_sum / (npros * m.measured_time)
                            : 0.0;
  m.io_utilization =
      m.measured_time > 0.0 ? m.totios_sum / (npros * m.measured_time) : 0.0;
  m.events_executed = sim_.ExecutedEvents();
  return m;
}

void GranularitySimulator::BeginMeasurement() {
  for (auto& server : cpu_) server->ResetStats();
  for (auto& server : io_) server->ResetStats();
  totcom_ = 0;
  lock_requests_ = 0;
  lock_denials_ = 0;
  response_.Reset();
  response_quantiles_.Reset();
  const double now = sim_.Now();
  cpu_union_.ResetWindow(now);
  io_union_.ResetWindow(now);
  active_stat_.ResetWindow(now);
  blocked_stat_.ResetWindow(now);
  pending_stat_.ResetWindow(now);
  window_start_ = now;
}

void GranularitySimulator::InjectInitialTransactions() {
  // "Initially, transactions arrive one time unit apart and they are put on
  // the pending queue."
  for (int64_t i = 0; i < cfg_.ntrans; ++i) {
    const double at = static_cast<double>(i);
    sim_.ScheduleAt(at, [this] {
      Txn* txn = CreateTransaction(sim_.Now());
      EnqueuePending(txn, /*at_tail=*/true);
      PumpLockManager();
    });
  }
}

GranularitySimulator::Txn* GranularitySimulator::CreateTransaction(
    double arrival_time) {
  auto owned = std::make_unique<Txn>();
  Txn* txn = owned.get();
  txn->id = next_txn_id_++;
  txn->params = workload::GenerateTransaction(cfg_, spec_, rng_);
  txn->arrival_time = arrival_time;
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id, sim::TraceEventType::kCreated,
                           txn->params.nu);
  }
  live_txns_.push_back(std::move(owned));
  return txn;
}

void GranularitySimulator::DestroyTransaction(Txn* txn) {
  auto it = std::find_if(
      live_txns_.begin(), live_txns_.end(),
      [txn](const std::unique_ptr<Txn>& p) { return p.get() == txn; });
  GRANULOCK_CHECK(it != live_txns_.end());
  // Swap-erase: order of ownership storage is irrelevant.
  *it = std::move(live_txns_.back());
  live_txns_.pop_back();
}

void GranularitySimulator::EnqueuePending(Txn* txn, bool at_tail) {
  if (at_tail) {
    pending_.push_back(txn);
  } else {
    pending_.push_front(txn);
  }
  UpdateQueueStats();
}

void GranularitySimulator::UpdateQueueStats() {
  const double now = sim_.Now();
  active_stat_.Update(now, static_cast<double>(active_.size()));
  blocked_stat_.Update(now, static_cast<double>(blocked_count_));
  pending_stat_.Update(now, static_cast<double>(pending_.size()));
}

int64_t GranularitySimulator::EffectiveCap() const {
  if (options_.adaptive_admission) return adaptive_cap_;
  return options_.max_active;
}

void GranularitySimulator::AdaptAdmissionCap() {
  // AIMD on the multiprogramming level: denials waste lock-processing
  // capacity (the cost is charged whether or not the locks are granted),
  // so a high denial rate means too many transactions are competing.
  const int64_t requests = lock_requests_ - window_requests_;
  const int64_t denials = lock_denials_ - window_denials_;
  window_requests_ = lock_requests_;
  window_denials_ = lock_denials_;
  if (requests > 0) {
    const double rate =
        static_cast<double>(denials) / static_cast<double>(requests);
    if (rate > options_.target_denial_rate) {
      adaptive_cap_ = std::max<int64_t>(1, (adaptive_cap_ * 3) / 4);
    } else if (rate < 0.5 * options_.target_denial_rate) {
      adaptive_cap_ = std::min(cfg_.ntrans, adaptive_cap_ + 1);
      PumpLockManager();  // the looser cap may admit immediately
    }
  }
  if (sim_.Now() + options_.adaptation_interval <= cfg_.tmax) {
    sim_.ScheduleAfter(options_.adaptation_interval,
                       [this] { AdaptAdmissionCap(); });
  }
}

void GranularitySimulator::PumpLockManager() {
  const int64_t cap = EffectiveCap();
  while (!pending_.empty() &&
         (!options_.serialize_lock_manager ||
          outstanding_lock_requests_ == 0) &&
         (cap == 0 ||
          static_cast<int64_t>(active_.size()) + outstanding_lock_requests_ <
              cap)) {
    Txn* txn = pending_.front();
    pending_.pop_front();
    UpdateQueueStats();
    BeginLockRequest(txn);
  }
}

void GranularitySimulator::BeginLockRequest(Txn* txn) {
  ++outstanding_lock_requests_;
  ++lock_requests_;
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kLockRequested,
                           txn->params.lu);
  }
  StartLockIoPhase(txn);
}

void GranularitySimulator::StartLockIoPhase(Txn* txn) {
  // Lock-table I/O: the work is shared equally by all nodes' disks and
  // served at preemptive priority. The phase ends when every node finishes
  // its share.
  const double per_node =
      txn->params.lock_io_demand / static_cast<double>(cfg_.npros);
  if (per_node <= 0.0) {
    StartLockCpuPhase(txn);
    return;
  }
  auto remaining = std::make_shared<int64_t>(cfg_.npros);
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    io_[static_cast<size_t>(n)]->Submit(
        ServiceClass::kLock, per_node, [this, txn, remaining] {
          if (--*remaining == 0) StartLockCpuPhase(txn);
        });
  }
}

void GranularitySimulator::StartLockCpuPhase(Txn* txn) {
  const double per_node =
      txn->params.lock_cpu_demand / static_cast<double>(cfg_.npros);
  if (per_node <= 0.0) {
    FinishLockRequest(txn);
    return;
  }
  auto remaining = std::make_shared<int64_t>(cfg_.npros);
  for (int64_t n = 0; n < cfg_.npros; ++n) {
    cpu_[static_cast<size_t>(n)]->Submit(
        ServiceClass::kLock, per_node, [this, txn, remaining] {
          if (--*remaining == 0) FinishLockRequest(txn);
        });
  }
}

void GranularitySimulator::FinishLockRequest(Txn* txn) {
  --outstanding_lock_requests_;
  std::vector<int64_t> active_locks;
  active_locks.reserve(active_.size());
  for (const Txn* t : active_) active_locks.push_back(t->params.lu);
  const int blocker = conflict_.DrawBlocker(active_locks, rng_);
  if (blocker >= 0) {
    ++lock_denials_;
    Txn* blocking = active_[static_cast<size_t>(blocker)];
    if (options_.trace != nullptr) {
      options_.trace->Record(sim_.Now(), txn->id,
                             sim::TraceEventType::kLockDenied,
                             static_cast<int64_t>(blocking->id));
    }
    blocking->blocked.push_back(txn);
    ++blocked_count_;
    UpdateQueueStats();
  } else {
    if (options_.trace != nullptr) {
      options_.trace->Record(sim_.Now(), txn->id,
                             sim::TraceEventType::kLockGranted,
                             txn->params.lu);
    }
    Grant(txn);
  }
  PumpLockManager();
}

void GranularitySimulator::Grant(Txn* txn) {
  active_.push_back(txn);
  txn->subtxns_remaining = txn->params.pu;
  UpdateQueueStats();
  for (int32_t node : txn->params.nodes) {
    StartSubTransaction(txn, node);
  }
}

void GranularitySimulator::StartSubTransaction(Txn* txn, int32_t node) {
  const double pu = static_cast<double>(txn->params.pu);
  const double io_share = txn->params.io_demand / pu;
  const double cpu_share = txn->params.cpu_demand / pu;
  auto* io_server = io_[static_cast<size_t>(node)].get();
  auto* cpu_server = cpu_[static_cast<size_t>(node)].get();
  io_server->Submit(ServiceClass::kTransaction, io_share,
                    [this, txn, cpu_server, cpu_share] {
                      cpu_server->Submit(
                          ServiceClass::kTransaction, cpu_share,
                          [this, txn] { OnSubTransactionDone(txn); });
                    });
}

void GranularitySimulator::OnSubTransactionDone(Txn* txn) {
  GRANULOCK_CHECK_GT(txn->subtxns_remaining, 0);
  if (--txn->subtxns_remaining == 0) {
    Complete(txn);
  }
}

void GranularitySimulator::Complete(Txn* txn) {
  auto it = std::find(active_.begin(), active_.end(), txn);
  GRANULOCK_CHECK(it != active_.end());
  active_.erase(it);

  ++totcom_;
  response_.Add(sim_.Now() - txn->arrival_time);
  response_quantiles_.Add(sim_.Now() - txn->arrival_time);
  if (options_.trace != nullptr) {
    options_.trace->Record(sim_.Now(), txn->id,
                           sim::TraceEventType::kCompleted,
                           static_cast<int64_t>(txn->blocked.size()));
  }

  // Release the transactions this one was blocking.
  blocked_count_ -= static_cast<int64_t>(txn->blocked.size());
  for (Txn* released : txn->blocked) {
    EnqueuePending(released, options_.requeue_blocked_at_tail);
  }
  txn->blocked.clear();

  // Closed system: a fresh transaction replaces the completed one, after
  // the terminal's think time (0 in the paper's model).
  if (cfg_.think_time > 0.0) {
    sim_.ScheduleAfter(rng_.Exponential(cfg_.think_time), [this] {
      Txn* fresh = CreateTransaction(sim_.Now());
      EnqueuePending(fresh, /*at_tail=*/true);
      PumpLockManager();
    });
  } else {
    Txn* fresh = CreateTransaction(sim_.Now());
    EnqueuePending(fresh, /*at_tail=*/true);
  }

  DestroyTransaction(txn);
  UpdateQueueStats();
  PumpLockManager();
}

}  // namespace granulock::core
