#include "core/parallel_runner.h"

#include <stdexcept>

#include "util/logging.h"
#include "util/strings.h"

namespace granulock::core {

Result<int> ResolveThreadCount(int64_t requested) {
  if (requested < 0) {
    return Status::InvalidArgument(
        StrFormat("threads must be >= 0 (0 = hardware concurrency), got %lld",
                  (long long)requested));
  }
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return static_cast<int>(requested);
}

ParallelRunner::ParallelRunner(int threads) : threads_(threads) {
  GRANULOCK_CHECK_GE(threads, 1);
}

ParallelRunner::~ParallelRunner() {
  {
    granulock::MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  // No lock around the joins: workers_ only grows under mu_ before this
  // point, and no other thread can be mutating it during destruction.
  for (std::thread& worker : workers_) worker.join();
}

void ParallelRunner::EnsureWorkersStarted() {
  if (!workers_.empty()) return;
  workers_.reserve(static_cast<size_t>(threads_));
  for (int t = 0; t < threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ParallelRunner::RunTask(const std::function<void(size_t)>& fn,
                             size_t i) {
  try {
    fn(i);
  } catch (const std::exception& e) {
    granulock::MutexLock lock(&error_mu_);
    if (!batch_failed_) {
      batch_failed_ = true;
      batch_error_ = e.what();
    }
  } catch (...) {
    granulock::MutexLock lock(&error_mu_);
    if (!batch_failed_) {
      batch_failed_ = true;
      batch_error_ = "non-std exception";
    }
  }
}

void ParallelRunner::ParallelFor(size_t n,
                                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  {
    granulock::MutexLock lock(&error_mu_);
    batch_failed_ = false;
    batch_error_.clear();
  }
  if (threads_ == 1 || n == 1) {
    // Inline serial path: identical to the historical single-threaded
    // execution, and keeps `--threads=1` free of any pool machinery.
    for (size_t i = 0; i < n; ++i) RunTask(fn, i);
  } else {
    granulock::MutexLock lock(&mu_);
    GRANULOCK_CHECK(fn_ == nullptr) << "ParallelFor is not reentrant";
    EnsureWorkersStarted();
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    ++epoch_;
    work_cv_.NotifyAll();
    // Wait for every worker to finish the batch (not merely for the last
    // task to be claimed) so `fn` stays alive while any worker may touch
    // it. Plain while-loop instead of a predicate lambda so the guarded
    // reads stay visible to the capability analysis.
    while (workers_done_ != threads_) done_cv_.Wait(&mu_);
    fn_ = nullptr;
  }
  granulock::MutexLock lock(&error_mu_);
  if (batch_failed_) {
    throw std::runtime_error("task failed in ParallelFor: " + batch_error_);
  }
}

void ParallelRunner::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    {
      granulock::MutexLock lock(&mu_);
      while (!stop_ && epoch_ == seen_epoch) work_cv_.Wait(&mu_);
      if (stop_) return;
      seen_epoch = epoch_;
      fn = fn_;
      n = n_;
    }
    for (;;) {
      const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      RunTask(*fn, i);
    }
    {
      granulock::MutexLock lock(&mu_);
      ++workers_done_;
    }
    done_cv_.NotifyOne();
  }
}

}  // namespace granulock::core
