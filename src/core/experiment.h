#ifndef GRANULOCK_CORE_EXPERIMENT_H_
#define GRANULOCK_CORE_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "core/granularity_simulator.h"
#include "core/metrics.h"
#include "core/parallel_runner.h"
#include "model/config.h"
#include "util/status.h"
#include "workload/workload.h"

namespace granulock::core {

/// Metrics averaged over independent replications (different PRNG streams
/// derived from one base seed), with 95% Student-t confidence half-widths
/// on the two headline outputs.
struct ReplicatedMetrics {
  /// Per-field arithmetic means across replications.
  SimulationMetrics mean;
  /// 95% confidence half-widths.
  double throughput_hw95 = 0.0;
  double response_hw95 = 0.0;
  int replications = 0;
};

/// Runs `replications` independent simulations of (`cfg`, `spec`) and
/// aggregates. Replication `r` uses stream `r` forked from `base_seed`.
///
/// When `runner` is non-null (and has more than one thread), replications
/// fan out across its workers; seeds are derived up front exactly as in
/// the serial path and metrics are merged in replication order after the
/// join, so the result — including the confidence half-widths — is
/// bit-identical to a serial run. Replications with unsynchronized
/// observability sinks attached (`options.trace`, `options.obs`) always
/// run serially: those sinks are single-run inspection tools and are not
/// safe to share across workers.
Result<ReplicatedMetrics> RunReplicated(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    uint64_t base_seed, int replications,
    GranularitySimulator::Options options = GranularitySimulator::Options{},
    ParallelRunner* runner = nullptr);

/// The lock-count grid every figure in the paper sweeps (log-spaced from a
/// single lock to one lock per entity), clipped to `dbsize`. Always
/// contains 1 and `dbsize`.
std::vector<int64_t> StandardLockSweep(int64_t dbsize);

/// One point of a sweep: the swept `ltot` and the aggregated metrics.
struct SweepPoint {
  int64_t ltot = 0;
  ReplicatedMetrics metrics;
};

/// Sweeps `ltot` over `lock_counts` for fixed (`cfg`, `spec`), running
/// `replications` replications at each point. With a multi-thread `runner`
/// the whole (sweep point × replication) grid fans out as one task batch
/// and is merged deterministically per point (see `RunReplicated`).
Result<std::vector<SweepPoint>> SweepLockCounts(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    const std::vector<int64_t>& lock_counts, uint64_t base_seed,
    int replications,
    GranularitySimulator::Options options = GranularitySimulator::Options{},
    ParallelRunner* runner = nullptr);

/// Returns the sweep point with the highest mean throughput; the sweep
/// must be non-empty.
const SweepPoint& BestThroughputPoint(const std::vector<SweepPoint>& sweep);

}  // namespace granulock::core

#endif  // GRANULOCK_CORE_EXPERIMENT_H_
