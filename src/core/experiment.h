#ifndef GRANULOCK_CORE_EXPERIMENT_H_
#define GRANULOCK_CORE_EXPERIMENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/checkpoint.h"
#include "core/fault.h"
#include "core/granularity_simulator.h"
#include "core/metrics.h"
#include "core/parallel_runner.h"
#include "model/config.h"
#include "obs/registry.h"
#include "util/status.h"
#include "workload/workload.h"

namespace granulock::core {

/// One cell that did not produce metrics: where it was in the grid, what
/// went wrong, and how hard we tried.
struct CellFailure {
  int series = 0;
  int point = 0;
  int64_t ltot = 0;
  int rep = 0;
  int attempts = 1;
  bool timed_out = false;
  Status status;
};

/// What running one cell produced. `result` is the cell's metrics or the
/// status of its *last* attempt; `attempts` counts executions (0 when the
/// cell was satisfied from the checkpoint journal).
struct CellOutcome {
  Result<SimulationMetrics> result = Status::Internal("cell did not run");
  int attempts = 0;
  bool ran = false;
  bool from_checkpoint = false;
  bool timed_out = false;
};

/// Roll-up of cell-level robustness accounting for one sweep/replication
/// run. Filled deterministically (grid index order) after workers join, so
/// its contents never depend on scheduling.
struct RunReport {
  std::vector<CellFailure> failures;
  int64_t cells_completed = 0;
  int64_t cells_from_checkpoint = 0;
  int64_t cell_retries = 0;
  int64_t cells_timed_out = 0;
  /// True when SIGINT/SIGTERM (or an injected signal) stopped the run;
  /// completed cells are still returned and journaled.
  bool interrupted = false;
};

/// How cells are contained, retried, checkpointed, and cancelled. The
/// default policy reproduces the historical behavior exactly: no journal,
/// no retries, fail-fast, no deadline, no interrupt.
struct CellPolicy {
  /// When set, completed cells are journaled and already-journaled cells
  /// are skipped (their metrics replayed bit-identically). Not owned.
  CheckpointJournal* journal = nullptr;
  /// Grid coordinates of this run within the experiment (`series` for
  /// sweeps; `point` additionally for direct RunReplicated callers).
  int series = 0;
  int point = 0;
  /// Failed cells are re-executed with the same derived seed up to this
  /// many extra times before counting as failed.
  int max_cell_retries = 0;
  /// When true, a failed cell is recorded in `report->failures` and the
  /// run continues; when false (default) the first failure aborts the run.
  bool allow_partial = false;
  /// Wall-clock budget per cell attempt; <= 0 disables the watchdog.
  double cell_timeout_s = 0.0;
  /// Run-level interrupt flag (set from SIGINT/SIGTERM handlers). Checked
  /// between cells and at watchdog polls. Not owned.
  const std::atomic<bool>* interrupt = nullptr;
  /// Where accounting lands. Not owned; may be null.
  RunReport* report = nullptr;
};

/// The body of one cell: runs one simulation attempt, cooperating with the
/// watchdog when non-null (engines poll it from an observer event chain).
using CellBody =
    std::function<Result<SimulationMetrics>(const fault::CellWatchdog*)>;

/// Runs one cell under `policy`: checkpoint lookup, fault-injection
/// evaluation, watchdog arming, exception containment (std::exception,
/// audit failures via `sim::invariants::ScopedFailureThrow`, watchdog
/// timeouts, interrupts), and same-seed retry. Successful results are
/// appended to the journal before returning. Thread-safe; does NOT touch
/// `policy.report` (the caller accounts post-join, in grid order).
CellOutcome RunCell(const CellPolicy& policy, const CellKey& key,
                    uint64_t seed, const CellBody& body);

/// Publishes a run's cell accounting into `registry` as counters under the
/// `cells/` prefix. Call after workers have joined (the registry is not
/// thread-safe).
void PublishCellStats(const RunReport& report, obs::MetricsRegistry* registry);

/// Metrics averaged over independent replications (different PRNG streams
/// derived from one base seed), with 95% Student-t confidence half-widths
/// on the two headline outputs.
struct ReplicatedMetrics {
  /// Per-field arithmetic means across replications.
  SimulationMetrics mean;
  /// 95% confidence half-widths.
  double throughput_hw95 = 0.0;
  double response_hw95 = 0.0;
  int replications = 0;
};

/// Runs `replications` independent simulations of (`cfg`, `spec`) and
/// aggregates. Replication `r` uses stream `r` forked from `base_seed`.
///
/// When `runner` is non-null (and has more than one thread), replications
/// fan out across its workers; seeds are derived up front exactly as in
/// the serial path and metrics are merged in replication order after the
/// join, so the result — including the confidence half-widths — is
/// bit-identical to a serial run. Replications with unsynchronized
/// observability sinks attached (`options.trace`, `options.obs`) always
/// run serially: those sinks are single-run inspection tools and are not
/// safe to share across workers.
///
/// Each replication is one *cell* under `policy` (see `CellPolicy`): it
/// can be replayed from a checkpoint journal, retried on failure, timed
/// out, and — under `policy.allow_partial` — dropped from the aggregate
/// (the mean then averages the surviving replications and
/// `ReplicatedMetrics::replications` reports the survivor count). With no
/// surviving replication the first failure's status is returned.
Result<ReplicatedMetrics> RunReplicated(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    uint64_t base_seed, int replications,
    GranularitySimulator::Options options = GranularitySimulator::Options{},
    ParallelRunner* runner = nullptr, const CellPolicy& policy = CellPolicy{});

/// The lock-count grid every figure in the paper sweeps (log-spaced from a
/// single lock to one lock per entity), clipped to `dbsize`. Always
/// contains 1 and `dbsize`.
std::vector<int64_t> StandardLockSweep(int64_t dbsize);

/// One point of a sweep: the swept `ltot` and the aggregated metrics.
struct SweepPoint {
  int64_t ltot = 0;
  ReplicatedMetrics metrics;
};

/// Sweeps `ltot` over `lock_counts` for fixed (`cfg`, `spec`), running
/// `replications` replications at each point. With a multi-thread `runner`
/// the whole (sweep point × replication) grid fans out as one task batch
/// and is merged deterministically per point (see `RunReplicated`).
///
/// Every (point, replication) is one cell under `policy`. Fail-fast
/// (default): the lowest-index failing cell's status is returned,
/// regardless of worker scheduling. Under `policy.allow_partial` failed
/// cells are recorded in `policy.report` and the sweep continues; a point
/// whose replications all failed is omitted from the returned vector.
/// An interrupt (SIGINT/SIGTERM via `policy.interrupt`) always behaves
/// partially: the points completed so far are returned and
/// `policy.report->interrupted` is set.
Result<std::vector<SweepPoint>> SweepLockCounts(
    const model::SystemConfig& cfg, const workload::WorkloadSpec& spec,
    const std::vector<int64_t>& lock_counts, uint64_t base_seed,
    int replications,
    GranularitySimulator::Options options = GranularitySimulator::Options{},
    ParallelRunner* runner = nullptr, const CellPolicy& policy = CellPolicy{});

/// Returns the sweep point with the highest mean throughput; the sweep
/// must be non-empty.
const SweepPoint& BestThroughputPoint(const std::vector<SweepPoint>& sweep);

}  // namespace granulock::core

#endif  // GRANULOCK_CORE_EXPERIMENT_H_
