#ifndef GRANULOCK_OBS_JSON_WRITER_H_
#define GRANULOCK_OBS_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace granulock::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): `"`, `\`, control characters become escape sequences.
std::string JsonEscape(std::string_view s);

/// A minimal streaming JSON writer — the only JSON producer in the
/// codebase (no third-party dependency). Handles structure (commas,
/// nesting) so exporters cannot emit malformed documents:
///
/// ```
///   JsonWriter w(os);
///   w.BeginObject();
///   w.Key("name").Value("fig02");
///   w.Key("points").BeginArray();
///   w.Value(1.5).Value(2);
///   w.EndArray();
///   w.EndObject();
/// ```
///
/// Doubles are written with enough digits to round-trip; non-finite
/// doubles (which JSON cannot represent) are emitted as `null`.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Writes an object key; must be followed by exactly one value (or
  /// Begin*). Only legal directly inside an object.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view s);
  JsonWriter& Value(const char* s) { return Value(std::string_view(s)); }
  JsonWriter& Value(double d);
  JsonWriter& Value(int64_t i);
  JsonWriter& Value(uint64_t u);
  JsonWriter& Value(int i) { return Value(static_cast<int64_t>(i)); }
  JsonWriter& Value(bool b);
  JsonWriter& Null();

  /// Embeds `json` — which must already be one well-formed JSON value —
  /// verbatim in value position. Used to splice pre-rendered sub-reports
  /// (e.g. the contention profiler's) into a streamed document.
  JsonWriter& Raw(std::string_view json);

 private:
  /// Emits the separating comma if a sibling value precedes this one.
  void BeforeValue();

  std::ostream& os_;
  /// One entry per open container: the number of elements written so far
  /// (keys count once, via the value that follows them).
  std::vector<int> counts_{0};
  bool pending_key_ = false;
};

/// Validates that `text` is one well-formed JSON value (object, array,
/// string, number, or literal) with nothing but whitespace around it.
/// A deliberately small recursive-descent checker used by tests and the
/// trace tooling; returns OK or an InvalidArgument status with the byte
/// offset of the first error.
Status ValidateJson(std::string_view text);

}  // namespace granulock::obs

#endif  // GRANULOCK_OBS_JSON_WRITER_H_
