#ifndef GRANULOCK_OBS_TIME_SERIES_H_
#define GRANULOCK_OBS_TIME_SERIES_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace granulock::obs {

/// A periodic sampler of piecewise-constant simulation signals (queue
/// lengths, per-node utilization, interval throughput). The engine
/// schedules *observer* events at `interval` simulated-time cadence and
/// pushes one row per tick; the sampler stores rows in a bounded ring
/// buffer (oldest rows overwritten once `capacity` is reached, counted in
/// `overwritten()`) and exports CSV for plotting, which makes warmup and
/// steady-state visually checkable.
///
/// The sampler never drives the simulation: ticks are scheduled through
/// `Simulator::ScheduleObserverAt`, which keeps them out of the executed
/// event count, and rows are pure reads of engine state.
class TimeSeriesSampler {
 public:
  /// Samples every `interval` (> 0) simulated time units, retaining the
  /// most recent `capacity` (>= 1) rows.
  explicit TimeSeriesSampler(double interval, size_t capacity = 1 << 16);

  /// Engine-facing: declares the column names once, before the first
  /// `Push`. The first column is always the sample time and is implicit —
  /// do not include it.
  void SetColumns(std::vector<std::string> names);

  /// Engine-facing: appends the row sampled at time `t`. `values` must
  /// match the declared column count.
  void Push(double t, std::vector<double> values);

  double interval() const { return interval_; }
  const std::vector<std::string>& columns() const { return columns_; }

  /// Rows currently retained, oldest first.
  struct Row {
    double time = 0.0;
    std::vector<double> values;
  };
  std::vector<Row> Rows() const;

  /// Rows pushed in total / rows evicted by the ring bound.
  uint64_t pushed() const { return pushed_; }
  uint64_t overwritten() const {
    return pushed_ > ring_.size() ? pushed_ - ring_.size() : 0;
  }

  /// Writes `time,<col>,...` CSV (with header), oldest row first.
  void WriteCsv(std::ostream& os) const;

  /// Drops all rows (columns are kept).
  void Clear();

 private:
  double interval_;
  size_t capacity_;
  std::vector<std::string> columns_;
  std::vector<Row> ring_;  // ring buffer once size reaches capacity_
  size_t next_ = 0;        // insertion index when full
  uint64_t pushed_ = 0;
};

}  // namespace granulock::obs

#endif  // GRANULOCK_OBS_TIME_SERIES_H_
