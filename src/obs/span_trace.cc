#include "obs/span_trace.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/json_writer.h"
#include "util/logging.h"
#include "util/strings.h"

namespace granulock::obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kPendingWait:
      return "pending";
    case Phase::kLockWait:
      return "lock";
    case Phase::kIoService:
      return "io";
    case Phase::kCpuService:
      return "cpu";
    case Phase::kSyncWait:
      return "sync";
  }
  return "?";
}

SpanRecorder::SpanRecorder(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  spans_.reserve(std::min<size_t>(capacity_, 4096));
}

void SpanRecorder::Record(uint64_t txn, Phase phase, int32_t track,
                          double start, double end) {
  GRANULOCK_CHECK_GE(end, start);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    truncated_.insert(txn);
    return;
  }
  spans_.push_back(Span{start, end, txn, phase, track});
}

void SpanRecorder::TxnComplete(uint64_t txn, double arrival, double completion,
                               int64_t parallelism) {
  GRANULOCK_CHECK_GE(parallelism, 1);
  completed_.emplace(txn, TxnInfo{arrival, completion, parallelism});
}

void SpanRecorder::Instant(double time, std::string name, int64_t value) {
  instants_.push_back(InstantEvent{time, std::move(name), value});
}

void SpanRecorder::WriteChromeTrace(std::ostream& os) const {
  // Collect the tracks present so thread-name metadata can precede spans.
  std::map<int32_t, int> tid_of;  // track -> tid (lifecycle first, then nodes)
  tid_of[kLifecycleTrack] = 0;
  for (const Span& s : spans_) {
    if (s.track >= 0) tid_of.emplace(s.track, 0);
  }
  int next_tid = 0;
  for (auto& [track, tid] : tid_of) tid = next_tid++;

  JsonWriter w(os);
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("traceEvents").BeginArray();
  w.BeginObject();
  w.Key("name").Value("process_name");
  w.Key("ph").Value("M");
  w.Key("pid").Value(0);
  w.Key("args").BeginObject().Key("name").Value("granulock").EndObject();
  w.EndObject();
  for (const auto& [track, tid] : tid_of) {
    w.BeginObject();
    w.Key("name").Value("thread_name");
    w.Key("ph").Value("M");
    w.Key("pid").Value(0);
    w.Key("tid").Value(tid);
    w.Key("args").BeginObject();
    if (track == kLifecycleTrack) {
      w.Key("name").Value("lifecycle");
    } else {
      w.Key("name").Value(StrFormat("node%d", track));
    }
    w.EndObject();
    w.EndObject();
  }
  // One simulated time unit <-> one microsecond ("ts"/"dur" are in us).
  for (const Span& s : spans_) {
    w.BeginObject();
    w.Key("name").Value(PhaseName(s.phase));
    w.Key("cat").Value("txn");
    w.Key("ph").Value("X");
    w.Key("pid").Value(0);
    w.Key("tid").Value(tid_of.at(s.track));
    w.Key("ts").Value(s.start);
    w.Key("dur").Value(s.duration());
    w.Key("args").BeginObject().Key("txn").Value(s.txn).EndObject();
    w.EndObject();
  }
  // Instant markers land on the lifecycle track with global scope so
  // they draw as full-height lines in the trace viewer.
  for (const InstantEvent& e : instants_) {
    w.BeginObject();
    w.Key("name").Value(e.name);
    w.Key("cat").Value("contention");
    w.Key("ph").Value("i");
    w.Key("s").Value("g");
    w.Key("pid").Value(0);
    w.Key("tid").Value(tid_of.at(kLifecycleTrack));
    w.Key("ts").Value(e.time);
    w.Key("args").BeginObject().Key("value").Value(e.value).EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << "\n";
}

Result<SpanRecorder::Decomposition> SpanRecorder::Decompose(
    uint64_t txn) const {
  const auto it = completed_.find(txn);
  if (it == completed_.end()) {
    return Status::NotFound(StrFormat("txn %llu did not complete",
                                      (unsigned long long)txn));
  }
  if (truncated_.count(txn) != 0) {
    return Status::NotFound(StrFormat("txn %llu has dropped spans",
                                      (unsigned long long)txn));
  }
  Decomposition d;
  for (const Span& s : spans_) {
    if (s.txn != txn) continue;
    d.phase[static_cast<int>(s.phase)] += s.duration();
  }
  const double par = static_cast<double>(it->second.parallelism);
  d.phase[static_cast<int>(Phase::kIoService)] /= par;
  d.phase[static_cast<int>(Phase::kCpuService)] /= par;
  d.phase[static_cast<int>(Phase::kSyncWait)] /= par;
  return d;
}

Status SpanRecorder::CheckReconciliation(double rel_tol) const {
  // One pass accumulating per-txn phase sums (Decompose per txn would be
  // quadratic in the span count). Ordered map so the first-offender
  // error below is deterministic.
  std::map<uint64_t, Decomposition> sums;
  for (const Span& s : spans_) {
    if (completed_.find(s.txn) == completed_.end()) continue;
    if (truncated_.count(s.txn) != 0) continue;
    sums[s.txn].phase[static_cast<int>(s.phase)] += s.duration();
  }
  for (auto& [txn, d] : sums) {
    const TxnInfo& info = completed_.at(txn);
    const double par = static_cast<double>(info.parallelism);
    d.phase[static_cast<int>(Phase::kIoService)] /= par;
    d.phase[static_cast<int>(Phase::kCpuService)] /= par;
    d.phase[static_cast<int>(Phase::kSyncWait)] /= par;
    const double response = info.completion - info.arrival;
    const double total = d.Total();
    if (std::abs(total - response) > rel_tol * std::max(response, 1.0)) {
      return Status::Internal(StrFormat(
          "txn %llu: phase sum %.17g != response %.17g (|diff| %.3g)",
          (unsigned long long)txn, total, response,
          std::abs(total - response)));
    }
  }
  return Status::OK();
}

void SpanRecorder::Clear() {
  spans_.clear();
  instants_.clear();
  dropped_ = 0;
  completed_.clear();
  truncated_.clear();
}

}  // namespace granulock::obs
