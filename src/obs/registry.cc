#include "obs/registry.h"

#include <algorithm>
#include <cmath>

#include "obs/json_writer.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace granulock::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  GRANULOCK_CHECK(!bounds_.empty()) << "histogram needs at least one bucket";
  GRANULOCK_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must ascend";
}

void Histogram::Observe(double x) {
  // Non-finite observations land in the terminal overflow bucket (NaN
  // compares false against every bound, so lower_bound would otherwise
  // drop it into bucket 0 and poison sum/min/max). They count toward
  // count() but are excluded from sum/min/max, keeping Mean() finite.
  if (!std::isfinite(x)) {
    ++counts_.back();
    ++count_;
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
  if (finite_count_++ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  GRANULOCK_CHECK(gauges_.find(name) == gauges_.end() &&
                  histograms_.find(name) == histograms_.end())
      << "instrument kind mismatch for '" << name << "'";
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  GRANULOCK_CHECK(counters_.find(name) == counters_.end() &&
                  histograms_.find(name) == histograms_.end())
      << "instrument kind mismatch for '" << name << "'";
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge())).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  GRANULOCK_CHECK(counters_.find(name) == counters_.end() &&
                  gauges_.find(name) == gauges_.end())
      << "instrument kind mismatch for '" << name << "'";
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name,
                      std::unique_ptr<Histogram>(new Histogram(std::move(bounds))))
             .first;
  }
  return it->second.get();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramEntry e;
    e.name = name;
    e.bounds = h->bounds();
    e.counts = h->counts();
    e.count = h->count();
    e.sum = h->sum();
    e.min = h->min();
    e.max = h->max();
    snap.histograms.push_back(std::move(e));
  }
  return snap;
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  const Snapshot snap = TakeSnapshot();
  JsonWriter w(os);
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snap.counters) {
    w.Key(name).Value(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snap.gauges) {
    w.Key(name).Value(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& h : snap.histograms) {
    w.Key(h.name).BeginObject();
    w.Key("bounds").BeginArray();
    for (double b : h.bounds) w.Value(b);
    w.EndArray();
    w.Key("counts").BeginArray();
    for (int64_t c : h.counts) w.Value(c);
    w.EndArray();
    w.Key("count").Value(h.count);
    w.Key("sum").Value(h.sum);
    w.Key("min").Value(h.min);
    w.Key("max").Value(h.max);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  os << "\n";
}

void MetricsRegistry::WriteCsv(std::ostream& os) const {
  const Snapshot snap = TakeSnapshot();
  os << "kind,name,field,value\n";
  for (const auto& [name, value] : snap.counters) {
    os << "counter," << CsvEscape(name) << ",value," << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    os << "gauge," << CsvEscape(name) << ",value,"
       << StrFormat("%.17g", value) << "\n";
  }
  for (const auto& h : snap.histograms) {
    for (size_t i = 0; i < h.counts.size(); ++i) {
      const std::string edge =
          i < h.bounds.size() ? StrFormat("le_%.17g", h.bounds[i]) : "le_inf";
      os << "histogram," << CsvEscape(h.name) << "," << edge << ","
         << h.counts[i] << "\n";
    }
    os << "histogram," << CsvEscape(h.name) << ",count," << h.count << "\n";
    os << "histogram," << CsvEscape(h.name) << ",sum,"
       << StrFormat("%.17g", h.sum) << "\n";
    os << "histogram," << CsvEscape(h.name) << ",min,"
       << StrFormat("%.17g", h.min) << "\n";
    os << "histogram," << CsvEscape(h.name) << ",max,"
       << StrFormat("%.17g", h.max) << "\n";
  }
}

}  // namespace granulock::obs
