#include "obs/contention.h"

#include <algorithm>

#include "obs/json_writer.h"
#include "util/logging.h"
#include "util/strings.h"

namespace granulock::obs {

std::string ContentionKeyName(int64_t key) {
  if (key >= 0) return StrFormat("g%lld", (long long)key);
  if (key == kRootObjectKey) return "root";
  return StrFormat("file%lld", (long long)(-2 - key));
}

ThrashingBoundary DetectThrashingBoundary(const std::vector<double>& xs,
                                          const std::vector<double>& ys,
                                          double rel_tolerance) {
  ThrashingBoundary out;
  const size_t n = std::min(xs.size(), ys.size());
  if (n == 0) return out;
  size_t peak = 0;
  for (size_t i = 1; i < n; ++i) {
    if (ys[i] > ys[peak]) peak = i;  // first maximum wins ties
  }
  out.peak_x = xs[peak];
  out.peak_y = ys[peak];
  for (size_t i = 0; i + 1 < n; ++i) {
    if (ys[i + 1] < ys[i] * (1.0 - rel_tolerance)) {
      out.found = true;
      out.boundary_x = xs[i + 1];
      break;
    }
  }
  if (out.peak_y > 0.0) {
    double min_after = out.peak_y;
    for (size_t i = peak; i < n; ++i) min_after = std::min(min_after, ys[i]);
    out.collapse_fraction = 1.0 - min_after / out.peak_y;
  }
  return out;
}

ContentionProfiler::ContentionProfiler()
    : ContentionProfiler(Options{}) {}

ContentionProfiler::ContentionProfiler(Options options)
    : options_(options),
      series_(options.sample_interval > 0 ? options.sample_interval : 50.0,
              options.series_capacity) {
  series_.SetColumns({"blocked_fraction", "lock_occupancy",
                      "deadlock_aborts", "txn_restarts", "txn_sacrificed"});
}

void ContentionProfiler::BeginRun(int64_t num_granules, bool imputed) {
  num_granules_ = num_granules;
  imputed_ = imputed;
}

void ContentionProfiler::OnBlock(uint64_t waiter, int64_t key,
                                 lockmgr::LockMode requested,
                                 lockmgr::LockMode held, int64_t chain_depth,
                                 double now) {
  ++by_key_[key].waits;
  ++total_waits_;
  ++mode_conflicts_[static_cast<int>(requested)][static_cast<int>(held)];
  if (chain_depth < 1) chain_depth = 1;
  ++chain_depths_[chain_depth];
  max_chain_depth_ = std::max(max_chain_depth_, chain_depth);
  open_waits_[waiter] = OpenWait{now, key};
}

void ContentionProfiler::OnUnblock(uint64_t waiter, double now) {
  auto it = open_waits_.find(waiter);
  if (it == open_waits_.end()) return;
  const double waited = now - it->second.start;
  by_key_[it->second.key].wait_time += waited;
  total_wait_time_ += waited;
  open_waits_.erase(it);
}

void ContentionProfiler::OnGrant(int64_t key, int64_t count) {
  by_key_[key].grants += count;
  total_grants_ += count;
}

void ContentionProfiler::OnGrantTotal(int64_t count) {
  total_grants_ += count;
}

void ContentionProfiler::OnSample(
    double now, double blocked_fraction, double lock_occupancy,
    std::vector<std::pair<uint64_t, uint64_t>> edges, int64_t deadlock_aborts,
    int64_t txn_restarts, int64_t txn_sacrificed) {
  series_.Push(now, {blocked_fraction, lock_occupancy,
                     static_cast<double>(deadlock_aborts),
                     static_cast<double>(txn_restarts),
                     static_cast<double>(txn_sacrificed)});
  // The edge list may come from unordered engine state; sort so stored
  // snapshots (and everything derived from them) are order-independent.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  if (spans_ != nullptr) {
    spans_->Instant(now, "waits_for_edges",
                    static_cast<int64_t>(edges.size()));
  }
  if (snapshots_.size() >= options_.max_snapshots) return;
  Snapshot snap;
  snap.time = now;
  snap.total_edges = edges.size();
  if (edges.size() > options_.max_snapshot_edges) {
    edges.resize(options_.max_snapshot_edges);
  }
  snap.edges = std::move(edges);
  snapshots_.push_back(std::move(snap));
}

std::vector<ContentionProfiler::GranuleStat>
ContentionProfiler::TopGranules() const {
  std::vector<GranuleStat> all;
  all.reserve(by_key_.size());
  for (const auto& [key, c] : by_key_) {
    all.push_back(GranuleStat{key, c.waits, c.wait_time, c.grants});
  }
  std::sort(all.begin(), all.end(),
            [](const GranuleStat& a, const GranuleStat& b) {
              if (a.wait_time != b.wait_time) return a.wait_time > b.wait_time;
              if (a.waits != b.waits) return a.waits > b.waits;
              return a.key < b.key;
            });
  if (options_.top_k >= 0 &&
      all.size() > static_cast<size_t>(options_.top_k)) {
    all.resize(static_cast<size_t>(options_.top_k));
  }
  return all;
}

double ContentionProfiler::MeanBlockedFraction() const {
  const auto rows = series_.Rows();
  if (rows.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& row : rows) sum += row.values[0];
  return sum / static_cast<double>(rows.size());
}

double ContentionProfiler::MeanLockOccupancy() const {
  const auto rows = series_.Rows();
  if (rows.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& row : rows) sum += row.values[1];
  return sum / static_cast<double>(rows.size());
}

void ContentionProfiler::WriteDot(std::ostream& os) const {
  const Snapshot* best = nullptr;
  for (const Snapshot& s : snapshots_) {
    if (best == nullptr || s.edges.size() > best->edges.size()) best = &s;
  }
  os << "digraph waits_for {\n";
  if (best != nullptr) {
    os << "  // simulated time " << best->time << ", " << best->total_edges
       << " edges";
    if (best->edges.size() < best->total_edges) {
      os << " (" << best->edges.size() << " shown)";
    }
    os << "\n";
    for (const auto& [waiter, holder] : best->edges) {
      os << "  t" << waiter << " -> t" << holder << ";\n";
    }
  }
  os << "}\n";
}

void ContentionProfiler::WriteJson(std::ostream& os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.Key("imputed_granules").Value(imputed_);
  w.Key("num_granules").Value(num_granules_);
  w.Key("waits").Value(total_waits_);
  w.Key("grants").Value(total_grants_);
  w.Key("wait_time").Value(total_wait_time_);
  w.Key("mean_blocked_fraction").Value(MeanBlockedFraction());
  w.Key("mean_lock_occupancy").Value(MeanLockOccupancy());
  w.Key("top_granules").BeginArray();
  for (const GranuleStat& g : TopGranules()) {
    w.BeginObject();
    w.Key("key").Value(g.key);
    w.Key("name").Value(ContentionKeyName(g.key));
    w.Key("waits").Value(g.waits);
    w.Key("wait_time").Value(g.wait_time);
    w.Key("grants").Value(g.grants);
    w.EndObject();
  }
  w.EndArray();
  w.Key("mode_conflicts").BeginObject();
  for (int req = 0; req < lockmgr::kNumLockModes; ++req) {
    for (int held = 0; held < lockmgr::kNumLockModes; ++held) {
      if (mode_conflicts_[req][held] == 0) continue;
      const std::string cell = StrFormat(
          "%s|%s",
          lockmgr::LockModeToString(static_cast<lockmgr::LockMode>(req)),
          lockmgr::LockModeToString(static_cast<lockmgr::LockMode>(held)));
      w.Key(cell).Value(mode_conflicts_[req][held]);
    }
  }
  w.EndObject();
  w.Key("chain_depths").BeginObject();
  for (const auto& [depth, count] : chain_depths_) {
    w.Key(StrFormat("%lld", (long long)depth)).Value(count);
  }
  w.EndObject();
  w.Key("max_chain_depth").Value(max_chain_depth_);
  w.Key("samples").Value(static_cast<int64_t>(series_.Rows().size()));
  w.Key("snapshots").Value(static_cast<int64_t>(snapshots_.size()));
  w.EndObject();
}

void ContentionProfiler::Clear() {
  num_granules_ = 0;
  imputed_ = false;
  by_key_.clear();
  open_waits_.clear();
  for (auto& row : mode_conflicts_) {
    for (auto& cell : row) cell = 0;
  }
  chain_depths_.clear();
  max_chain_depth_ = 0;
  total_waits_ = 0;
  total_grants_ = 0;
  total_wait_time_ = 0.0;
  series_.Clear();
  snapshots_.clear();
}

}  // namespace granulock::obs
