#ifndef GRANULOCK_OBS_REGISTRY_H_
#define GRANULOCK_OBS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace granulock::obs {

/// A monotonically increasing named count (events executed, transactions
/// completed, ...). Instruments are owned by a `MetricsRegistry`; callers
/// hold stable raw pointers so the hot path is one pointer chase, not a
/// name lookup.
class Counter {
 public:
  void Increment(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  int64_t value_ = 0;
};

/// A named point-in-time value (queue high-water mark, events/sec, ...).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  double value_ = 0.0;
};

/// A fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// finite buckets; one overflow bucket catches everything above the last
/// bound. Also tracks count/sum/min/max so means are exact even though
/// bucket placement is coarse.
///
/// Non-finite observations (NaN, ±inf) are clamped into the overflow
/// bucket and counted in `count()`, but excluded from sum/min/max so one
/// bad sample cannot poison the moments (`Mean()` stays finite).
class Histogram {
 public:
  void Observe(double x);

  /// Upper bounds of the finite buckets, as configured (ascending).
  const std::vector<double>& bounds() const { return bounds_; }
  /// Observation counts: counts()[i] covers (bounds[i-1], bounds[i]];
  /// counts().back() is the overflow bucket. Size = bounds().size() + 1.
  const std::vector<int64_t>& counts() const { return counts_; }

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return finite_count_ == 0 ? 0.0 : min_; }
  double max() const { return finite_count_ == 0 ? 0.0 : max_; }
  /// Mean of the finite observations (0 when there were none).
  double Mean() const {
    return finite_count_ == 0 ? 0.0
                              : sum_ / static_cast<double>(finite_count_);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  int64_t finite_count_ = 0;  // observations contributing to sum/min/max
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A registry of named instruments — the aggregation point of the
/// observability layer. Engines accept one through their `Options` (see
/// `obs::Hooks`) and publish self-profiling counts into it; anything else
/// (benches, examples, tests) may register its own instruments alongside.
///
/// Names are unique across instrument kinds; re-requesting a name returns
/// the existing instrument (a kind mismatch is fatal — it is a programming
/// error, like an ODR violation). Iteration order is name order, so
/// exports are deterministic.
///
/// Not thread-safe, by design: one registry belongs to one simulation
/// driver, like the `Simulator` itself.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter/gauge named `name`, creating it on first use.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);

  /// Returns the histogram named `name`, creating it with the given bucket
  /// upper bounds (ascending, non-empty) on first use; `bounds` is ignored
  /// if the histogram already exists.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// A point-in-time copy of every instrument, in name order.
  struct Snapshot {
    std::vector<std::pair<std::string, int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    struct HistogramEntry {
      std::string name;
      std::vector<double> bounds;
      std::vector<int64_t> counts;
      int64_t count = 0;
      double sum = 0.0;
      double min = 0.0;
      double max = 0.0;
    };
    std::vector<HistogramEntry> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// Serializes a snapshot as one JSON object:
  /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
  void WriteJson(std::ostream& os) const;

  /// Serializes as `kind,name,field,value` CSV rows (with header);
  /// histograms expand to one row per bucket plus count/sum/min/max rows.
  void WriteCsv(std::ostream& os) const;

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // std::map keeps name order for deterministic export; unique_ptr keeps
  // instrument addresses stable across rehash/rebalance.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace granulock::obs

#endif  // GRANULOCK_OBS_REGISTRY_H_
