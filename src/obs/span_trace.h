#ifndef GRANULOCK_OBS_SPAN_TRACE_H_
#define GRANULOCK_OBS_SPAN_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace granulock::obs {

/// The five phases a transaction's wall-clock time decomposes into.
/// Every instant between a transaction's arrival and its completion is
/// covered by exactly one phase (per sub-transaction for the parallel
/// phases), which is what makes the decomposition reconcile with the
/// recorded response time.
enum class Phase : uint8_t {
  kPendingWait = 0,  ///< waiting in the FIFO pending queue
  kLockWait = 1,     ///< lock-manager service + blocked-on-a-holder wait
  kIoService = 2,    ///< sub-transaction I/O stage (incl. node queueing)
  kCpuService = 3,   ///< sub-transaction CPU stage (incl. node queueing)
  kSyncWait = 4,     ///< fork-join: done, waiting for sibling sub-txns
};

inline constexpr int kNumPhases = 5;

/// Short stable name ("pending", "lock", "io", "cpu", "sync").
const char* PhaseName(Phase phase);

/// One recorded span. `track` identifies the timeline the span belongs
/// to: node index >= 0 for the per-processor phases (io/cpu/sync),
/// `kLifecycleTrack` for the transaction-global phases (pending/lock).
struct Span {
  double start = 0.0;
  double end = 0.0;
  uint64_t txn = 0;
  Phase phase = Phase::kPendingWait;
  int32_t track = 0;

  double duration() const { return end - start; }
  friend bool operator==(const Span&, const Span&) = default;
};

/// Track id for spans that belong to the transaction lifecycle rather
/// than to a processor.
inline constexpr int32_t kLifecycleTrack = -1;

/// Records phase spans emitted by the engines (opt-in via `obs::Hooks`)
/// and exports them as Chrome `trace_event` JSON, loadable in Perfetto or
/// chrome://tracing, with one track per processor plus a lifecycle track.
///
/// Bounded: beyond `capacity` spans recording stops (the earliest spans
/// are kept; `dropped()` counts the rest), and transactions with any
/// dropped span are excluded from reconciliation. Recording never affects
/// simulation behaviour.
class SpanRecorder {
 public:
  explicit SpanRecorder(size_t capacity = 1 << 20);

  /// Appends one span (engine-facing). `end >= start` required.
  void Record(uint64_t txn, Phase phase, int32_t track, double start,
              double end);

  /// Marks `txn` complete with its observed bounds and fork-join width
  /// (`parallelism` = number of concurrent sub-transactions, i.e. spans
  /// per parallel phase per stage). Enables reconciliation for this
  /// transaction.
  void TxnComplete(uint64_t txn, double arrival, double completion,
                   int64_t parallelism);

  /// A named point-in-time marker with an integer value (contention
  /// profiler snapshots and the like). Exported as a Chrome-trace
  /// global instant event ("ph":"i") on the lifecycle track; does not
  /// count against the span capacity.
  struct InstantEvent {
    double time = 0.0;
    std::string name;
    int64_t value = 0;
  };
  void Instant(double time, std::string name, int64_t value);
  const std::vector<InstantEvent>& instants() const { return instants_; }

  const std::vector<Span>& spans() const { return spans_; }
  uint64_t dropped() const { return dropped_; }
  /// Transactions registered through `TxnComplete`.
  size_t completed_txns() const { return completed_.size(); }

  /// Writes Chrome `trace_event` JSON (object form, `traceEvents` array of
  /// complete "X" events). One simulated time unit maps to one
  /// microsecond. Tracks: tid 0 = lifecycle, tid n+1 = node n.
  void WriteChromeTrace(std::ostream& os) const;

  /// Per-phase totals of one transaction's spans, normalized so the five
  /// values sum to the transaction's span-covered wall-clock time:
  /// pending/lock are plain sums, io/cpu/sync are divided by the
  /// transaction's parallelism.
  struct Decomposition {
    double phase[kNumPhases] = {0, 0, 0, 0, 0};
    double Total() const {
      double t = 0;
      for (double p : phase) t += p;
      return t;
    }
  };

  /// Decomposition of one completed transaction; NotFound if the txn did
  /// not complete or had spans dropped.
  Result<Decomposition> Decompose(uint64_t txn) const;

  /// Checks that for every fully recorded completed transaction the
  /// decomposed phase times sum to its response time within
  /// `rel_tol * max(response, 1)`. Returns OK (also when nothing was
  /// recorded) or Internal naming the first offending transaction.
  Status CheckReconciliation(double rel_tol = 1e-9) const;

  /// Forgets everything.
  void Clear();

 private:
  struct TxnInfo {
    double arrival = 0.0;
    double completion = 0.0;
    int64_t parallelism = 1;
  };

  size_t capacity_;
  std::vector<Span> spans_;
  std::vector<InstantEvent> instants_;
  uint64_t dropped_ = 0;
  std::unordered_map<uint64_t, TxnInfo> completed_;
  std::unordered_set<uint64_t> truncated_;  // txns with >= 1 dropped span
};

}  // namespace granulock::obs

#endif  // GRANULOCK_OBS_SPAN_TRACE_H_
