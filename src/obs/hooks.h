#ifndef GRANULOCK_OBS_HOOKS_H_
#define GRANULOCK_OBS_HOOKS_H_

#include "obs/contention.h"
#include "obs/registry.h"
#include "obs/span_trace.h"
#include "obs/time_series.h"

namespace granulock::obs {

/// The bundle of opt-in observability sinks an engine accepts through its
/// `Options` (alongside the older `sim::TraceRecorder*` lifecycle hook).
/// All pointers are optional and unowned; they must outlive the run.
///
/// Contract: attaching any sink MUST NOT change simulated results — the
/// same seed yields bit-identical `SimulationMetrics` with hooks set or
/// null (enforced by tests/observability_test.cc). Sinks only read engine
/// state; sampler ticks ride on observer events that are excluded from
/// the executed-event count.
struct Hooks {
  /// Named counters/gauges/histograms: engine self-profiling (per-event-
  /// type execution counts, event-queue high-water mark, wall-clock
  /// events/sec) plus a response-time histogram.
  MetricsRegistry* registry = nullptr;
  /// Phase spans (pending/lock/io/cpu/sync) for Chrome-trace export.
  SpanRecorder* spans = nullptr;
  /// Periodic queue/utilization/throughput samples.
  TimeSeriesSampler* sampler = nullptr;
  /// Per-granule wait attribution, blocking-chain telemetry, and the
  /// contention time series (see obs/contention.h).
  ContentionProfiler* contention = nullptr;

  bool any() const {
    return registry != nullptr || spans != nullptr || sampler != nullptr ||
           contention != nullptr;
  }
};

}  // namespace granulock::obs

#endif  // GRANULOCK_OBS_HOOKS_H_
