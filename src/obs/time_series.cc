#include "obs/time_series.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace granulock::obs {

TimeSeriesSampler::TimeSeriesSampler(double interval, size_t capacity)
    : interval_(interval), capacity_(std::max<size_t>(1, capacity)) {
  GRANULOCK_CHECK_GT(interval, 0.0) << "sampling interval must be positive";
}

void TimeSeriesSampler::SetColumns(std::vector<std::string> names) {
  GRANULOCK_CHECK_EQ(pushed_, 0u) << "SetColumns after Push";
  columns_ = std::move(names);
}

void TimeSeriesSampler::Push(double t, std::vector<double> values) {
  GRANULOCK_CHECK_EQ(values.size(), columns_.size())
      << "row width does not match declared columns";
  Row row{t, std::move(values)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(row));
  } else {
    ring_[next_] = std::move(row);
    next_ = (next_ + 1) % capacity_;
  }
  ++pushed_;
}

std::vector<TimeSeriesSampler::Row> TimeSeriesSampler::Rows() const {
  std::vector<Row> out;
  out.reserve(ring_.size());
  // `next_` is the oldest element once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void TimeSeriesSampler::WriteCsv(std::ostream& os) const {
  os << "time";
  for (const std::string& c : columns_) os << "," << CsvEscape(c);
  os << "\n";
  for (const Row& row : Rows()) {
    os << StrFormat("%.17g", row.time);
    for (double v : row.values) os << "," << StrFormat("%.17g", v);
    os << "\n";
  }
}

void TimeSeriesSampler::Clear() {
  ring_.clear();
  next_ = 0;
  pushed_ = 0;
}

}  // namespace granulock::obs
