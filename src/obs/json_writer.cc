#include "obs/json_writer.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/logging.h"
#include "util/strings.h"

namespace granulock::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the comma and the ':' follows it
  }
  GRANULOCK_CHECK(!counts_.empty()) << "value written after document end";
  if (counts_.back() > 0) os_ << ',';
  ++counts_.back();
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  os_ << '{';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  GRANULOCK_CHECK_GT(counts_.size(), 1u) << "EndObject without BeginObject";
  counts_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  os_ << '[';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  GRANULOCK_CHECK_GT(counts_.size(), 1u) << "EndArray without BeginArray";
  counts_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  GRANULOCK_CHECK(!pending_key_) << "two keys in a row";
  if (counts_.back() > 0) os_ << ',';
  ++counts_.back();
  os_ << '"' << JsonEscape(key) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view s) {
  BeforeValue();
  os_ << '"' << JsonEscape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::Value(double d) {
  if (!std::isfinite(d)) return Null();
  BeforeValue();
  // %.17g round-trips every double but litters output with noise digits;
  // use the shortest of %.15g/%.17g that re-parses exactly.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.15g", d);
  double back = 0.0;
  if (!ParseDouble(buf, &back) || back != d) {
    std::snprintf(buf, sizeof buf, "%.17g", d);
  }
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t i) {
  BeforeValue();
  os_ << i;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t u) {
  BeforeValue();
  os_ << u;
  return *this;
}

JsonWriter& JsonWriter::Value(bool b) {
  BeforeValue();
  os_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  os_ << "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  os_ << json;
  return *this;
}

namespace {

/// Recursive-descent JSON checker. Tracks position only; values are not
/// materialized.
class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  Status Check() {
    SkipWs();
    GRANULOCK_RETURN_NOT_OK(Value(0));
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing garbage");
    return Status::OK();
  }

 private:
  Status Error(const char* what) const {
    return Status::InvalidArgument(
        StrFormat("invalid JSON at byte %zu: %s", pos_, what));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Value(int depth) {
    if (depth > 256) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return Object(depth);
    if (c == '[') return Array(depth);
    if (c == '"') return String();
    if (c == '-' || (c >= '0' && c <= '9')) return Number();
    if (Literal("true") || Literal("false") || Literal("null")) {
      return Status::OK();
    }
    return Error("expected a value");
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status Object(int depth) {
    Eat('{');
    SkipWs();
    if (Eat('}')) return Status::OK();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      GRANULOCK_RETURN_NOT_OK(String());
      SkipWs();
      if (!Eat(':')) return Error("expected ':'");
      SkipWs();
      GRANULOCK_RETURN_NOT_OK(Value(depth + 1));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status Array(int depth) {
    Eat('[');
    SkipWs();
    if (Eat(']')) return Status::OK();
    while (true) {
      SkipWs();
      GRANULOCK_RETURN_NOT_OK(Value(depth + 1));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  Status String() {
    Eat('"');
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("dangling escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Error("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Error("bad escape character");
        }
      }
      ++pos_;
    }
    return Error("unterminated string");
  }

  Status Number() {
    Eat('-');
    // JSON allows a single leading 0 only when the integer part is 0.
    const size_t int_start = pos_;
    if (!Digits()) return Error("expected digits");
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      pos_ = int_start;
      return Error("leading zero in number");
    }
    if (Eat('.') && !Digits()) return Error("expected fraction digits");
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!Digits()) return Error("expected exponent digits");
    }
    return Status::OK();
  }

  bool Digits() {
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    return pos_ > start;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(std::string_view text) { return Checker(text).Check(); }

}  // namespace granulock::obs
