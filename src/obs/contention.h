#ifndef GRANULOCK_OBS_CONTENTION_H_
#define GRANULOCK_OBS_CONTENTION_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "lockmgr/lock_mode.h"
#include "obs/span_trace.h"
#include "obs/time_series.h"

namespace granulock::obs {

/// Keys identifying the lockable object a wait is attributed to. Granules
/// use their own non-negative index; the two coarser levels of the
/// hierarchical manager map into negative keys so one ordered map covers
/// the whole hierarchy.
inline constexpr int64_t kRootObjectKey = -1;
inline constexpr int64_t FileObjectKey(int64_t file) { return -2 - file; }

/// Human-readable name for a contention key: "g<N>" for granules, "root"
/// for the database root, "file<F>" for file-level locks.
std::string ContentionKeyName(int64_t key);

/// The ltot (or multiprogramming level) where a throughput curve bends
/// over — the paper's thrashing region boundary. Detected from a sweep's
/// discrete derivative: the first grid point whose throughput drops by
/// more than `rel_tolerance` relative to its predecessor.
struct ThrashingBoundary {
  bool found = false;
  double boundary_x = 0.0;  ///< first x where the derivative turns negative
  double peak_x = 0.0;      ///< x of the (first) throughput maximum
  double peak_y = 0.0;      ///< throughput at the peak
  /// 1 - min(y after peak) / peak_y: how far throughput collapses past
  /// the boundary (0 when not found or the curve never drops).
  double collapse_fraction = 0.0;
};

/// Scans the (x, y) curve in x order. `rel_tolerance` guards against
/// declaring a boundary on replication noise (default 2%).
ThrashingBoundary DetectThrashingBoundary(const std::vector<double>& xs,
                                          const std::vector<double>& ys,
                                          double rel_tolerance = 0.02);

/// Attribution profiler for lock contention: where do waits happen, which
/// mode pairs collide, how deep do blocking chains grow, and how does the
/// blocked fraction evolve over simulated time. Engines call the On*
/// hooks at the points where they already account for blocking; all
/// internal state is kept in ordered containers and all times are
/// simulated time, so attaching a profiler never perturbs results and its
/// exports are byte-stable run to run (the same contract as the other
/// `obs` sinks, enforced by tests/contention_test.cc and
/// tests/determinism_test.cc).
///
/// Not thread-safe; one profiler belongs to one engine run.
class ContentionProfiler {
 public:
  struct Options {
    /// Hot granules reported by `TopGranules()` / `WriteJson`.
    int top_k = 10;
    /// Simulated-time cadence the owning engine samples at (engines read
    /// this to schedule their observer ticks).
    double sample_interval = 50.0;
    /// Ring capacity of the contention time series.
    size_t series_capacity = 1 << 16;
    /// Bounds on stored waits-for snapshots (edges kept per snapshot and
    /// snapshots retained; the largest snapshot is what `WriteDot` uses).
    size_t max_snapshot_edges = 256;
    size_t max_snapshots = 64;
  };

  ContentionProfiler();
  explicit ContentionProfiler(Options options);

  /// Declares the run about to start. `imputed` marks the probabilistic
  /// engine, whose conflict model has no real lock table: granule
  /// attribution there is drawn from a profiler-private stream and grants
  /// are only counted in aggregate (per-granule `grants` stay 0).
  void BeginRun(int64_t num_granules, bool imputed);

  /// `waiter` started blocking on `key` at simulated time `now`:
  /// `requested` collided with `held` and the blocking chain below the
  /// holder is `chain_depth` edges long (1 = waiting on an active
  /// holder). A waiter already blocked is re-attributed to the new key.
  void OnBlock(uint64_t waiter, int64_t key, lockmgr::LockMode requested,
               lockmgr::LockMode held, int64_t chain_depth, double now);

  /// `waiter` stopped blocking (granted or aborted) at `now`; the wait
  /// time is credited to the key recorded by `OnBlock`. Unknown waiters
  /// are ignored. Waits still open when the run ends stay uncredited —
  /// the accounting covers completed waits only.
  void OnUnblock(uint64_t waiter, double now);

  /// `count` locks granted on `key` (no waiting involved in the count —
  /// grants measure traffic, waits measure contention).
  void OnGrant(int64_t key, int64_t count = 1);

  /// Aggregate-only grant count, for the imputed engine where individual
  /// granules are not modeled.
  void OnGrantTotal(int64_t count);

  /// One periodic sample at simulated time `now`: the fraction of
  /// transactions blocked on locks, the fraction of granules locked, and
  /// the current waits-for edges (waiter, holder). The edge list may come
  /// from unordered engine state — it is sorted here before storage.
  /// Engines with contention resolution additionally pass their running
  /// abort counters (cumulative at `now`); engines without pass nothing
  /// and the columns stay 0.
  void OnSample(double now, double blocked_fraction, double lock_occupancy,
                std::vector<std::pair<uint64_t, uint64_t>> edges,
                int64_t deadlock_aborts = 0, int64_t txn_restarts = 0,
                int64_t txn_sacrificed = 0);

  /// Mirrors every snapshot into `spans` as Chrome-trace instant events
  /// (named "waits_for_edges", value = edge count). Unowned; may be null.
  void LinkSpans(SpanRecorder* spans) { spans_ = spans; }

  // ---- read-out --------------------------------------------------------

  struct GranuleStat {
    int64_t key = 0;
    int64_t waits = 0;
    double wait_time = 0.0;
    int64_t grants = 0;
  };
  /// The `top_k` hottest keys by completed wait time (ties: more waits,
  /// then lower key) — a deterministic total order.
  std::vector<GranuleStat> TopGranules() const;

  int64_t total_waits() const { return total_waits_; }
  int64_t total_grants() const { return total_grants_; }
  double total_wait_time() const { return total_wait_time_; }
  int64_t max_chain_depth() const { return max_chain_depth_; }
  /// requested x held counts of deny events (indexes follow `LockMode`).
  using ModeMatrix =
      int64_t[lockmgr::kNumLockModes][lockmgr::kNumLockModes];
  const ModeMatrix& mode_conflicts() const { return mode_conflicts_; }
  /// chain depth -> number of blocks observed at that depth.
  const std::map<int64_t, int64_t>& chain_depths() const {
    return chain_depths_;
  }
  /// The contention time series (columns blocked_fraction,
  /// lock_occupancy, deadlock_aborts, txn_restarts, txn_sacrificed),
  /// for CSV export.
  const TimeSeriesSampler& series() const { return series_; }
  double MeanBlockedFraction() const;
  double MeanLockOccupancy() const;

  struct Snapshot {
    double time = 0.0;
    /// Sorted (waiter, holder) pairs, truncated to `max_snapshot_edges`.
    std::vector<std::pair<uint64_t, uint64_t>> edges;
    /// Edge count before truncation.
    size_t total_edges = 0;
  };
  const std::vector<Snapshot>& snapshots() const { return snapshots_; }

  /// Writes the waits-for snapshot with the most edges (ties: earliest)
  /// as a Graphviz digraph; an empty graph when nothing was captured.
  void WriteDot(std::ostream& os) const;

  /// Writes one JSON object summarizing the run: totals, top-K granules,
  /// the non-zero cells of the mode-conflict matrix ("REQ|HELD" keys),
  /// the chain-depth histogram, and the series means. Byte-stable for a
  /// given accounting state.
  void WriteJson(std::ostream& os) const;

  const Options& options() const { return options_; }

  /// Forgets everything (including BeginRun state).
  void Clear();

 private:
  struct GranuleContention {
    int64_t waits = 0;
    double wait_time = 0.0;
    int64_t grants = 0;
  };
  struct OpenWait {
    double start = 0.0;
    int64_t key = 0;
  };

  Options options_;
  int64_t num_granules_ = 0;
  bool imputed_ = false;

  std::map<int64_t, GranuleContention> by_key_;
  std::map<uint64_t, OpenWait> open_waits_;
  int64_t mode_conflicts_[lockmgr::kNumLockModes][lockmgr::kNumLockModes] =
      {};
  std::map<int64_t, int64_t> chain_depths_;
  int64_t max_chain_depth_ = 0;
  int64_t total_waits_ = 0;
  int64_t total_grants_ = 0;
  double total_wait_time_ = 0.0;

  TimeSeriesSampler series_;
  std::vector<Snapshot> snapshots_;
  SpanRecorder* spans_ = nullptr;  // unowned, optional
};

}  // namespace granulock::obs

#endif  // GRANULOCK_OBS_CONTENTION_H_
