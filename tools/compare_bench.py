#!/usr/bin/env python3
"""Compare two BENCH_*.json reports for throughput/metric drift.

Usage:
    tools/compare_bench.py BASELINE.json CURRENT.json [--tolerance 0.10]
    tools/compare_bench.py BASELINE.json CURRENT.json --update-baseline

Matches the two reports' (series label, ltot) point grids and compares the
simulated metrics point by point. Wall-clock-derived fields (wall_seconds,
events_per_sec) are ignored: they measure the machine, not the simulation.

Exit status:
    0  reports match within tolerance (or baseline updated)
    1  drift beyond tolerance (or structural mismatch: missing series/points)
    2  usage / unreadable input

Because the simulators are deterministic for a fixed seed, identical code
must reproduce the baseline *exactly*; the tolerance only absorbs deliberate
baseline-refresh gaps. CI runs this against a checked-in baseline so an
accidental behaviour change in the engines (a reordered event, a skipped
replication, a broken merge) fails the build rather than silently shifting
every curve. When a change is intentional, `--update-baseline` copies the
current report over the baseline in one step.
"""

import argparse
import json
import math
import os
import shutil
import sys

# Simulated metrics compared per point. Deliberately the full set the
# reports carry: any of them drifting means engine behaviour changed.
POINT_METRICS = [
    "throughput",
    "throughput_hw95",
    "response_time",
    "response_hw95",
    "usefulcpus",
    "usefulios",
    "lockcpus",
    "lockios",
    "denial_rate",
    "deadlock_aborts",
    "txn_restarts",
    "txn_sacrificed",
    "response_p95",
    "response_p99",
    "avg_admission_held",
    "events_executed",
    "phase_pending_wait",
    "phase_lock_wait",
    "phase_io_service",
    "phase_cpu_service",
    "phase_sync_wait",
]


def load_report(path, role, hint=None):
    """Loads one report; exits 2 with an actionable message on failure."""
    if not os.path.exists(path):
        print(f"error: {role} report {path} does not exist", file=sys.stderr)
        if hint:
            print(hint, file=sys.stderr)
        sys.exit(2)
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {role} report {path}: {err}",
              file=sys.stderr)
        if role == "baseline":
            print("The baseline may be stale or hand-edited; regenerate it "
                  "with --update-baseline.", file=sys.stderr)
        sys.exit(2)


def index_points(report):
    """Maps (series label, ltot) -> point dict."""
    points = {}
    for series in report.get("series", []):
        label = series.get("label", "")
        for point in series.get("points", []):
            points[(label, point.get("ltot"))] = point
    return points


def numeric_or_none(value):
    """None for JSON null / NaN / non-numeric values, else a float.

    The C++ JSON writer serializes NaN metrics as null, and a hand-edited
    baseline can hold anything; neither should produce a traceback.
    """
    if value is None or isinstance(value, bool):
        return None
    try:
        f = float(value)
    except (TypeError, ValueError):
        return None
    return None if math.isnan(f) else f


def relative_drift(baseline, current):
    if baseline == current:
        return 0.0
    scale = max(abs(baseline), abs(current))
    if scale == 0.0:
        return 0.0
    return abs(current - baseline) / scale


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="checked-in baseline report")
    parser.add_argument("current", help="freshly generated report")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="max allowed relative drift per metric (default 0.10)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="copy CURRENT over BASELINE (after validating it) and exit 0",
    )
    args = parser.parse_args()

    current = load_report(args.current, "current")

    if args.update_baseline:
        if not index_points(current):
            print(f"error: refusing to install {args.current} as baseline: "
                  "it contains no series points", file=sys.stderr)
            return 2
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.current} -> {args.baseline}")
        return 0

    baseline = load_report(
        args.baseline, "baseline",
        hint=(f"If this is a new bench, create the baseline with:\n"
              f"  tools/compare_bench.py {args.baseline} {args.current} "
              f"--update-baseline"))

    base_points = index_points(baseline)
    cur_points = index_points(current)
    if not base_points:
        print(f"error: {args.baseline} contains no series points; "
              "regenerate it with --update-baseline", file=sys.stderr)
        return 2

    failures = []
    for key, base_point in sorted(base_points.items()):
        label, ltot = key
        cur_point = cur_points.get(key)
        if cur_point is None:
            failures.append(f"[{label} ltot={ltot}] missing from current")
            continue
        for metric in POINT_METRICS:
            if metric not in base_point:
                continue  # older baseline without this metric
            if metric not in cur_point:
                failures.append(f"[{label} ltot={ltot}] {metric}: "
                                "missing from current")
                continue
            base_v = numeric_or_none(base_point[metric])
            cur_v = numeric_or_none(cur_point[metric])
            if base_v is None and cur_v is None:
                continue  # NaN/null on both sides: equal by convention
            if base_v is None or cur_v is None:
                failures.append(
                    f"[{label} ltot={ltot}] {metric}: "
                    f"baseline={base_point[metric]!r} "
                    f"current={cur_point[metric]!r} "
                    "(NaN/non-numeric on one side only)")
                continue
            drift = relative_drift(base_v, cur_v)
            if drift > args.tolerance:
                failures.append(
                    f"[{label} ltot={ltot}] {metric}: "
                    f"baseline={base_point[metric]} "
                    f"current={cur_point[metric]} "
                    f"drift={drift:.1%} > {args.tolerance:.0%}")

    extra = sorted(set(cur_points) - set(base_points))
    for label, ltot in extra:
        print(f"note: current has extra point [{label} ltot={ltot}] "
              "(not in baseline; ignored)")

    if failures:
        print(f"FAIL: {len(failures)} metric(s) drifted beyond "
              f"{args.tolerance:.0%} vs {args.baseline}:")
        for line in failures:
            print(f"  {line}")
        print("If the change is intentional, refresh the baseline:\n"
              f"  tools/compare_bench.py {args.baseline} {args.current} "
              "--update-baseline")
        return 1

    print(f"OK: {len(base_points)} points x {len(POINT_METRICS)} metrics "
          f"within {args.tolerance:.0%} of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
