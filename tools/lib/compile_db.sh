# Shared compile-commands discovery for the static-analysis drivers
# (run_clang_tidy.sh, run_lint.sh). Source this file, then call:
#
#   find_compile_db REPO_ROOT [BUILD_DIR]
#
# Echoes the directory containing compile_commands.json and returns 0, or
# prints a configure hint to stderr and returns 1. Discovery order: the
# explicit BUILD_DIR argument, then REPO_ROOT/build, then the
# most-recently-modified REPO_ROOT/build-* sibling — the same order
# tools/lint/granulock_lint/compile_db.py uses, so the shell wrappers and
# the Python linter always agree on which database a bare invocation
# picks up.

find_compile_db() {
  local repo_root="$1"
  local build_dir="${2:-}"

  if [[ -n "${build_dir}" ]]; then
    case "${build_dir}" in
      /*) ;;
      *) build_dir="${repo_root}/${build_dir}" ;;
    esac
    if [[ -f "${build_dir}/compile_commands.json" ]]; then
      echo "${build_dir}"
      return 0
    fi
    echo "compile_db: ${build_dir}/compile_commands.json not found;" \
         "configure first, e.g. cmake -S . -B ${build_dir}" >&2
    return 1
  fi

  if [[ -f "${repo_root}/build/compile_commands.json" ]]; then
    echo "${repo_root}/build"
    return 0
  fi

  local newest=""
  local d
  for d in "${repo_root}"/build-*/; do
    [[ -f "${d}compile_commands.json" ]] || continue
    if [[ -z "${newest}" || "${d}" -nt "${newest}" ]]; then
      newest="${d}"
    fi
  done
  if [[ -n "${newest}" ]]; then
    echo "${newest%/}"
    return 0
  fi

  echo "compile_db: no compile_commands.json under ${repo_root}/build" \
       "or ${repo_root}/build-*; configure first: cmake -S . -B build" >&2
  return 1
}
