#!/usr/bin/env python3
"""Render the contention-attribution section of a BENCH_*.json report.

Usage:
    tools/contention_report.py BENCH_fig02.json
    tools/contention_report.py BENCH_fig02.json --series "NPROS=10" --ltot 50
    tools/contention_report.py BENCH_fig02.json --top 5

Reads the `contention` section written by a bench run with
--profile_contention and prints, per series:

  * the thrashing boundary detected on the throughput curve,
  * a hot-granule table (top-K keys by completed wait time),
  * the mode-conflict heatmap (requested x held deny counts),
  * the blocking-chain depth histogram,

for the hottest profiled point of the series (the one with the most
waits), or the point selected with --ltot. --series restricts the output
to one curve.

Exit status:
    0  rendered at least one profile
    1  the selection (--series/--ltot) matched nothing
    2  usage error, unreadable input, or no `contention` section
       (re-run the bench with --profile_contention)

Stdlib only; the output is plain text, aligned for a terminal.
"""

import argparse
import json
import os
import sys

# Gray's lock modes in canonical order (matches lockmgr::LockMode).
MODES = ["NL", "IS", "IX", "S", "SIX", "X"]


def load_report(path):
    if not os.path.exists(path):
        print(f"error: report {path} does not exist", file=sys.stderr)
        sys.exit(2)
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read report {path}: {err}", file=sys.stderr)
        sys.exit(2)


def fmt(value, digits=4):
    """Compact numeric formatting: integers stay integral."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{digits}g}"
    return str(value)


def print_table(headers, rows):
    """Prints an aligned table: first column left, the rest right."""
    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def render(cells):
        out = []
        for i, cell in enumerate(cells):
            out.append(cell.ljust(widths[i]) if i == 0
                       else cell.rjust(widths[i]))
        return "  ".join(out)
    print(render(headers))
    print(render(["-" * w for w in widths]))
    for row in str_rows:
        print(render(row))


def print_boundary(boundary):
    if not boundary:
        print("  thrashing boundary: (not recorded)")
        return
    if boundary.get("found"):
        print(f"  thrashing boundary: ltot = {fmt(boundary.get('boundary_ltot'))}"
              f"  (peak {fmt(boundary.get('peak_throughput'))} txn/time at"
              f" ltot = {fmt(boundary.get('peak_ltot'))},"
              f" collapse {fmt(100.0 * boundary.get('collapse_fraction', 0.0), 3)}%"
              " past the peak)")
    else:
        print("  thrashing boundary: none detected"
              f" (peak {fmt(boundary.get('peak_throughput'))} txn/time at"
              f" ltot = {fmt(boundary.get('peak_ltot'))})")


def print_hot_granules(profile, top):
    granules = profile.get("top_granules", [])[:top] if top else \
        profile.get("top_granules", [])
    print(f"  hot granules (top {len(granules)} by wait time;"
          f" {fmt(profile.get('waits'))} waits,"
          f" {fmt(profile.get('grants'))} grants,"
          f" total wait time {fmt(profile.get('wait_time'))}):")
    if not granules:
        print("    (no waits recorded)")
        return
    rows = [[g.get("name", "?"), fmt(g.get("waits")),
             fmt(g.get("wait_time")), fmt(g.get("grants"))]
            for g in granules]
    print("    " + "\n    ".join(
        render_lines(["object", "waits", "wait_time", "grants"], rows)))


def render_lines(headers, rows):
    """print_table, but returned as lines (for indenting)."""
    import io
    buf = io.StringIO()
    stdout = sys.stdout
    sys.stdout = buf
    try:
        print_table(headers, rows)
    finally:
        sys.stdout = stdout
    return buf.getvalue().rstrip("\n").split("\n")


def print_mode_heatmap(profile):
    conflicts = profile.get("mode_conflicts", {})
    print("  mode-conflict heatmap (rows = requested, cols = held):")
    if not conflicts:
        print("    (no deny events)")
        return
    grid = {}
    for cell, count in conflicts.items():
        req, _, held = cell.partition("|")
        grid[(req, held)] = count
    held_modes = [m for m in MODES if any(h == m for (_, h) in grid)]
    req_modes = [m for m in MODES if any(r == m for (r, _) in grid)]
    rows = []
    for req in req_modes:
        rows.append([req] + [fmt(grid.get((req, held), 0))
                             for held in held_modes])
    print("    " + "\n    ".join(
        render_lines(["req\\held"] + held_modes, rows)))


def print_chain_histogram(profile):
    depths = profile.get("chain_depths", {})
    print(f"  blocking-chain depth histogram"
          f" (max depth {fmt(profile.get('max_chain_depth'))}):")
    if not depths:
        print("    (no blocks recorded)")
        return
    items = sorted(depths.items(), key=lambda kv: int(kv[0]))
    peak = max(count for _, count in items)
    for depth, count in items:
        bar = "#" * max(1, round(40 * count / peak)) if peak else ""
        print(f"    depth {depth:>3}: {count:>8}  {bar}")


def pick_point(points, ltot):
    """The requested ltot, or the point with the most waits (ties: lowest
    ltot, matching the C++ driver's hottest-cell rule)."""
    if ltot is not None:
        for point in points:
            if point.get("ltot") == ltot:
                return point
        return None
    best = None
    for point in points:
        waits = point.get("profile", {}).get("waits", 0)
        if best is None or waits > best.get("profile", {}).get("waits", 0):
            best = point
    return best


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="BENCH_*.json written with "
                        "--json_out --profile_contention")
    parser.add_argument("--series", help="only this series label")
    parser.add_argument("--ltot", type=int,
                        help="profile this sweep point instead of the "
                        "hottest one")
    parser.add_argument("--top", type=int, default=0,
                        help="cap the hot-granule table at N rows "
                        "(default: all recorded)")
    args = parser.parse_args()

    report = load_report(args.report)
    contention = report.get("contention")
    if not contention:
        print(f"error: {args.report} has no `contention` section; "
              "re-run the bench with --json_out --profile_contention",
              file=sys.stderr)
        sys.exit(2)

    experiment = report.get("experiment", "?")
    print(f"contention report: {experiment} ({args.report})")

    rendered = 0
    for series in contention:
        label = series.get("label", "?")
        if args.series is not None and label != args.series:
            continue
        points = series.get("points", [])
        point = pick_point(points, args.ltot)
        print(f"\nseries {label}: {len(points)} profiled point(s)")
        print_boundary(series.get("thrashing_boundary"))
        if point is None:
            if args.ltot is not None:
                print(f"  (no profiled point at ltot = {args.ltot}; "
                      f"available: {[p.get('ltot') for p in points]})")
            else:
                print("  (no profiled points)")
            continue
        profile = point.get("profile", {})
        where = "imputed attribution" if profile.get("imputed_granules") \
            else "lock-table attribution"
        print(f"  profiled point: ltot = {fmt(point.get('ltot'))}"
              f" ({where};"
              f" mean blocked fraction"
              f" {fmt(profile.get('mean_blocked_fraction'))},"
              f" mean lock occupancy"
              f" {fmt(profile.get('mean_lock_occupancy'))})")
        print_hot_granules(profile, args.top)
        print_mode_heatmap(profile)
        print_chain_histogram(profile)
        rendered += 1

    if rendered == 0:
        if args.series is not None:
            labels = [s.get("label", "?") for s in contention]
            print(f"error: no series labelled {args.series!r}; "
                  f"available: {labels}", file=sys.stderr)
        else:
            print("error: no profiled points in any series", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
