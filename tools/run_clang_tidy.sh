#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the project's
# own sources using the compile-commands database that CMake exports.
#
# Usage:
#   tools/run_clang_tidy.sh [BUILD_DIR] [-- extra clang-tidy args]
#
#   BUILD_DIR   directory containing compile_commands.json
#               (default: build). Configure with any options; the database
#               is exported unconditionally (CMAKE_EXPORT_COMPILE_COMMANDS).
#
# Exit status: 0 when clean, 1 when clang-tidy reported findings, 2 when
# the environment is unusable (no clang-tidy binary, no database). CI
# treats 1 as a failed check; local runs on machines without clang-tidy
# degrade to a skip (exit 0) so the script can sit in pre-push hooks.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
# shellcheck source=tools/lib/compile_db.sh
source "${repo_root}/tools/lib/compile_db.sh"
build_dir_arg="${1:-}"
shift || true
if [[ "${build_dir_arg}" == "--" ]]; then
  build_dir_arg=""
elif [[ "${1:-}" == "--" ]]; then
  shift
fi
extra_args=("$@")

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  if [[ "${CI:-}" == "true" ]]; then
    echo "run_clang_tidy: no clang-tidy binary found and CI=true" >&2
    exit 2
  fi
  echo "run_clang_tidy: clang-tidy not installed; skipping (set CLANG_TIDY" \
       "or install clang-tidy to enable the check)" >&2
  exit 0
fi

if ! build_dir="$(find_compile_db "${repo_root}" "${build_dir_arg}")"; then
  exit 2
fi
db="${build_dir}/compile_commands.json"

# Project sources only: skip generated files and anything outside the four
# source roots. Tests are included — a test with UB is still a bug.
mapfile -t files < <(cd "${repo_root}" &&
  find src bench tests examples -name '*.cc' | sort)
if [[ "${#files[@]}" -eq 0 ]]; then
  echo "run_clang_tidy: no sources found under ${repo_root}" >&2
  exit 2
fi

echo "run_clang_tidy: ${tidy_bin} over ${#files[@]} files (database: ${db})"

jobs="$(nproc 2>/dev/null || echo 4)"
status_file="$(mktemp)"
trap 'rm -f "${status_file}"' EXIT

run_one() {
  local file="$1"
  if ! "${tidy_bin}" -p "${build_dir}" --quiet "${extra_args[@]}" \
        "${repo_root}/${file}" 2>/dev/null; then
    echo "${file}" >> "${status_file}"
  fi
}

# Simple parallel driver: at most ${jobs} clang-tidy processes at a time.
active=0
for file in "${files[@]}"; do
  run_one "${file}" &
  active=$((active + 1))
  if [[ "${active}" -ge "${jobs}" ]]; then
    wait -n
    active=$((active - 1))
  fi
done
wait

if [[ -s "${status_file}" ]]; then
  echo
  echo "run_clang_tidy: findings in $(sort -u "${status_file}" | wc -l) files:" >&2
  sort -u "${status_file}" >&2
  exit 1
fi
echo "run_clang_tidy: clean"
