"""A C++ lexer producing a position-annotated token stream.

This is the bottom layer of the builtin frontend.  It understands the
lexical constructs that matter for semantic linting — identifiers,
numbers (including digit separators), string/char literals, raw strings,
multi-character operators, line/block comments, and preprocessor
directives (with line continuations) — and deliberately nothing more.
Comments and preprocessor directives are kept out of the main token
stream but preserved on the side: comments feed the suppression layer
(``// granulock-lint: allow(...)``) and directives feed the header-guard
rule.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "number" | "string" | "char" | "punct"
    text: str
    line: int  # 1-based
    col: int  # 1-based


@dataclass(frozen=True)
class Comment:
    text: str  # without the // or /* */ markers, stripped
    line: int  # line the comment starts on
    end_line: int


@dataclass(frozen=True)
class Directive:
    """One logical preprocessor directive (continuations folded)."""

    name: str  # "ifndef", "define", "pragma", ...
    body: str  # everything after the directive name, stripped
    line: int


@dataclass
class LexedFile:
    path: str
    tokens: List[Token]
    comments: List[Comment]
    directives: List[Directive]
    line_count: int


# Longest-match-first C++ punctuation and operators.
_PUNCTUATORS = [
    "<<=", ">>=", "...", "->*", "<=>",
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*", "##",
    "{", "}", "[", "]", "(", ")", ";", ":", ",", ".", "?", "~", "!", "+",
    "-", "*", "/", "%", "<", ">", "=", "&", "|", "^", "#",
]
_PUNCT_RE = re.compile("|".join(re.escape(p) for p in _PUNCTUATORS))

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# A pp-number ([lex.ppnumber]): optional dot, a digit, then any run of
# digit/letter/underscore/separator/dot, where e/E/p/P may carry a sign.
# This single shape covers hex (0xFF), binary (0b1010), C++14 digit
# separators (1'000'000), hex floats (0x1.8p3), exponents (1e-5), and
# user-defined literal suffixes (42ms, 123_granules) without splitting —
# precise classification is irrelevant; not splitting is what matters.
_NUMBER_RE = re.compile(r"\.?\d(?:[eEpP][+-]|[0-9a-zA-Z_']|\.)*")
# A user-defined literal suffix after a string/char literal's closing
# quote ("..."_sv, 'x'_c): part of the same preprocessing token.
_UDL_SUFFIX_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_RAW_STRING_START_RE = re.compile(r'(?:u8|[uUL])?R"([^()\\ \t\n]*)\(')
_STRING_START_RE = re.compile(r'(?:u8|[uUL])?"')
_CHAR_START_RE = re.compile(r"(?:u8|[uUL])?'")


class LexError(Exception):
    pass


def lex(path: str, text: str) -> LexedFile:
    tokens: List[Token] = []
    comments: List[Comment] = []
    directives: List[Directive] = []

    i = 0
    line = 1
    line_start = 0  # offset of the first character of the current line
    n = len(text)
    at_line_start = True  # only whitespace seen since the last newline

    def col(offset: int) -> int:
        return offset - line_start + 1

    while i < n:
        ch = text[i]

        if ch == "\n":
            i += 1
            line += 1
            line_start = i
            at_line_start = True
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        if ch == "\\" and i + 1 < n and text[i + 1] == "\n":
            i += 2
            line += 1
            line_start = i
            continue

        # Comments.
        if text.startswith("//", i):
            end = text.find("\n", i)
            if end == -1:
                end = n
            comments.append(
                Comment(text=text[i + 2:end].strip(), line=line, end_line=line)
            )
            i = end
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                raise LexError(f"{path}:{line}: unterminated block comment")
            body = text[i + 2:end]
            start_line = line
            line += body.count("\n")
            comments.append(
                Comment(text=body.strip(), line=start_line, end_line=line)
            )
            i = end + 2
            nl = text.rfind("\n", 0, i)
            if nl != -1 and nl >= line_start:
                line_start = nl + 1
            continue

        # Preprocessor directive: '#' as the first non-whitespace character
        # of a line.  Fold continuation lines into one logical directive.
        if ch == "#" and at_line_start:
            start_line = line
            j = i + 1
            parts = []
            while True:
                end = text.find("\n", j)
                if end == -1:
                    end = n
                seg = text[j:end]
                if seg.endswith("\\"):
                    parts.append(seg[:-1])
                    j = end + 1
                    line += 1
                else:
                    parts.append(seg)
                    break
            body = " ".join(parts).strip()
            # Strip trailing // comment from the directive body.
            cut = body.find("//")
            if cut != -1:
                body = body[:cut].strip()
            m = re.match(r"([A-Za-z_]+)\b\s*(.*)", body)
            if m:
                directives.append(
                    Directive(name=m.group(1), body=m.group(2).strip(),
                              line=start_line)
                )
            i = end  # leave the newline for the main loop
            at_line_start = False
            continue

        at_line_start = False

        # Raw string literal.
        m = _RAW_STRING_START_RE.match(text, i)
        if m:
            delim = ")" + m.group(1) + '"'
            end = text.find(delim, m.end())
            if end == -1:
                raise LexError(f"{path}:{line}: unterminated raw string")
            j = end + len(delim)
            sfx = _UDL_SUFFIX_RE.match(text, j)
            if sfx:
                j = sfx.end()
            lit = text[i:j]
            tokens.append(Token("string", lit, line, col(i)))
            line += lit.count("\n")
            i = j
            nl = text.rfind("\n", 0, i)
            if nl != -1 and nl >= line_start:
                line_start = nl + 1
            continue

        # Ordinary string / char literal.
        for start_re, kind, quote in ((_STRING_START_RE, "string", '"'),
                                      (_CHAR_START_RE, "char", "'")):
            m = start_re.match(text, i)
            if not m:
                continue
            j = m.end()
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                if text[j] == "\n":
                    raise LexError(
                        f"{path}:{line}: newline in {kind} literal")
                j += 1
            if j >= n:
                raise LexError(f"{path}:{line}: unterminated {kind} literal")
            end = j + 1
            sfx = _UDL_SUFFIX_RE.match(text, end)
            if sfx:
                end = sfx.end()
            tokens.append(Token(kind, text[i:end], line, col(i)))
            i = end
            break
        else:
            m = _IDENT_RE.match(text, i)
            if m:
                tokens.append(Token("ident", m.group(0), line, col(i)))
                i = m.end()
                continue
            if ch.isdigit() or (ch == "." and i + 1 < n
                                and text[i + 1].isdigit()):
                m = _NUMBER_RE.match(text, i)
                tokens.append(Token("number", m.group(0), line, col(i)))
                i = m.end()
                continue
            m = _PUNCT_RE.match(text, i)
            if m:
                tokens.append(Token("punct", m.group(0), line, col(i)))
                i = m.end()
                continue
            raise LexError(
                f"{path}:{line}:{col(i)}: unexpected character {ch!r}")

    return LexedFile(path=path, tokens=tokens, comments=comments,
                     directives=directives, line_count=line)


def match_paren(tokens: List[Token], open_index: int) -> Optional[int]:
    """Index of the ')' matching tokens[open_index] == '(', else None."""
    depth = 0
    for i in range(open_index, len(tokens)):
        t = tokens[i]
        if t.kind != "punct":
            continue
        if t.text == "(":
            depth += 1
        elif t.text == ")":
            depth -= 1
            if depth == 0:
                return i
    return None


def match_close(tokens: List[Token], open_index: int, open_text: str,
                close_text: str) -> Optional[int]:
    """Generic bracket matcher for (), [], {}, or <> (best effort)."""
    depth = 0
    for i in range(open_index, len(tokens)):
        t = tokens[i]
        if t.kind != "punct":
            continue
        if t.text == open_text:
            depth += 1
        elif t.text == close_text:
            depth -= 1
            if depth == 0:
                return i
    return None
