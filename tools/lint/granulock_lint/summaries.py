"""Callee summaries over the name-keyed project index.

The dataflow rules are intraprocedural; summaries give them one hop of
interprocedural knowledge, with the conservatism polarity chosen per
use:

  * **releasers** — functions that (transitively) call a lock-release
    primitive.  Used by lock-balance to *suppress* findings ("this exit
    path calls a helper that releases"), so the set unions over all
    same-named definitions: any definition releasing is enough to stay
    silent.  Over-approximation can only hide findings.

  * **wall-clock / RNG sources** — functions whose return value derives
    from ``util/wall_clock`` or a profiler-private RNG stream.  Used by
    rng-stream-isolation to *add* findings, so a name qualifies only
    when **every** definition returns such a value; one clean (or
    unanalyzed) definition disqualifies the name.  Under-approximation
    can only miss findings.

Both sets close under calls by fixpoint iteration in
:func:`finalize` (a releaser's caller via a ``return`` expression is a
releaser too, a wall-clock wrapper's wrapper is still a source), run
once after every file has been collected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from .cfg import calls_in_range, functions_of
from .cpp_model import FileModel, statement_end

# Lock-release primitives (matched by unqualified name, member or free).
PRIMITIVE_RELEASES = frozenset({"ReleaseAll", "Release", "Unlock"})

# The one wall-clock primitive (util/wall_clock.h).
PRIMITIVE_WALLCLOCK = frozenset({"MonotonicSeconds"})

# Receiver-name fragments identifying profiler-private RNG streams.  The
# legitimate seeded simulation stream is plain ``rng_``; profiler-owned
# streams are named to be greppable (PR 6's invisibility contract).
RNG_RECEIVER_FRAGMENTS = ("contention_rng", "profiler_rng", "sampling_rng")


@dataclass(frozen=True)
class FnFact:
    """Raw per-definition facts, gathered before the fixpoint."""

    name: str
    callees: FrozenSet[str]  # every call inside the body
    return_callees: FrozenSet[str]  # calls inside return statements
    direct_release: bool  # body calls a release primitive
    direct_wallclock_return: bool  # a return calls MonotonicSeconds
    direct_rng_return: bool  # a return draws from a profiler stream


def _is_profiler_rng_call(call) -> bool:
    if not call.is_member_call or len(call.path) < 2:
        return False
    receiver = call.path[-2]
    return any(frag in receiver for frag in RNG_RECEIVER_FRAGMENTS)


def collect(facts: Dict[str, List[FnFact]], model: FileModel) -> None:
    """Gathers raw facts for every function defined in ``model``."""
    tokens = model.lexed.tokens
    for func in functions_of(model):
        body_calls = calls_in_range(model, func.body_open, func.body_close)
        callees = frozenset(c.name for c in body_calls)
        return_callees: Set[str] = set()
        direct_wallclock = False
        direct_rng = False
        i = func.body_open
        while i <= func.body_close:
            tok = tokens[i]
            if tok.kind == "ident" and tok.text in ("return", "co_return"):
                end = statement_end(tokens, i)
                for call in calls_in_range(model, i, end):
                    return_callees.add(call.name)
                    if call.name in PRIMITIVE_WALLCLOCK:
                        direct_wallclock = True
                    if _is_profiler_rng_call(call):
                        direct_rng = True
                i = end + 1
            else:
                i += 1
        facts.setdefault(func.name, []).append(FnFact(
            name=func.name,
            callees=callees,
            return_callees=frozenset(return_callees),
            direct_release=bool(callees & PRIMITIVE_RELEASES),
            direct_wallclock_return=direct_wallclock,
            direct_rng_return=direct_rng,
        ))


@dataclass(frozen=True)
class Summaries:
    """The fixpointed result attached to the project index."""

    releasing_fns: FrozenSet[str]
    wallclock_source_fns: FrozenSet[str]
    rng_source_fns: FrozenSet[str]


def finalize(facts: Dict[str, List[FnFact]]) -> Summaries:
    releasing: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, defs in facts.items():
            if name in releasing:
                continue
            if any(d.direct_release or (d.callees & releasing)
                   for d in defs):
                releasing.add(name)
                changed = True

    def close_sources(direct_attr: str, primitives: FrozenSet[str]
                      ) -> Set[str]:
        sources: Set[str] = set()
        grow = True
        while grow:
            grow = False
            for name, defs in facts.items():
                if name in sources or name in primitives:
                    continue
                if defs and all(
                        getattr(d, direct_attr)
                        or (d.return_callees & (sources | primitives))
                        for d in defs):
                    sources.add(name)
                    grow = True
        return sources

    wallclock = close_sources("direct_wallclock_return",
                              PRIMITIVE_WALLCLOCK)
    rng = close_sources("direct_rng_return", frozenset())
    return Summaries(releasing_fns=frozenset(releasing | PRIMITIVE_RELEASES),
                     wallclock_source_fns=frozenset(wallclock
                                                    | PRIMITIVE_WALLCLOCK),
                     rng_source_fns=frozenset(rng))
