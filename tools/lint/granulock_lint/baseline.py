"""Baseline file: grandfathered findings.

A baseline lets the linter gate a codebase that is not yet clean: known
findings listed in the baseline are reported as "baselined" and do not
fail the run; anything new does.  This repository merges the linter at
**zero findings with an empty baseline** — the file exists so future
rule tightening has an adoption path, and so the fixture tests can prove
the mechanism works.

Entries match on (rule, path, normalized line text), not line numbers,
so unrelated edits above a grandfathered finding do not resurrect it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .rules import Finding


@dataclass
class Baseline:
    entries: Set[Tuple[str, str, str]]  # (rule, path, normalized_line)

    @staticmethod
    def empty() -> "Baseline":
        return Baseline(entries=set())


def _normalize(line_text: str) -> str:
    return " ".join(line_text.split())


def entry_for(finding: Finding, file_lines: List[str]) -> Tuple[str, str, str]:
    text = ""
    if 1 <= finding.line <= len(file_lines):
        text = _normalize(file_lines[finding.line - 1])
    return (finding.rule, finding.path, text)


def load(path: str) -> Baseline:
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    entries = set()
    for e in data.get("findings", []):
        entries.add((e["rule"], e["path"], _normalize(e.get("line_text", ""))))
    return Baseline(entries=entries)


def save(path: str, findings: List[Finding],
         lines_by_path: Dict[str, List[str]]) -> None:
    records = []
    for f in sorted(findings, key=Finding.sort_key):
        rule, fpath, text = entry_for(f, lines_by_path.get(f.path, []))
        records.append({"rule": rule, "path": fpath, "line_text": text})
    with open(path, "w", encoding="utf-8") as out:
        json.dump({"comment":
                   "granulock-lint baseline: grandfathered findings. "
                   "Keep this empty; fix findings instead of baselining "
                   "them whenever possible.",
                   "findings": records}, out, indent=2)
        out.write("\n")
