"""compile_commands.json discovery and file-set selection.

The linter is driven by the same database CMake exports for clang-tidy
(`CMAKE_EXPORT_COMPILE_COMMANDS` is unconditionally on), so the linted
translation units are exactly the built ones.  Headers do not appear in
the database; the project's headers under the source roots are added to
the lint set explicitly, since inline code in headers is just as capable
of breaking the rules.

Discovery order mirrors tools/lib/compile_db.sh (the shell helper shared
with run_clang_tidy.sh): an explicit ``-p`` wins, then ``build/``, then
any ``build-*/`` sibling, newest configure first.
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import List, Optional, Tuple

SOURCE_ROOTS = ("src", "bench", "tests", "examples")

# Directory names whose subtrees hold deliberately rule-breaking inputs
# (the linter's own fixture corpus), never real project code.
_FIXTURE_DIRS = {"fixtures"}


def find_database(repo_root: str,
                  build_dir: Optional[str] = None) -> Optional[str]:
    candidates: List[str] = []
    if build_dir:
        candidates.append(os.path.join(build_dir, "compile_commands.json"))
    else:
        candidates.append(
            os.path.join(repo_root, "build", "compile_commands.json"))
        try:
            siblings = sorted(
                (e for e in os.listdir(repo_root)
                 if e.startswith("build-")
                 and os.path.isdir(os.path.join(repo_root, e))),
                key=lambda e: os.path.getmtime(os.path.join(repo_root, e)),
                reverse=True)
        except OSError:
            siblings = []
        candidates.extend(
            os.path.join(repo_root, e, "compile_commands.json")
            for e in siblings)
    for c in candidates:
        if os.path.isfile(c):
            return c
    return None


def _rel_to_repo(path: str, repo_root: str) -> Optional[str]:
    abspath = os.path.realpath(path)
    root = os.path.realpath(repo_root) + os.sep
    if not abspath.startswith(root):
        return None
    return abspath[len(root):].replace(os.sep, "/")


def files_from_database(db_path: str, repo_root: str) -> List[str]:
    """Repo-relative paths of the database's translation units that live
    under the project source roots."""
    with open(db_path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    out = []
    for entry in entries:
        rel = _rel_to_repo(entry.get("file", ""), repo_root)
        if rel is None:
            continue
        parts = rel.split("/")
        if parts[0] in SOURCE_ROOTS and \
                not any(p in _FIXTURE_DIRS for p in parts[1:-1]):
            out.append(rel)
    return sorted(set(out))


def project_headers(repo_root: str) -> List[str]:
    out = []
    for root in SOURCE_ROOTS:
        top = os.path.join(repo_root, root)
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = [d for d in dirnames
                           if not d.startswith(".")
                           and d not in _FIXTURE_DIRS]
            for name in filenames:
                if name.endswith(".h"):
                    rel = _rel_to_repo(os.path.join(dirpath, name), repo_root)
                    if rel is not None:
                        out.append(rel)
    return sorted(set(out))


def lint_set(repo_root: str,
             build_dir: Optional[str] = None) -> Tuple[Optional[str], List[str]]:
    """(database_path_or_None, repo-relative lint file list)."""
    db = find_database(repo_root, build_dir)
    files: List[str] = []
    if db is not None:
        files.extend(files_from_database(db, repo_root))
    files.extend(project_headers(repo_root))
    return db, sorted(set(files))


class ChangedFilesError(Exception):
    """git could not answer which files changed."""


def changed_files(repo_root: str, base: str = "main") -> List[str]:
    """Repo-relative paths that differ from ``base``: committed changes
    since the merge base, plus staged, unstaged, and untracked files.
    The caller intersects this with the lint set, so non-source paths
    are harmless."""

    def git(*args: str) -> str:
        proc = subprocess.run(
            ["git", "-C", repo_root] + list(args),
            capture_output=True, text=True)
        if proc.returncode != 0:
            raise ChangedFilesError(
                f"git {' '.join(args)}: {proc.stderr.strip()}")
        return proc.stdout

    changed = set()
    # `base...HEAD` diffs from the merge base, so commits on base that
    # this branch lacks do not count as local changes.
    for line in git("diff", "--name-only", f"{base}...HEAD").splitlines():
        if line:
            changed.add(line)
    for line in git("diff", "--name-only", "HEAD").splitlines():
        if line:
            changed.add(line)
    for line in git("ls-files", "--others",
                    "--exclude-standard").splitlines():
        if line:
            changed.add(line)
    return sorted(changed)
