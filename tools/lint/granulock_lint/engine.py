"""The lint engine: frontend selection, indexing, and the parallel
file-level runner.

Mirrors tools/run_clang_tidy.sh's shape — one worker per file, bounded
by ``--jobs`` — but in-process.  The project index is built serially
first (it is cheap: one lex of the tree), then files are linted in a
``multiprocessing`` pool; on POSIX the index is shared with workers via
fork, so nothing is re-parsed.  Output order is independent of worker
scheduling: findings are sorted before reporting.

Frontends
---------
``builtin``   the self-contained lexer + lightweight-AST frontend in this
              package; no dependencies, always available, and the one the
              fixture tests pin down.
``cindex``    reserved for the libclang Python bindings.  The pinned
              toolchain ships no libclang shared library and no
              ``clang`` Python package (and the repo installs nothing),
              so selecting it reports a usable error instead of
              half-working; the rule engine is frontend-agnostic so the
              port is additive.
``auto``      ``builtin`` (will prefer ``cindex`` once it exists).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import cpp_model, lexer, suppress
from .index import ProjectIndex, index_file
from .rules import Finding, Rule, RuleContext, all_rules


class FrontendError(Exception):
    pass


def cindex_available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except ImportError:
        return False


def resolve_frontend(name: str) -> str:
    if name == "auto":
        return "builtin"
    if name == "builtin":
        return "builtin"
    if name == "cindex":
        if not cindex_available():
            raise FrontendError(
                "frontend 'cindex' needs the libclang Python bindings "
                "(python package 'clang' + libclang.so), which the pinned "
                "toolchain does not ship; use --frontend=builtin (the "
                "default, implementing every rule) — see "
                "docs/STATIC_ANALYSIS.md#frontends")
        raise FrontendError(
            "frontend 'cindex' is reserved: clang.cindex imports here, but "
            "the cursor-visitor port of the rules has not landed; use "
            "--frontend=builtin")
    raise FrontendError(f"unknown frontend '{name}' "
                        f"(expected auto, builtin, or cindex)")


@dataclass
class FileResult:
    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    error: Optional[str] = None
    lines: List[str] = field(default_factory=list)


# Worker globals installed by _init_worker (inherited via fork).
_WORK_INDEX: Optional[ProjectIndex] = None
_WORK_RULES: Optional[List[Rule]] = None
_WORK_ROOT: str = ""


def _init_worker(index: ProjectIndex, rules: List[Rule],
                 repo_root: str) -> None:
    global _WORK_INDEX, _WORK_RULES, _WORK_ROOT
    _WORK_INDEX = index
    _WORK_RULES = rules
    _WORK_ROOT = repo_root


def lint_one_file(rel_path: str, repo_root: str, index: ProjectIndex,
                  rules: List[Rule]) -> FileResult:
    result = FileResult(path=rel_path)
    abspath = os.path.join(repo_root, rel_path)
    try:
        with open(abspath, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        result.error = f"{rel_path}: unreadable: {e}"
        return result
    result.lines = text.splitlines()
    try:
        lexed = lexer.lex(rel_path, text)
    except lexer.LexError as e:
        result.error = str(e)
        return result
    model = cpp_model.build_model(lexed)
    sup = suppress.parse_suppressions(lexed.comments)
    ctx = RuleContext(index)
    raw: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(rel_path):
            continue
        raw.extend(rule.check(rel_path, model, ctx))
    known = {rule.id for rule in rules}
    raw.extend(suppress.unknown_rule_findings(rel_path, sup, known))
    for finding in raw:
        if sup.suppresses(finding):
            result.suppressed += 1
        else:
            result.findings.append(finding)
    return result


def _lint_worker(rel_path: str) -> FileResult:
    assert _WORK_INDEX is not None and _WORK_RULES is not None
    return lint_one_file(rel_path, _WORK_ROOT, _WORK_INDEX, _WORK_RULES)


def build_index(repo_root: str, files: List[str]) -> ProjectIndex:
    index = ProjectIndex()
    for rel in files:
        abspath = os.path.join(repo_root, rel)
        try:
            with open(abspath, "r", encoding="utf-8",
                      errors="replace") as f:
                text = f.read()
            lexed = lexer.lex(rel, text)
        except (OSError, lexer.LexError):
            continue  # the per-file pass reports the error
        index_file(index, cpp_model.build_model(lexed))
    index.finalize()
    return index


def run(repo_root: str, files: List[str], rules: Optional[List[Rule]] = None,
        jobs: int = 0) -> Tuple[List[FileResult], ProjectIndex]:
    rules = rules if rules is not None else all_rules()
    index = build_index(repo_root, files)
    if jobs <= 0:
        jobs = os.cpu_count() or 4
    jobs = max(1, min(jobs, len(files) or 1))
    if jobs == 1 or len(files) <= 2:
        results = [lint_one_file(f, repo_root, index, rules) for f in files]
    else:
        with multiprocessing.Pool(
                processes=jobs, initializer=_init_worker,
                initargs=(index, rules, repo_root)) as pool:
            results = pool.map(_lint_worker, files, chunksize=4)
    results.sort(key=lambda r: r.path)
    return results, index
