"""Interprocedural concurrency model: locks, threads, and the global
analyses behind the three concurrency rules.

This module is the project-wide call-graph layer of granulock-analyze.
Per file (during indexing) it collects:

  * **declarations** — mutex / condition-variable / atomic /
    ``thread_local`` / ``std::vector<std::thread>`` members and globals,
    plus the thread-safety annotations the Clang wall also consumes
    (``GRANULOCK_GUARDED_BY``, ``GRANULOCK_REQUIRES``,
    ``GRANULOCK_ACQUIRED_BEFORE/AFTER``);
  * **per-function facts** — lock acquisitions (RAII scopes and manual
    ``Lock()``/``Unlock()`` pairs, as lexical held intervals), blocking
    operations, condition-variable waits, calls, thread spawns, and
    member accesses.

:func:`finalize` (run once after every file is indexed, like
``summaries.finalize``) closes the facts into bottom-up summaries and
three global analyses:

  * **granulock-latch-order** — a lock-acquisition-order graph (lexical
    nesting + ``ACQUIRED_BEFORE/AFTER`` + acquisitions of summarized
    callees while holding); any cycle is reported with a witness path.
  * **granulock-held-across-blocking** — no mutex held across file I/O,
    ``join()``, sleeps, or a callee that (on **every** definition)
    blocks.  A wait on a declared condition variable is the allowlisted
    exception: it releases the mutex while blocked.
  * **granulock-atomic-discipline** — a member/global touched from a
    thread-entry root and written outside construction must be atomic,
    ``GRANULOCK_GUARDED_BY``-annotated, thread-local, or suppressed.

Conservatism polarity matches the rest of the frontend: everything here
**adds** findings, so ambiguity silences.  Lock names resolve through
the declaration registry (enclosing class first, then file-scope
globals, then a project-unique name) and unresolvable names drop out;
call-graph hops follow *uniquely defined* names only (a name with two
definitions, e.g. a virtual override, is ambiguous and cuts the graph);
a callee counts as blocking only when **all** of its definitions block.
Tokens inside lambda bodies are attributed to no function at all — a
lambda is deferred code, so ``workers_.emplace_back([this] {
WorkerLoop(); })`` must not read as "calls WorkerLoop with the caller's
locks held" (the spawn scan still sees ``WorkerLoop`` as a thread
root).

The lock-primitive layer itself (util/mutex.h, util/thread_annotations.h)
is excluded from collection: ``Mutex::Lock``'s body would otherwise
summarize every wrapper call as acquiring one shared ``Mutex::mu_``
identity and collapse the graph.  The primitive calls *on* a receiver
are the events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, List, Optional, Set, Tuple

from .cfg import calls_in_range, functions_of
from .cpp_model import FileModel, MUTATING_OPS
from .lexer import Token, match_close, match_paren

RULE_LATCH_ORDER = "granulock-latch-order"
RULE_HELD_ACROSS_BLOCKING = "granulock-held-across-blocking"
RULE_ATOMIC_DISCIPLINE = "granulock-atomic-discipline"

# Only the shipped tree is modeled; test/bench scaffolding outside src/
# spawning threads must not grow the graph (fnmatch '*' crosses '/').
_COLLECTED_GLOB = "src/*"
# The annotated primitive layer (see module docstring).
_PRIMITIVE_FILES = ("util/mutex.h", "util/thread_annotations.h")

_MUTEX_TYPES = frozenset({"Mutex", "mutex", "timed_mutex",
                          "recursive_mutex", "recursive_timed_mutex",
                          "shared_mutex", "shared_timed_mutex"})
_CONDVAR_TYPES = frozenset({"CondVar", "condition_variable",
                            "condition_variable_any"})
_RAII_LOCK_TYPES = frozenset({"MutexLock", "lock_guard", "unique_lock",
                              "scoped_lock", "shared_lock"})
_THREAD_TYPES = frozenset({"thread", "jthread"})
_ATOMIC_TYPES = frozenset({"atomic", "atomic_flag", "atomic_bool",
                           "atomic_int", "atomic_uint", "atomic_size_t",
                           "atomic_uint64_t", "atomic_int64_t"})
# Deferred-acquisition tags: a unique_lock constructed with one of these
# does not take the lock at the declaration.
_NON_ACQUIRING_TAGS = frozenset({"adopt_lock", "defer_lock", "try_to_lock",
                                 "adopt_lock_t", "defer_lock_t"})

# Names that block the calling thread (matched by unqualified callee
# name, member or free).  Deliberately tight: polarity is finding-adding.
BLOCKING_PRIMITIVES = frozenset({
    "fread", "fwrite", "fflush", "fsync", "fdatasync", "fopen", "fclose",
    "fgets", "fputs", "fputc", "fprintf", "fscanf", "getline", "system",
    "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until", "join",
})
# The condition-variable wait family: blocking unless the receiver is a
# declared condition variable (which releases the mutex while blocked).
_WAIT_CALLS = frozenset({"Wait", "wait", "wait_for", "wait_until"})
_SPAWN_APPENDS = frozenset({"emplace_back", "push_back"})

_DECL_DECOR = frozenset({"&", "*", "const"})
# Tokens that may legally follow a declared member/global name.
_DECL_TAIL = frozenset({";", "=", "{", "(", ",", "["})


# ---------------------------------------------------------------------------
# Collected facts


@dataclass(frozen=True)
class FnConc:
    """Concurrency facts for one function definition.

    Lock references are stored unresolved as plain member/global names;
    :func:`finalize` resolves them against the declaration registry with
    ``qualifier`` (the enclosing class, '' for free functions) as
    context.
    """

    name: str
    qualifier: str
    path: str
    line: int
    is_ctor_dtor: bool
    # (lock_name, line, col) — every acquisition in the body.
    acq_sites: Tuple[Tuple[str, int, int], ...]
    # (holder, holder_line, acquired, line, col) — acquired inside the
    # holder's lexical held interval.
    held_edges: Tuple[Tuple[str, int, str, int, int], ...]
    # (holder, kind, receiver, op, line, col); kind "prim" | "wait".
    held_blocks: Tuple[Tuple[str, str, str, str, int, int], ...]
    # (holder, callee, line, col) — calls inside a held interval.
    held_calls: Tuple[Tuple[str, str, int, int], ...]
    # (callee, line, col) — every non-lambda call in the body.
    call_sites: Tuple[Tuple[str, int, int], ...]
    # (op, line, col) — blocking primitives anywhere in the body.
    blocking_sites: Tuple[Tuple[str, int, int], ...]
    # (receiver, line, col) — wait-family calls anywhere in the body.
    wait_sites: Tuple[Tuple[str, int, int], ...]
    # (member, is_write, line, col) — underscore-suffixed / g_-prefixed
    # accesses outside lambdas, excluding receivered chains.
    accesses: Tuple[Tuple[str, bool, int, int], ...]


@dataclass
class ConcFacts:
    """Accumulated across files by :func:`collect`."""

    # Lock identity "Qual::name" ('' qualifier spells "::name").
    mutexes: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    mutex_names: Dict[str, Set[str]] = field(default_factory=dict)
    condvars: Set[str] = field(default_factory=set)
    condvar_names: Dict[str, Set[str]] = field(default_factory=dict)
    atomics: Set[str] = field(default_factory=set)
    thread_locals: Set[str] = field(default_factory=set)
    guarded: Dict[str, str] = field(default_factory=dict)
    thread_containers: Set[str] = field(default_factory=set)
    # ((qual, before), (qual, after), path, line, col) from
    # ACQUIRED_BEFORE/AFTER annotations.
    order_edges: List[Tuple[Tuple[str, str], Tuple[str, str],
                            str, int, int]] = field(default_factory=list)
    # (receiver_or_None, qualifier, arg_idents, path, line): receiver is
    # None for a direct std::thread construction, else the container the
    # thread was emplaced into.
    spawns: List[Tuple[Optional[str], str, Tuple[str, ...],
                       str, int]] = field(default_factory=list)
    # Function name -> {(qual, lock_name)} from GRANULOCK_REQUIRES.
    requires: Dict[str, Set[Tuple[str, str]]] = field(default_factory=dict)
    fns: Dict[str, List[FnConc]] = field(default_factory=dict)


@dataclass(frozen=True)
class ConcurrencyResult:
    """Finalized analyses, attached to the project index before the
    worker pool forks (rules only filter by path)."""

    # path -> [(rule_id, line, col, message)], sorted.
    findings_by_path: Dict[str, List[Tuple[str, int, int, str]]]
    # (src, dst) -> (path, line, col) of the earliest witness site.
    lock_order_edges: Dict[Tuple[str, str], Tuple[str, int, int]]
    cycles: Tuple[Tuple[str, ...], ...]
    acquire_summaries: Dict[str, frozenset]
    blocking_fns: frozenset
    thread_roots: frozenset
    thread_reachable: frozenset


# ---------------------------------------------------------------------------
# Structure helpers


def _class_ranges(tokens: List[Token]) -> List[Tuple[str, int, int]]:
    """(name, body_open, body_close) for every class/struct body, used
    to qualify members declared or accessed inside it."""
    out: List[Tuple[str, int, int]] = []
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "ident" or tok.text not in ("class", "struct"):
            continue
        if i > 0 and tokens[i - 1].text == "enum":
            continue
        name: Optional[str] = None
        j = i + 1
        while j < n:
            t = tokens[j]
            if t.kind == "ident" and t.text == "final":
                j += 1
                continue
            if t.kind == "ident" and j + 1 < n and tokens[j + 1].text == "(":
                # Attribute macro: class GRANULOCK_CAPABILITY("mutex") X.
                close = match_paren(tokens, j + 1)
                if close is None:
                    break
                j = close + 1
                continue
            if t.kind == "ident":
                name = t.text
                j += 1
                continue
            if t.text == "{":
                break
            if t.text == ":":
                # Base clause: scan to the body '{' at bracket depth 0.
                depth = 0
                j += 1
                while j < n:
                    text = tokens[j].text
                    if text in ("(", "[", "<"):
                        depth += 1
                    elif text in (")", "]", ">"):
                        depth -= 1
                    elif depth <= 0 and text == "{":
                        break
                    elif depth <= 0 and text == ";":
                        break
                    j += 1
                break
            # Forward declaration, template specialization, etc.
            name = None
            break
        if name is None or j >= n or tokens[j].text != "{":
            continue
        close = match_close(tokens, j, "{", "}")
        if close is None:
            continue
        out.append((name, j, close))
    return out


def _qualifier_at(ranges: List[Tuple[str, int, int]], idx: int) -> str:
    """Name of the innermost class body containing token ``idx``."""
    best = ""
    best_open = -1
    for name, open_i, close_i in ranges:
        if open_i < idx < close_i and open_i > best_open:
            best = name
            best_open = open_i
    return best


def _lock_id(qual: str, name: str) -> str:
    return f"{qual}::{name}"


def _match_paren_back(tokens: List[Token], close_index: int) -> Optional[int]:
    depth = 0
    for i in range(close_index, -1, -1):
        t = tokens[i]
        if t.kind != "punct":
            continue
        if t.text == ")":
            depth += 1
        elif t.text == "(":
            depth -= 1
            if depth == 0:
                return i
    return None


def _declared_name_before(tokens: List[Token], i: int) -> Optional[str]:
    """The declarator identifier directly before token ``i`` (skipping an
    array suffix: ``points_[kN] GRANULOCK_GUARDED_BY(mu_)``)."""
    j = i - 1
    if j >= 0 and tokens[j].text == "]":
        while j >= 0 and tokens[j].text != "[":
            j -= 1
        j -= 1
    if j >= 0 and tokens[j].kind == "ident":
        return tokens[j].text
    return None


def _skip_template_args(tokens: List[Token], j: int) -> Optional[int]:
    """tokens[j] == '<': index just past the matching '>'."""
    close = match_close(tokens, j, "<", ">")
    if close is None:
        return None
    return close + 1


def _lambda_ranges(tokens: List[Token], start: int,
                   end: int) -> List[Tuple[int, int]]:
    """Brace-body ranges of lambda expressions inside [start, end]."""
    out: List[Tuple[int, int]] = []
    j = start
    while j <= end:
        t = tokens[j]
        if t.kind == "punct" and t.text == "[":
            prev = tokens[j - 1] if j > 0 else None
            # Postfix '[' (subscript) follows a value; a lambda
            # introducer does not.
            if prev is not None and (prev.kind in ("ident", "number",
                                                   "string")
                                     or prev.text in (")", "]")):
                j += 1
                continue
            close = match_close(tokens, j, "[", "]")
            if close is None or close > end:
                break
            k = close + 1
            if k <= end and tokens[k].text == "(":
                pclose = match_paren(tokens, k)
                if pclose is None or pclose > end:
                    j = close + 1
                    continue
                k = pclose + 1
            while k <= end and tokens[k].text in ("mutable", "noexcept",
                                                  "constexpr"):
                k += 1
            if k <= end and tokens[k].text == "->":
                while k <= end and tokens[k].text != "{":
                    k += 1
            if k <= end and tokens[k].text == "{":
                bclose = match_close(tokens, k, "{", "}")
                if bclose is not None and bclose <= end:
                    out.append((k, bclose))
                    j = bclose + 1
                    continue
        j += 1
    return out


def _scope_close(tokens: List[Token], idx: int, limit: int) -> int:
    """Index of the '}' closing the innermost scope containing ``idx``
    (capped at ``limit``, the function body close)."""
    depth = 0
    for j in range(idx, limit + 1):
        text = tokens[j].text
        if tokens[j].kind != "punct":
            continue
        if text == "{":
            depth += 1
        elif text == "}":
            depth -= 1
            if depth < 0:
                return j
    return limit


def _lock_operands(tokens: List[Token], open_index: int,
                   close_index: int) -> Optional[List[str]]:
    """Lock member names from a RAII guard's constructor arguments.
    Returns None when any operand is not a plain ``[&][this->]name``
    (an unknown receiver chain — ambiguity silences)."""
    chunks: List[List[Token]] = [[]]
    depth = 0
    for j in range(open_index + 1, close_index):
        t = tokens[j]
        if t.kind == "punct":
            if t.text in ("(", "[", "{", "<"):
                depth += 1
            elif t.text in (")", "]", "}", ">"):
                depth -= 1
            elif t.text == "," and depth == 0:
                chunks.append([])
                continue
        chunks[-1].append(t)
    out: List[str] = []
    for chunk in chunks:
        toks = [t for t in chunk if t.text != "&"]
        if toks and toks[0].text == "this":
            toks = toks[1:]
            if toks and toks[0].text == "->":
                toks = toks[1:]
        if len(toks) == 1 and toks[0].kind == "ident":
            if toks[0].text in _NON_ACQUIRING_TAGS:
                return None
            if toks[0].text == "std":
                continue
            out.append(toks[0].text)
        else:
            return None
    return out if out else None


def _simple_receiver(call) -> Optional[str]:
    """The receiver member name of ``recv.Method(...)`` /
    ``this->recv.Method(...)``; None for longer chains (unknown owner)."""
    if not call.is_member_call or len(call.path) < 2:
        return None
    if call.joiners[-1] not in (".", "->"):
        return None
    if len(call.path) == 2:
        return call.path[-2]
    if len(call.path) == 3 and call.path[0] == "this":
        return call.path[-2]
    return None


# ---------------------------------------------------------------------------
# Per-file collection


def collect(conc: ConcFacts, model: FileModel) -> None:
    path = model.lexed.path.replace("\\", "/")
    if not fnmatch(path, _COLLECTED_GLOB):
        return
    if any(path.endswith(p) for p in _PRIMITIVE_FILES):
        return
    tokens = model.lexed.tokens
    ranges = _class_ranges(tokens)
    _collect_decls(conc, tokens, ranges, path)
    _collect_annotations(conc, tokens, ranges, path)
    for func in functions_of(model):
        _collect_fn(conc, model, func, ranges, path)


def _register_declarators(conc: ConcFacts, tokens: List[Token],
                          ranges, path: str, j: int, kind: str) -> None:
    """Registers the comma-separated declarator list starting at ``j``
    (just past the type) under ``kind``."""
    n = len(tokens)
    while j < n:
        while j < n and tokens[j].text in _DECL_DECOR:
            j += 1
        if j >= n or tokens[j].kind != "ident":
            return
        name_tok = tokens[j]
        tail = tokens[j + 1] if j + 1 < n else None
        if tail is None:
            return
        if not (tail.text in _DECL_TAIL
                or (tail.kind == "ident"
                    and tail.text.startswith("GRANULOCK_"))):
            return
        qual = _qualifier_at(ranges, j)
        ident = _lock_id(qual, name_tok.text)
        if kind == "mutex":
            conc.mutexes.setdefault(ident, (path, name_tok.line))
            conc.mutex_names.setdefault(name_tok.text, set()).add(ident)
        elif kind == "condvar":
            conc.condvars.add(ident)
            conc.condvar_names.setdefault(name_tok.text, set()).add(ident)
        elif kind == "atomic":
            conc.atomics.add(ident)
        elif kind == "thread_container":
            conc.thread_containers.add(ident)
        elif kind == "thread_local":
            conc.thread_locals.add(ident)
        elif kind == "thread":
            if tail.text in ("(", "{"):
                closer = ")" if tail.text == "(" else "}"
                close = match_close(tokens, j + 1, tail.text, closer)
                if close is not None:
                    args = tuple(t.text for t in tokens[j + 2:close]
                                 if t.kind == "ident")
                    conc.spawns.append((None, qual, args, path,
                                        name_tok.line))
        # Walk past an initializer / ctor args to a ',' (more
        # declarators) or the end of the declaration.
        j += 1
        depth = 0
        while j < n:
            text = tokens[j].text
            if tokens[j].kind == "punct":
                if text in ("(", "[", "{", "<"):
                    depth += 1
                elif text in (")", "]", "}", ">"):
                    if depth == 0:
                        return
                    depth -= 1
                elif text == ";" and depth == 0:
                    return
                elif text == "," and depth == 0:
                    j += 1
                    break
            j += 1


def _collect_decls(conc: ConcFacts, tokens: List[Token], ranges,
                   path: str) -> None:
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "ident":
            continue
        text = tok.text
        if text in _MUTEX_TYPES or text in _CONDVAR_TYPES \
                or text in _THREAD_TYPES or text in _ATOMIC_TYPES:
            j = i + 1
            if j < n and tokens[j].text == "<":
                j2 = _skip_template_args(tokens, j)
                if j2 is None:
                    continue
                j = j2
            kind = ("mutex" if text in _MUTEX_TYPES
                    else "condvar" if text in _CONDVAR_TYPES
                    else "thread" if text in _THREAD_TYPES
                    else "atomic")
            _register_declarators(conc, tokens, ranges, path, j, kind)
        elif text == "vector" and i + 1 < n and tokens[i + 1].text == "<":
            close = match_close(tokens, i + 1, "<", ">")
            if close is None:
                continue
            inner = {t.text for t in tokens[i + 2:close]
                     if t.kind == "ident"}
            if inner & _THREAD_TYPES:
                _register_declarators(conc, tokens, ranges, path,
                                      close + 1, "thread_container")
        elif text == "thread_local":
            # Declared name: the last identifier before the initializer
            # or terminator.
            j = i + 1
            last = None
            depth = 0
            while j < n:
                t = tokens[j]
                if t.kind == "ident":
                    last = j
                elif t.kind == "punct":
                    if t.text == "<":
                        depth += 1
                    elif t.text == ">":
                        depth -= 1
                    elif depth == 0 and t.text in ("=", ";", "{", "("):
                        break
                j += 1
            if last is not None:
                qual = _qualifier_at(ranges, last)
                conc.thread_locals.add(_lock_id(qual, tokens[last].text))


def _collect_annotations(conc: ConcFacts, tokens: List[Token], ranges,
                         path: str) -> None:
    for i, tok in enumerate(tokens):
        if tok.kind != "ident" or not tok.text.startswith("GRANULOCK_"):
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        close = match_paren(tokens, i + 1)
        if close is None:
            continue
        args = [t.text for t in tokens[i + 2:close] if t.kind == "ident"]
        qual = _qualifier_at(ranges, i)
        if tok.text in ("GRANULOCK_GUARDED_BY", "GRANULOCK_PT_GUARDED_BY"):
            member = _declared_name_before(tokens, i)
            if member is not None and args:
                conc.guarded[_lock_id(qual, member)] = args[0]
        elif tok.text in ("GRANULOCK_ACQUIRED_BEFORE",
                          "GRANULOCK_ACQUIRED_AFTER"):
            member = _declared_name_before(tokens, i)
            if member is None:
                continue
            for arg in args:
                if tok.text.endswith("BEFORE"):
                    edge = ((qual, member), (qual, arg))
                else:
                    edge = ((qual, arg), (qual, member))
                conc.order_edges.append((edge[0], edge[1], path,
                                         tok.line, tok.col))
        elif tok.text == "GRANULOCK_REQUIRES":
            # The macro follows the parameter list: `)` then the macro.
            if i == 0 or tokens[i - 1].text != ")":
                continue
            popen = _match_paren_back(tokens, i - 1)
            if popen is None or popen == 0:
                continue
            fn_tok = tokens[popen - 1]
            if fn_tok.kind != "ident":
                continue
            locks = conc.requires.setdefault(fn_tok.text, set())
            for arg in args:
                locks.add((qual, arg))


def _collect_fn(conc: ConcFacts, model: FileModel, func, ranges,
                path: str) -> None:
    tokens = model.lexed.tokens
    ni = func.name_index
    qualifier = ""
    if ni >= 2 and tokens[ni - 1].text == "::" \
            and tokens[ni - 2].kind == "ident":
        qualifier = tokens[ni - 2].text
    else:
        qualifier = _qualifier_at(ranges, ni)
    is_dtor = ni >= 1 and tokens[ni - 1].text == "~"
    if is_dtor and ni >= 3 and tokens[ni - 2].text == "::":
        qualifier = tokens[ni - 3].text if tokens[ni - 3].kind == "ident" \
            else qualifier
    is_ctor_dtor = is_dtor or (qualifier != "" and func.name == qualifier)

    lambdas = _lambda_ranges(tokens, func.body_open, func.body_close)

    def in_lambda(idx: int) -> bool:
        return any(lo < idx < hi for lo, hi in lambdas)

    # -- RAII guard declarations ------------------------------------------
    # Each acquisition interval is (lock, start_idx, end_idx, line, col).
    intervals: List[Tuple[str, int, int, int, int]] = []
    j = func.body_open + 1
    n = func.body_close
    while j < n:
        tok = tokens[j]
        if tok.kind == "ident" and tok.text in _RAII_LOCK_TYPES \
                and not in_lambda(j):
            k = j + 1
            if k < n and tokens[k].text == "<":
                k2 = _skip_template_args(tokens, k)
                if k2 is None:
                    j += 1
                    continue
                k = k2
            if k < n and tokens[k].kind == "ident" \
                    and k + 1 < n and tokens[k + 1].text == "(":
                close = match_paren(tokens, k + 1)
                if close is not None and close <= n:
                    locks = _lock_operands(tokens, k + 1, close)
                    if locks:
                        scope_end = _scope_close(tokens, j,
                                                 func.body_close)
                        for lock in locks:
                            intervals.append((lock, j, scope_end,
                                              tok.line, tok.col))
                    j = close + 1
                    continue
        j += 1

    # -- calls: manual locks, waits, blocking primitives, spawns ----------
    lock_events: List[Tuple[int, str, str, int, int]] = []  # idx, op, recv
    wait_events: List[Tuple[int, str, int, int]] = []
    prim_events: List[Tuple[int, str, int, int]] = []
    call_sites: List[Tuple[str, int, int]] = []
    body_calls = []
    for call in calls_in_range(model, func.body_open, func.body_close):
        if in_lambda(call.name_index):
            continue
        body_calls.append(call)
        call_sites.append((call.name, call.line, call.col))
        recv = _simple_receiver(call)
        if call.name in ("Lock", "lock") and recv is not None:
            lock_events.append((call.name_index, "lock", recv,
                                call.line, call.col))
        elif call.name in ("Unlock", "unlock") and recv is not None:
            lock_events.append((call.name_index, "unlock", recv,
                                call.line, call.col))
        elif call.name in _WAIT_CALLS:
            wait_events.append((call.name_index, recv or "",
                                call.line, call.col))
        elif call.name in BLOCKING_PRIMITIVES:
            prim_events.append((call.name_index, call.name,
                                call.line, call.col))
        if call.name in _SPAWN_APPENDS and recv is not None:
            args = tuple(t.text for t in
                         tokens[call.open_index + 1:call.close_index]
                         if t.kind == "ident")
            conc.spawns.append((recv, qualifier, args, path, call.line))

    # Pair manual Lock/Unlock lexically (per receiver).  An unpaired
    # Lock holds to the end of the body; an unpaired Unlock is
    # lock-balance's business, not ours.
    open_locks: Dict[str, List[Tuple[int, int, int]]] = {}
    for idx, op, recv, line, col in sorted(lock_events):
        if op == "lock":
            open_locks.setdefault(recv, []).append((idx, line, col))
        else:
            stack = open_locks.get(recv)
            if stack:
                sidx, sline, scol = stack.pop()
                intervals.append((recv, sidx, idx, sline, scol))
    for recv, stack in open_locks.items():
        for sidx, sline, scol in stack:
            intervals.append((recv, sidx, func.body_close, sline, scol))

    # -- held relations ----------------------------------------------------
    held_edges: List[Tuple[str, int, str, int, int]] = []
    held_blocks: List[Tuple[str, str, str, str, int, int]] = []
    held_calls: List[Tuple[str, str, int, int]] = []
    for lock, s, e, lline, lcol in intervals:
        for lock2, s2, e2, l2, c2 in intervals:
            if s < s2 <= e:
                held_edges.append((lock, lline, lock2, l2, c2))
        for idx, opname, bl, bc in prim_events:
            if s < idx <= e:
                held_blocks.append((lock, "prim", "", opname, bl, bc))
        for idx, recv, wl, wc in wait_events:
            if s < idx <= e:
                held_blocks.append((lock, "wait", recv, "wait", wl, wc))
        for call in body_calls:
            if s < call.name_index <= e:
                held_calls.append((lock, call.name, call.line, call.col))

    # -- member / global accesses -----------------------------------------
    accesses: List[Tuple[str, bool, int, int]] = []
    for idx in range(func.body_open + 1, func.body_close):
        tok = tokens[idx]
        if tok.kind != "ident" or in_lambda(idx):
            continue
        name = tok.text
        if not (name.endswith("_") or name.startswith("g_")
                or name.startswith("t_")):
            continue
        prev = tokens[idx - 1]
        if prev.text in (".", "->"):
            # A receivered chain: the owner is another object — unless
            # it is an explicit `this`.
            if not (idx >= 2 and prev.text == "->"
                    and tokens[idx - 2].text == "this"):
                continue
        nxt = tokens[idx + 1] if idx + 1 < len(tokens) else None
        is_write = (nxt is not None and nxt.text in MUTATING_OPS) or \
            prev.text in ("++", "--")
        accesses.append((name, is_write, tok.line, tok.col))

    acq_sites = tuple((lock, line, col)
                      for lock, _s, _e, line, col in intervals)
    conc.fns.setdefault(func.name, []).append(FnConc(
        name=func.name, qualifier=qualifier, path=path, line=func.line,
        is_ctor_dtor=is_ctor_dtor,
        acq_sites=acq_sites,
        held_edges=tuple(held_edges),
        held_blocks=tuple(held_blocks),
        held_calls=tuple(held_calls),
        call_sites=tuple(call_sites),
        blocking_sites=tuple((op, line, col)
                             for _i, op, line, col in prim_events),
        wait_sites=tuple((recv, line, col)
                         for _i, recv, line, col in wait_events),
        accesses=tuple(accesses),
    ))


# ---------------------------------------------------------------------------
# Finalization: summaries + the three global analyses


def _resolver(ids, names_map=None):
    def resolve(qual: str, name: str) -> Optional[str]:
        if qual:
            cand = _lock_id(qual, name)
            if cand in ids:
                return cand
        cand = _lock_id("", name)
        if cand in ids:
            return cand
        if names_map is not None:
            matches = names_map.get(name, ())
            if len(matches) == 1:
                return next(iter(matches))
        return None
    return resolve


def finalize(conc: ConcFacts) -> ConcurrencyResult:
    resolve_mutex = _resolver(conc.mutexes, conc.mutex_names)
    resolve_condvar = _resolver(conc.condvars, conc.condvar_names)
    unique = {name for name, defs in conc.fns.items() if len(defs) == 1}

    # -- bottom-up acquire summaries (unique-definition names only) -------
    summaries: Dict[str, Set[str]] = {}
    for name in unique:
        d = conc.fns[name][0]
        base: Set[str] = set()
        for lock, _l, _c in d.acq_sites:
            lid = resolve_mutex(d.qualifier, lock)
            if lid is not None:
                base.add(lid)
        summaries[name] = base
    changed = True
    while changed:
        changed = False
        for name in unique:
            d = conc.fns[name][0]
            mine = summaries[name]
            for callee, _l, _c in d.call_sites:
                other = summaries.get(callee)
                if other and not other <= mine:
                    mine |= other
                    changed = True

    # -- blocking summaries (a name blocks only when ALL defs block) ------
    def cv_exempt(qual: str, recv: str) -> bool:
        if not recv:
            return False
        if resolve_condvar(qual, recv) is not None:
            return True
        low = recv.lower()
        return "cv" in low or "cond" in low

    def directly_blocks(d: FnConc) -> bool:
        if d.blocking_sites:
            return True
        return any(not cv_exempt(d.qualifier, recv)
                   for recv, _l, _c in d.wait_sites)

    blocking: Set[str] = set()
    grow = True
    while grow:
        grow = False
        for name, defs in conc.fns.items():
            if name in blocking or not defs:
                continue
            if all(directly_blocks(d)
                   or any(c in blocking for c, _l, _c in d.call_sites)
                   for d in defs):
                blocking.add(name)
                grow = True

    findings: Set[Tuple[str, str, int, int, str]] = set()

    # -- latch order graph -------------------------------------------------
    edges: Dict[Tuple[str, str], Tuple[str, int, int]] = {}

    def add_edge(a: str, b: str, site: Tuple[str, int, int]) -> None:
        key = (a, b)
        if key not in edges or site < edges[key]:
            edges[key] = site

    for ref_a, ref_b, path, line, col in conc.order_edges:
        a = resolve_mutex(*ref_a)
        b = resolve_mutex(*ref_b)
        if a is not None and b is not None:
            add_edge(a, b, (path, line, col))
    for defs in conc.fns.values():
        for d in defs:
            for holder, _hl, acquired, line, col in d.held_edges:
                a = resolve_mutex(d.qualifier, holder)
                b = resolve_mutex(d.qualifier, acquired)
                if a is not None and b is not None:
                    add_edge(a, b, (d.path, line, col))
            for holder, callee, line, col in d.held_calls:
                summary = summaries.get(callee)
                if not summary:
                    continue
                a = resolve_mutex(d.qualifier, holder)
                if a is None:
                    continue
                for b in summary:
                    add_edge(a, b, (d.path, line, col))
            for rqual, rname in conc.requires.get(d.name, ()):
                r = resolve_mutex(rqual, rname)
                if r is None:
                    continue
                for lock, line, col in d.acq_sites:
                    b = resolve_mutex(d.qualifier, lock)
                    if b is not None:
                        add_edge(r, b, (d.path, line, col))
                for callee, line, col in d.call_sites:
                    for b in summaries.get(callee) or ():
                        add_edge(r, b, (d.path, line, col))

    cycles = _find_cycles(edges)
    for cycle in cycles:
        chain = " -> ".join(cycle + (cycle[0],))
        cyc_edges = [(cycle[i], cycle[(i + 1) % len(cycle)])
                     for i in range(len(cycle))]
        sites = sorted((edges[e], e) for e in cyc_edges)
        (path, line, col), (a, b) = sites[0]
        others = "; ".join(
            f"{ea} -> {eb} at {p}:{l}" for (p, l, _c), (ea, eb) in sites[1:])
        detail = f" (also {others})" if others else ""
        findings.add((RULE_LATCH_ORDER, path, line, col,
                      f"lock acquisition order cycle {chain}: {b} is "
                      f"acquired here with {a} held{detail}; pick one "
                      f"global order (GRANULOCK_ACQUIRED_BEFORE) and "
                      f"release before re-acquiring"))

    # -- held-across-blocking ---------------------------------------------
    def blocking_finding(lock_id: str, op: str, path: str, line: int,
                         col: int, via: str = "") -> None:
        findings.add((
            RULE_HELD_ACROSS_BLOCKING, path, line, col,
            f"{lock_id} is held across blocking call {op}(){via}; release "
            f"the mutex around the blocking region (a condition-variable "
            f"Wait is the only sanctioned wait-while-holding)"))

    for defs in conc.fns.values():
        for d in defs:
            for holder, kind, recv, op, line, col in d.held_blocks:
                a = resolve_mutex(d.qualifier, holder)
                if a is None:
                    continue
                if kind == "wait" and cv_exempt(d.qualifier, recv):
                    continue
                name = f"{recv}.{op}" if kind == "wait" and recv else op
                blocking_finding(a, name, d.path, line, col)
            for holder, callee, line, col in d.held_calls:
                if callee not in blocking or callee not in conc.fns:
                    continue
                a = resolve_mutex(d.qualifier, holder)
                if a is not None:
                    blocking_finding(
                        a, callee, d.path, line, col,
                        via=", which blocks on every definition "
                            "(transitive file I/O, join, or sleep)")
            for rqual, rname in conc.requires.get(d.name, ()):
                r = resolve_mutex(rqual, rname)
                if r is None:
                    continue
                for op, line, col in d.blocking_sites:
                    blocking_finding(r, op, d.path, line, col,
                                     via=" (held via GRANULOCK_REQUIRES)")
                for recv, line, col in d.wait_sites:
                    if not cv_exempt(d.qualifier, recv):
                        blocking_finding(r, f"{recv}.wait" if recv
                                         else "wait", d.path, line, col,
                                         via=" (held via GRANULOCK_"
                                             "REQUIRES)")
                for callee, line, col in d.call_sites:
                    if callee in blocking and callee in conc.fns:
                        blocking_finding(
                            r, callee, d.path, line, col,
                            via=", which blocks on every definition "
                                "(held via GRANULOCK_REQUIRES)")

    # -- thread roots and reachability ------------------------------------
    resolve_container = _resolver(conc.thread_containers)
    roots: Set[str] = set()
    for recv, qual, args, _path, _line in conc.spawns:
        if recv is not None and resolve_container(qual, recv) is None:
            continue
        for arg in args:
            if arg in unique:
                roots.add(arg)
    reach: Set[str] = set()
    frontier = sorted(roots)
    while frontier:
        name = frontier.pop()
        if name in reach:
            continue
        reach.add(name)
        for callee, _l, _c in conc.fns[name][0].call_sites:
            if callee in unique and callee not in reach:
                frontier.append(callee)

    # -- atomic discipline -------------------------------------------------
    exempt_ids = (conc.atomics | conc.thread_locals | conc.condvars
                  | conc.thread_containers | set(conc.guarded)
                  | set(conc.mutexes))

    def classified(qual: str, name: str) -> bool:
        return _lock_id(qual, name) in exempt_ids \
            or _lock_id("", name) in exempt_ids

    acc: Dict[str, Dict] = {}
    for fname, defs in conc.fns.items():
        for d in defs:
            in_reach = fname in reach
            for member, is_write, line, col in d.accesses:
                if classified(d.qualifier, member):
                    continue
                mid = _lock_id("" if member.startswith("g_")
                               else d.qualifier, member)
                rec = acc.setdefault(mid, {"thread_sites": [],
                                           "thread_fns": set(),
                                           "written": False})
                if in_reach:
                    rec["thread_sites"].append((d.path, line, col))
                    rec["thread_fns"].add(fname)
                if is_write and not d.is_ctor_dtor:
                    rec["written"] = True
    for mid in sorted(acc):
        rec = acc[mid]
        if not rec["thread_sites"] or not rec["written"]:
            continue
        path, line, col = min(rec["thread_sites"])
        via = ", ".join(sorted(rec["thread_fns"]))
        findings.add((
            RULE_ATOMIC_DISCIPLINE, path, line, col,
            f"'{mid}' is touched on a spawned thread (in {via}) and "
            f"written outside construction without synchronization; make "
            f"it std::atomic, annotate it GRANULOCK_GUARDED_BY, or "
            f"suppress with granulock-lint: "
            f"allow({RULE_ATOMIC_DISCIPLINE})"))

    findings_by_path: Dict[str, List[Tuple[str, int, int, str]]] = {}
    for rule, path, line, col, message in sorted(findings):
        findings_by_path.setdefault(path, []).append(
            (rule, line, col, message))
    return ConcurrencyResult(
        findings_by_path=findings_by_path,
        lock_order_edges=edges,
        cycles=tuple(cycles),
        acquire_summaries={k: frozenset(v) for k, v in summaries.items()},
        blocking_fns=frozenset(blocking),
        thread_roots=frozenset(roots),
        thread_reachable=frozenset(reach),
    )


def _find_cycles(edges: Dict[Tuple[str, str], Tuple[str, int, int]]
                 ) -> List[Tuple[str, ...]]:
    """Distinct elementary cycles reachable by DFS, canonicalized
    (rotated to their least node) and sorted for deterministic output.
    One witness per cycle node-set is enough for reporting."""
    adj: Dict[str, List[str]] = {}
    for a, b in edges:
        adj.setdefault(a, []).append(b)
        adj.setdefault(b, [])
    for dsts in adj.values():
        dsts.sort()
    seen: Set[Tuple[str, ...]] = set()
    out: List[Tuple[str, ...]] = []
    color: Dict[str, int] = {}
    stack: List[str] = []

    def canonical(cycle: List[str]) -> Tuple[str, ...]:
        pivot = cycle.index(min(cycle))
        return tuple(cycle[pivot:] + cycle[:pivot])

    def dfs(node: str) -> None:
        color[node] = 1
        stack.append(node)
        for nxt in adj[node]:
            if color.get(nxt, 0) == 0:
                dfs(nxt)
            elif color.get(nxt) == 1:
                cycle = canonical(stack[stack.index(nxt):])
                if cycle not in seen:
                    seen.add(cycle)
                    out.append(cycle)
        stack.pop()
        color[node] = 2

    for node in sorted(adj):
        if color.get(node, 0) == 0:
            dfs(node)
    out.sort()
    return out
