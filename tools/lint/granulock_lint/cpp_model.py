"""Lightweight C++ AST built on the token stream.

The builtin frontend does not type-check C++; it recovers exactly the
program structure the rules reason about:

  * call expressions, with the full (possibly qualified / member) callee
    path and the token extent of each argument;
  * declarations of variables whose declared type names an unordered
    associative container (for the determinism rule);
  * range-for statements and classic iterator loops;
  * enough statement-boundary context to decide whether a call's result
    is discarded.

Everything is deliberately conservative: when the model cannot classify
a construct it stays silent, so ambiguity produces missed findings, not
false positives.  The fixtures in tests/lint_test pin down the constructs
each rule must recognise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .lexer import LexedFile, Token, match_paren

# Tokens that terminate a statement / begin a new one.  A call expression
# whose previous significant token is one of these starts a statement.
_STMT_BOUNDARY = {";", "{", "}"}
# Keywords that may directly precede an expression-statement.
_STMT_KEYWORDS = {"else", "do", "try"}

# Assignment-flavoured operators (NOT the comparison family).
MUTATING_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                "<<=", ">>=", "++", "--"}

_UNORDERED_TYPES = {"unordered_map", "unordered_set", "unordered_multimap",
                    "unordered_multiset"}


@dataclass(frozen=True)
class CallSite:
    """One syntactic call: ``path ( args )``."""

    name: str  # last identifier of the callee: "ShouldFire"
    path: Tuple[str, ...]  # qualification chain: ("Injector", "Global", ...)
    # The punctuation that joined path elements, aligned with path[1:]:
    # "::", ".", or "->".
    joiners: Tuple[str, ...]
    name_index: int  # token index of `name`
    open_index: int  # token index of '('
    close_index: int  # token index of the matching ')'
    expr_start: int  # token index where the full postfix expression begins
    line: int
    col: int

    def qualified(self) -> str:
        if not self.joiners:
            return self.name
        out = [self.path[0]]
        for joiner, part in zip(self.joiners, self.path[1:]):
            out.append(joiner)
            out.append(part)
        return "".join(out)

    @property
    def is_member_call(self) -> bool:
        return bool(self.joiners) and self.joiners[-1] in (".", "->")


@dataclass(frozen=True)
class RangeFor:
    """``for ( decl : expr )`` — expr_base is the last identifier of the
    iterated expression (``states_`` for ``this->states_``)."""

    expr_base: str
    expr_tokens: Tuple[str, ...]
    line: int
    col: int


@dataclass
class FileModel:
    lexed: LexedFile
    calls: List[CallSite] = field(default_factory=list)
    range_fors: List[RangeFor] = field(default_factory=list)
    # Names declared (anywhere in the file) with an unordered container
    # type: variable/member/parameter name -> declaration line.
    unordered_decls: Dict[str, int] = field(default_factory=dict)


def _is_call_head(tokens: List[Token], i: int) -> bool:
    """True when tokens[i] is an identifier directly followed by '(' and
    the identifier is not a declaration/definition head, keyword, or macro
    definition."""
    if tokens[i].kind != "ident":
        return False
    if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
        return False
    if tokens[i].text in ("if", "for", "while", "switch", "return", "sizeof",
                          "alignof", "decltype", "catch", "noexcept",
                          "static_assert", "alignas", "new", "delete",
                          "co_return", "co_await", "co_yield", "typeid",
                          "static_cast", "dynamic_cast", "const_cast",
                          "reinterpret_cast", "defined", "assert"):
        return False
    return True


def _walk_callee_prefix(tokens: List[Token], i: int) -> Tuple[int, Tuple[str, ...], Tuple[str, ...]]:
    """Walks left from the callee identifier at ``i`` through
    ``a::b``, ``a.b``, ``a->b``, and ``a(...).b`` chains.

    Returns (expr_start_index, path, joiners)."""
    path = [tokens[i].text]
    joiners: List[str] = []
    j = i
    while j - 1 >= 0:
        prev = tokens[j - 1]
        if prev.kind != "punct" or prev.text not in ("::", ".", "->"):
            break
        if j - 2 >= 0 and tokens[j - 2].kind == "ident":
            path.insert(0, tokens[j - 2].text)
            joiners.insert(0, prev.text)
            j -= 2
            continue
        if j - 2 >= 0 and tokens[j - 2].text == ")":
            # Chained off a call or parenthesised expression:
            # Global().ShouldFire(...). Walk to the matching '('.
            depth = 0
            k = j - 2
            while k >= 0:
                if tokens[k].text == ")":
                    depth += 1
                elif tokens[k].text == "(":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            if k < 0:
                break
            # The '(' may itself be a call: include its callee.
            if k - 1 >= 0 and tokens[k - 1].kind == "ident":
                path.insert(0, tokens[k - 1].text + "()")
                joiners.insert(0, prev.text)
                j = k - 1
                continue
            path.insert(0, "()")
            joiners.insert(0, prev.text)
            j = k
            continue
        if prev.text == "::" and (j - 2 < 0
                                  or tokens[j - 2].kind != "ident"):
            # Global qualification: ::granulock::Foo(...)
            j -= 1
            continue
        break
    return j, tuple(path), tuple(joiners)


def _collect_calls(model: FileModel) -> None:
    tokens = model.lexed.tokens
    for i, tok in enumerate(tokens):
        if not _is_call_head(tokens, i):
            continue
        close = match_paren(tokens, i + 1)
        if close is None:
            continue
        expr_start, path, joiners = _walk_callee_prefix(tokens, i)
        model.calls.append(
            CallSite(name=tok.text, path=path, joiners=joiners,
                     name_index=i, open_index=i + 1, close_index=close,
                     expr_start=expr_start, line=tok.line, col=tok.col))


def _collect_range_fors(model: FileModel) -> None:
    tokens = model.lexed.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "ident" or tok.text != "for":
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        close = match_paren(tokens, i + 1)
        if close is None:
            continue
        # A range-for has a ':' at paren depth 1 that is not part of '::'
        # and not a ternary.
        depth = 0
        colon = None
        for j in range(i + 1, close):
            t = tokens[j]
            if t.kind != "punct":
                continue
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif t.text == ";":
                colon = None  # classic for loop
                break
            elif t.text == ":" and depth == 1:
                colon = j
                break
        if colon is None:
            continue
        expr_toks = tokens[colon + 1:close]
        base = None
        for t in reversed(expr_toks):
            if t.kind == "ident":
                base = t.text
                break
        if base is None:
            continue
        model.range_fors.append(
            RangeFor(expr_base=base,
                     expr_tokens=tuple(t.text for t in expr_toks),
                     line=tok.line, col=tok.col))


def _collect_unordered_decls(model: FileModel) -> None:
    """Records names declared with std::unordered_{map,set,...} types.

    Handles locals, members, and parameters:
        std::unordered_map<K, V> name
        unordered_set<T>& name
    """
    tokens = model.lexed.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "ident" or tok.text not in _UNORDERED_TYPES:
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "<":
            continue
        # Skip over the template argument list.
        depth = 0
        j = i + 1
        while j < len(tokens):
            t = tokens[j]
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    break
            elif t.text == ">>":
                depth -= 2
                if depth <= 0:
                    break
            elif t.text == ";":
                break
            j += 1
        j += 1
        # Reference/pointer/cv decorations before the declared name.
        while j < len(tokens) and tokens[j].text in ("&", "*", "const", "&&"):
            j += 1
        if j < len(tokens) and tokens[j].kind == "ident":
            model.unordered_decls.setdefault(tokens[j].text, tokens[j].line)


def build_model(lexed: LexedFile) -> FileModel:
    model = FileModel(lexed=lexed)
    _collect_calls(model)
    _collect_range_fors(model)
    _collect_unordered_decls(model)
    return model


def statement_discards_call(tokens: List[Token], call: CallSite) -> bool:
    """True when the call is a full expression statement whose result is
    discarded: the postfix expression starts at a statement boundary and
    the token after the closing ')' is ';'."""
    after = call.close_index + 1
    if after >= len(tokens) or tokens[after].text != ";":
        return False
    before = call.expr_start - 1
    if before < 0:
        return True
    prev = tokens[before]
    if prev.kind == "punct" and prev.text in _STMT_BOUNDARY:
        # `)` + `;` forms like `(void)Foo();` never reach here because the
        # cast makes expr_start walk stop at Foo, leaving prev == ')'.
        return True
    if prev.kind == "ident" and prev.text in _STMT_KEYWORDS:
        return True
    return False


_EXPR_KEYWORDS = {"return", "co_return", "throw", "case", "else", "do",
                  "goto", "and", "or", "not", "new", "delete", "co_await",
                  "co_yield"}


def preceded_by_type_ident(tokens: List[Token], call: CallSite) -> bool:
    """True when the unqualified call-shaped construct is directly preceded
    by a type-like identifier — i.e. it reads as a function *declaration*
    (``double time() const``), not a call.  Expression keywords (``return
    time(0)``) do not count as types."""
    if call.joiners:
        return False
    before = call.expr_start - 1
    if before < 0:
        return False
    prev = tokens[before]
    if prev.kind == "punct" and prev.text == "~":
        return True  # destructor
    return prev.kind == "ident" and prev.text not in _EXPR_KEYWORDS


def statement_end(tokens: List[Token], start: int) -> int:
    """Token index of the ';' ending the statement containing ``start``
    (or the last token index when unterminated)."""
    depth = 0
    for i in range(start, len(tokens)):
        t = tokens[i]
        if t.kind != "punct":
            continue
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        elif t.text == ";" and depth <= 0:
            return i
    return len(tokens) - 1
