"""Text, JSON, and SARIF reporters.

Text output is clang-diagnostic-shaped (``file:line:col: warning: ...
[rule-id]``) so editors and CI annotators parse it for free.  JSON output
carries the same findings plus run metadata and is stable-sorted, so two
runs over the same tree produce byte-identical reports — the same
property the bench reports guarantee.  SARIF output (2.1.0) is what
GitHub code scanning ingests: one run, one result per finding, baselined
findings included but marked suppressed so they annotate without
failing the scan.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional

from .rules import Finding, Rule


def render_text(findings: List[Finding], baselined: List[Finding],
                suppressed_count: int, files_scanned: int,
                out=None) -> None:
    out = out or sys.stdout
    for f in sorted(findings, key=Finding.sort_key):
        out.write(f"{f.path}:{f.line}:{f.col}: warning: {f.message} "
                  f"[{f.rule}]\n")
    for f in sorted(baselined, key=Finding.sort_key):
        out.write(f"{f.path}:{f.line}:{f.col}: note: baselined: "
                  f"{f.message} [{f.rule}]\n")
    out.write(
        f"granulock-lint: {files_scanned} files, {len(findings)} "
        f"finding{'s' if len(findings) != 1 else ''}, "
        f"{len(baselined)} baselined, {suppressed_count} suppressed\n")


def render_json(findings: List[Finding], baselined: List[Finding],
                suppressed_count: int, files_scanned: int,
                meta: Optional[Dict] = None) -> str:
    doc = {
        "tool": "granulock-lint",
        "meta": meta or {},
        "files_scanned": files_scanned,
        "suppressed": suppressed_count,
        "findings": [
            {"rule": f.rule, "path": f.path, "line": f.line, "col": f.col,
             "message": f.message}
            for f in sorted(findings, key=Finding.sort_key)
        ],
        "baselined": [
            {"rule": f.rule, "path": f.path, "line": f.line, "col": f.col,
             "message": f.message}
            for f in sorted(baselined, key=Finding.sort_key)
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _sarif_result(f: Finding, suppressed: bool) -> Dict:
    result = {
        "ruleId": f.rule,
        "level": "warning",
        "message": {"text": f.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": f.path,
                                     "uriBaseId": "SRCROOT"},
                "region": {"startLine": f.line,
                           "startColumn": max(f.col, 1)},
            },
        }],
    }
    if suppressed:
        result["suppressions"] = [{"kind": "external",
                                   "justification": "baselined"}]
    return result


def render_sarif(findings: List[Finding], baselined: List[Finding],
                 rules: List[Rule], version: str) -> str:
    """SARIF 2.1.0 document for the run.  Stable-sorted like the JSON
    reporter; baselined findings appear with a suppression record."""
    driver = {
        "name": "granulock-lint",
        "version": version,
        "informationUri":
            "https://github.com/granulock/granulock"
            "/blob/main/docs/STATIC_ANALYSIS.md",
        "rules": [
            {
                "id": rule.id,
                "shortDescription": {"text": rule.id},
                "fullDescription": {"text": rule.rationale},
                "defaultConfiguration": {"level": "warning"},
            }
            for rule in sorted(rules, key=lambda r: r.id)
        ],
    }
    results = [
        _sarif_result(f, suppressed=False)
        for f in sorted(findings, key=Finding.sort_key)
    ] + [
        _sarif_result(f, suppressed=True)
        for f in sorted(baselined, key=Finding.sort_key)
    ]
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": driver},
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
