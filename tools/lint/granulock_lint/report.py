"""Text and JSON reporters.

Text output is clang-diagnostic-shaped (``file:line:col: warning: ...
[rule-id]``) so editors and CI annotators parse it for free.  JSON output
carries the same findings plus run metadata and is stable-sorted, so two
runs over the same tree produce byte-identical reports — the same
property the bench reports guarantee.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional

from .rules import Finding


def render_text(findings: List[Finding], baselined: List[Finding],
                suppressed_count: int, files_scanned: int,
                out=None) -> None:
    out = out or sys.stdout
    for f in sorted(findings, key=Finding.sort_key):
        out.write(f"{f.path}:{f.line}:{f.col}: warning: {f.message} "
                  f"[{f.rule}]\n")
    for f in sorted(baselined, key=Finding.sort_key):
        out.write(f"{f.path}:{f.line}:{f.col}: note: baselined: "
                  f"{f.message} [{f.rule}]\n")
    out.write(
        f"granulock-lint: {files_scanned} files, {len(findings)} "
        f"finding{'s' if len(findings) != 1 else ''}, "
        f"{len(baselined)} baselined, {suppressed_count} suppressed\n")


def render_json(findings: List[Finding], baselined: List[Finding],
                suppressed_count: int, files_scanned: int,
                meta: Optional[Dict] = None) -> str:
    doc = {
        "tool": "granulock-lint",
        "meta": meta or {},
        "files_scanned": files_scanned,
        "suppressed": suppressed_count,
        "findings": [
            {"rule": f.rule, "path": f.path, "line": f.line, "col": f.col,
             "message": f.message}
            for f in sorted(findings, key=Finding.sort_key)
        ],
        "baselined": [
            {"rule": f.rule, "path": f.path, "line": f.line, "col": f.col,
             "message": f.message}
            for f in sorted(baselined, key=Finding.sort_key)
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
