"""Lock balance: every successful acquire path reaches a release.

The engines acquire whole lock sets through
``TryAcquireAll(txn, requests)``, which returns the blocking
transaction (``std::optional<TxnId>``) — **an empty optional means the
acquisition succeeded**.  On the success path the transaction holds
real table state, so every exit of the function must release it, either
directly (``ReleaseAll``/``Release``/``Unlock``) or through a helper the
callee-summary pass knows to release transitively (``Complete``,
``AbortAndRestart``, ``PumpLockManager``...).

The analysis is a forward may-analysis over acquire tokens:

  * ``auto blocker = x->TryAcquireAll(...)`` in a plain statement gens a
    *conditional* token keyed to ``blocker``;
  * the token resolves along the branch edges of a recognized guard —
    ``blocker.has_value()`` / ``blocker`` / ``!blocker`` — remembering
    the optional-blocker polarity: the has-value edge is the FAILURE
    edge (nothing held), the empty edge is the success edge (token
    becomes *held*);
  * any statement calling a releasing function (summary set) kills all
    tokens;
  * a held token reaching function exit is the finding, anchored at the
    acquire line.

Conservatism: functions that never release anything are skipped
entirely (the engines' event-driven style legitimately acquires in one
callback and releases in another — only functions that own a release
locally promise local balance); acquisitions inside ``return``
statements transfer ownership to the caller and gen nothing; an
unrecognized guard leaves the token conditional forever, and
conditional tokens are never reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from .. import dataflow
from ..cfg import Edge, Stmt, calls_in_range, functions_of
from ..cpp_model import FileModel
from ..summaries import PRIMITIVE_RELEASES
from . import Finding, Rule, RuleContext, register

# Acquire entry points returning std::optional<TxnId> blocker
# (has_value() == the acquisition FAILED).
OPTIONAL_BLOCKER_ACQUIRES = frozenset({"TryAcquireAll"})


@dataclass(frozen=True)
class _Token:
    """One tracked acquisition (value equality keeps the fixpoint
    stable): ``var`` is the local the optional blocker was stored into,
    ``held`` flips to True on the proven-success branch edge."""

    var: str
    line: int
    col: int
    held: bool = False


class _LockBalance(dataflow.Analysis):
    direction = "forward"

    def __init__(self, model: FileModel, releasing: FrozenSet[str]):
        self.model = model
        self.tokens = model.lexed.tokens
        self.releasing = releasing

    def boundary_state(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer_stmt(self, stmt: Stmt, state):
        calls = calls_in_range(self.model, stmt.start, stmt.end)
        if any(c.name in self.releasing for c in calls):
            return frozenset()
        if stmt.kind != "plain":
            return state
        for call in calls:
            if call.name not in OPTIONAL_BLOCKER_ACQUIRES:
                continue
            var = self._assigned_var(stmt, call)
            if var is None:
                continue
            # Re-acquiring into the same variable replaces the token.
            state = frozenset(t for t in state if t.var != var) \
                | {_Token(var, call.line, call.col)}
        return state

    def transfer_edge(self, edge: Edge, state):
        if edge.cond is None or edge.branch is None or not state:
            return state
        guard = self._parse_guard(edge.cond)
        if guard is None:
            return state
        var, positive = guard
        # positive guard ("blocker truthy") taken == acquisition FAILED.
        failed_edge = edge.branch if positive else not edge.branch
        out = []
        for tok in state:
            if tok.var != var or tok.held:
                out.append(tok)
            elif failed_edge:
                pass  # failure proven: nothing held, drop the token
            else:
                out.append(_Token(tok.var, tok.line, tok.col, held=True))
        return frozenset(out)

    # -- helpers ------------------------------------------------------------

    def _assigned_var(self, stmt: Stmt, call) -> Optional[str]:
        """The local the acquire's optional result is stored into:
        ``... name = x->TryAcquireAll(...);`` with the call spanning the
        whole right-hand side.  None when the shape is anything else."""
        j = call.expr_start - 1
        if j <= stmt.start or self.tokens[j].text != "=":
            return None
        if self.tokens[j - 1].kind != "ident":
            return None
        # The call must be the entire initializer (a returned/compared
        # blocker is not a local acquisition).
        k = call.close_index + 1
        if k <= stmt.end and self.tokens[k].text != ";":
            return None
        return self.tokens[j - 1].text

    def _parse_guard(self, cond: Stmt) -> Optional[Tuple[str, bool]]:
        """Recognizes ``v``, ``!v``, ``v.has_value()``,
        ``!v.has_value()`` as the whole condition.  Returns
        (var, positive) or None."""
        toks = self.tokens[cond.start:cond.end + 1]
        positive = True
        if toks and toks[0].text == "!" and toks[0].kind == "punct":
            positive = False
            toks = toks[1:]
        if len(toks) == 1 and toks[0].kind == "ident":
            return toks[0].text, positive
        if (len(toks) == 5 and toks[0].kind == "ident"
                and toks[1].text in (".", "->")
                and toks[2].text == "has_value"
                and toks[3].text == "(" and toks[4].text == ")"):
            return toks[0].text, positive
        return None


@register
class LockBalanceRule(Rule):
    id = "granulock-lock-balance"
    rationale = (
        "a successful TryAcquireAll holds real lock-table state; a path "
        "that exits without releasing it leaks the locks and wedges "
        "every future conflicting transaction"
    )
    paths = ["src/db/*", "src/lockmgr/*"]

    def check(self, rel_path: str, model: FileModel,
              ctx: RuleContext) -> Iterable[Finding]:
        summaries = ctx.index.summaries
        releasing = (summaries.releasing_fns if summaries is not None
                     else PRIMITIVE_RELEASES)
        tokens = model.lexed.tokens
        for func in functions_of(model):
            body_calls = calls_in_range(model, func.body_open,
                                        func.body_close)
            # Ownership gate: only functions that release something
            # locally promise acquire/release balance; the event-driven
            # engines legitimately split the lifetime across callbacks.
            if not any(c.name in releasing for c in body_calls):
                continue
            if not any(c.name in OPTIONAL_BLOCKER_ACQUIRES
                       for c in body_calls):
                continue
            cfg = func.cfg(tokens)
            if cfg is None:
                continue
            analysis = _LockBalance(model, releasing)
            leaked = dataflow.exit_state(cfg, analysis)
            if not leaked:
                continue
            for tok in sorted(leaked, key=lambda t: (t.line, t.col)):
                if not tok.held:
                    continue  # unresolved guard: stay silent
                yield self.finding(
                    rel_path, tok.line, tok.col,
                    f"locks acquired here (success path of "
                    f"'TryAcquireAll' stored in '{tok.var}') can reach "
                    f"the end of '{func.name}' without a release; every "
                    f"exit of a releasing function must call ReleaseAll "
                    f"or a helper that does")
