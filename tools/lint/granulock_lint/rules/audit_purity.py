"""Audit-macro purity.

``GRANULOCK_DCHECK*`` compiles to a true no-op unless the build defines
``GRANULOCK_AUDIT_ENABLED`` (Debug and sanitizer builds).  An argument —
or a streamed context expression after the macro — with a side effect
therefore executes in Debug but not in Release, which is exactly the
kind of heisenbug the audit layer exists to prevent.  The rule scans the
whole statement (macro arguments plus any ``<< ...`` tail) for:

  * assignment-flavoured operators and ``++``/``--``;
  * member calls to methods the project index knows only as non-const.

``GRANULOCK_AUDIT_CHECK*`` is always compiled, so it is exempt; keeping
side effects out of it too is good style but not a correctness issue.
"""

from __future__ import annotations

from typing import Iterable

from ..cpp_model import MUTATING_OPS, FileModel, statement_end
from . import Finding, Rule, RuleContext, register

_DCHECK_PREFIX = "GRANULOCK_DCHECK"


@register
class AuditSideEffectRule(Rule):
    id = "granulock-audit-side-effect"
    rationale = (
        "GRANULOCK_DCHECK* arguments vanish in Release builds "
        "(GRANULOCK_AUDIT_ENABLED off), so a side effect inside one "
        "makes Debug and Release runs diverge"
    )
    paths = ["src/*", "src/*/*", "bench/*"]

    def check(self, rel_path: str, model: FileModel,
              ctx: RuleContext) -> Iterable[Finding]:
        tokens = model.lexed.tokens
        for call in model.calls:
            if not call.name.startswith(_DCHECK_PREFIX):
                continue
            if rel_path.endswith("invariants.h"):
                continue  # the macro definitions themselves
            end = statement_end(tokens, call.open_index)
            i = call.open_index + 1
            while i < end:
                tok = tokens[i]
                if tok.kind == "punct" and tok.text in MUTATING_OPS:
                    # `=` directly inside a lambda-capture `[=]` is a
                    # capture default, not an assignment.
                    if tok.text == "=" and i > 0 and \
                            tokens[i - 1].text == "[":
                        i += 1
                        continue
                    yield self.finding(
                        rel_path, tok.line, tok.col,
                        f"'{tok.text}' inside {call.name}: the argument "
                        f"is not evaluated in Release builds, so this "
                        f"side effect makes build modes diverge; hoist it "
                        f"out of the check")
                    break
                i += 1
            # Non-const member calls among the arguments / streamed tail.
            for inner in model.calls:
                if inner.name_index <= call.open_index or \
                        inner.name_index >= end:
                    continue
                if not inner.is_member_call:
                    continue
                if ctx.index.is_known_nonconst_method(inner.name):
                    yield self.finding(
                        rel_path, inner.line, inner.col,
                        f"call to non-const method '{inner.name}()' "
                        f"inside {call.name}: it runs in audit builds "
                        f"only; call it before the check and assert on "
                        f"the result")
