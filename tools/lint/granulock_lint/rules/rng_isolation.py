"""RNG stream isolation: profiler randomness stays out of the core.

The determinism contract (tested bit-for-bit by the dynamic suite) is
that observers are *provably invisible*: enabling the contention
profiler, tracing, or metrics export never changes a simulation result.
PR 6 enforces this at runtime by giving the profiler its own RNG stream
(``contention_rng_``) and keeping wall-clock reads (``util/wall_clock``)
in reporting code.  This rule is the static twin: a value derived from a
profiler-private stream or from the wall clock must never flow into

  * ``SimulationMetrics`` state (a member of a metrics object), or
  * event scheduling (``ScheduleAt``/``ScheduleAfter``/
    ``ScheduleObserverAt``/``ScheduleObserverAfter``) or server work
    submission (``Submit``) — anything that would perturb the
    deterministic event order.

Flows into observer calls (``OnBlock``, ``PublishRunProfile``, registry
gauges) are exactly what the private streams are *for* and are not
sinks.  ``src/util`` (the wall clock's own home) and test trees are out
of scope.  The callee-summary pass widens the source set to wrappers:
any function whose every definition returns a wall-clock- or
RNG-derived value (``WallTimer::Seconds``) taints its callers' locals
too.
"""

from __future__ import annotations

from typing import Iterable

from .. import taint
from ..cpp_model import FileModel
from ..summaries import RNG_RECEIVER_FRAGMENTS
from . import Finding, Rule, RuleContext, register

_SPEC = taint.TaintSpec(
    source_receivers=RNG_RECEIVER_FRAGMENTS,
    source_calls=("MonotonicSeconds",),
    sink_calls=("ScheduleAt", "ScheduleAfter", "ScheduleObserverAt",
                "ScheduleObserverAfter", "Submit"),
    sink_object_names=("metrics_",),
    sink_object_types=("SimulationMetrics",),
)


@register
class RngStreamIsolationRule(Rule):
    id = "granulock-rng-stream-isolation"
    rationale = (
        "profiler-private RNG streams and wall-clock reads exist so "
        "observers stay provably invisible; a value derived from one "
        "that reaches SimulationMetrics or event scheduling breaks "
        "bit-identical determinism in a way the dynamic suite can only "
        "catch after the fact"
    )
    paths = ["src/*", "src/*/*"]
    exclude_paths = ["src/util/*"]

    def check(self, rel_path: str, model: FileModel,
              ctx: RuleContext) -> Iterable[Finding]:
        summaries = ctx.index.summaries
        extra = frozenset()
        if summaries is not None:
            extra = summaries.wallclock_source_fns | summaries.rng_source_fns
        for flow in taint.analyze_file(model, _SPEC, extra):
            if flow.kind == "assign":
                what = f"is stored into '{flow.sink}'"
            else:
                what = f"is passed to '{flow.sink}()'"
            yield self.finding(
                rel_path, flow.line, flow.col,
                f"value derived from '{flow.via}' (profiler-private "
                f"RNG / wall clock) {what}; nondeterministic inputs "
                f"must not reach SimulationMetrics or event "
                f"scheduling — keep them in observer/reporting state")
