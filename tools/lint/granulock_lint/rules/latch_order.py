"""Global lock-acquisition-order (latch-order) rule.

The analysis itself lives in :mod:`granulock_lint.concurrency`: during
indexing every acquisition nesting, ``GRANULOCK_ACQUIRED_BEFORE/AFTER``
annotation, and hold-while-calling-an-acquiring-callee contributes an
edge to one project-wide lock-order graph, and :func:`finalize` reports
each cycle once, at its lexically earliest witness edge, with the full
witness path in the message.  This rule only routes those findings to
the file pass (rules run per file in worker processes; the graph cannot
be built there).

A clean run is a machine-checked proof that the shipped tree's
lock-order graph is acyclic — the static complement of what a deadlock
would demonstrate dynamically.
"""

from __future__ import annotations

from typing import Iterable

from ..concurrency import RULE_LATCH_ORDER
from ..cpp_model import FileModel
from . import Finding, Rule, RuleContext, register


@register
class LatchOrderRule(Rule):
    id = RULE_LATCH_ORDER
    rationale = (
        "two mutexes acquired in opposite orders on two code paths can "
        "deadlock under the right interleaving; an acyclic global "
        "acquisition-order graph makes that interleaving impossible"
    )
    paths = ["src/*"]

    def check(self, rel_path: str, model: FileModel,
              ctx: RuleContext) -> Iterable[Finding]:
        conc = ctx.index.concurrency
        if conc is None:
            return
        for rule, line, col, message in conc.findings_by_path.get(
                rel_path, ()):
            if rule == self.id:
                yield self.finding(rel_path, line, col, message)
