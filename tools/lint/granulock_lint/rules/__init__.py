"""Rule registry and the shared rule interface.

Every rule is a subclass of :class:`Rule` registered via
:func:`register`.  A rule sees one file at a time (as a
:class:`~granulock_lint.cpp_model.FileModel`) plus the project-wide
:class:`~granulock_lint.index.ProjectIndex`, and yields
:class:`Finding` objects.  Path scoping is part of each rule: the rules
encode *where* an invariant applies (e.g. wall-clock reads are legal in
``src/util`` but nowhere else), so scope changes are reviewed like any
other rule change.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Dict, Iterable, List, Type

from ..cpp_model import FileModel
from ..index import ProjectIndex


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    col: int
    message: str

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)


class RuleContext:
    """Per-run context handed to every rule."""

    def __init__(self, index: ProjectIndex):
        self.index = index


class Rule:
    """Base class. Subclasses set ``id``/``rationale`` and implement
    ``check``; ``paths``/``exclude_paths`` are fnmatch globs against the
    repo-relative path (empty ``paths`` means every linted file)."""

    id: str = ""
    rationale: str = ""
    paths: List[str] = []
    exclude_paths: List[str] = []

    def applies_to(self, rel_path: str) -> bool:
        if self.paths and not any(
                fnmatch.fnmatch(rel_path, g) for g in self.paths):
            return False
        if any(fnmatch.fnmatch(rel_path, g) for g in self.exclude_paths):
            return False
        return True

    def check(self, rel_path: str, model: FileModel,
              ctx: RuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, rel_path: str, line: int, col: int,
                message: str) -> Finding:
        return Finding(rule=self.id, path=rel_path, line=line, col=col,
                       message=message)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    assert cls.id, f"rule {cls.__name__} has no id"
    assert cls.id not in _REGISTRY, f"duplicate rule id {cls.id}"
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    # Import the rule modules for their registration side effect.
    from . import (atomic_discipline, audit_purity,  # noqa: F401
                   determinism, fault_hygiene, flag_hygiene,
                   header_hygiene, held_across_blocking,
                   hierarchy_discipline, latch_order, lock_balance,
                   rng_isolation, status_discipline)
    return [cls() for _, cls in sorted(_REGISTRY.items())]
