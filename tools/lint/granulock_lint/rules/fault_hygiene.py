"""Fault-point hygiene.

``fault::Injector`` points are deterministic only because they are
evaluated at a small set of sanctioned places: the contained cell runner
(``core::RunCell``), the cooperative watchdog poll (driven by *observer*
events that are excluded from executed-event counts), and the atomic
file writer's short-write hook.  An ``Injector::ShouldFire`` evaluated
from inside an event callback that affects simulated state would make
arming a fault perturb the simulation itself — exactly what the
fault_injection_test "watchdog-no-perturb" proofs forbid.  The rule
pins evaluation to the sanctioned files; arming/diagnostic calls
(``Arm``, ``ArmFromFlag``, ``DisarmAll``, ``hits``, ``fires``) are free.
"""

from __future__ import annotations

from typing import Iterable

from ..cpp_model import FileModel, preceded_by_type_ident
from . import Finding, Rule, RuleContext, register

# Files allowed to *evaluate* injection points.
_EVALUATION_ALLOWLIST = {
    "src/core/fault.cc",     # CellWatchdog::Poll / active()
    "src/core/fault.h",
    "src/core/experiment.cc",  # the contained cell runner
    "src/util/fileio.cc",    # short-write hook installed by ArmFromFlag
    "src/db/contention_policy.cc",  # policy_victim_flip (MaybeInjectVictimFlip)
}

_EVALUATION_CALLS = {"ShouldFire"}


@register
class FaultPointPlacementRule(Rule):
    id = "granulock-fault-point-placement"
    rationale = (
        "fault points may only be evaluated behind the cooperative "
        "watchdog / contained-runner paths; evaluating one inside an "
        "event callback would let arming a fault change simulated "
        "results"
    )
    paths = ["src/*", "src/*/*", "bench/*"]

    def check(self, rel_path: str, model: FileModel,
              ctx: RuleContext) -> Iterable[Finding]:
        if rel_path in _EVALUATION_ALLOWLIST:
            return
        tokens = model.lexed.tokens
        for call in model.calls:
            if call.name in _EVALUATION_CALLS:
                if preceded_by_type_ident(tokens, call):
                    continue  # `bool ShouldFire(...)` declaration
                yield self.finding(
                    rel_path, call.line, call.col,
                    f"'{call.qualified()}()' evaluates a fault-injection "
                    f"point outside the sanctioned watchdog/runner paths "
                    f"({', '.join(sorted(_EVALUATION_ALLOWLIST))}); route "
                    f"the fault through CellWatchdog::Poll or core::RunCell")
