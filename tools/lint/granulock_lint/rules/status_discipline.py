"""Status discipline.

The library reports failures by returning ``Status`` / ``Result<T>``
(no exceptions across public APIs), which only works if no caller drops
a return on the floor.  The rule flags calls to functions the project
index knows to return Status-like types when the call is a full
expression statement (result discarded).  Accepted disciplines:

  * use the value: assign, compare, branch, return, pass as argument;
  * propagate: ``GRANULOCK_RETURN_NOT_OK(expr)``;
  * explicitly void: ``(void)expr;`` with a comment explaining why.

Name-ambiguous functions (same name declared with a non-Status return
anywhere in the project) are skipped entirely — missed findings beat
false gates.
"""

from __future__ import annotations

from typing import Iterable

from ..cpp_model import FileModel, statement_discards_call
from . import Finding, Rule, RuleContext, register


@register
class UncheckedStatusRule(Rule):
    id = "granulock-status-unchecked"
    rationale = (
        "a discarded Status/Result silently swallows the only failure "
        "signal the library emits; check it, propagate it with "
        "GRANULOCK_RETURN_NOT_OK, or cast to (void) with a reason"
    )
    paths = ["src/*", "src/*/*", "bench/*", "examples/*"]

    def check(self, rel_path: str, model: FileModel,
              ctx: RuleContext) -> Iterable[Finding]:
        tokens = model.lexed.tokens
        for call in model.calls:
            if not ctx.index.returns_status(call.name):
                continue
            if not statement_discards_call(tokens, call):
                continue
            yield self.finding(
                rel_path, call.line, call.col,
                f"result of '{call.qualified()}()' is discarded but the "
                f"function returns Status/Result; check it, wrap it in "
                f"GRANULOCK_RETURN_NOT_OK, or write "
                f"'(void){call.name}(...);' with a justifying comment")
