"""Status discipline.

The library reports failures by returning ``Status`` / ``Result<T>``
(no exceptions across public APIs), which only works if no caller drops
a return on the floor.  The rule flags calls to functions the project
index knows to return Status-like types when the call is a full
expression statement (result discarded).  Accepted disciplines:

  * use the value: assign, compare, branch, return, pass as argument;
  * propagate: ``GRANULOCK_RETURN_NOT_OK(expr)``;
  * explicitly void: ``(void)expr;`` with a comment explaining why.

Name-ambiguous functions (same name declared with a non-Status return
anywhere in the project) are skipped entirely — missed findings beat
false gates.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from .. import dataflow
from ..cfg import Stmt, calls_in_range, functions_of
from ..cpp_model import FileModel, statement_discards_call
from . import Finding, Rule, RuleContext, register


@register
class UncheckedStatusRule(Rule):
    id = "granulock-status-unchecked"
    rationale = (
        "a discarded Status/Result silently swallows the only failure "
        "signal the library emits; check it, propagate it with "
        "GRANULOCK_RETURN_NOT_OK, or cast to (void) with a reason"
    )
    paths = ["src/*", "src/*/*", "bench/*", "examples/*"]

    def check(self, rel_path: str, model: FileModel,
              ctx: RuleContext) -> Iterable[Finding]:
        tokens = model.lexed.tokens
        for call in model.calls:
            if not ctx.index.returns_status(call.name):
                continue
            if not statement_discards_call(tokens, call):
                continue
            yield self.finding(
                rel_path, call.line, call.col,
                f"result of '{call.qualified()}()' is discarded but the "
                f"function returns Status/Result; check it, wrap it in "
                f"GRANULOCK_RETURN_NOT_OK, or write "
                f"'(void){call.name}(...);' with a justifying comment")


class _StoredStatuses(dataflow.Analysis):
    """Forward may-analysis: the set of local names holding a
    Status/Result that has not been consumed yet.  A name in the state
    at function exit was stored and then ignored on some path."""

    direction = "forward"

    def __init__(self, model: FileModel, status_names):
        self.model = model
        self.tokens = model.lexed.tokens
        self.status_names = status_names
        # (var, line, col) of each gen site, for the report.
        self.decl_sites = {}

    def boundary_state(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer_stmt(self, stmt: Stmt, state):
        gen = self._stored_status_var(stmt)
        # Any mention consumes: branching on it, returning it, passing
        # it (by value, reference, or address), calling .ok() on it.
        # The storing statement itself does not consume what it stores.
        mentioned = frozenset(
            name for name in state
            if name != gen and self._mentions(stmt, name))
        state = state - mentioned
        if gen is not None:
            state = state | {gen}
        return state

    def _mentions(self, stmt: Stmt, name: str) -> bool:
        for i in range(stmt.start, min(stmt.end + 1,
                                       len(self.tokens))):
            tok = self.tokens[i]
            if tok.kind == "ident" and tok.text == name:
                return True
        return False

    def _stored_status_var(self, stmt: Stmt) -> Optional[str]:
        """The plain local a Status-returning call is stored into, when
        the call is the entire initializer: ``Status s = F(...);`` /
        ``auto s = obj->G(...);``.  None otherwise."""
        if stmt.kind != "plain":
            return None
        for call in calls_in_range(self.model, stmt.start, stmt.end):
            if not self.status_names(call.name):
                continue
            j = call.expr_start - 1
            if j <= stmt.start or self.tokens[j].text != "=":
                continue
            # A store nested inside the statement (a lambda body, an
            # argument expression) is another scope whose consumption
            # this statement-flat view cannot see: skip it.
            if self._depth_at(stmt.start, j) != 0:
                continue
            if self.tokens[j - 1].kind != "ident":
                continue
            k = call.close_index + 1
            if k <= stmt.end and self.tokens[k].text != ";":
                continue  # `= F(...).ok()` already consumes it
            var = self.tokens[j - 1].text
            self.decl_sites.setdefault(
                var, (self.tokens[j - 1].line, self.tokens[j - 1].col))
            return var
        return None

    def _depth_at(self, start: int, at: int) -> int:
        depth = 0
        for i in range(start, at):
            tok = self.tokens[i]
            if tok.kind != "punct":
                continue
            if tok.text in ("(", "[", "{"):
                depth += 1
            elif tok.text in (")", "]", "}"):
                depth -= 1
        return depth


@register
class StatusPathRule(Rule):
    id = "granulock-status-path"
    rationale = (
        "storing a Status silences the statement-level discard check, "
        "but a path that then exits without looking at the value drops "
        "the failure signal just the same — path-sensitively, every "
        "branch must consume it"
    )
    paths = ["src/*", "src/*/*", "bench/*", "examples/*"]

    def check(self, rel_path: str, model: FileModel,
              ctx: RuleContext) -> Iterable[Finding]:
        tokens = model.lexed.tokens
        for func in functions_of(model):
            cfg = func.cfg(tokens)
            if cfg is None:
                continue
            analysis = _StoredStatuses(model, ctx.index.returns_status)
            unconsumed = dataflow.exit_state(cfg, analysis)
            if not unconsumed:
                continue
            for var in sorted(unconsumed):
                line, col = analysis.decl_sites[var]
                yield self.finding(
                    rel_path, line, col,
                    f"'{var}' stores a Status/Result here, but some "
                    f"path through '{func.name}' reaches the end "
                    f"without consuming it; branch on it, return it, "
                    f"or pass it on along every path")
