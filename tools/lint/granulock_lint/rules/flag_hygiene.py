"""Flag-registration hygiene.

``FlagParser::Add{Int64,Double,Bool,String}`` is the repo's whole flag
surface.  Registration aborts at runtime on duplicates, but only on the
code path that actually runs — a computed name (``Add...(prefix + "x")``)
defeats both that check's usefulness and static grepability (sweep
scripts and docs cross-reference flags by name).  The rule requires the
name argument at every registration call site to be a string literal
(adjacent-literal concatenation is fine), lowercase snake_case, and
accompanied by a literal help string.
"""

from __future__ import annotations

import re
from typing import Iterable

from ..cpp_model import FileModel
from . import Finding, Rule, RuleContext, register

_REGISTRATION_CALLS = {"AddInt64", "AddDouble", "AddBool", "AddString"}
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


@register
class FlagLiteralRule(Rule):
    id = "granulock-flag-literal"
    rationale = (
        "flag names must be grep-able string literals in snake_case so "
        "the flag namespace is statically auditable (duplicate "
        "registration is only caught at runtime on the path that runs)"
    )
    paths = ["src/*", "src/*/*", "bench/*", "examples/*", "tests/*"]

    def check(self, rel_path: str, model: FileModel,
              ctx: RuleContext) -> Iterable[Finding]:
        tokens = model.lexed.tokens
        for call in model.calls:
            if call.name not in _REGISTRATION_CALLS:
                continue
            if not call.is_member_call:
                continue  # e.g. an unrelated free function of the same name
            first = tokens[call.open_index + 1] \
                if call.open_index + 1 < len(tokens) else None
            if first is None or call.open_index + 1 >= call.close_index:
                continue
            if first.kind != "string":
                yield self.finding(
                    rel_path, first.line, first.col,
                    f"{call.name}: the flag name must be a string "
                    f"literal, not a computed expression")
                continue
            name = first.text[first.text.index('"') + 1:-1]
            if not _NAME_RE.match(name):
                yield self.finding(
                    rel_path, first.line, first.col,
                    f"{call.name}: flag name \"{name}\" must be "
                    f"lowercase snake_case ([a-z][a-z0-9_]*)")
