"""Cross-thread members must be atomic, guarded, or suppressed.

The analysis lives in :mod:`granulock_lint.concurrency`: thread entry
points (``std::thread`` constructor arguments and functions emplaced
into a declared ``std::vector<std::thread>``) seed a reachability walk
over the project call graph (unique-definition names only — an
ambiguous name cuts the walk, which can only hide findings).  A member
or ``g_``-prefixed global that is **accessed** from thread-reachable
code and **written** anywhere outside construction must carry an
explicit concurrency classification: ``std::atomic``,
``GRANULOCK_GUARDED_BY``, ``thread_local``, or an inline
``granulock-lint: allow(...)`` with a justification.

The point is not that every flagged member is a data race — it is that
its safety argument exists only in someone's head.  The classification
makes the argument part of the declaration, where the Clang
``-Wthread-safety`` wall (for guarded members) or the type system (for
atomics) can keep enforcing it.
"""

from __future__ import annotations

from typing import Iterable

from ..concurrency import RULE_ATOMIC_DISCIPLINE
from ..cpp_model import FileModel
from . import Finding, Rule, RuleContext, register


@register
class AtomicDisciplineRule(Rule):
    id = RULE_ATOMIC_DISCIPLINE
    rationale = (
        "a member touched from a spawned thread and mutated outside "
        "construction with no atomic/guard/thread_local classification "
        "has an unwritten safety argument; write it into the declaration"
    )
    paths = ["src/*"]

    def check(self, rel_path: str, model: FileModel,
              ctx: RuleContext) -> Iterable[Finding]:
        conc = ctx.index.concurrency
        if conc is None:
            return
        for rule, line, col, message in conc.findings_by_path.get(
                rel_path, ()):
            if rule == self.id:
                yield self.finding(rel_path, line, col, message)
