"""Header-guard hygiene.

The prevailing style is classic include guards named after the path
(``src/util/status.h`` → ``GRANULOCK_UTIL_STATUS_H_``), never
``#pragma once``.  The rule checks every linted header for: a guard as
the first directive, a matching ``#define``, the path-derived name, and
the absence of ``#pragma once``.  Keeping the name mechanical means a
moved header gets a fresh guard instead of silently shadowing its old
location.
"""

from __future__ import annotations

from typing import Iterable

from ..cpp_model import FileModel
from . import Finding, Rule, RuleContext, register


def expected_guard(rel_path: str) -> str:
    path = rel_path
    if path.startswith("src/"):
        path = path[len("src/"):]
    mangled = "".join(c.upper() if c.isalnum() else "_" for c in path)
    return f"GRANULOCK_{mangled}_"


@register
class HeaderGuardRule(Rule):
    id = "granulock-header-guard"
    rationale = (
        "headers use path-derived include guards "
        "(GRANULOCK_<PATH>_H_), not #pragma once, so guards stay unique "
        "and greppable"
    )
    paths = ["src/*.h", "src/*/*.h", "bench/*.h", "tests/*.h",
             "examples/*.h"]

    def check(self, rel_path: str, model: FileModel,
              ctx: RuleContext) -> Iterable[Finding]:
        directives = model.lexed.directives
        for d in directives:
            if d.name == "pragma" and d.body.split() and \
                    d.body.split()[0] == "once":
                yield self.finding(
                    rel_path, d.line, 1,
                    "#pragma once: this codebase uses path-derived "
                    "include guards (see docs/STATIC_ANALYSIS.md)")
                return
        want = expected_guard(rel_path)
        if not directives or directives[0].name != "ifndef":
            yield self.finding(
                rel_path, 1, 1,
                f"missing include guard: the first directive must be "
                f"#ifndef {want}")
            return
        got = directives[0].body.split()[0] if directives[0].body else ""
        if got != want:
            yield self.finding(
                rel_path, directives[0].line, 1,
                f"include guard is {got or '<empty>'}; the path-derived "
                f"name is {want}")
            return
        if len(directives) < 2 or directives[1].name != "define" or \
                (directives[1].body.split() or [""])[0] != want:
            yield self.finding(
                rel_path, directives[0].line, 1,
                f"#ifndef {want} must be immediately followed by "
                f"#define {want}")
