"""No mutex held across a blocking operation.

The analysis lives in :mod:`granulock_lint.concurrency`: per function it
intersects lexical lock-held intervals with blocking sites — file I/O,
``join()``, sleeps, and calls to functions that block on *every*
definition (summarized bottom-up through the project call graph) — and
``GRANULOCK_REQUIRES`` extends the held set to the whole body.  A wait
on a declared condition variable is the one sanctioned
wait-while-holding: the primitive releases the mutex while blocked.

Holding a latch across disk I/O serializes every would-be-concurrent
critical-section entrant behind the device: exactly the convoy the
paper's coarse-granularity regime models, but inflicted by code
structure rather than by a granularity choice.  CheckpointJournal's
group commit (enqueue under the mutex, flush with it dropped) is the
shape this rule enforces.
"""

from __future__ import annotations

from typing import Iterable

from ..concurrency import RULE_HELD_ACROSS_BLOCKING
from ..cpp_model import FileModel
from . import Finding, Rule, RuleContext, register


@register
class HeldAcrossBlockingRule(Rule):
    id = RULE_HELD_ACROSS_BLOCKING
    rationale = (
        "a mutex held across file I/O, join, or a transitively blocking "
        "callee turns device latency into lock hold time and convoys "
        "every contender; release around the blocking region instead"
    )
    paths = ["src/*"]

    def check(self, rel_path: str, model: FileModel,
              ctx: RuleContext) -> Iterable[Finding]:
        conc = ctx.index.concurrency
        if conc is None:
            return
        for rule, line, col, message in conc.findings_by_path.get(
                rel_path, ()):
            if rule == self.id:
                yield self.finding(rel_path, line, col, message)
